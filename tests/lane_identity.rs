//! Lane-batch identity: `LaneBatch` with K lanes over one shared trace
//! must reproduce, byte for byte, what each lane computes when run
//! alone on the legacy (unbatched) service path — the command mix, the
//! per-process and cache statistics, the defense counters, a probe's
//! latency trace, and the per-lane obs counters.
//!
//! This is the PR's absolute correctness bar: the batch engine and the
//! batched controller service are *engines*, not approximations, so
//! equality here is exact structural equality, never tolerance-based.

use std::sync::Arc;

use proptest::prelude::*;

use lh_attacks::{ChannelLayout, FingerprintProbe};
use lh_defenses::{DefenseConfig, DefenseKind, DefenseStats};
use lh_dram::{DramTiming, Span, Time};
use lh_memctrl::CtrlStats;
use lh_mitigate::MitigationConfig;
use lh_obs::Metrics;
use lh_sim::{CacheStats, LaneBatch, LatencyTrace, ProcId, ProcStats, System, SystemBuilder};
use lh_workloads::{AppProfile, Intensity, SharedTrace, TraceReplay};

const SIM_SEED: u64 = 11;
const SPAN_US: u64 = 25;

/// One lane's configuration: a defense plus a mitigation stack.
#[derive(Debug, Clone)]
struct LaneSpec {
    defense: DefenseConfig,
    mitigations: Vec<MitigationConfig>,
}

/// Everything a lane computes that downstream consumers can observe.
#[derive(Debug, Clone, PartialEq)]
struct LaneResult {
    ctrl: CtrlStats,
    defense: DefenseStats,
    /// Per replay core: instructions retired, process stats, cache stats.
    cores: Vec<(u64, ProcStats, CacheStats)>,
    /// The measurement loop's raw latency trace.
    probe: LatencyTrace,
    /// Obs counters captured at the lane's finalization flush.
    metrics: Metrics,
}

fn defense_pool(kind_idx: usize, nrh_idx: usize) -> DefenseConfig {
    let kinds = [
        DefenseKind::None,
        DefenseKind::Prac,
        DefenseKind::Prfm,
        DefenseKind::FrRfm,
        DefenseKind::PracRiac,
        DefenseKind::PracBank,
        DefenseKind::Para,
    ];
    let nrhs = [64, 128, 256, 512, 1024];
    DefenseConfig::for_threshold(
        kinds[kind_idx % kinds.len()],
        nrhs[nrh_idx % nrhs.len()],
        &DramTiming::ddr5_4800(),
    )
}

fn mitigation_pool(idx: usize) -> Vec<MitigationConfig> {
    match idx % 5 {
        0 => vec![],
        1 => vec![MitigationConfig::pass_through()],
        2 => vec![MitigationConfig::jitter(Span::from_ns(200))],
        3 => vec![MitigationConfig::batch(Span::from_us(1))],
        _ => vec![
            MitigationConfig::jitter(Span::from_ns(100)),
            MitigationConfig::batch(Span::from_ns(500)),
        ],
    }
}

fn builder(spec: &LaneSpec) -> SystemBuilder {
    SystemBuilder::new(spec.defense.clone())
        .mitigations(spec.mitigations.clone())
        .seed(SIM_SEED)
        .disturb_tracking(false)
}

fn shared_trace() -> Arc<SharedTrace> {
    let profiles = vec![
        AppProfile::category(Intensity::High),
        AppProfile::category(Intensity::Medium),
    ];
    let seeds: Vec<u64> = (0..profiles.len())
        .map(|i| SIM_SEED ^ (i as u64 * 31))
        .collect();
    let sim = lh_sim::SimConfig::paper_default(DefenseConfig::none());
    let mapping = lh_memctrl::AddressMapping::new(sim.mapping, sim.device.geometry);
    SharedTrace::decode_uncounted(profiles, mapping, &seeds)
}

/// Adds the lane's processes — one replay per trace core plus one
/// latency probe — to `sys`, returning (replay pids, probe pid).
fn add_processes(sys: &mut System, trace: &Arc<SharedTrace>, end: Time) -> (Vec<ProcId>, ProcId) {
    let pids: Vec<ProcId> = (0..trace.cores())
        .map(|core| {
            let replay = TraceReplay::new(Arc::clone(trace), core, end);
            let mlp = replay.mlp();
            sys.add_process(Box::new(replay), mlp, Time::ZERO)
        })
        .collect();
    let layout = ChannelLayout::default_bank(sys.mapping());
    let probe = FingerprintProbe::new(
        vec![layout.receiver_row, layout.noise_rows[0]],
        15,
        Span::from_ns(30),
        end,
    );
    let probe_pid = sys.add_process(Box::new(probe), 1, Time::ZERO);
    (pids, probe_pid)
}

fn collect(sys: &System, pids: &[ProcId], probe: ProcId, metrics: Metrics) -> LaneResult {
    LaneResult {
        ctrl: *sys.controller().stats(),
        defense: sys.controller().defense_stats(),
        cores: pids
            .iter()
            .map(|&p| {
                let replay = sys.process_as::<TraceReplay>(p).expect("replay present");
                (replay.instructions(), sys.proc_stats(p), sys.cache_stats(p))
            })
            .collect(),
        probe: sys
            .process_as::<FingerprintProbe>(probe)
            .expect("probe present")
            .trace()
            .clone(),
        metrics,
    }
}

/// The reference: the lane alone, on the legacy `service` path, with
/// its obs counters captured at an identical finalization flush.
fn run_solo(spec: &LaneSpec, trace: &Arc<SharedTrace>, end: Time, horizon: Time) -> LaneResult {
    let mut sys = builder(spec).build().expect("valid configuration");
    let (pids, probe) = add_processes(&mut sys, trace, end);
    sys.run_until(horizon);
    let ((), metrics) = lh_obs::record(|| sys.flush_obs());
    collect(&sys, &pids, probe, metrics)
}

/// All `specs` as one lane batch over the shared wake heap.
fn run_batch(
    specs: &[LaneSpec],
    trace: &Arc<SharedTrace>,
    end: Time,
    horizon: Time,
) -> Vec<LaneResult> {
    let mut batch = LaneBatch::new();
    let mut lane_pids = Vec::new();
    for spec in specs {
        let lane = batch
            .push_lane(builder(spec), horizon)
            .expect("valid configuration");
        let (pids, probe) = add_processes(batch.lane_mut(lane), trace, end);
        lane_pids.push((lane, pids, probe));
    }
    batch.run();
    lane_pids
        .into_iter()
        .map(|(lane, pids, probe)| {
            collect(batch.lane(lane), &pids, probe, batch.metrics(lane).clone())
        })
        .collect()
}

fn assert_lane_eq(got: &LaneResult, want: &LaneResult, what: &str) {
    assert_eq!(got.ctrl, want.ctrl, "{what}: controller stats diverged");
    assert_eq!(got.defense, want.defense, "{what}: defense stats diverged");
    assert_eq!(got.cores, want.cores, "{what}: per-core results diverged");
    assert_eq!(got.probe, want.probe, "{what}: latency trace diverged");
    assert_eq!(got.metrics, want.metrics, "{what}: obs counters diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// lanes=K ≡ lanes=1 over random (defense, NRH, mitigation-stack)
    /// lane sets: every lane of a K-lane batch equals the same cell run
    /// alone on the legacy service path.
    #[test]
    fn lanes_k_equal_lanes_1(
        lanes in proptest::collection::vec((0usize..7, 0usize..5, 0usize..5), 1..4),
    ) {
        let specs: Vec<LaneSpec> = lanes
            .iter()
            .map(|&(k, n, m)| LaneSpec {
                defense: defense_pool(k, n),
                mitigations: mitigation_pool(m),
            })
            .collect();
        let trace = shared_trace();
        let end = Time::ZERO + Span::from_us(SPAN_US);
        let horizon = end + Span::from_us(5);
        let batched = run_batch(&specs, &trace, end, horizon);
        for (i, (spec, got)) in specs.iter().zip(&batched).enumerate() {
            let solo = run_solo(spec, &trace, end, horizon);
            assert_lane_eq(got, &solo, &format!("lane {i} ({:?})", spec.defense.kind));
        }
    }
}

/// The degenerate single-lane batch is not a special case: it must be
/// byte-identical to the solo legacy run too.
#[test]
fn degenerate_single_lane_batch_matches_solo() {
    let spec = LaneSpec {
        defense: DefenseConfig::for_threshold(DefenseKind::Prac, 512, &DramTiming::ddr5_4800()),
        mitigations: vec![],
    };
    let trace = shared_trace();
    let end = Time::ZERO + Span::from_us(SPAN_US);
    let horizon = end + Span::from_us(5);
    let batched = run_batch(std::slice::from_ref(&spec), &trace, end, horizon);
    assert_eq!(batched.len(), 1);
    let solo = run_solo(&spec, &trace, end, horizon);
    assert_lane_eq(&batched[0], &solo, "degenerate single-lane batch");
}

/// Twin lanes exercise the heap's tie-break (identical configurations
/// produce equal wake times at every step, so every pop is a tie
/// resolved by lane index): both lanes must match the solo run exactly,
/// and a second batch run must reproduce the first bit for bit.
#[test]
fn twin_lanes_tie_break_deterministically() {
    let twin = LaneSpec {
        defense: DefenseConfig::for_threshold(DefenseKind::FrRfm, 256, &DramTiming::ddr5_4800()),
        mitigations: vec![MitigationConfig::batch(Span::from_us(1))],
    };
    let specs = vec![twin.clone(), twin.clone()];
    let trace = shared_trace();
    let end = Time::ZERO + Span::from_us(SPAN_US);
    let horizon = end + Span::from_us(5);
    let first = run_batch(&specs, &trace, end, horizon);
    let solo = run_solo(&twin, &trace, end, horizon);
    assert_lane_eq(&first[0], &solo, "twin lane 0");
    assert_lane_eq(&first[1], &solo, "twin lane 1");
    let second = run_batch(&specs, &trace, end, horizon);
    assert_eq!(
        first, second,
        "twin-lane batch must be run-to-run deterministic"
    );
}
