//! Schema test for the Chrome `trace_event` exporter: enables tracing,
//! runs a real experiment so the harness and simulator emit their
//! actual spans, exports the file `--trace-out` would write, and
//! validates every event against the `chrome://tracing` / Perfetto
//! contract with the repo's own JSON parser. Wall-clock spans are the
//! volatile sibling of the deterministic metrics channel — this pins
//! the one schema external tools consume.

use lh_harness::json::parse;
use lh_harness::{JobContext, Runner, RunnerOptions, ScaleLevel};

#[test]
fn exported_chrome_trace_matches_the_trace_event_schema() {
    lh_obs::trace::drain(); // start from an empty buffer
    lh_obs::trace::enable();

    let registry = leakyhammer::registry();
    let job = registry.get("fig2").expect("fig2 registered");
    let ctx = JobContext::new(ScaleLevel::Quick, 11);
    Runner::new(RunnerOptions {
        jobs: 2,
        ..Default::default()
    })
    .run(job, &ctx)
    .expect("traced run");

    let path = std::env::temp_dir().join(format!("lh-trace-schema-{}.json", std::process::id()));
    let exported = lh_obs::trace::export_chrome_trace(&path).expect("export");
    assert!(exported > 0, "a real run must emit spans");

    let text = std::fs::read_to_string(&path).expect("read back");
    std::fs::remove_file(&path).ok();
    let doc = parse(&text).expect("exporter must emit valid JSON");

    assert_eq!(
        doc["displayTimeUnit"].as_str(),
        Some("ms"),
        "Perfetto needs the display unit"
    );
    let events = doc["traceEvents"].as_array();
    assert_eq!(events.len(), exported, "one JSON event per drained span");

    let mut unit_spans = 0usize;
    for event in events {
        // The complete-event schema: every field Chrome requires, with
        // the right JSON types.
        assert_eq!(event["ph"].as_str(), Some("X"), "{event}");
        assert!(!event["name"].as_str().unwrap_or("").is_empty(), "{event}");
        assert!(!event["cat"].as_str().unwrap_or("").is_empty(), "{event}");
        for field in ["ts", "dur", "pid", "tid"] {
            assert!(
                event[field].as_u64().is_some(),
                "{field} must be an unsigned integer: {event}"
            );
        }
        assert_eq!(
            event["pid"].as_u64(),
            Some(u64::from(std::process::id())),
            "{event}"
        );
        if event["name"].as_str() == Some("unit.run") {
            assert_eq!(event["cat"].as_str(), Some("harness"), "{event}");
            unit_spans += 1;
        }
    }
    assert!(
        unit_spans >= 2,
        "the harness wraps each unit execution in a span: {events:?}"
    );
}
