//! # leakyhammer — covert and side channels from RowHammer defenses
//!
//! A full Rust reproduction of *"Understanding and Mitigating Covert
//! Channel and Side Channel Vulnerabilities Introduced by RowHammer
//! Defenses"* (MICRO 2025). This crate is the top of the stack: it wires
//! the substrate crates (DRAM device, memory controller, defenses,
//! system simulator, attacks, workloads, ML) into one runner per paper
//! experiment and formats results in the paper's units.
//!
//! * Covert channels over PRAC back-offs and PRFM RFM commands
//!   ([`experiment::covert`]), with noise and application-interference
//!   sweeps ([`experiment::noise_sweep`], [`experiment::app_noise`]);
//! * the website-fingerprinting side channel with eight from-scratch ML
//!   classifiers ([`experiment::fingerprint`]);
//! * the three countermeasures — FR-RFM, RIAC, Bank-Level PRAC — with
//!   capacity ([`experiment::countermeasures`]) and performance
//!   ([`experiment::perf`]) evaluations.
//!
//! ## Quickstart
//!
//! ```
//! use leakyhammer::experiment::covert::{run_covert, ChannelKind, CovertOptions};
//! use lh_analysis::message::bits_of_str;
//!
//! // Transmit "MICRO" over the PRAC back-off channel (Fig. 3).
//! let opts = CovertOptions::new(ChannelKind::Prac, bits_of_str("MI"));
//! let out = run_covert(&opts);
//! assert_eq!(out.decoded, opts.bits);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiment;
pub mod registry;
pub mod report;
mod scale;

pub use registry::registry;
pub use scale::Scale;

// Re-export the substrate crates so downstream users need only one
// dependency.
pub use lh_analysis as analysis;
pub use lh_attacks as attacks;
pub use lh_defenses as defenses;
pub use lh_dram as dram;
pub use lh_memctrl as memctrl;
pub use lh_ml as ml;
pub use lh_sim as sim;
pub use lh_workloads as workloads;
