//! Multibit covert channels (§6.3): ternary and quaternary symbol
//! transmission over the PRAC back-off channel.
//!
//! Since the `lh-link` refactor this experiment is two link-layer
//! configurations rather than a bespoke sender/receiver pair: the
//! binary row is on/off keying with the identity codec, the
//! power-of-two rows are multi-level amplitude modulation with the
//! identity codec, and the ternary row drives the same wire in the
//! symbol domain (its alphabet carries no whole number of bits). All
//! rows share the link pipeline's calibration and preamble
//! synchronization, so the reported rates include the sync overhead a
//! real deployment pays.

use serde::{Deserialize, Serialize};

use lh_analysis::{bits_of_str, bits_to_symbols, channel_capacity};
use lh_defenses::{DefenseConfig, DefenseKind};
use lh_dram::{DramTiming, Span};
use lh_link::{
    calibrate, transmit_message, transmit_payload, LinkConfig, LinkTuning, Modulator,
    MultiLevelAmplitude, OnOffKeying, Plain, PreambleSync,
};

/// Outcome of a multibit transmission (one row of the §6.3 comparison).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MultibitOutcome {
    /// Symbol alphabet size (2, 3 or 4).
    pub base: u8,
    /// Raw bit rate in Kbps, preamble overhead included.
    pub raw_kbps: f64,
    /// Symbol error probability.
    pub error_probability: f64,
    /// Channel capacity in Kbps (Eq. 1 applied to the raw bit rate).
    pub capacity_kbps: f64,
}

/// The link configuration every §6.3 row runs: the paper's PRAC
/// channel (`NBO` = 128), Barker-7 synchronization, a 2-window
/// receiver lead for the synchronizer to recover.
fn link_config(seed: u64) -> LinkConfig {
    let timing = DramTiming::ddr5_4800();
    LinkConfig {
        defense: DefenseConfig::prac(128),
        mitigations: Vec::new(),
        tuning: LinkTuning::for_defense(DefenseKind::Prac, &timing, Span::from_ns(30)),
        sync: PreambleSync::barker7(4),
        noise_intensity: None,
        rx_lead_windows: 2,
        seed,
    }
}

/// The §6.3 message: `message_bytes` of the repeating payload text.
fn message_bits(message_bytes: usize) -> Vec<u8> {
    let text: String = "LeakyHammerMultibitPayload-0123456789abcdef"
        .chars()
        .cycle()
        .take(message_bytes)
        .collect();
    bits_of_str(&text)
}

/// Runs the §6.3 multibit experiment for `base` transmitting
/// `message_bytes` bytes (the paper uses 32-byte messages).
pub fn run_multibit(base: u8, message_bytes: usize, seed: u64) -> MultibitOutcome {
    let cfg = link_config(seed);
    let bits = message_bits(message_bytes);
    match base {
        2 => {
            let cal = calibrate(&cfg, &OnOffKeying, 6);
            let out = transmit_message(&cfg, &OnOffKeying, &Plain, &cal, &bits);
            MultibitOutcome {
                base,
                raw_kbps: out.result.raw_kbps(),
                error_probability: out.result.error_probability().min(0.5),
                capacity_kbps: out.result.capacity_kbps(),
            }
        }
        4 => {
            let m = MultiLevelAmplitude::new(4);
            let cal = calibrate(&cfg, &m, 6);
            let out = transmit_message(&cfg, &m, &Plain, &cal, &bits);
            MultibitOutcome {
                base,
                raw_kbps: out.result.raw_kbps(),
                error_probability: out.result.error_probability().min(0.5),
                capacity_kbps: out.result.capacity_kbps(),
            }
        }
        3 => run_ternary(&cfg, &bits),
        _ => panic!("supported bases: 2, 3, 4"),
    }
}

/// The ternary row: base-4 symbol stream folded into {0, 1, 2} (the
/// paper's 1.58 bits/symbol approximated by `log2(3)`), transmitted
/// over the shared synchronized wire and demodulated window by window.
fn run_ternary(cfg: &LinkConfig, bits: &[u8]) -> MultibitOutcome {
    let m = MultiLevelAmplitude::new(3);
    let cal = calibrate(cfg, &m, 6);
    let symbols: Vec<u8> = bits_to_symbols(bits, 4).iter().map(|&s| s % 3).collect();

    let payload = transmit_payload(cfg, &m, &cal, &symbols);
    let decoded: Vec<u8> = payload
        .observations
        .iter()
        .map(|o| m.symbol_of(o, &cal.bins))
        .collect();

    let errors = symbols.iter().zip(&decoded).filter(|(a, b)| a != b).count();
    let e = (errors as f64 / symbols.len().max(1) as f64).min(0.5);
    let raw_bps = m.bits_per_window() * symbols.len() as f64 / payload.seconds;
    MultibitOutcome {
        base: 3,
        raw_kbps: raw_bps / 1e3,
        error_probability: e,
        capacity_kbps: channel_capacity(raw_bps, e) / 1e3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_multibit_matches_the_plain_channel_minus_sync_overhead() {
        let out = run_multibit(2, 6, 11);
        // 48 payload windows + 7 preamble windows at 25 µs: the raw
        // rate is 40 Kbps scaled by 48/55.
        let expected = 40.0 * 48.0 / 55.0;
        assert!(
            (out.raw_kbps - expected).abs() < 0.5,
            "raw {} vs expected {expected}",
            out.raw_kbps
        );
        assert!(out.error_probability < 0.1, "e {}", out.error_probability);
    }

    #[test]
    fn quaternary_doubles_raw_rate_with_more_errors() {
        let bin = run_multibit(2, 6, 12);
        let quad = run_multibit(4, 6, 12);
        // 2x per payload window, diluted because the fixed-length
        // preamble weighs more against the shorter transmission
        // (48/55 vs 24/31 duty): 61.9 vs 34.9 Kbps at 6 bytes.
        assert!(
            quad.raw_kbps > 1.7 * bin.raw_kbps,
            "quaternary raw {} must be ~2x binary {}",
            quad.raw_kbps,
            bin.raw_kbps
        );
        assert!(
            quad.error_probability >= bin.error_probability,
            "quaternary e {} must be ≥ binary e {}",
            quad.error_probability,
            bin.error_probability
        );
    }

    #[test]
    fn ternary_rate_sits_between_binary_and_quaternary() {
        let tern = run_multibit(3, 6, 13);
        assert_eq!(tern.base, 3);
        assert!(tern.raw_kbps > 0.0);
        assert!(tern.error_probability <= 0.5);
        assert!(tern.capacity_kbps <= tern.raw_kbps);
    }

    #[test]
    #[should_panic]
    fn unsupported_base_panics() {
        let _ = run_multibit(5, 2, 1);
    }
}
