//! A hand-rolled JSON value type with an exact-round-trip writer and
//! parser.
//!
//! The repository intentionally has no external dependencies, so this
//! module is the serialization substrate for the harness: experiment
//! results are built as [`Json`] values, cached to disk as JSON text,
//! and read back bit-identically. `f64` values are written with Rust's
//! shortest-round-trip formatting (plus a trailing `.0` when the value
//! is integral), so `parse(write(x)) == x` for every finite float.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
///
/// Objects preserve insertion order so rendered output is deterministic
/// and diffs stay readable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer, stored as `i128` so the full `u64` range
    /// (derived seeds) round-trips losslessly.
    Int(i128),
    /// A finite double. Non-finite values must not be stored; use
    /// [`Json::from_f64`] to map them to `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Builder-style field insertion (replaces an existing key).
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        self.set(key, value);
        self
    }

    /// Inserts or replaces `key` in an object. Panics on non-objects.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) {
        match self {
            Json::Object(fields) => {
                let value = value.into();
                if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    fields.push((key.to_owned(), value));
                }
            }
            other => panic!("Json::set on non-object {other:?}"),
        }
    }

    /// Field lookup; returns [`Json::Null`] for missing keys or
    /// non-objects.
    pub fn get(&self, key: &str) -> &Json {
        const NULL: Json = Json::Null;
        match self {
            Json::Object(fields) => fields
                .iter()
                .find_map(|(k, v)| (k == key).then_some(v))
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// The value as f64 (ints are widened); `None` otherwise.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as i64; `None` for non-integers and out-of-range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as u64; `None` for negatives and non-integers.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as &str; `None` otherwise.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as bool; `None` otherwise.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements if this is an array, else an empty slice.
    pub fn as_array(&self) -> &[Json] {
        match self {
            Json::Array(items) => items,
            _ => &[],
        }
    }

    /// The fields if this is an object, else an empty slice.
    pub fn as_object(&self) -> &[(String, Json)] {
        match self {
            Json::Object(fields) => fields,
            _ => &[],
        }
    }

    /// Maps non-finite floats to `null` instead of panicking.
    pub fn from_f64(f: f64) -> Json {
        if f.is_finite() {
            Json::Float(f)
        } else {
            Json::Null
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{i}"));
            }
            Json::Float(f) => out.push_str(&format_f64(*f)),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1)
            }),
            Json::Object(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1)
                })
            }
        }
    }
}

/// Formats a finite f64 so it parses back bit-identically and always
/// reads as a float (`40` becomes `40.0`).
fn format_f64(f: f64) -> String {
    assert!(f.is_finite(), "non-finite float in Json::Float");
    let s = format!("{f}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v.into())
    }
}

impl From<i32> for Json {
    fn from(v: i32) -> Json {
        Json::Int(v.into())
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Int(v.into())
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Int(v.into())
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Int(v as i128)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::from_f64(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_owned())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Array(v.into_iter().map(Into::into).collect())
    }
}

impl std::ops::Index<&str> for Json {
    type Output = Json;

    fn index(&self, key: &str) -> &Json {
        self.get(key)
    }
}

impl std::ops::Index<usize> for Json {
    type Output = Json;

    fn index(&self, idx: usize) -> &Json {
        const NULL: Json = Json::Null;
        self.as_array().get(idx).unwrap_or(&NULL)
    }
}

/// A JSON parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("surrogate \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("invalid float"))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| self.err("invalid integer"))
        }
    }
}

/// Deterministically sorts object keys (for fingerprinting tests).
pub fn sort_keys(value: &Json) -> Json {
    match value {
        Json::Object(fields) => {
            let sorted: BTreeMap<&String, &Json> = fields.iter().map(|(k, v)| (k, v)).collect();
            Json::Object(
                sorted
                    .into_iter()
                    .map(|(k, v)| (k.clone(), sort_keys(v)))
                    .collect(),
            )
        }
        Json::Array(items) => Json::Array(items.iter().map(sort_keys).collect()),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_round_trip_exactly() {
        for &f in &[0.1, 1.0 / 3.0, 40.0, -2.5e-7, 1e300, f64::MIN_POSITIVE, 0.0] {
            let v = Json::Float(f);
            let back = parse(&v.to_compact()).unwrap();
            match back {
                Json::Float(g) => assert_eq!(f.to_bits(), g.to_bits(), "{f}"),
                other => panic!("{f} parsed as {other:?}"),
            }
        }
    }

    #[test]
    fn documents_round_trip() {
        let doc = Json::object()
            .with("id", "fig4")
            .with("n", 3i64)
            .with("e", 0.125)
            .with("flags", Json::Array(vec![Json::Bool(true), Json::Null]))
            .with("nested", Json::object().with("s", "a \"quoted\"\nline"));
        for text in [doc.to_compact(), doc.to_pretty()] {
            assert_eq!(parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn indexing_is_total() {
        let doc = Json::object().with("points", Json::Array(vec![Json::Int(4)]));
        assert_eq!(doc["points"][0].as_i64(), Some(4));
        assert_eq!(doc["missing"]["also missing"][7], Json::Null);
    }

    #[test]
    fn parse_errors_carry_position() {
        let err = parse("{\"a\": }").unwrap_err();
        assert_eq!(err.offset, 6);
        assert!(parse("[1, 2").is_err());
        assert!(parse("01x").is_err());
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::from_f64(f64::NAN), Json::Null);
        assert_eq!(Json::from_f64(f64::INFINITY), Json::Null);
    }
}
