//! Property-based tests on the memory controller: progress, exactly-once
//! completion, and latency sanity for arbitrary request batches under
//! every defense family.

use proptest::prelude::*;

use lh_defenses::DefenseConfig;
use lh_dram::{BankId, DeviceConfig, DramAddr, DramTiming, Geometry, Span, Time};
use lh_memctrl::{AccessKind, CtrlConfig, MemRequest, MemoryController};

/// Builds a controller over the tiny geometry with the given defense.
fn controller(defense: DefenseConfig, seed: u64) -> MemoryController {
    let mut dev = DeviceConfig::paper_default();
    dev.geometry = Geometry::tiny();
    MemoryController::new(CtrlConfig::paper_default(), dev, defense, seed).unwrap()
}

/// A compact encoding of a request: (bank-group, bank, row, col, read?,
/// arrival offset in ns).
type ReqSpec = (u32, u32, u32, u32, bool, u64);

fn defense_of(sel: u8) -> DefenseConfig {
    match sel % 5 {
        0 => DefenseConfig::none(),
        1 => DefenseConfig::prac(64),
        2 => DefenseConfig::prfm(16),
        3 => DefenseConfig::fr_rfm(16, DramTiming::ddr5_4800().t_rc),
        _ => DefenseConfig::graphene(256, &DramTiming::ddr5_4800()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every accepted request completes exactly once, with a sane latency
    /// (at least the device's column latency, completion after arrival),
    /// under every defense family.
    #[test]
    fn all_requests_complete_exactly_once(
        specs in proptest::collection::vec(
            (0u32..2, 0u32..2, 0u32..32, 0u32..16, any::<bool>(), 0u64..40_000),
            1..60,
        ),
        defense_sel in 0u8..5,
    ) {
        let mut mc = controller(defense_of(defense_sel), 7);
        let g = Geometry::tiny();
        let mut reqs: Vec<MemRequest> = specs
            .iter()
            .enumerate()
            .map(|(i, &(bg, b, row, col, read, at)): (usize, &ReqSpec)| MemRequest {
                id: i as u64,
                addr: DramAddr::new(
                    BankId::new(0, 0, bg % g.bank_groups_per_rank(), b % g.banks_per_group()),
                    row % g.rows_per_bank(),
                    col,
                ),
                kind: if read { AccessKind::Read } else { AccessKind::Write },
                arrival: Time::ZERO + Span::from_ns(at),
                source: 0,
            })
            .collect();
        reqs.sort_by_key(|r| r.arrival);

        let mut now = Time::ZERO;
        let mut done: Vec<(u64, Time, Time, AccessKind)> = Vec::new();
        let mut pending = reqs.into_iter().peekable();
        let deadline = Time::from_us(4_000);
        let mut outstanding = 0usize;
        while (pending.peek().is_some() || outstanding > 0) && now < deadline {
            while let Some(r) = pending.peek() {
                if r.arrival <= now {
                    let r = pending.next().unwrap();
                    match mc.enqueue(r) {
                        Ok(()) => outstanding += 1,
                        Err(_r) => {
                            // Queue full: drop from this test's stream
                            // (back-pressure is exercised elsewhere).
                        }
                    }
                } else {
                    break;
                }
            }
            let next = mc.service(now);
            for c in mc.take_completed() {
                done.push((c.id, c.arrival, c.finished, c.kind));
                outstanding -= 1;
            }
            let next_arrival = pending.peek().map(|r| r.arrival).unwrap_or(Time::MAX);
            now = next.min(next_arrival).max(now + Span::from_ps(1));
        }
        prop_assert_eq!(outstanding, 0, "requests stuck at {}", now);

        // Exactly-once, and sane latencies.
        let mut ids: Vec<u64> = done.iter().map(|d| d.0).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), done.len(), "duplicate completions");
        let t = mc.device().timing();
        for &(id, arrival, finished, kind) in &done {
            prop_assert!(finished > arrival, "req {id} finished before arrival");
            // Reads cannot beat the read column latency; writes complete
            // at the (shorter) write-data end.
            let min_latency = match kind {
                AccessKind::Read => t.read_latency(),
                AccessKind::Write => t.t_cwl + t.t_burst,
            };
            prop_assert!(
                finished - arrival >= min_latency,
                "req {id} latency {} below column latency {}",
                finished - arrival,
                min_latency
            );
        }
    }

    /// The controller's service() always returns a strictly increasing
    /// wake time (no livelock), even while idle.
    #[test]
    fn service_always_advances(defense_sel in 0u8..5, steps in 1usize..50) {
        let mut mc = controller(defense_of(defense_sel), 3);
        let mut now = Time::ZERO;
        for _ in 0..steps {
            let next = mc.service(now);
            prop_assert!(next > now, "service must move time forward");
            now = next;
        }
    }
}
