//! The website-fingerprinting side channel (§8): Figs. 9 and 10, Table 2.
//!
//! For each website, the browser profile loads while the Listing-2 probe
//! runs on another core; the probe's back-off trace becomes a
//! [`Fingerprint`] whose features feed the eight Fig. 10 classifiers.

use serde::{Deserialize, Serialize};

use lh_attacks::{ChannelLayout, Fingerprint, FingerprintProbe, LatencyClassifier};
use lh_defenses::{DefenseConfig, DefenseKind};
use lh_dram::{DramTiming, Span, Time};
use lh_ml::{cross_validate, model_zoo, CvScores, Dataset};
use lh_sim::{BopConfig, CacheConfig, SimConfig, SystemBuilder};
use lh_workloads::{BrowserProcess, WebsiteProfile};

use crate::Scale;

/// Feature-vector window count (execution windows of Fig. 9).
pub const FEATURE_WINDOWS: usize = 12;

/// One collected trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CollectedTrace {
    /// Website index (label).
    pub site: usize,
    /// The back-off fingerprint.
    pub fingerprint: Fingerprint,
}

/// Options for trace collection.
#[derive(Debug, Clone)]
pub struct CollectOptions {
    /// How many sites and traces per site.
    pub sites: usize,
    /// Traces per site.
    pub traces_per_site: usize,
    /// Load duration per trace.
    pub load_span: Span,
    /// Cache hierarchy (Table 1 default or §10.3 large).
    pub caches: CacheConfig,
    /// Optional prefetcher (§10.3).
    pub prefetch: Option<BopConfig>,
    /// Whether a SPEC-like co-runner adds noise (§8 noise study).
    pub background_noise: bool,
    /// Seed.
    pub seed: u64,
}

impl CollectOptions {
    /// Options for `scale`.
    pub fn for_scale(scale: Scale, seed: u64) -> CollectOptions {
        let (sites, traces_per_site) = scale.fingerprint_shape();
        CollectOptions {
            sites,
            traces_per_site,
            load_span: Span::from_us(scale.load_span_us()),
            caches: CacheConfig::paper_default(),
            prefetch: None,
            background_noise: false,
            seed,
        }
    }
}

/// Collects one fingerprint: browser load + probe in one system.
pub fn collect_one(site: usize, trace_seed: u64, opts: &CollectOptions) -> Fingerprint {
    // §8 evaluates at NRH = 64.
    let defense = DefenseConfig::for_threshold(DefenseKind::Prac, 64, &DramTiming::ddr5_4800());
    let think = Span::from_ns(30);
    let nbo = defense.prac.expect("PRAC enabled").nbo;
    let sim = SimConfig::paper_default(defense);
    let cls = LatencyClassifier::from_timing(&sim.device.timing, think);
    let mut sys = SystemBuilder::from_config(sim)
        .caches(opts.caches)
        .prefetcher(opts.prefetch)
        .seed(trace_seed)
        .build()
        .expect("valid configuration");
    let layout = ChannelLayout::default_bank(sys.mapping());
    let browser = BrowserProcess::new(
        WebsiteProfile::of_site(site),
        *sys.mapping(),
        trace_seed,
        Time::ZERO,
        opts.load_span,
    );
    let probe = FingerprintProbe::new(
        vec![layout.receiver_row, layout.noise_rows[0]],
        nbo.saturating_sub(1).max(1),
        think,
        Time::ZERO + opts.load_span,
    );
    sys.add_process(Box::new(browser), 1, Time::ZERO);
    let probe_id = sys.add_process(Box::new(probe), 1, Time::ZERO);
    if opts.background_noise {
        let mapping = *sys.mapping();
        let app = lh_workloads::SyntheticApp::new(
            lh_workloads::AppProfile::category(lh_workloads::Intensity::Medium),
            mapping,
            trace_seed ^ 0xBB,
            Time::ZERO + opts.load_span,
        );
        let mlp = app.mlp();
        sys.add_process(Box::new(app), mlp, Time::ZERO);
    }
    sys.run_until(Time::ZERO + opts.load_span + Span::from_us(10));
    let trace = sys
        .process_as::<FingerprintProbe>(probe_id)
        .expect("probe present")
        .trace();
    Fingerprint::from_trace(trace, &cls, Time::ZERO, opts.load_span)
}

/// Collects the full dataset.
pub fn collect_dataset(opts: &CollectOptions) -> Vec<CollectedTrace> {
    let mut out = Vec::new();
    for site in 0..opts.sites {
        for t in 0..opts.traces_per_site {
            let trace_seed = opts.seed ^ ((site as u64) << 24) ^ (t as u64);
            out.push(CollectedTrace {
                site,
                fingerprint: collect_one(site, trace_seed, opts),
            });
        }
    }
    out
}

/// Converts collected traces into an ML dataset (standardized features).
pub fn to_dataset(traces: &[CollectedTrace]) -> Dataset {
    let features: Vec<Vec<f64>> = traces
        .iter()
        .map(|t| t.fingerprint.features(FEATURE_WINDOWS))
        .collect();
    let labels: Vec<usize> = traces.iter().map(|t| t.site).collect();
    let mut d = Dataset::new(features, labels);
    d.standardize();
    d
}

/// Fig. 10: per-model test accuracy via k-fold cross-validation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassifierAccuracy {
    /// Model name.
    pub model: String,
    /// Mean CV accuracy.
    pub accuracy: f64,
}

/// Runs the Fig. 10 model comparison on a collected dataset.
pub fn run_model_comparison(data: &Dataset, folds: usize, seed: u64) -> Vec<ClassifierAccuracy> {
    model_zoo()
        .into_iter()
        .map(|mut model| {
            let scores = cross_validate(model.as_mut(), data, folds, seed);
            ClassifierAccuracy {
                model: model.name().to_owned(),
                accuracy: scores.accuracy,
            }
        })
        .collect()
}

/// Table 2: 10-fold CV scores of the best model (decision tree).
pub fn run_table2(data: &Dataset, seed: u64) -> CvScores {
    let mut tree = lh_ml::DecisionTree::new(lh_ml::TreeConfig::default());
    cross_validate(&mut tree, data, 10, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> CollectOptions {
        let mut o = CollectOptions::for_scale(Scale::Quick, 42);
        o.sites = 3;
        o.traces_per_site = 8;
        o
    }

    #[test]
    fn browser_loads_produce_nonempty_fingerprints() {
        let opts = quick_opts();
        let fp = collect_one(0, 1, &opts);
        assert!(
            !fp.events.is_empty(),
            "a website load at NRH=64 must trigger observable back-offs"
        );
    }

    #[test]
    fn fingerprints_are_site_stable_and_site_distinct() {
        let opts = quick_opts();
        // Two traces of the same site: similar back-off counts.
        let a1 = collect_one(1, 10, &opts).events.len() as f64;
        let a2 = collect_one(1, 11, &opts).events.len() as f64;
        // A different site: different count (site 2 has a different
        // phase profile).
        let b = collect_one(2, 10, &opts).events.len() as f64;
        let within = (a1 - a2).abs();
        let across = (a1 - b).abs();
        assert!(
            within <= across + 3.0,
            "same-site traces ({a1}, {a2}) should be closer than cross-site ({b})"
        );
    }

    #[test]
    fn classifier_beats_random_guessing_on_quick_dataset() {
        let opts = quick_opts();
        let traces = collect_dataset(&opts);
        assert_eq!(traces.len(), 24);
        let data = to_dataset(&traces);
        let scores = run_table2(&data, 3);
        let random = 1.0 / 3.0;
        assert!(
            scores.accuracy > random + 0.1,
            "decision tree accuracy {} vs random {random}",
            scores.accuracy
        );
    }
}
