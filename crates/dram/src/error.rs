//! Error types for the DRAM model.

use core::fmt;

use crate::command::Command;
use crate::time::Time;

/// Errors produced by the DRAM device model.
///
/// Most variants indicate a *controller* bug: the device model refuses
/// commands that violate the DDR5 protocol instead of silently mis-modelling
/// them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DramError {
    /// A geometry dimension was zero.
    InvalidGeometry,
    /// A timing relation does not hold; the string names the relation.
    InvalidTiming {
        /// The violated relation, e.g. `"t_rc >= t_ras + t_rp"`.
        relation: String,
    },
    /// The command targets a bank/row/column outside the device geometry.
    AddressOutOfRange {
        /// The offending command.
        command: Command,
    },
    /// The command was issued before its earliest legal issue time.
    TimingViolation {
        /// The offending command.
        command: Command,
        /// When the command was issued.
        issued_at: Time,
        /// The earliest instant the command would have been legal.
        earliest: Time,
    },
    /// The command is illegal in the bank's current state (e.g. `ACT` to an
    /// open bank, or `RD` to a closed one).
    ProtocolViolation {
        /// The offending command.
        command: Command,
        /// Human-readable description of the state conflict.
        reason: &'static str,
    },
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramError::InvalidGeometry => write!(f, "geometry dimensions must be non-zero"),
            DramError::InvalidTiming { relation } => {
                write!(f, "timing relation violated: {relation}")
            }
            DramError::AddressOutOfRange { command } => {
                write!(f, "address out of range for command {command:?}")
            }
            DramError::TimingViolation {
                command,
                issued_at,
                earliest,
            } => write!(
                f,
                "command {command:?} issued at {issued_at} before earliest legal time {earliest}"
            ),
            DramError::ProtocolViolation { command, reason } => {
                write!(f, "protocol violation for {command:?}: {reason}")
            }
        }
    }
}

impl std::error::Error for DramError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::BankId;

    #[test]
    fn errors_are_send_sync_and_display() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DramError>();
        let err = DramError::ProtocolViolation {
            command: Command::Precharge {
                bank: BankId::default(),
            },
            reason: "bank already closed",
        };
        assert!(err.to_string().contains("protocol violation"));
        assert!(!format!("{err:?}").is_empty());
    }
}
