//! Property-based tests on the from-scratch ML stack.

use proptest::prelude::*;

use lh_ml::{accuracy, stratified_kfold, Classifier, ConfusionMatrix, DecisionTree, TreeConfig};

/// Distinct feature rows with arbitrary labels.
fn distinct_dataset() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<usize>)> {
    proptest::collection::vec((0i32..1000, 0usize..4), 2..40).prop_map(|pairs| {
        let mut seen = std::collections::HashSet::new();
        let mut x = Vec::new();
        let mut y = Vec::new();
        for (f, label) in pairs {
            if seen.insert(f) {
                x.push(vec![f as f64, (f * 7 % 13) as f64]);
                y.push(label);
            }
        }
        (x, y)
    })
}

proptest! {
    /// An unbounded decision tree memorizes any training set whose
    /// feature rows are distinct.
    #[test]
    fn unbounded_tree_fits_training_data((x, y) in distinct_dataset()) {
        prop_assume!(x.len() >= 2);
        let mut tree = DecisionTree::new(TreeConfig {
            max_depth: usize::MAX,
            min_samples_split: 2,
            ..TreeConfig::default()
        });
        tree.fit(&x, &y, 4);
        let pred = tree.predict_batch(&x);
        prop_assert_eq!(pred, y);
    }

    /// Accuracy and the confusion-matrix derived scores stay in [0, 1],
    /// and all-correct predictions score exactly 1.
    #[test]
    fn metric_ranges(
        truth in proptest::collection::vec(0usize..4, 1..64),
        flips in proptest::collection::vec(any::<bool>(), 1..64),
    ) {
        let pred: Vec<usize> = truth
            .iter()
            .zip(flips.iter().cycle())
            .map(|(&t, &f)| if f { (t + 1) % 4 } else { t })
            .collect();
        let a = accuracy(&truth, &pred);
        prop_assert!((0.0..=1.0).contains(&a));
        let cm = ConfusionMatrix::new(&truth, &pred, 4);
        for c in 0..4 {
            for v in [cm.precision(c), cm.recall(c), cm.f1(c)] {
                prop_assert!((0.0..=1.0).contains(&v), "class {c}: {v}");
            }
        }
        prop_assert!((0.0..=1.0).contains(&cm.macro_f1()));
        prop_assert_eq!(accuracy(&truth, &truth), 1.0);
    }

    /// Stratified k-fold: test folds partition the index set (every index
    /// appears in exactly one test fold) and train/test are disjoint.
    #[test]
    fn kfold_partitions_indices(
        labels in proptest::collection::vec(0usize..3, 12..60),
        k in 2usize..6,
        seed in any::<u64>(),
    ) {
        let folds = stratified_kfold(&labels, k, seed);
        prop_assert_eq!(folds.len(), k);
        let mut seen = vec![0u32; labels.len()];
        for (train, test) in &folds {
            for &i in test {
                seen[i] += 1;
            }
            let train_set: std::collections::HashSet<_> = train.iter().collect();
            for i in test {
                prop_assert!(!train_set.contains(i), "index {i} in both folds");
            }
            prop_assert_eq!(train.len() + test.len(), labels.len());
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "indices not partitioned: {seen:?}");
    }

    /// Stratification keeps every class represented in every training
    /// fold when the class is frequent enough.
    #[test]
    fn kfold_stratifies_frequent_classes(k in 2usize..5, seed in any::<u64>()) {
        // 10 samples of each of 3 classes.
        let labels: Vec<usize> = (0..30).map(|i| i % 3).collect();
        for (train, _) in stratified_kfold(&labels, k, seed) {
            for class in 0..3 {
                prop_assert!(
                    train.iter().any(|&i| labels[i] == class),
                    "class {class} missing from a training fold"
                );
            }
        }
    }
}
