//! Deterministic named counters with scoped per-unit collection.
//!
//! A [`Counter`] is a named, monotonically increasing `u64`. Increments
//! land in the *metric scope* installed on the current thread (if any);
//! with no scope installed every increment is a branch-and-return — the
//! zero-cost-when-disabled contract that lets hot simulator paths carry
//! permanent instrumentation.
//!
//! Scopes nest per thread: [`record`] installs a fresh scope, runs a
//! closure, and returns whatever the closure produced alongside the
//! [`Metrics`] it accumulated. The harness wraps every experiment-unit
//! execution this way, so counters flushed by the simulator attribute
//! to exactly one unit no matter how many worker threads run units
//! concurrently.
//!
//! Determinism contract: counter values must be a pure function of the
//! computation being measured — simulated event counts, command tallies,
//! cache probe outcomes — never wall-clock time, pointer values, or
//! scheduling order. Wall-clock data belongs in [`crate::trace`] spans,
//! which are kept strictly apart from these metrics so cached results
//! and distributed runs stay byte-identical.

use std::cell::RefCell;
use std::collections::BTreeMap;

/// A fixed-bucket distribution of `u64` samples.
///
/// Buckets are powers of two: sample `0` lands in bucket exponent `0`,
/// and any other sample `v` lands in exponent `64 - v.leading_zeros()`,
/// i.e. exponent `e >= 1` covers `[2^(e-1), 2^e)`. The bucket layout is
/// a pure function of the sample values — no configuration, no
/// adaptive resizing — so two histograms built from the same samples
/// in any order are identical, which is what lets them ride cache
/// entries and distributed-run envelopes byte for byte like counters
/// do. Sparse storage: only exponents that received samples appear.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Hist {
    count: u64,
    sum: u64,
    buckets: BTreeMap<u32, u64>,
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Hist {
        Hist::default()
    }

    /// Reassembles a histogram from serialized parts — deserializer
    /// support, the inverse of reading [`Hist::count`] /
    /// [`Hist::sum`] / [`Hist::buckets`]. Empty buckets are dropped so
    /// the result is canonical.
    pub fn from_parts(count: u64, sum: u64, buckets: impl IntoIterator<Item = (u32, u64)>) -> Hist {
        Hist {
            count,
            sum,
            buckets: buckets.into_iter().filter(|(_, n)| *n > 0).collect(),
        }
    }

    /// The bucket exponent sample `v` lands in.
    pub fn bucket_of(v: u64) -> u32 {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros()
        }
    }

    /// The largest sample value bucket exponent `exp` can hold
    /// (`2^exp - 1`; exponent 0 holds only the value 0). This is the
    /// inclusive upper bound a Prometheus `le` label renders.
    pub fn bucket_bound(exp: u32) -> u64 {
        match exp {
            0 => 0,
            1..=63 => (1u64 << exp) - 1,
            _ => u64::MAX,
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(v);
        *self.buckets.entry(Hist::bucket_of(v)).or_insert(0) += 1;
    }

    /// Folds another histogram into this one, bucket by bucket.
    pub fn merge(&mut self, other: &Hist) {
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        for (exp, n) in &other.buckets {
            let slot = self.buckets.entry(*exp).or_insert(0);
            *slot = slot.saturating_add(*n);
        }
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Iterates `(exponent, sample_count)` in exponent order over the
    /// non-empty buckets.
    pub fn buckets(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.buckets.iter().map(|(e, n)| (*e, *n))
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// An upper bound on the `q`-quantile (`0.0..=1.0`): the inclusive
    /// bound of the first bucket whose cumulative count reaches
    /// `ceil(q * count)`. Power-of-two buckets make this coarse — it
    /// answers "no more than" questions, which is what report tables
    /// need — and exact in count space, so it is as deterministic as
    /// the histogram itself. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (exp, n) in &self.buckets {
            seen = seen.saturating_add(*n);
            if seen >= target {
                return Hist::bucket_bound(*exp);
            }
        }
        Hist::bucket_bound(64)
    }
}

/// An ordered map of named counter totals and histogram distributions.
///
/// Backed by `BTreeMap`s so iteration — and therefore any rendering —
/// is deterministic in the metric names alone.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    counts: BTreeMap<String, u64>,
    hists: BTreeMap<String, Hist>,
}

impl Metrics {
    /// An empty set of counters.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Adds `n` to counter `name` (creating it at zero).
    pub fn add(&mut self, name: &str, n: u64) {
        if let Some(slot) = self.counts.get_mut(name) {
            *slot = slot.saturating_add(n);
        } else {
            self.counts.insert(name.to_owned(), n);
        }
    }

    /// The value of counter `name` (zero when absent).
    pub fn get(&self, name: &str) -> u64 {
        self.counts.get(name).copied().unwrap_or(0)
    }

    /// Folds another set of metrics into this one, key by key: counter
    /// totals sum and histogram buckets merge.
    pub fn merge(&mut self, other: &Metrics) {
        for (name, n) in &other.counts {
            self.add(name, *n);
        }
        for (name, h) in &other.hists {
            self.hists.entry(name.clone()).or_default().merge(h);
        }
    }

    /// Records one sample into histogram `name` (creating it empty).
    pub fn observe(&mut self, name: &str, v: u64) {
        if let Some(h) = self.hists.get_mut(name) {
            h.observe(v);
        } else {
            let mut h = Hist::new();
            h.observe(v);
            self.hists.insert(name.to_owned(), h);
        }
    }

    /// Inserts (or replaces) a whole histogram under `name`. Empty
    /// histograms are dropped rather than stored.
    pub fn set_hist(&mut self, name: &str, hist: Hist) {
        if hist.is_empty() {
            self.hists.remove(name);
        } else {
            self.hists.insert(name.to_owned(), hist);
        }
    }

    /// The histogram named `name`, if any sample reached it.
    pub fn hist(&self, name: &str) -> Option<&Hist> {
        self.hists.get(name)
    }

    /// Iterates `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates `(name, histogram)` pairs in name order.
    pub fn hists(&self) -> impl Iterator<Item = (&str, &Hist)> {
        self.hists.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of distinct counters (histograms are counted separately;
    /// see [`Metrics::hists`]).
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether no counter or histogram sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty() && self.hists.is_empty()
    }
}

thread_local! {
    /// The stack of metric scopes active on this thread. Increments go
    /// to the innermost scope only; [`record`] merges child scopes into
    /// nothing — each scope is returned to its installer.
    static SCOPES: RefCell<Vec<Metrics>> = const { RefCell::new(Vec::new()) };
}

/// A named counter handle.
///
/// Construction is free (`const`): declare counters as constants next
/// to the code they instrument and call [`Counter::add`] at the natural
/// points. With no scope installed on the calling thread, `add` is a
/// thread-local read and a branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Counter(&'static str);

impl Counter {
    /// A handle for counter `name`.
    pub const fn new(name: &'static str) -> Counter {
        Counter(name)
    }

    /// The counter's name.
    pub fn name(&self) -> &'static str {
        self.0
    }

    /// Adds `n` to this counter in the current thread's innermost
    /// metric scope; a no-op without one.
    pub fn add(&self, n: u64) {
        if n == 0 {
            return;
        }
        SCOPES.with(|scopes| {
            if let Some(scope) = scopes.borrow_mut().last_mut() {
                scope.add(self.0, n);
            }
        });
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }
}

/// A named histogram handle, the distribution-shaped sibling of
/// [`Counter`].
///
/// Construction is free (`const`); [`Histogram::observe`] records a
/// sample into the current thread's innermost metric scope and is a
/// thread-local check plus a branch without one. Samples must obey the
/// same determinism contract counters do: pure functions of the
/// computation (simulated latencies, slack in simulated time, queue
/// depths) — never wall-clock durations, which belong in
/// [`crate::trace`] spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram(&'static str);

impl Histogram {
    /// A handle for histogram `name`.
    pub const fn new(name: &'static str) -> Histogram {
        Histogram(name)
    }

    /// The histogram's name.
    pub fn name(&self) -> &'static str {
        self.0
    }

    /// Records sample `v` into this histogram in the current thread's
    /// innermost metric scope; a no-op without one.
    pub fn observe(&self, v: u64) {
        SCOPES.with(|scopes| {
            if let Some(scope) = scopes.borrow_mut().last_mut() {
                scope.observe(self.0, v);
            }
        });
    }

    /// Folds a pre-accumulated [`Hist`] into this histogram in the
    /// current thread's innermost metric scope; a no-op without one or
    /// when `hist` is empty.
    ///
    /// This is the flush-time path for hot loops that accumulate
    /// samples locally (e.g. a simulator `System` collecting queue
    /// waits between obs flushes) instead of paying the thread-local
    /// lookup per sample.
    pub fn observe_hist(&self, hist: &Hist) {
        if hist.is_empty() {
            return;
        }
        SCOPES.with(|scopes| {
            if let Some(scope) = scopes.borrow_mut().last_mut() {
                scope
                    .hists
                    .entry(self.0.to_owned())
                    .or_default()
                    .merge(hist);
            }
        });
    }
}

/// Whether a metric scope is installed on the current thread.
pub fn scoped() -> bool {
    SCOPES.with(|scopes| !scopes.borrow().is_empty())
}

/// Replays a captured [`Metrics`] set into the current thread's
/// innermost metric scope; a no-op without one.
///
/// This is how a caller that collected counters under an inner
/// [`record`] scope — e.g. a lane engine capturing one simulation
/// lane's flush in isolation — re-attributes them to the ambient scope
/// (typically the harness's per-unit scope). Totals are merged key by
/// key, so emitting N lane captures is equivalent to having run the N
/// lanes directly under the ambient scope.
pub fn emit(metrics: &Metrics) {
    if metrics.is_empty() {
        return;
    }
    SCOPES.with(|scopes| {
        if let Some(scope) = scopes.borrow_mut().last_mut() {
            scope.merge(metrics);
        }
    });
}

/// Runs `f` under a fresh metric scope on this thread and returns its
/// result together with every counter recorded while it ran.
///
/// Scopes nest: increments inside an inner `record` are invisible to
/// the outer scope. The scope is removed even if `f` panics (the
/// accumulated counts are discarded with it).
pub fn record<T>(f: impl FnOnce() -> T) -> (T, Metrics) {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            SCOPES.with(|scopes| {
                scopes.borrow_mut().pop();
            });
        }
    }

    SCOPES.with(|scopes| scopes.borrow_mut().push(Metrics::new()));
    let guard = Guard;
    let value = f();
    let metrics = SCOPES.with(|scopes| scopes.borrow().last().cloned().unwrap_or_default());
    drop(guard);
    (value, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    const WAKES: Counter = Counter::new("sim.service_wakes");

    #[test]
    fn unscoped_increments_are_dropped() {
        assert!(!scoped());
        WAKES.add(5); // must not panic or leak anywhere observable
        let ((), m) = record(|| {});
        assert!(m.is_empty(), "pre-scope increments must not attribute");
    }

    #[test]
    fn record_captures_and_merges() {
        let ((), m) = record(|| {
            assert!(scoped());
            WAKES.add(3);
            WAKES.incr();
            Counter::new("sim.cmd.rfm").add(2);
        });
        assert_eq!(m.get("sim.service_wakes"), 4);
        assert_eq!(m.get("sim.cmd.rfm"), 2);
        assert_eq!(m.get("absent"), 0);
        let names: Vec<&str> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["sim.cmd.rfm", "sim.service_wakes"], "sorted");
    }

    #[test]
    fn scopes_nest_without_leaking() {
        let ((), outer) = record(|| {
            WAKES.add(1);
            let ((), inner) = record(|| WAKES.add(10));
            assert_eq!(inner.get("sim.service_wakes"), 10);
            WAKES.add(2);
        });
        assert_eq!(
            outer.get("sim.service_wakes"),
            3,
            "inner scope's counts stay in the inner scope"
        );
        assert!(!scoped());
    }

    #[test]
    fn panics_unwind_the_scope() {
        let caught = std::panic::catch_unwind(|| {
            record(|| -> () { panic!("boom") });
        });
        assert!(caught.is_err());
        assert!(!scoped(), "a panicking scope must still be popped");
    }

    #[test]
    fn emit_replays_into_the_ambient_scope() {
        let captured = {
            let ((), inner) = record(|| WAKES.add(7));
            inner
        };
        let ((), outer) = record(|| {
            WAKES.add(1);
            emit(&captured);
            emit(&Metrics::new()); // empty replay is a no-op
        });
        assert_eq!(outer.get("sim.service_wakes"), 8);
        emit(&captured); // unscoped replay must be dropped silently
        let ((), fresh) = record(|| {});
        assert!(fresh.is_empty());
    }

    const WAIT: Histogram = Histogram::new("sim.queue_wait");

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(Hist::bucket_of(0), 0);
        assert_eq!(Hist::bucket_of(1), 1);
        assert_eq!(Hist::bucket_of(2), 2);
        assert_eq!(Hist::bucket_of(3), 2);
        assert_eq!(Hist::bucket_of(4), 3);
        assert_eq!(Hist::bucket_of(1023), 10);
        assert_eq!(Hist::bucket_of(1024), 11);
        assert_eq!(Hist::bucket_of(u64::MAX), 64);
        assert_eq!(Hist::bucket_bound(0), 0);
        assert_eq!(Hist::bucket_bound(1), 1);
        assert_eq!(Hist::bucket_bound(2), 3);
        assert_eq!(Hist::bucket_bound(10), 1023);
        assert_eq!(Hist::bucket_bound(64), u64::MAX);
        // Every sample fits inside its own bucket's bound.
        for v in [0u64, 1, 2, 3, 7, 8, 1 << 40, u64::MAX] {
            assert!(v <= Hist::bucket_bound(Hist::bucket_of(v)), "{v}");
        }
    }

    #[test]
    fn histogram_observe_is_order_independent() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        let samples = [5u64, 0, 17, 5, 1, 300];
        for v in samples {
            a.observe(v);
        }
        for v in samples.iter().rev() {
            b.observe(*v);
        }
        assert_eq!(a, b);
        assert_eq!(a.count(), 6);
        assert_eq!(a.sum(), 328);
        let buckets: Vec<(u32, u64)> = a.buckets().collect();
        assert_eq!(buckets, vec![(0, 1), (1, 1), (3, 2), (5, 1), (9, 1)]);
    }

    #[test]
    fn histograms_ride_scopes_like_counters() {
        let ((), m) = record(|| {
            WAIT.observe(4);
            WAIT.observe(5);
            Histogram::new("sim.maintenance.slack").observe(0);
        });
        assert_eq!(m.hist("sim.queue_wait").unwrap().count(), 2);
        assert_eq!(m.hist("sim.queue_wait").unwrap().sum(), 9);
        assert_eq!(m.hist("sim.maintenance.slack").unwrap().count(), 1);
        assert!(m.hist("absent").is_none());
        assert!(!m.is_empty(), "hist-only metrics are not empty");
        assert_eq!(m.len(), 0, "len counts counters only");
        WAIT.observe(1); // unscoped: dropped
        let ((), fresh) = record(|| {});
        assert!(fresh.is_empty());
    }

    #[test]
    fn emit_and_merge_carry_histograms() {
        let captured = {
            let ((), inner) = record(|| WAIT.observe(8));
            inner
        };
        let ((), outer) = record(|| {
            WAIT.observe(2);
            emit(&captured);
        });
        let h = outer.hist("sim.queue_wait").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 10);
        let buckets: Vec<(u32, u64)> = h.buckets().collect();
        assert_eq!(buckets, vec![(2, 1), (4, 1)]);
    }

    #[test]
    fn observe_hist_folds_accumulated_samples_at_flush() {
        let mut local = Hist::new();
        local.observe(3);
        local.observe(300);
        let ((), m) = record(|| {
            WAIT.observe_hist(&local);
            WAIT.observe_hist(&Hist::new()); // empty: no-op
        });
        assert_eq!(m.hist("sim.queue_wait").unwrap().count(), 2);
        WAIT.observe_hist(&local); // unscoped: dropped
        let ((), fresh) = record(|| {});
        assert!(fresh.is_empty());
    }

    #[test]
    fn hist_merge_of_two_empties_is_empty() {
        let mut a = Hist::new();
        a.merge(&Hist::new());
        assert!(a.is_empty());
        assert_eq!(a, Hist::new(), "empty ⊕ empty stays canonical");
        assert_eq!(a.buckets().count(), 0);
        assert_eq!(a.quantile(0.5), 0);
    }

    #[test]
    fn hist_merge_saturates_the_top_bucket() {
        let mut a = Hist::from_parts(u64::MAX, u64::MAX, [(64, u64::MAX)]);
        let mut b = Hist::new();
        b.observe(u64::MAX);
        a.merge(&b);
        assert_eq!(a.count(), u64::MAX, "count saturates");
        assert_eq!(a.sum(), u64::MAX, "sum saturates");
        let buckets: Vec<(u32, u64)> = a.buckets().collect();
        assert_eq!(buckets, vec![(64, u64::MAX)], "top bucket saturates");
    }

    #[test]
    fn hist_merge_of_disjoint_sparse_buckets_keeps_both() {
        let mut a = Hist::new();
        a.observe(0); // exponent 0
        a.observe(1 << 20); // exponent 21
        let mut b = Hist::new();
        b.observe(3); // exponent 2
        b.observe(u64::MAX); // exponent 64
        a.merge(&b);
        let buckets: Vec<(u32, u64)> = a.buckets().collect();
        assert_eq!(buckets, vec![(0, 1), (2, 1), (21, 1), (64, 1)]);
        assert_eq!(a.count(), 4);
    }

    #[test]
    fn hist_merge_is_commutative() {
        let mut ab = Hist::new();
        let mut ba = Hist::new();
        let a = Hist::from_parts(3, 30, [(0, 1), (5, 2)]);
        let b = Hist::from_parts(2, 900, [(5, 1), (10, 1)]);
        ab.merge(&a);
        ab.merge(&b);
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn hist_quantiles_walk_cumulative_buckets() {
        let mut h = Hist::new();
        for v in [1u64, 1, 2, 2, 2, 2, 100, 1000] {
            h.observe(v);
        }
        // Buckets: exp1 x2 (bound 1), exp2 x4 (bound 3), exp7 x1
        // (bound 127), exp10 x1 (bound 1023).
        assert_eq!(h.quantile(0.0), 1, "lowest non-empty bucket bound");
        assert_eq!(h.quantile(0.25), 1);
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(0.75), 3);
        assert_eq!(h.quantile(0.875), 127, "7 of 8 samples are ≤ 127");
        assert_eq!(h.quantile(1.0), 1023);
    }

    #[test]
    fn merge_sums_key_by_key() {
        let mut a = Metrics::new();
        a.add("x", 1);
        a.add("y", u64::MAX);
        let mut b = Metrics::new();
        b.add("y", 7);
        b.add("z", 2);
        a.merge(&b);
        assert_eq!(a.get("x"), 1);
        assert_eq!(a.get("y"), u64::MAX, "saturating");
        assert_eq!(a.get("z"), 2);
        assert_eq!(a.len(), 3);
    }
}
