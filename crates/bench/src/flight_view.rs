//! `lh-experiments events` — filter, summarize, export and *align*
//! flight-event logs (`--events-out` NDJSON, see `lh_obs::flight`).
//!
//! Every view here is a pure function of the log bytes: the input is
//! deterministic (simulated-ns timestamps only), so each rendering is
//! byte-stable and CI-diffable. Four views:
//!
//! * **filter** — keep header lines, drop event lines that miss the
//!   query (kind/bank/segment/sim-time window); output is again a valid
//!   event log.
//! * **summary** — per-kind counts, link-verdict tally, drop
//!   accounting, and the covered sim-time span per unit.
//! * **chrome** — Chrome `trace_event` JSON on the *simulated* clock
//!   (`ts` in microseconds = `t_ns / 1000`): link windows become
//!   complete (`X`) slices, everything else instant (`i`) events, one
//!   track per event kind per segment.
//! * **align** — the leak-alignment view: each link symbol window is
//!   laid against the defense maintenance decisions and mitigation
//!   interventions that fired *inside* it, the core diagnostic for "did
//!   the countermeasure actually land on the windows the receiver
//!   decodes?".

use lh_harness::json::{parse, Json};
use std::fmt::Write as _;

/// A parsed event-log line: the original bytes plus its JSON object.
#[derive(Debug, Clone)]
pub struct LogLine {
    /// The line exactly as read (no trailing newline).
    pub raw: String,
    /// The parsed object (`kind` discriminates).
    pub json: Json,
}

/// Filter predicate over event lines. `None` fields match everything.
#[derive(Debug, Clone, Default)]
pub struct EventQuery {
    /// Event kind (`cmd`, `maint`, `mitigation`, `link`).
    pub kind: Option<String>,
    /// Bank index (matches `bank` on `cmd`/`maint` lines).
    pub bank: Option<u64>,
    /// Segment id.
    pub seg: Option<u64>,
    /// Inclusive lower bound on `t_ns`.
    pub from: Option<u64>,
    /// Exclusive upper bound on `t_ns`.
    pub to: Option<u64>,
}

impl EventQuery {
    /// Whether an *event* line (not a header) satisfies the query.
    fn matches(&self, json: &Json) -> bool {
        if let Some(kind) = &self.kind {
            if json["kind"].as_str() != Some(kind.as_str()) {
                return false;
            }
        }
        if let Some(bank) = self.bank {
            if json["bank"].as_u64() != Some(bank) {
                return false;
            }
        }
        if let Some(seg) = self.seg {
            if json["seg"].as_u64() != Some(seg) {
                return false;
            }
        }
        let t_ns = json["t_ns"].as_u64().unwrap_or(0);
        if self.from.is_some_and(|from| t_ns < from) {
            return false;
        }
        if self.to.is_some_and(|to| t_ns >= to) {
            return false;
        }
        true
    }
}

/// Whether a line is a log header (`experiment` or `unit`) rather than
/// an event.
fn is_header(json: &Json) -> bool {
    matches!(json["kind"].as_str(), Some("experiment" | "unit"))
}

/// Parses an NDJSON event log. Blank lines are skipped; anything else
/// that fails to parse or lacks a `kind` is an error (an event log is a
/// machine artifact, so corruption should be loud).
///
/// # Errors
///
/// The 1-based line number and parse failure of the first bad line.
pub fn parse_log(content: &str, origin: &str) -> Result<Vec<LogLine>, String> {
    let mut lines = Vec::new();
    for (i, line) in content.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let json =
            parse(line).map_err(|e| format!("{origin}:{}: not an event line: {e}", i + 1))?;
        if json["kind"].as_str().is_none() {
            return Err(format!("{origin}:{}: event line has no \"kind\"", i + 1));
        }
        lines.push(LogLine {
            raw: line.to_owned(),
            json,
        });
    }
    if lines.is_empty() {
        return Err(format!("{origin}: empty event log"));
    }
    Ok(lines)
}

/// Applies the query: headers pass through, events must match. Every
/// view (summary, chrome, align) runs on the selected subset, so one
/// `--kind maint --seg 0` narrows them all the same way.
pub fn select(lines: Vec<LogLine>, query: &EventQuery) -> Vec<LogLine> {
    lines
        .into_iter()
        .filter(|line| is_header(&line.json) || query.matches(&line.json))
        .collect()
}

/// The filter view: the selected subset as NDJSON bytes (original
/// lines, so filtering is loss-free and re-filterable).
pub fn filter(lines: &[LogLine], query: &EventQuery) -> String {
    let mut out = String::new();
    for line in lines {
        if is_header(&line.json) || query.matches(&line.json) {
            out.push_str(&line.raw);
            out.push('\n');
        }
    }
    out
}

/// Per-unit accumulation shared by the summary and alignment views.
#[derive(Debug, Default)]
struct UnitBlock {
    /// The unit header line's `unit` string.
    label: String,
    /// Event lines in log order.
    events: Vec<Json>,
    /// The header's drop map, rendered back to text.
    dropped: Vec<(String, u64)>,
}

/// Splits a log into its per-unit blocks (events before any unit header
/// are grouped under an implicit unnamed unit, so partial logs still
/// render).
fn units(lines: &[LogLine]) -> Vec<UnitBlock> {
    let mut blocks: Vec<UnitBlock> = Vec::new();
    for line in lines {
        match line.json["kind"].as_str() {
            Some("experiment") => {}
            Some("unit") => {
                let mut block = UnitBlock {
                    label: line.json["unit"].as_str().unwrap_or("?").to_owned(),
                    ..UnitBlock::default()
                };
                for (kind, n) in line.json["dropped"].as_object() {
                    if let Some(n) = n.as_u64() {
                        block.dropped.push((kind.clone(), n));
                    }
                }
                blocks.push(block);
            }
            _ => {
                if blocks.is_empty() {
                    blocks.push(UnitBlock {
                        label: "<unlabeled>".to_owned(),
                        ..UnitBlock::default()
                    });
                }
                blocks
                    .last_mut()
                    .expect("pushed above")
                    .events
                    .push(line.json.clone());
            }
        }
    }
    blocks
}

/// The summary view: per-unit kind counts, link-verdict tally, drop
/// accounting and covered sim-time span; one grand-total footer.
pub fn summary(lines: &[LogLine]) -> String {
    let mut out = String::from("== flight events ==\n");
    let mut grand = 0u64;
    for block in units(lines) {
        let mut kinds: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
        let mut verdicts: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
        let mut span = (u64::MAX, 0u64);
        for event in &block.events {
            *kinds
                .entry(event["kind"].as_str().unwrap_or("?"))
                .or_insert(0) += 1;
            if let Some(verdict) = event["verdict"].as_str() {
                *verdicts.entry(verdict).or_insert(0) += 1;
            }
            let t = event["t_ns"].as_u64().unwrap_or(0);
            span.0 = span.0.min(t);
            span.1 = span.1.max(event["t_end_ns"].as_u64().unwrap_or(t));
        }
        grand += block.events.len() as u64;
        let _ = writeln!(out, "{}: {} event(s)", block.label, block.events.len());
        if span.0 != u64::MAX {
            let _ = writeln!(out, "  span: {}..{} ns", span.0, span.1);
        }
        for (kind, n) in &kinds {
            let _ = writeln!(out, "  {kind} = {n}");
        }
        if !verdicts.is_empty() {
            let tally: Vec<String> = verdicts
                .iter()
                .map(|(verdict, n)| format!("{verdict}:{n}"))
                .collect();
            let _ = writeln!(out, "  link verdicts: {}", tally.join(" "));
        }
        for (kind, n) in &block.dropped {
            let _ = writeln!(out, "  dropped.{kind} = {n}");
        }
    }
    let _ = writeln!(out, "total: {grand} event(s)");
    out
}

/// Formats simulated ns as a Chrome `ts` value: microseconds with
/// nanosecond precision kept in the fraction (Chrome accepts fractional
/// timestamps; rounding would alias adjacent DRAM commands).
fn chrome_ts(t_ns: u64) -> String {
    format!("{}.{:03}", t_ns / 1_000, t_ns % 1_000)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The Chrome `trace_event` export, on the simulated clock. Each unit
/// becomes one process (`pid` = unit order in the log); within it,
/// each `(segment, kind)` pair gets its own named thread track, so a
/// defense's maintenance timeline sits directly under the link-layer
/// symbol windows it perturbs. Link windows are complete (`X`) events
/// carrying `symbol`/`events`/`verdict` args; everything else is an
/// instant (`i`) event.
pub fn chrome(lines: &[LogLine]) -> String {
    // Track ids must be stable: assign tids in first-appearance order
    // per unit, and emit a thread_name metadata record for each.
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    let mut first = true;
    for (pid, block) in units(lines).iter().enumerate() {
        let mut tids: Vec<(u64, String)> = Vec::new(); // (seg, kind) -> index
        let mut records: Vec<String> = Vec::new();
        for event in &block.events {
            let kind = event["kind"].as_str().unwrap_or("?");
            let seg = event["seg"].as_u64().unwrap_or(0);
            let key = (seg, kind.to_owned());
            let tid = match tids.iter().position(|k| *k == key) {
                Some(i) => i,
                None => {
                    tids.push(key);
                    tids.len() - 1
                }
            };
            let t_ns = event["t_ns"].as_u64().unwrap_or(0);
            let mut args = String::new();
            let mut sep = "";
            for (name, value) in event.as_object() {
                if matches!(name.as_str(), "kind" | "seg" | "t_ns" | "t_end_ns") {
                    continue;
                }
                let rendered = match value {
                    Json::Str(s) => format!("\"{}\"", json_escape(s)),
                    other => other.to_compact(),
                };
                let _ = write!(args, "{sep}\"{}\":{rendered}", json_escape(name));
                sep = ",";
            }
            let name = match kind {
                "link" => format!("sym {}", event["symbol"].as_u64().unwrap_or(0)),
                "cmd" => event["cmd"].as_str().unwrap_or("cmd").to_owned(),
                "maint" => format!(
                    "{}/{}",
                    event["action"].as_str().unwrap_or("?"),
                    event["cause"].as_str().unwrap_or("?")
                ),
                "mitigation" => format!(
                    "{}/{}",
                    event["wrapper"].as_str().unwrap_or("?"),
                    event["action"].as_str().unwrap_or("?")
                ),
                other => other.to_owned(),
            };
            let record = if kind == "link" {
                let t_end = event["t_end_ns"].as_u64().unwrap_or(t_ns);
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"link\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                     \"pid\":{pid},\"tid\":{tid},\"args\":{{{args}}}}}",
                    json_escape(&name),
                    chrome_ts(t_ns),
                    chrome_ts(t_end.saturating_sub(t_ns)),
                )
            } else {
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"{kind}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\
                     \"pid\":{pid},\"tid\":{tid},\"args\":{{{args}}}}}",
                    json_escape(&name),
                    chrome_ts(t_ns),
                )
            };
            records.push(record);
        }
        // Name the process after the unit and each track after its
        // (segment, kind) pair, so chrome://tracing labels are legible.
        let header = format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(&block.label)
        );
        let mut all = vec![header];
        for (tid, (seg, kind)) in tids.iter().enumerate() {
            all.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"name\":\"seg{seg} {kind}\"}}}}"
            ));
        }
        all.extend(records);
        for record in all {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&record);
        }
    }
    out.push_str("\n]}\n");
    out
}

/// The leak-alignment view: for every link symbol window, the defense
/// maintenance decisions and mitigation interventions whose timestamps
/// fall inside it (same segment, `t_ns <= t < t_end_ns`), plus the
/// activate count — the at-a-glance answer to "which windows did the
/// defense actually touch, and did the decode verdict flip there?".
pub fn align(lines: &[LogLine]) -> String {
    let mut out = String::from("== leak alignment ==\n");
    let mut any = false;
    for block in units(lines) {
        let links: Vec<&Json> = block
            .events
            .iter()
            .filter(|e| e["kind"].as_str() == Some("link"))
            .collect();
        if links.is_empty() {
            continue;
        }
        any = true;
        let _ = writeln!(out, "{}:", block.label);
        let _ = writeln!(
            out,
            "  {:>6} {:>18} {:>4} {:>7} {:<14} {:>4} {:>5} {:>5}  detail",
            "window", "t_ns", "sym", "events", "verdict", "acts", "maint", "mitig"
        );
        for link in links {
            let seg = link["seg"].as_u64().unwrap_or(0);
            let t0 = link["t_ns"].as_u64().unwrap_or(0);
            let t1 = link["t_end_ns"].as_u64().unwrap_or(t0);
            let mut acts = 0u64;
            let mut maint: std::collections::BTreeMap<String, u64> =
                std::collections::BTreeMap::new();
            let mut mitig: std::collections::BTreeMap<String, u64> =
                std::collections::BTreeMap::new();
            for event in &block.events {
                if event["seg"].as_u64() != Some(seg) {
                    continue;
                }
                let t = event["t_ns"].as_u64().unwrap_or(0);
                if t < t0 || t >= t1 {
                    continue;
                }
                match event["kind"].as_str() {
                    Some("cmd") if event["cmd"].as_str() == Some("act") => acts += 1,
                    Some("maint") => {
                        let label = format!(
                            "{}/{}",
                            event["action"].as_str().unwrap_or("?"),
                            event["cause"].as_str().unwrap_or("?")
                        );
                        *maint.entry(label).or_insert(0) += 1;
                    }
                    Some("mitigation") => {
                        let label = format!(
                            "{}/{}",
                            event["wrapper"].as_str().unwrap_or("?"),
                            event["action"].as_str().unwrap_or("?")
                        );
                        *mitig.entry(label).or_insert(0) += 1;
                    }
                    _ => {}
                }
            }
            let mut detail: Vec<String> = maint
                .iter()
                .chain(mitig.iter())
                .map(|(label, n)| format!("{label}:{n}"))
                .collect();
            if detail.is_empty() {
                detail.push("-".to_owned());
            }
            let _ = writeln!(
                out,
                "  {:>6} {:>18} {:>4} {:>7} {:<14} {:>4} {:>5} {:>5}  {}",
                link["window"].as_u64().unwrap_or(0),
                format!("{t0}..{t1}"),
                link["symbol"].as_u64().unwrap_or(0),
                link["events"].as_u64().unwrap_or(0),
                link["verdict"].as_str().unwrap_or("?"),
                acts,
                maint.values().sum::<u64>(),
                mitig.values().sum::<u64>(),
                detail.join(" "),
            );
        }
    }
    if !any {
        out.push_str("(no link windows in the log — nothing to align)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOG: &str = "\
{\"kind\":\"experiment\",\"experiment\":\"fig2\",\"scale\":\"quick\",\"seed\":1,\"units\":1}
{\"kind\":\"unit\",\"unit\":\"u0\",\"index\":0,\"events\":5,\"dropped\":{\"cmd\":2}}
{\"kind\":\"cmd\",\"seg\":0,\"t_ns\":5,\"cmd\":\"act\",\"rank\":0,\"bg\":0,\"bank\":3,\"row\":9}
{\"kind\":\"maint\",\"seg\":0,\"t_ns\":8,\"action\":\"rfm\",\"cause\":\"reactive\",\"rank\":0,\"slack_ns\":0}
{\"kind\":\"mitigation\",\"seg\":0,\"t_ns\":9,\"wrapper\":\"jitter\",\"action\":\"slip\",\"rank\":0,\"amount_ns\":4}
{\"kind\":\"link\",\"seg\":0,\"t_ns\":0,\"t_end_ns\":10,\"window\":0,\"symbol\":1,\"events\":4,\"verdict\":\"hit\"}
{\"kind\":\"link\",\"seg\":0,\"t_ns\":10,\"t_end_ns\":20,\"window\":1,\"symbol\":0,\"events\":0,\"verdict\":\"idle\"}
";

    fn log() -> Vec<LogLine> {
        parse_log(LOG, "<test>").unwrap()
    }

    #[test]
    fn filter_keeps_headers_and_matching_events() {
        let query = EventQuery {
            kind: Some("link".to_owned()),
            ..EventQuery::default()
        };
        let out = filter(&log(), &query);
        assert_eq!(out.lines().count(), 4, "2 headers + 2 links: {out}");
        assert!(!out.contains("\"kind\":\"cmd\""));

        let query = EventQuery {
            bank: Some(3),
            ..EventQuery::default()
        };
        assert!(filter(&log(), &query).contains("\"cmd\":\"act\""));

        let query = EventQuery {
            from: Some(8),
            to: Some(9),
            ..EventQuery::default()
        };
        let out = filter(&log(), &query);
        assert!(out.contains("\"kind\":\"maint\"") && !out.contains("\"kind\":\"mitigation\""));
    }

    #[test]
    fn summary_counts_kinds_verdicts_and_drops() {
        let out = summary(&log());
        assert!(out.contains("u0: 5 event(s)"), "{out}");
        assert!(out.contains("link = 2"), "{out}");
        assert!(out.contains("link verdicts: hit:1 idle:1"), "{out}");
        assert!(out.contains("dropped.cmd = 2"), "{out}");
        assert!(out.contains("span: 0..20 ns"), "{out}");
    }

    #[test]
    fn chrome_export_is_valid_trace_json() {
        let out = chrome(&log());
        let doc = parse(&out).expect("chrome export must parse");
        let events = doc["traceEvents"].as_array();
        // 1 process_name + 4 thread tracks + 5 events.
        assert_eq!(events.len(), 10, "{out}");
        let link = events
            .iter()
            .find(|e| e["ph"].as_str() == Some("X"))
            .expect("link windows are complete events");
        assert_eq!(link["args"]["verdict"].as_str(), Some("hit"));
        assert!(events
            .iter()
            .any(|e| e["ph"].as_str() == Some("M")
                && e["args"]["name"].as_str() == Some("seg0 maint")));
    }

    #[test]
    fn chrome_ts_keeps_ns_precision() {
        assert_eq!(chrome_ts(1_234), "1.234");
        assert_eq!(chrome_ts(999), "0.999");
        assert_eq!(chrome_ts(1_000_000), "1000.000");
    }

    #[test]
    fn align_counts_in_window_activity() {
        let out = align(&log());
        // Window 0 covers the act, the maint and the mitigation.
        let w0 = out.lines().find(|l| l.contains("hit")).unwrap();
        assert!(w0.contains("rfm/reactive:1"), "{out}");
        assert!(w0.contains("jitter/slip:1"), "{out}");
        // Window 1 is empty.
        let w1 = out.lines().find(|l| l.contains("idle")).unwrap();
        assert!(w1.trim_end().ends_with('-'), "{out}");
    }

    #[test]
    fn parse_rejects_corrupt_logs() {
        assert!(parse_log("not json\n", "<t>").unwrap_err().contains(":1:"));
        assert!(parse_log("{\"a\":1}\n", "<t>")
            .unwrap_err()
            .contains("kind"));
        assert!(parse_log("", "<t>").unwrap_err().contains("empty"));
    }
}
