//! DRAM organization: channels, ranks, bank groups, banks, rows, columns.
//!
//! The default geometry matches Table 1 of the LeakyHammer paper: one DDR5
//! channel with 2 ranks, 8 bank groups of 4 banks each, and 128 K rows per
//! bank. Columns are tracked at cache-line (64 B) granularity.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::error::DramError;

/// Cache-line size in bytes; columns are addressed at this granularity.
pub const LINE_BYTES: u64 = 64;

/// Shape of a DRAM subsystem.
///
/// # Examples
///
/// ```
/// use lh_dram::Geometry;
///
/// let g = Geometry::paper_default();
/// assert_eq!(g.banks_per_rank(), 32);
/// assert_eq!(g.banks_per_channel(), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Geometry {
    channels: u32,
    ranks_per_channel: u32,
    bank_groups_per_rank: u32,
    banks_per_group: u32,
    rows_per_bank: u32,
    cols_per_row: u32,
}

impl Geometry {
    /// Creates a geometry, validating that every dimension is non-zero.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidGeometry`] if any dimension is zero.
    pub fn new(
        channels: u32,
        ranks_per_channel: u32,
        bank_groups_per_rank: u32,
        banks_per_group: u32,
        rows_per_bank: u32,
        cols_per_row: u32,
    ) -> Result<Geometry, DramError> {
        let dims = [
            channels,
            ranks_per_channel,
            bank_groups_per_rank,
            banks_per_group,
            rows_per_bank,
            cols_per_row,
        ];
        if dims.contains(&0) {
            return Err(DramError::InvalidGeometry);
        }
        Ok(Geometry {
            channels,
            ranks_per_channel,
            bank_groups_per_rank,
            banks_per_group,
            rows_per_bank,
            cols_per_row,
        })
    }

    /// The configuration evaluated in the paper (Table 1): DDR5, 1 channel,
    /// 2 ranks/channel, 8 bank groups, 4 banks/bank group, 128 K rows/bank.
    ///
    /// Rows hold 8 KB (128 cache lines).
    pub fn paper_default() -> Geometry {
        Geometry::new(1, 2, 8, 4, 128 * 1024, 128).expect("paper geometry is valid")
    }

    /// A small geometry for fast unit tests: 1 channel, 1 rank, 2 bank
    /// groups of 2 banks, 1 K rows, 128 columns.
    pub fn tiny() -> Geometry {
        Geometry::new(1, 1, 2, 2, 1024, 128).expect("tiny geometry is valid")
    }

    /// Number of memory channels.
    pub fn channels(&self) -> u32 {
        self.channels
    }

    /// Ranks per channel.
    pub fn ranks_per_channel(&self) -> u32 {
        self.ranks_per_channel
    }

    /// Bank groups per rank.
    pub fn bank_groups_per_rank(&self) -> u32 {
        self.bank_groups_per_rank
    }

    /// Banks per bank group.
    pub fn banks_per_group(&self) -> u32 {
        self.banks_per_group
    }

    /// Rows per bank.
    pub fn rows_per_bank(&self) -> u32 {
        self.rows_per_bank
    }

    /// Columns (cache lines) per row.
    pub fn cols_per_row(&self) -> u32 {
        self.cols_per_row
    }

    /// Total banks in one rank.
    pub fn banks_per_rank(&self) -> u32 {
        self.bank_groups_per_rank * self.banks_per_group
    }

    /// Total banks in one channel.
    pub fn banks_per_channel(&self) -> u32 {
        self.ranks_per_channel * self.banks_per_rank()
    }

    /// Row size in bytes.
    pub fn row_bytes(&self) -> u64 {
        self.cols_per_row as u64 * LINE_BYTES
    }

    /// Capacity of one channel in bytes.
    pub fn channel_bytes(&self) -> u64 {
        self.banks_per_channel() as u64 * self.rows_per_bank as u64 * self.row_bytes()
    }

    /// Total capacity in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.channels as u64 * self.channel_bytes()
    }

    /// Flat index of a bank within its channel, in
    /// rank-major / bank-group / bank order.
    ///
    /// # Panics
    ///
    /// Panics if the bank's coordinates are outside this geometry.
    pub fn flat_bank(&self, bank: BankId) -> usize {
        assert!(
            self.contains_bank(bank),
            "bank {bank} out of range for {self:?}"
        );
        (bank.rank * self.banks_per_rank() + bank.bank_group * self.banks_per_group + bank.bank)
            as usize
    }

    /// Inverse of [`Geometry::flat_bank`] for a given channel.
    pub fn bank_from_flat(&self, channel: u32, flat: usize) -> BankId {
        let flat = flat as u32;
        let rank = flat / self.banks_per_rank();
        let in_rank = flat % self.banks_per_rank();
        BankId {
            channel,
            rank,
            bank_group: in_rank / self.banks_per_group,
            bank: in_rank % self.banks_per_group,
        }
    }

    /// Whether `bank` is a valid coordinate in this geometry.
    pub fn contains_bank(&self, bank: BankId) -> bool {
        bank.channel < self.channels
            && bank.rank < self.ranks_per_channel
            && bank.bank_group < self.bank_groups_per_rank
            && bank.bank < self.banks_per_group
    }

    /// Whether `addr` (bank, row and column) is valid in this geometry.
    pub fn contains(&self, addr: DramAddr) -> bool {
        self.contains_bank(addr.bank)
            && addr.row < self.rows_per_bank
            && addr.col < self.cols_per_row
    }

    /// Iterates over every bank coordinate of one channel.
    pub fn banks_in_channel(&self, channel: u32) -> impl Iterator<Item = BankId> + '_ {
        (0..self.banks_per_channel() as usize).map(move |f| self.bank_from_flat(channel, f))
    }
}

impl Default for Geometry {
    fn default() -> Geometry {
        Geometry::paper_default()
    }
}

/// Coordinates of one DRAM bank.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct BankId {
    /// Channel index.
    pub channel: u32,
    /// Rank index within the channel.
    pub rank: u32,
    /// Bank group index within the rank.
    pub bank_group: u32,
    /// Bank index within the bank group.
    pub bank: u32,
}

impl BankId {
    /// Creates a bank coordinate.
    pub fn new(channel: u32, rank: u32, bank_group: u32, bank: u32) -> BankId {
        BankId {
            channel,
            rank,
            bank_group,
            bank,
        }
    }
}

impl fmt::Display for BankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ch{}/ra{}/bg{}/ba{}",
            self.channel, self.rank, self.bank_group, self.bank
        )
    }
}

/// A fully decoded DRAM location: bank, row and column.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DramAddr {
    /// The bank holding the row.
    pub bank: BankId,
    /// Row index within the bank.
    pub row: u32,
    /// Column (cache-line) index within the row.
    pub col: u32,
}

impl DramAddr {
    /// Creates a DRAM location.
    pub fn new(bank: BankId, row: u32, col: u32) -> DramAddr {
        DramAddr { bank, row, col }
    }
}

impl fmt::Display for DramAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/row{}/col{}", self.bank, self.row, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_dimension_is_rejected() {
        assert!(Geometry::new(0, 1, 1, 1, 1, 1).is_err());
        assert!(Geometry::new(1, 1, 1, 1, 0, 1).is_err());
    }

    #[test]
    fn paper_default_matches_table1() {
        let g = Geometry::paper_default();
        assert_eq!(g.channels(), 1);
        assert_eq!(g.ranks_per_channel(), 2);
        assert_eq!(g.bank_groups_per_rank(), 8);
        assert_eq!(g.banks_per_group(), 4);
        assert_eq!(g.rows_per_bank(), 128 * 1024);
        assert_eq!(g.banks_per_channel(), 64);
    }

    #[test]
    fn flat_bank_roundtrips() {
        let g = Geometry::paper_default();
        for flat in 0..g.banks_per_channel() as usize {
            let bank = g.bank_from_flat(0, flat);
            assert_eq!(g.flat_bank(bank), flat);
        }
    }

    #[test]
    fn flat_bank_is_dense_and_unique() {
        let g = Geometry::tiny();
        let mut seen = std::collections::HashSet::new();
        for bank in g.banks_in_channel(0) {
            assert!(seen.insert(g.flat_bank(bank)));
        }
        assert_eq!(seen.len(), g.banks_per_channel() as usize);
    }

    #[test]
    fn contains_checks_every_dimension() {
        let g = Geometry::tiny();
        let ok = DramAddr::new(BankId::new(0, 0, 1, 1), 1023, 127);
        assert!(g.contains(ok));
        let bad_row = DramAddr::new(BankId::new(0, 0, 1, 1), 1024, 0);
        assert!(!g.contains(bad_row));
        let bad_bank = DramAddr::new(BankId::new(0, 0, 2, 0), 0, 0);
        assert!(!g.contains(bad_bank));
    }

    #[test]
    fn capacity_math() {
        let g = Geometry::tiny();
        assert_eq!(g.row_bytes(), 128 * 64);
        assert_eq!(g.channel_bytes(), 4 * 1024 * 128 * 64);
    }

    #[test]
    #[should_panic]
    fn flat_bank_panics_out_of_range() {
        let g = Geometry::tiny();
        let _ = g.flat_bank(BankId::new(0, 3, 0, 0));
    }
}
