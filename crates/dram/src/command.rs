//! DDR5 command set used by the memory controller.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::geometry::BankId;

/// Scope of an RFM (refresh management) command.
///
/// The scope determines which banks are blocked while the device performs
/// preventive refreshes — this is exactly the property the LeakyHammer
/// attacks observe (§5.2 of the paper: PRAC back-offs block the channel,
/// RFM blocks the same bank across bank groups).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RfmScope {
    /// All banks of the rank are blocked (RFMab). Used for PRAC back-off
    /// recovery and FR-RFM.
    AllBank,
    /// The same bank index in every bank group of the rank is blocked
    /// (RFMsb). Used by Periodic RFM.
    SameBank {
        /// Bank index within each bank group (0..banks_per_group).
        bank: u32,
    },
    /// A single bank is blocked. Used by Bank-Level PRAC (§11.3), which
    /// requires per-bank ABO signalling.
    SingleBank {
        /// Bank group index.
        bank_group: u32,
        /// Bank index within the bank group.
        bank: u32,
    },
}

impl fmt::Display for RfmScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RfmScope::AllBank => write!(f, "ab"),
            RfmScope::SameBank { bank } => write!(f, "sb{bank}"),
            RfmScope::SingleBank { bank_group, bank } => write!(f, "bg{bank_group}b{bank}"),
        }
    }
}

/// A DRAM command as issued on the command bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Command {
    /// Open `row` in `bank`, loading it into the row buffer.
    Activate {
        /// Target bank.
        bank: BankId,
        /// Row to open.
        row: u32,
    },
    /// Close the open row of `bank`.
    Precharge {
        /// Target bank.
        bank: BankId,
    },
    /// Close the open rows of every bank in a rank.
    PrechargeAll {
        /// Target channel.
        channel: u32,
        /// Target rank.
        rank: u32,
    },
    /// Read one column (cache line) from the open row.
    Read {
        /// Target bank.
        bank: BankId,
        /// Column to read.
        col: u32,
    },
    /// Write one column (cache line) into the open row.
    Write {
        /// Target bank.
        bank: BankId,
        /// Column to write.
        col: u32,
    },
    /// All-bank periodic refresh for a rank.
    Refresh {
        /// Target channel.
        channel: u32,
        /// Target rank.
        rank: u32,
    },
    /// Refresh-management command: grants the device a `t_rfm` window to
    /// preventively refresh potential RowHammer victims.
    Rfm {
        /// Target channel.
        channel: u32,
        /// Target rank.
        rank: u32,
        /// Which banks the command blocks.
        scope: RfmScope,
    },
}

impl Command {
    /// The channel this command is issued on.
    pub fn channel(&self) -> u32 {
        match *self {
            Command::Activate { bank, .. }
            | Command::Precharge { bank }
            | Command::Read { bank, .. }
            | Command::Write { bank, .. } => bank.channel,
            Command::PrechargeAll { channel, .. }
            | Command::Refresh { channel, .. }
            | Command::Rfm { channel, .. } => channel,
        }
    }

    /// The rank this command targets.
    pub fn rank(&self) -> u32 {
        match *self {
            Command::Activate { bank, .. }
            | Command::Precharge { bank }
            | Command::Read { bank, .. }
            | Command::Write { bank, .. } => bank.rank,
            Command::PrechargeAll { rank, .. }
            | Command::Refresh { rank, .. }
            | Command::Rfm { rank, .. } => rank,
        }
    }

    /// The single bank this command targets, if it targets exactly one.
    pub fn bank(&self) -> Option<BankId> {
        match *self {
            Command::Activate { bank, .. }
            | Command::Precharge { bank }
            | Command::Read { bank, .. }
            | Command::Write { bank, .. } => Some(bank),
            _ => None,
        }
    }

    /// Whether this is a column command (`RD`/`WR`).
    pub fn is_column(&self) -> bool {
        matches!(self, Command::Read { .. } | Command::Write { .. })
    }

    /// Short mnemonic, e.g. `"ACT"`.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Command::Activate { .. } => "ACT",
            Command::Precharge { .. } => "PRE",
            Command::PrechargeAll { .. } => "PREA",
            Command::Read { .. } => "RD",
            Command::Write { .. } => "WR",
            Command::Refresh { .. } => "REF",
            Command::Rfm { .. } => "RFM",
        }
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Command::Activate { bank, row } => write!(f, "ACT {bank} row{row}"),
            Command::Precharge { bank } => write!(f, "PRE {bank}"),
            Command::PrechargeAll { channel, rank } => write!(f, "PREA ch{channel}/ra{rank}"),
            Command::Read { bank, col } => write!(f, "RD {bank} col{col}"),
            Command::Write { bank, col } => write!(f, "WR {bank} col{col}"),
            Command::Refresh { channel, rank } => write!(f, "REF ch{channel}/ra{rank}"),
            Command::Rfm {
                channel,
                rank,
                scope,
            } => write!(f, "RFM{scope} ch{channel}/ra{rank}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> BankId {
        BankId::new(0, 1, 2, 3)
    }

    #[test]
    fn channel_and_rank_extraction() {
        let cmds = [
            Command::Activate {
                bank: bank(),
                row: 7,
            },
            Command::Precharge { bank: bank() },
            Command::Read {
                bank: bank(),
                col: 1,
            },
            Command::Write {
                bank: bank(),
                col: 1,
            },
        ];
        for c in cmds {
            assert_eq!(c.channel(), 0);
            assert_eq!(c.rank(), 1);
            assert_eq!(c.bank(), Some(bank()));
        }
        let ref_cmd = Command::Refresh {
            channel: 0,
            rank: 1,
        };
        assert_eq!(ref_cmd.rank(), 1);
        assert_eq!(ref_cmd.bank(), None);
    }

    #[test]
    fn column_classification() {
        assert!(Command::Read {
            bank: bank(),
            col: 0
        }
        .is_column());
        assert!(Command::Write {
            bank: bank(),
            col: 0
        }
        .is_column());
        assert!(!Command::Precharge { bank: bank() }.is_column());
    }

    #[test]
    fn display_mnemonics() {
        let rfm = Command::Rfm {
            channel: 0,
            rank: 0,
            scope: RfmScope::SameBank { bank: 2 },
        };
        assert_eq!(rfm.mnemonic(), "RFM");
        assert!(rfm.to_string().contains("sb2"));
        assert!(Command::Activate {
            bank: bank(),
            row: 9
        }
        .to_string()
        .contains("row9"));
    }
}
