//! Content hashing for cache addressing.
//!
//! A 128-bit FNV-1a variant (two independent 64-bit streams) rendered
//! as 32 hex characters. Not cryptographic — the cache defends against
//! accidental collisions between configuration fingerprints, not
//! adversaries.

/// Incremental 128-bit hasher.
#[derive(Debug, Clone)]
pub struct Hasher {
    lo: u64,
    hi: u64,
}

impl Default for Hasher {
    fn default() -> Hasher {
        Hasher::new()
    }
}

impl Hasher {
    /// A fresh hasher with standard offsets.
    pub fn new() -> Hasher {
        Hasher {
            lo: 0xcbf2_9ce4_8422_2325,
            hi: 0x6c62_272e_07bb_0142,
        }
    }

    /// Absorbs bytes.
    pub fn update(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.lo ^= u64::from(b);
            self.lo = self.lo.wrapping_mul(0x0000_0100_0000_01B3);
            self.hi ^= u64::from(b).rotate_left(32);
            self.hi = self.hi.wrapping_mul(0x0000_0100_0000_01B3) ^ self.lo.rotate_left(7);
        }
        self
    }

    /// Absorbs a string with a length prefix, so field boundaries
    /// cannot alias (`"ab" + "c"` hashes differently from `"a" + "bc"`).
    pub fn field(&mut self, text: &str) -> &mut Self {
        self.update(&(text.len() as u64).to_le_bytes());
        self.update(text.as_bytes())
    }

    /// Absorbs an integer.
    pub fn number(&mut self, n: u64) -> &mut Self {
        self.update(&n.to_le_bytes())
    }

    /// The 32-hex-character digest.
    pub fn digest(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_are_stable_and_field_boundaries_matter() {
        let digest = |parts: &[&str]| {
            let mut h = Hasher::new();
            for p in parts {
                h.field(p);
            }
            h.digest()
        };
        assert_eq!(digest(&["fig4", "quick"]), digest(&["fig4", "quick"]));
        assert_ne!(digest(&["fig4", "quick"]), digest(&["fig4quick"]));
        assert_ne!(digest(&["ab", "c"]), digest(&["a", "bc"]));
        assert_eq!(digest(&["x"]).len(), 32);
    }
}
