//! Best-Offset hardware prefetcher (Michaud, HPCA 2016), simplified.
//!
//! Used by the §10.3 sensitivity study. The prefetcher observes the miss
//! stream of one core, learns the best line offset `D` by scoring
//! candidate offsets against a recent-requests table, and emits a
//! prefetch for `X + D` on every (miss or prefetched-hit) access to `X`
//! while the learned score is above the activation threshold.

use serde::{Deserialize, Serialize};

/// Best-Offset prefetcher configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BopConfig {
    /// Candidate offsets to score (in cache lines).
    pub max_offset: i64,
    /// Rounds a candidate must win to become the active offset.
    pub score_max: u32,
    /// Minimum winning score for prefetching to be active at all.
    pub bad_score: u32,
    /// Recent-requests table size (entries).
    pub rr_size: usize,
}

impl BopConfig {
    /// The configuration used by the paper's sensitivity study (a standard
    /// small Best-Offset setup).
    pub fn paper_default() -> BopConfig {
        BopConfig {
            max_offset: 8,
            score_max: 31,
            bad_score: 1,
            rr_size: 64,
        }
    }
}

impl Default for BopConfig {
    fn default() -> BopConfig {
        BopConfig::paper_default()
    }
}

/// Best-Offset prefetcher state for one core.
///
/// # Examples
///
/// ```
/// use lh_sim::{BestOffsetPrefetcher, BopConfig};
///
/// let mut p = BestOffsetPrefetcher::new(BopConfig::paper_default());
/// // A clean stride-1 stream quickly trains offset 1.
/// let mut prefetches = 0;
/// for i in 0..200u64 {
///     prefetches += p.on_miss(i * 64).is_some() as u32;
/// }
/// assert!(prefetches > 0);
/// ```
#[derive(Debug, Clone)]
pub struct BestOffsetPrefetcher {
    config: BopConfig,
    /// Recent requests: line addresses recently *filled*.
    rr: Vec<u64>,
    rr_pos: usize,
    /// Scores per candidate offset (1..=max_offset, then negatives).
    offsets: Vec<i64>,
    scores: Vec<u32>,
    /// Index of the offset currently being tested.
    test_idx: usize,
    /// The active prefetch offset (lines) and whether prefetching is on.
    active_offset: i64,
    enabled: bool,
    round: u32,
    issued: u64,
}

impl BestOffsetPrefetcher {
    /// Builds a prefetcher.
    pub fn new(config: BopConfig) -> BestOffsetPrefetcher {
        let mut offsets: Vec<i64> = (1..=config.max_offset).collect();
        offsets.extend((1..=config.max_offset / 2).map(|d| -d));
        let n = offsets.len();
        BestOffsetPrefetcher {
            config,
            rr: Vec::with_capacity(config.rr_size),
            rr_pos: 0,
            offsets,
            scores: vec![0; n],
            test_idx: 0,
            active_offset: 1,
            enabled: false,
            round: 0,
            issued: 0,
        }
    }

    /// The currently learned offset in lines (meaningful when enabled).
    pub fn active_offset(&self) -> i64 {
        self.active_offset
    }

    /// Whether prefetching is currently active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Total prefetches issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Records that the line of `addr` was filled (demand or prefetch);
    /// feeds the recent-requests table.
    pub fn on_fill(&mut self, addr: u64) {
        let line = addr / lh_dram::LINE_BYTES;
        if self.rr.len() < self.config.rr_size {
            self.rr.push(line);
        } else {
            self.rr[self.rr_pos] = line;
            self.rr_pos = (self.rr_pos + 1) % self.config.rr_size;
        }
    }

    /// Observes a demand miss to `addr`; returns the address to prefetch,
    /// if prefetching is active.
    pub fn on_miss(&mut self, addr: u64) -> Option<u64> {
        let line = (addr / lh_dram::LINE_BYTES) as i64;
        // Learning: would the tested offset have predicted this miss?
        // I.e. is `line - offset` in the recent-requests table?
        let tested = self.offsets[self.test_idx];
        let base = line - tested;
        if base >= 0 && self.rr.contains(&(base as u64)) {
            self.scores[self.test_idx] += 1;
            if self.scores[self.test_idx] >= self.config.score_max {
                self.adopt_best();
            }
        }
        self.test_idx = (self.test_idx + 1) % self.offsets.len();
        if self.test_idx == 0 {
            self.round += 1;
            if self.round >= 4 {
                self.adopt_best();
            }
        }
        self.on_fill(addr);
        // Prediction.
        if self.enabled {
            let target = line + self.active_offset;
            if target >= 0 {
                self.issued += 1;
                return Some(target as u64 * lh_dram::LINE_BYTES);
            }
        }
        None
    }

    fn adopt_best(&mut self) {
        let (best_idx, &best_score) = self
            .scores
            .iter()
            .enumerate()
            .max_by_key(|&(i, s)| (*s, core::cmp::Reverse(i)))
            .expect("non-empty scores");
        self.enabled = best_score > self.config.bad_score;
        if self.enabled {
            self.active_offset = self.offsets[best_idx];
        }
        self.scores.iter_mut().for_each(|s| *s = 0);
        self.round = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_one_stream_trains_offset_one() {
        let mut p = BestOffsetPrefetcher::new(BopConfig::paper_default());
        for i in 0..300u64 {
            p.on_miss(i * 64);
        }
        assert!(
            p.is_enabled(),
            "sequential stream must activate prefetching"
        );
        assert_eq!(p.active_offset(), 1);
        assert!(p.issued() > 0);
    }

    #[test]
    fn stride_four_stream_trains_offset_four() {
        let mut p = BestOffsetPrefetcher::new(BopConfig::paper_default());
        for i in 0..400u64 {
            p.on_miss(i * 4 * 64);
        }
        assert!(p.is_enabled());
        assert_eq!(p.active_offset(), 4);
    }

    #[test]
    fn random_stream_disables_prefetching() {
        let mut p = BestOffsetPrefetcher::new(BopConfig::paper_default());
        let mut x = 0x12345u64;
        for _ in 0..500 {
            // xorshift-ish scatter, far beyond any candidate offset.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            p.on_miss((x % (1 << 30)) * 64);
        }
        assert!(
            !p.is_enabled(),
            "random stream must not sustain prefetching"
        );
    }

    #[test]
    fn prefetch_targets_follow_the_stream() {
        let mut p = BestOffsetPrefetcher::new(BopConfig::paper_default());
        let mut last = None;
        for i in 0..300u64 {
            last = p.on_miss(i * 64).or(last);
        }
        let t = last.expect("prefetches issued");
        assert_eq!(t % 64, 0, "prefetch addresses are line aligned");
    }
}
