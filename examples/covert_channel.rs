//! Covert channels over RowHammer defenses (case studies 1 and 2).
//!
//! Transmits the 40-bit message "MICRO" over both LeakyHammer channels —
//! PRAC back-offs (§6.3, Fig. 3) and PRFM RFM commands (§7.3, Fig. 6) —
//! and prints the per-window detections plus channel metrics.
//!
//! Run with: `cargo run --release --example covert_channel`

use leakyhammer::experiment::covert::{run_covert, ChannelKind, CovertOptions};
use leakyhammer::report;
use lh_analysis::message::{bits_of_str, str_of_bits};

fn show(kind: ChannelKind, label: &str) {
    let message = "MICRO";
    let opts = CovertOptions::new(kind, bits_of_str(message));
    let out = run_covert(&opts);
    print!("{}", report::covert_report(label, &out));
    println!("  sent:    {:?}", message);
    println!("  decoded: {:?}", str_of_bits(&out.decoded));
    print!("  events/window: ");
    for (i, e) in out.per_window_events.iter().enumerate() {
        if i % 8 == 0 && i > 0 {
            print!("| ");
        }
        print!("{e} ");
    }
    println!("\n");
}

fn main() {
    println!("LeakyHammer covert channels: transmitting \"MICRO\"\n");
    show(
        ChannelKind::Prac,
        "case study 1: PRAC back-off channel (25 us windows, NBO=128)",
    );
    show(
        ChannelKind::Rfm,
        "case study 2: PRFM RFM channel (20 us windows, TRFM=40, Trecv=3)",
    );
    println!(
        "The PRAC channel encodes a 1-bit as 'the receiver observed a back-off';\n\
         the RFM channel counts RFM-band latencies per window against Trecv."
    );
}
