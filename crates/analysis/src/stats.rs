//! Summary statistics and histograms for experiment reports.

use serde::{Deserialize, Serialize};

/// Mean of a sample (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Geometric mean (requires positive values; 0 otherwise).
pub fn geo_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// `p`-th percentile (0–100) by nearest-rank on a copy of the data.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in percentile input"));
    let rank = ((p / 100.0) * (v.len() as f64 - 1.0)).round() as usize;
    v[rank.min(v.len() - 1)]
}

/// A fixed-width histogram over `[lo, hi)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    below: u64,
    above: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(bins > 0 && hi > lo, "invalid histogram shape");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            below: 0,
            above: 0,
        }
    }

    /// Adds a sample.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.below += 1;
        } else if x >= self.hi {
            self.above += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Samples below/above the range.
    pub fn outliers(&self) -> (u64, u64) {
        (self.below, self.above)
    }

    /// Total samples added.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.below + self.above
    }

    /// Center value of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((std_dev(&xs) - 1.118033988749895).abs() < 1e-12);
        assert!((geo_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(geo_mean(&[1.0, -1.0]), 0.0);
    }

    #[test]
    fn percentiles() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 100.0);
        let med = percentile(&xs, 50.0);
        assert!((49.0..=51.0).contains(&med));
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 1.5, 2.5, 9.9, -1.0, 10.0, 25.0] {
            h.add(x);
        }
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.outliers(), (1, 2));
        assert_eq!(h.total(), 7);
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
    }
}
