//! SPEC-like synthetic applications.
//!
//! The paper uses SPEC CPU2017/2006 workloads in two roles: as
//! interference (categorized L/M/H by row-buffer misses per kilo
//! instruction, RBMPKI) and as multiprogrammed load for the Fig. 13
//! weighted-speedup study. These generators reproduce the relevant
//! property — the rate and locality of DRAM row activations per unit of
//! executed instructions — with a simple phased row-streaming model:
//! visit a row, read `lines_per_row` consecutive cache lines, move on.

use core::any::Any;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use lh_dram::{BankId, DramAddr, Span, Time};
use lh_memctrl::AddressMapping;
use lh_sim::{MemAccess, Process, ProcessStep};

/// Instruction latency at 3 GHz, CPI 1.
pub const INSTR_TIME: Span = Span::from_ps(333);

/// Memory-intensity category (§6.3 / Fig. 5 grouping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Intensity {
    /// Low RBMPKI (≈1).
    Low,
    /// Medium RBMPKI (≈5).
    Medium,
    /// High RBMPKI (≈20).
    High,
}

impl Intensity {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Intensity::Low => "L",
            Intensity::Medium => "M",
            Intensity::High => "H",
        }
    }
}

/// Static description of a synthetic application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppProfile {
    /// Workload name (reports).
    pub name: String,
    /// Instructions between consecutive memory accesses.
    pub instr_per_access: u64,
    /// Consecutive cache lines read per row visit (row-buffer locality).
    pub lines_per_row: u32,
    /// Rows in the application's working set (per bank).
    pub footprint_rows: u32,
    /// Outstanding-miss parallelism.
    pub mlp: u32,
    /// Fraction of accesses that are stores.
    pub write_frac: f64,
}

impl AppProfile {
    /// A profile achieving approximately `rbmpki` row-buffer misses per
    /// kilo instruction.
    ///
    /// RBMPKI ≈ 1000 / (instr_per_access × lines_per_row).
    pub fn with_rbmpki(name: &str, rbmpki: f64) -> AppProfile {
        let lines_per_row = 8u32;
        let instr_per_access =
            ((1000.0 / (rbmpki.max(0.05) * lines_per_row as f64)).round() as u64).max(1);
        AppProfile {
            name: name.to_owned(),
            instr_per_access,
            lines_per_row,
            footprint_rows: 2048,
            mlp: 4,
            write_frac: 0.25,
        }
    }

    /// The category preset of §6.3 (L ≈ 1, M ≈ 5, H ≈ 20 RBMPKI).
    pub fn category(intensity: Intensity) -> AppProfile {
        match intensity {
            Intensity::Low => AppProfile::with_rbmpki("spec-low", 1.0),
            Intensity::Medium => AppProfile::with_rbmpki("spec-medium", 5.0),
            Intensity::High => AppProfile::with_rbmpki("spec-high", 20.0),
        }
    }

    /// The approximate RBMPKI of this profile.
    pub fn rbmpki(&self) -> f64 {
        1000.0 / (self.instr_per_access as f64 * self.lines_per_row as f64)
    }
}

/// A running synthetic application.
#[derive(Debug, Clone)]
pub struct SyntheticApp {
    profile: AppProfile,
    mapping: AddressMapping,
    rng: StdRng,
    until: Time,
    /// Current streaming position.
    row_addr: Option<DramAddr>,
    lines_left: u32,
    instructions: u64,
    halted_at: Option<Time>,
}

impl SyntheticApp {
    /// Creates an app that runs until `until` (its instruction count is
    /// then read for IPC).
    pub fn new(
        profile: AppProfile,
        mapping: AddressMapping,
        seed: u64,
        until: Time,
    ) -> SyntheticApp {
        SyntheticApp {
            profile,
            mapping,
            rng: StdRng::seed_from_u64(seed),
            until,
            row_addr: None,
            lines_left: 0,
            instructions: 0,
            halted_at: None,
        }
    }

    /// The profile.
    pub fn profile(&self) -> &AppProfile {
        &self.profile
    }

    /// Instructions retired so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// When the app halted, if it has.
    pub fn halted_at(&self) -> Option<Time> {
        self.halted_at
    }

    /// The app's memory-level parallelism (pass to
    /// [`lh_sim::System::add_process`]).
    pub fn mlp(&self) -> u32 {
        self.profile.mlp
    }

    fn next_addr(&mut self) -> u64 {
        let g = *self.mapping.geometry();
        if self.lines_left == 0 || self.row_addr.is_none() {
            // Fresh row: random bank, random row inside the footprint,
            // offset past the attack rows (which live below row 1024).
            let flat = self.rng.gen_range(0..g.banks_per_channel() as usize);
            let bank: BankId = g.bank_from_flat(0, flat);
            let row = 1024
                + self.rng.gen_range(0..self.profile.footprint_rows) % (g.rows_per_bank() - 1024);
            self.row_addr = Some(DramAddr::new(bank, row, 0));
            self.lines_left = self.profile.lines_per_row;
        }
        let addr = self.row_addr.expect("streaming row set above");
        self.lines_left -= 1;
        let col = (self.profile.lines_per_row - 1 - self.lines_left)
            % self.mapping.geometry().cols_per_row();
        self.row_addr = Some(DramAddr::new(addr.bank, addr.row, col));
        self.mapping.encode(DramAddr::new(addr.bank, addr.row, col))
    }
}

impl Process for SyntheticApp {
    fn step(&mut self, now: Time) -> ProcessStep {
        if now >= self.until {
            self.halted_at = self.halted_at.or(Some(now));
            return ProcessStep::Halt;
        }
        self.instructions += self.profile.instr_per_access;
        let think = INSTR_TIME * self.profile.instr_per_access;
        let addr = self.next_addr();
        let write = self.rng.gen_bool(self.profile.write_frac);
        let access = if write {
            MemAccess::store_async(addr, think)
        } else {
            MemAccess {
                blocking: self.profile.mlp <= 1,
                ..MemAccess::load_async(addr, think)
            }
        };
        ProcessStep::Access(access)
    }

    fn label(&self) -> String {
        self.profile.name.clone()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lh_defenses::DefenseConfig;
    use lh_sim::{SimConfig, System};

    #[test]
    fn rbmpki_presets_are_ordered() {
        let l = AppProfile::category(Intensity::Low).rbmpki();
        let m = AppProfile::category(Intensity::Medium).rbmpki();
        let h = AppProfile::category(Intensity::High).rbmpki();
        assert!(l < m && m < h, "L={l} M={m} H={h}");
        assert!((0.8..1.3).contains(&l));
        assert!((15.0..26.0).contains(&h));
    }

    #[test]
    fn app_streams_rows_with_locality() {
        let cfg = SimConfig::paper_default(DefenseConfig::none());
        let mapping = AddressMapping::new(cfg.mapping, cfg.device.geometry);
        let mut app = SyntheticApp::new(
            AppProfile::category(Intensity::High),
            mapping,
            1,
            Time::from_us(10),
        );
        // Collect the first 16 accesses: the first 8 share a row.
        let mut rows = Vec::new();
        let mut t = Time::ZERO;
        for _ in 0..16 {
            match app.step(t) {
                ProcessStep::Access(a) => rows.push(mapping.decode(a.addr)),
                other => panic!("{other:?}"),
            }
            t += Span::from_ns(100);
        }
        assert!(rows[..8]
            .windows(2)
            .all(|w| w[0].row == w[1].row && w[0].bank == w[1].bank));
        assert_ne!((rows[7].bank, rows[7].row), (rows[8].bank, rows[8].row));
    }

    #[test]
    fn app_generates_dram_traffic_in_a_system() {
        let cfg = SimConfig::paper_default(DefenseConfig::none());
        let mapping = AddressMapping::new(cfg.mapping, cfg.device.geometry);
        let mut sys = System::new(cfg).unwrap();
        let app = SyntheticApp::new(
            AppProfile::category(Intensity::High),
            mapping,
            2,
            Time::from_us(200),
        );
        let mlp = app.mlp();
        let pid = sys.add_process(Box::new(app), mlp, Time::ZERO);
        sys.run_until(Time::from_us(250));
        let app = sys.process_as::<SyntheticApp>(pid).unwrap();
        assert!(
            app.instructions() > 10_000,
            "{} instructions",
            app.instructions()
        );
        assert!(sys.controller().stats().reads_served > 100);
        // Row locality: several column accesses per activate.
        let cpa = sys.controller().device().stats().columns_per_act();
        assert!(cpa > 2.0, "columns/ACT {cpa}");
    }

    #[test]
    fn higher_rbmpki_means_more_activations_per_time() {
        let acts = |intensity: Intensity| -> u64 {
            let cfg = SimConfig::paper_default(DefenseConfig::none());
            let mapping = AddressMapping::new(cfg.mapping, cfg.device.geometry);
            let mut sys = System::new(cfg).unwrap();
            let app = SyntheticApp::new(
                AppProfile::category(intensity),
                mapping,
                3,
                Time::from_us(200),
            );
            let mlp = app.mlp();
            sys.add_process(Box::new(app), mlp, Time::ZERO);
            sys.run_until(Time::from_us(200));
            sys.controller().device().stats().activates
        };
        let low = acts(Intensity::Low);
        let high = acts(Intensity::High);
        assert!(high > low * 3, "high {high} vs low {low}");
    }
}
