//! # lh-sim — discrete-event full-system simulator
//!
//! The gem5-substitute of the LeakyHammer reproduction (see DESIGN.md §1
//! for the substitution argument): simple cores stepping [`Process`] state
//! machines, private per-core cache hierarchies with `clflush`
//! ([`CacheHierarchy`]), an optional Best-Offset prefetcher
//! ([`BestOffsetPrefetcher`], §10.3), and one DDR5 channel behind an
//! FR-FCFS memory controller.
//!
//! Time is integer picoseconds end-to-end and every run is deterministic
//! for a fixed seed — a correctness requirement for reproducing covert
//! channels.
//!
//! ## Example: measuring row-conflict latency from "userspace"
//!
//! ```
//! use lh_defenses::DefenseConfig;
//! use lh_dram::{BankId, DramAddr, Span, Time};
//! use lh_sim::{LoopProcess, SimConfig, System};
//!
//! let mut sys = System::new(SimConfig::paper_default(DefenseConfig::none())).unwrap();
//! // Two rows in the same bank → every access is a row-buffer conflict.
//! let bank = BankId::new(0, 0, 0, 0);
//! let a = sys.mapping().encode(DramAddr::new(bank, 10, 0));
//! let b = sys.mapping().encode(DramAddr::new(bank, 20, 0));
//! let probe = LoopProcess::new(vec![a, b], 64, Span::from_ns(30));
//! let pid = sys.add_process(Box::new(probe), 1, Time::ZERO);
//! sys.run_until(Time::from_us(100));
//! let trace = sys.process_as::<LoopProcess>(pid).unwrap().trace();
//! assert!(trace.mean_ns() > 50.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod lane;
mod looper;
mod prefetch;
mod process;
mod system;
mod trace;

pub use cache::{CacheAccess, CacheConfig, CacheHierarchy, CacheLevelConfig, CacheStats};
pub use lane::LaneBatch;
pub use looper::LoopProcess;
pub use prefetch::{BestOffsetPrefetcher, BopConfig};
pub use process::{IdleProcess, MemAccess, Process, ProcessStep};
pub use system::{ProcId, ProcStats, SimConfig, System, SystemBuilder};
pub use trace::{LatencySample, LatencyTrace};

#[cfg(test)]
mod tests {
    use super::*;
    use lh_defenses::DefenseConfig;
    use lh_dram::{BankId, DramAddr, Span, Time};

    fn addr(sys: &System, bank: BankId, row: u32, col: u32) -> u64 {
        sys.mapping().encode(DramAddr::new(bank, row, col))
    }

    fn bank0() -> BankId {
        BankId::new(0, 0, 0, 0)
    }

    #[test]
    fn conflicting_loop_sees_higher_latency_than_hitting_loop() {
        // Conflicts: two rows, same bank.
        let mut sys = System::new(SimConfig::paper_default(DefenseConfig::none())).unwrap();
        let a = addr(&sys, bank0(), 10, 0);
        let b = addr(&sys, bank0(), 20, 0);
        let pid = sys.add_process(
            Box::new(LoopProcess::new(vec![a, b], 200, Span::from_ns(30))),
            1,
            Time::ZERO,
        );
        assert!(sys.run_until_halted(Time::from_ms(1)));
        let conflict_mean = sys
            .process_as::<LoopProcess>(pid)
            .unwrap()
            .trace()
            .mean_ns();

        // Hits: one row, flushed each time but the row stays open.
        let mut sys2 = System::new(SimConfig::paper_default(DefenseConfig::none())).unwrap();
        let a2 = addr(&sys2, bank0(), 10, 0);
        let pid2 = sys2.add_process(
            Box::new(LoopProcess::new(vec![a2], 200, Span::from_ns(30))),
            1,
            Time::ZERO,
        );
        assert!(sys2.run_until_halted(Time::from_ms(1)));
        let hit_mean = sys2
            .process_as::<LoopProcess>(pid2)
            .unwrap()
            .trace()
            .mean_ns();

        assert!(
            conflict_mean > hit_mean + 20.0,
            "conflict mean {conflict_mean:.1} ns vs hit mean {hit_mean:.1} ns"
        );
    }

    #[test]
    fn flushed_loop_always_misses_cache() {
        let mut sys = System::new(SimConfig::paper_default(DefenseConfig::none())).unwrap();
        let a = addr(&sys, bank0(), 10, 0);
        let pid = sys.add_process(
            Box::new(LoopProcess::new(vec![a], 50, Span::from_ns(30))),
            1,
            Time::ZERO,
        );
        assert!(sys.run_until_halted(Time::from_ms(1)));
        let stats = sys.proc_stats(pid);
        assert_eq!(stats.dram_reads, 50, "every flushed access must go to DRAM");
        assert_eq!(stats.cache_hits, 0);
    }

    #[test]
    fn unflushed_loop_hits_in_cache() {
        let mut sys = System::new(SimConfig::paper_default(DefenseConfig::none())).unwrap();
        let a = addr(&sys, bank0(), 10, 0);
        let pid = sys.add_process(
            Box::new(LoopProcess::without_flush(vec![a], 50, Span::from_ns(5))),
            1,
            Time::ZERO,
        );
        assert!(sys.run_until_halted(Time::from_ms(1)));
        let stats = sys.proc_stats(pid);
        assert_eq!(stats.dram_reads, 1, "only the cold miss reaches DRAM");
        assert_eq!(stats.cache_hits, 49);
    }

    #[test]
    fn periodic_refresh_appears_in_latency_trace() {
        let mut sys = System::new(SimConfig::paper_default(DefenseConfig::none())).unwrap();
        let a = addr(&sys, bank0(), 10, 0);
        // Row hits for a while; refreshes (~every 3.9 us per rank) produce
        // latency spikes well above the hit latency.
        let pid = sys.add_process(
            Box::new(LoopProcess::new(vec![a], 400, Span::from_ns(30))),
            1,
            Time::ZERO,
        );
        assert!(sys.run_until_halted(Time::from_ms(2)));
        let trace = sys.process_as::<LoopProcess>(pid).unwrap().trace();
        let spikes = trace.count_above(Span::from_ns(300));
        assert!(spikes >= 2, "expected refresh spikes, got {spikes}");
        // But they are rare.
        assert!(spikes < trace.len() / 4);
    }

    #[test]
    fn prac_backoff_visible_from_process() {
        let mut cfg = SimConfig::paper_default(DefenseConfig::prac(64));
        cfg.defense.prac.as_mut().unwrap().nbo = 64;
        let mut sys = System::new(cfg).unwrap();
        let a = addr(&sys, bank0(), 10, 0);
        let b = addr(&sys, bank0(), 20, 0);
        let pid = sys.add_process(
            Box::new(LoopProcess::new(vec![a, b], 400, Span::from_ns(30))),
            1,
            Time::ZERO,
        );
        assert!(sys.run_until_halted(Time::from_ms(2)));
        let trace = sys.process_as::<LoopProcess>(pid).unwrap().trace();
        // ~400 conflicting accesses with NBO=64 → ~3 back-offs, visible
        // as ≥1200 ns iterations.
        let backoffs = trace.count_above(Span::from_ns(1_200));
        assert!(backoffs >= 2, "expected visible back-offs, got {backoffs}");
        assert!(sys.controller().stats().backoffs >= 2);
    }

    #[test]
    fn mlp_overlaps_misses() {
        // One blocking process vs one MLP-4 process issuing the same
        // number of independent misses: the MLP process finishes sooner.
        use core::any::Any;

        #[derive(Debug)]
        struct Streamer {
            n: usize,
            i: usize,
            done_at: Option<Time>,
            blocking: bool,
        }
        impl Process for Streamer {
            fn step(&mut self, now: Time) -> ProcessStep {
                if self.i >= self.n {
                    self.done_at = self.done_at.or(Some(now));
                    return ProcessStep::Halt;
                }
                // Stride of one row (8 KB × banks) so accesses spread over
                // rows and stay independent.
                let addr = 0x100_0000 + (self.i as u64) * 64 * 128 * 64;
                self.i += 1;
                ProcessStep::Access(MemAccess {
                    addr,
                    write: false,
                    flush: false,
                    think: Span::from_ns(2),
                    blocking: self.blocking,
                })
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }

        let run = |blocking: bool, mlp: u32| -> Time {
            let mut sys = System::new(SimConfig::paper_default(DefenseConfig::none())).unwrap();
            let pid = sys.add_process(
                Box::new(Streamer {
                    n: 64,
                    i: 0,
                    done_at: None,
                    blocking,
                }),
                mlp,
                Time::ZERO,
            );
            assert!(sys.run_until_halted(Time::from_ms(4)));
            sys.process_as::<Streamer>(pid).unwrap().done_at.unwrap()
        };
        let serial = run(true, 1);
        let parallel = run(false, 4);
        assert!(
            parallel < serial,
            "MLP run ({parallel}) must beat serial run ({serial})"
        );
    }

    #[test]
    fn sleep_until_wakes_at_requested_time() {
        use core::any::Any;

        #[derive(Debug)]
        struct Sleeper {
            woke: Option<Time>,
            slept: bool,
        }
        impl Process for Sleeper {
            fn step(&mut self, now: Time) -> ProcessStep {
                if !self.slept {
                    self.slept = true;
                    return ProcessStep::SleepUntil(Time::from_us(25));
                }
                self.woke = Some(now);
                ProcessStep::Halt
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let mut sys = System::new(SimConfig::paper_default(DefenseConfig::none())).unwrap();
        let pid = sys.add_process(
            Box::new(Sleeper {
                woke: None,
                slept: false,
            }),
            1,
            Time::ZERO,
        );
        sys.run_until(Time::from_us(100));
        let woke = sys.process_as::<Sleeper>(pid).unwrap().woke.unwrap();
        assert_eq!(woke, Time::from_us(25));
    }

    #[test]
    fn prefetcher_issues_useful_prefetches_on_streams() {
        let mut cfg = SimConfig::paper_default(DefenseConfig::none());
        cfg.prefetch = Some(BopConfig::paper_default());
        let mut sys = System::new(cfg).unwrap();
        // Sequential, unflushed stream over 512 lines.
        let base = addr(&sys, bank0(), 40, 0);
        let addrs: Vec<u64> = (0..512u64).map(|i| base + i * 64).collect();
        let pid = sys.add_process(
            Box::new(LoopProcess::without_flush(addrs, 512, Span::from_ns(10))),
            1,
            Time::ZERO,
        );
        assert!(sys.run_until_halted(Time::from_ms(4)));
        let stats = sys.proc_stats(pid);
        // With a trained prefetcher many demand accesses become hits.
        assert!(
            stats.cache_hits > 100,
            "prefetching should convert misses into hits, got {} hits",
            stats.cache_hits
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut cfg = SimConfig::paper_default(DefenseConfig::prac(64));
            cfg.seed = 99;
            let mut sys = System::new(cfg).unwrap();
            let a = addr(&sys, bank0(), 10, 0);
            let b = addr(&sys, bank0(), 20, 0);
            let pid = sys.add_process(
                Box::new(LoopProcess::new(vec![a, b], 300, Span::from_ns(30))),
                1,
                Time::ZERO,
            );
            sys.run_until(Time::from_ms(1));
            sys.process_as::<LoopProcess>(pid).unwrap().trace().clone()
        };
        assert_eq!(run(), run(), "same seed must give identical traces");
    }

    #[test]
    fn two_processes_share_the_channel() {
        let mut sys = System::new(SimConfig::paper_default(DefenseConfig::none())).unwrap();
        let a = addr(&sys, bank0(), 10, 0);
        let b = addr(&sys, bank0(), 20, 0);
        let p1 = sys.add_process(
            Box::new(LoopProcess::new(vec![a], 200, Span::from_ns(30))),
            1,
            Time::ZERO,
        );
        let p2 = sys.add_process(
            Box::new(LoopProcess::new(vec![b], 200, Span::from_ns(30))),
            1,
            Time::ZERO,
        );
        assert!(sys.run_until_halted(Time::from_ms(2)));
        // Both made progress; their interleaved accesses to different rows
        // of the same bank create row conflicts for each other.
        let t1 = sys.process_as::<LoopProcess>(p1).unwrap().trace();
        let t2 = sys.process_as::<LoopProcess>(p2).unwrap().trace();
        assert_eq!(t1.len(), 200);
        assert_eq!(t2.len(), 200);
        assert!(
            t1.mean_ns() > 80.0,
            "conflicts should slow p1: {}",
            t1.mean_ns()
        );
        assert!(sys.controller().stats().reads_served >= 400);
    }
}
