//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize` / `Deserialize` names as marker traits plus
//! the re-exported derive macros, which is the entire serde surface this
//! repository touches (`use serde::{Deserialize, Serialize}` + derives).
//! Runtime serialization is handled by `lh-harness`'s JSON module.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
