//! Batched service path: the same scheduler decisions as
//! [`MemoryController::service`], computed against cached row state.
//!
//! The lane-batched simulator engine (`lh-sim`'s `LaneBatch`) advances
//! many controller instances over one shared trace, so the per-wake cost
//! of `service` dominates sweep wall-clock. This module adds
//! [`MemoryController::service_batched`]: a decision-identical variant
//! of the service loop that keeps its bookkeeping in a caller-owned
//! [`CtrlScratch`] instead of re-deriving it from the device every wake:
//!
//! * a mirror of every bank's open row plus per-rank open counts, so
//!   `rank_has_open_row` is one array read instead of a bank scan;
//! * persistent per-bank hit/conflict buffers for the FR-FCFS pre-scan
//!   (no per-wake allocation);
//! * per-wake memos for `rank_quiesced` and the per-bank
//!   `earliest_legal` of each command class — safe because within one
//!   `next_step` evaluation the device state and `now` are fixed, and
//!   ACT legality is row-independent while RD/WR legality is
//!   column-independent;
//! * an early exit from the candidate scan once an issueable-now row
//!   hit is found (see the proof at the scan).
//!
//! The legacy `service` path is deliberately untouched: it is the
//! reference implementation the identity tests and the `lane_batch`
//! bench baseline run against. Every decision point here is a
//! structural copy of the corresponding `controller.rs` code; the two
//! must produce byte-identical command streams.
//!
//! **Caller contract**: requests must be enqueued with non-decreasing
//! `arrival` stamps (true for `lh-sim`, which stamps `arrival` with the
//! enqueue instant, including retries). The early exit below relies on
//! this queue-order monotonicity.

use std::collections::VecDeque;

use lh_dram::{AlertScope, Command, DramDevice, Geometry, RfmScope, Time};

use super::{AboPhase, MemoryController, QueueSel, RowPolicy, Step};
use crate::request::{AccessKind, MemRequest};

/// Mirror value for "no open row".
const CLOSED: u32 = u32::MAX;

/// Command classes whose `earliest_legal` is memoizable per bank within
/// one `next_step` evaluation: ACT timing is row-independent and RD/WR
/// timing is column-independent (`DramDevice::earliest_from_state`).
const CLASS_ACT: usize = 0;
const CLASS_PRE: usize = 1;
const CLASS_RD: usize = 2;
const CLASS_WR: usize = 3;
const CLASSES: usize = 4;

/// Caller-owned scratch state for [`MemoryController::service_batched`].
///
/// Holds the open-row mirror and the per-wake memos. One scratch belongs
/// to exactly one controller: it is synchronized to the controller's
/// device state at construction and kept in sync by observing every
/// issued command. Feeding it to a different controller, or mixing
/// `service` and `service_batched` calls on the same controller without
/// re-synchronizing, desynchronizes the mirror (debug builds assert).
#[derive(Debug, Clone)]
pub struct CtrlScratch {
    /// Bumped at every `next_step_b` entry; stamps invalidate the
    /// per-wake memos (`rank_quiesced` is `now`-dependent).
    epoch: u64,
    /// Per rank: bumped at every command issued on that rank — the only
    /// controller-side events that move the rank-local device timing
    /// state `earliest_from_state` reads (`recovery_complete` and hidden
    /// preventive refreshes touch PRAC / disturbance bookkeeping only).
    /// Stamps the cross-wake legality memo: a command on rank 0 leaves
    /// rank 1's cached bounds valid.
    rank_epoch: Vec<u64>,
    /// Bumped at every issued column command. The legality memo no
    /// longer needs it (column entries cache only the rank-local
    /// component); it feeds the section verdict's only-column-issues
    /// test ([`CtrlScratch::sec_live`]).
    col_epoch: u64,
    /// Per flat bank: mirrored open row ([`CLOSED`] when none).
    open: Vec<u32>,
    /// Per rank: number of banks holding an open row.
    rank_open: Vec<u32>,
    /// Per flat bank: queue pre-scan results for the current wake.
    bank_has_hit: Vec<bool>,
    bank_has_conflict: Vec<bool>,
    /// Blocked flat banks for the current scan (reused allocation).
    blocked: Vec<usize>,
    /// Per rank: memoized `rank_quiesced` verdict.
    q_stamp: Vec<u64>,
    q_val: Vec<bool>,
    /// Per (flat bank × class): memoized *unclamped* earliest-issue
    /// instant (`earliest_legal` at `Time::ZERO`), stamped by the
    /// owning rank's [`CtrlScratch::rank_epoch`] (plus
    /// [`CtrlScratch::col_epoch`] for column classes) so it survives
    /// until a command actually invalidates it. The caller-facing value
    /// folds the channel-global bus terms back in per query.
    l_stamp: Vec<u64>,
    l_at: Vec<Time>,
    /// Per flat bank: owning rank, for the legality memo's stamps.
    flat_rank: Vec<u32>,
    /// Dense per-queue mirrors of each request's flat bank and row,
    /// parallel to `read_q` / `write_q` (indexed by [`QueueSel`] as 0 /
    /// 1). Folded lazily at scan time — queues only ever grow at the
    /// back between scans — and trimmed eagerly when a served request
    /// leaves mid-queue, so the FR-FCFS pre-scan walks two flat `u32`
    /// arrays instead of calling `flat_bank` per request per wake.
    q_flat: [Vec<u32>; 2],
    q_row: [Vec<u32>; 2],
    /// Cached [`DramDevice::rfm_banks`] result for the RFM currently at
    /// the front of the controller's reactive queue, so steady-state
    /// PRFM scans stop allocating a fresh bank list per wake.
    rfm_key: Option<(u32, RfmScope)>,
    rfm_flats: Vec<usize>,
    /// FastPath: a Wait-returning scan proves its verdict stays exact —
    /// same branch decisions, same folded wakes — until the earliest
    /// instant any time-triggered condition could flip ([`fp_bound`]),
    /// as long as no command issues ([`fp_stamp`]) and no request
    /// arrives ([`fp_rq`] / [`fp_wq`]). Within that window a re-service
    /// at `now < fp_wake` answers from cache without scanning, and a
    /// service at exactly `fp_wake` can issue the precomputed demand
    /// winner ([`fp_winner`]) without re-discovering it.
    fp_valid: bool,
    fp_wake: Time,
    fp_bound: Time,
    fp_stamp: u64,
    fp_rq: u32,
    fp_wq: u32,
    fp_winner: Option<(QueueSel, u32, Command)>,
    /// The demand queue the arming scan selected — the arrival fast
    /// path re-derives the selection and bails if it changed.
    fp_sel: QueueSel,
    /// Per-scan accumulator: min over the flip instants of every
    /// `now`-dependent branch condition the scan evaluated (refresh
    /// commit triggers, FR-RFM stacking guards, quiesce verdicts).
    fp_bound_acc: Time,
    /// Per-scan demand-winner precompute: the minimal `(at, !is_hit,
    /// arrival)` candidate — exactly the candidate the scan's comparator
    /// picks once `now` reaches `at` (first-in-queue-order on ties,
    /// matching the scan's strict `better` test and its early break,
    /// because arrivals are non-decreasing in queue order).
    fp_cand: Option<(Time, bool, Time, u32, Command)>,
    /// Section verdict: sections 1–5 of `next_step_b` never read the
    /// demand queues, so a full scan's section outcome — the branch
    /// decisions taken and the wakes folded before the demand stage —
    /// remains exact across request arrivals and servings. A later
    /// service inside the window re-runs only the demand stage against
    /// the carried section wake ([`MemoryController::next_step_demand_b`]).
    /// Validity: `sec_bound` (same flip-instant bound as the FastPath),
    /// `now < sec_wake` (sections take no action strictly before their
    /// own wake), the precondition flags re-checked directly, and the
    /// issue stamps: with `sec_pure` (no legality instants folded into
    /// the section wake) the verdict even survives column-command
    /// issues, which touch no row state, no refresh/maintenance state,
    /// and can never alert (alerts arise only in `close_row`).
    sec_valid: bool,
    sec_wake: Time,
    sec_pure: bool,
    sec_stamp: u64,
    sec_col: u64,
    sec_bound: Time,
}

impl CtrlScratch {
    /// Builds a scratch synchronized to `mc`'s current device state.
    pub fn for_controller(mc: &MemoryController) -> CtrlScratch {
        let g = *mc.device.geometry();
        let banks = g.banks_per_channel() as usize;
        let ranks = g.ranks_per_channel() as usize;
        let mut s = CtrlScratch {
            epoch: 1,
            rank_epoch: vec![1; ranks],
            col_epoch: 0,
            open: vec![CLOSED; banks],
            rank_open: vec![0; ranks],
            bank_has_hit: vec![false; banks],
            bank_has_conflict: vec![false; banks],
            blocked: Vec::new(),
            q_stamp: vec![0; ranks],
            q_val: vec![false; ranks],
            l_stamp: vec![0; banks * CLASSES],
            l_at: vec![Time::ZERO; banks * CLASSES],
            flat_rank: vec![0; banks],
            q_flat: [Vec::new(), Vec::new()],
            q_row: [Vec::new(), Vec::new()],
            rfm_key: None,
            rfm_flats: Vec::new(),
            fp_valid: false,
            fp_wake: Time::ZERO,
            fp_bound: Time::ZERO,
            fp_stamp: 0,
            fp_rq: 0,
            fp_wq: 0,
            fp_winner: None,
            fp_sel: QueueSel::Read,
            fp_bound_acc: Time::MAX,
            fp_cand: None,
            sec_valid: false,
            sec_wake: Time::ZERO,
            sec_pure: false,
            sec_stamp: 0,
            sec_col: 0,
            sec_bound: Time::ZERO,
        };
        s.sync_queue(QueueSel::Read, &mc.read_q, &g);
        s.sync_queue(QueueSel::Write, &mc.write_q, &g);
        for b in g.banks_in_channel(0) {
            s.flat_rank[g.flat_bank(b)] = b.rank;
            if let Some(row) = mc.device.open_row(b) {
                s.open[g.flat_bank(b)] = row;
                s.rank_open[b.rank as usize] += 1;
            }
        }
        s
    }

    /// Whether the mirror matches the device's actual row state.
    fn in_sync(&self, device: &DramDevice) -> bool {
        let g = device.geometry();
        g.banks_in_channel(0).all(|b| {
            let mirrored = self.open[g.flat_bank(b)];
            device.open_row(b) == (mirrored != CLOSED).then_some(mirrored)
        })
    }

    /// Folds an issued command into the mirror. Only ACT/PRE/PREab move
    /// row state; REF/RFM blocking windows and column commands do not
    /// (`DramDevice::issue`).
    fn note_issue(&mut self, cmd: &Command, g: &Geometry) {
        // `DramDevice::issue` mutates per-bank / per-rank timing state
        // only on the command's own rank; the channel-global movement
        // (`cmd_free`, `last_col`, `data_free`) is read back from the
        // device per legality query. Everything else survives.
        let rank = match *cmd {
            Command::Activate { bank, .. }
            | Command::Precharge { bank }
            | Command::Read { bank, .. }
            | Command::Write { bank, .. } => bank.rank,
            Command::PrechargeAll { rank, .. }
            | Command::Refresh { rank, .. }
            | Command::Rfm { rank, .. } => rank,
        };
        self.rank_epoch[rank as usize] += 1;
        if cmd.is_column() {
            self.col_epoch += 1;
        }
        match *cmd {
            Command::Activate { bank, row } => {
                let flat = g.flat_bank(bank);
                debug_assert_eq!(self.open[flat], CLOSED, "ACT on open bank");
                self.open[flat] = row;
                self.rank_open[bank.rank as usize] += 1;
            }
            Command::Precharge { bank } => {
                let flat = g.flat_bank(bank);
                if self.open[flat] != CLOSED {
                    self.open[flat] = CLOSED;
                    self.rank_open[bank.rank as usize] -= 1;
                }
            }
            Command::PrechargeAll { rank, .. } => {
                for b in g.banks_in_channel(0).filter(|b| b.rank == rank) {
                    self.open[g.flat_bank(b)] = CLOSED;
                }
                self.rank_open[rank as usize] = 0;
            }
            _ => {}
        }
    }

    /// Queue index for the per-queue mirrors.
    fn qi(sel: QueueSel) -> usize {
        match sel {
            QueueSel::Read => 0,
            QueueSel::Write => 1,
        }
    }

    /// Folds queue entries appended since the last scan into the flat /
    /// row mirror. Queues only grow at the back between scans (enqueues
    /// and retries `push_back`; the sole removal is a served request,
    /// mirrored eagerly by [`CtrlScratch::note_served`]), so catching up
    /// is a walk of the new tail — each request pays `flat_bank` once
    /// per lifetime instead of once per wake.
    fn sync_queue(&mut self, sel: QueueSel, q: &VecDeque<MemRequest>, g: &Geometry) {
        let k = CtrlScratch::qi(sel);
        let flats = &mut self.q_flat[k];
        let rows = &mut self.q_row[k];
        debug_assert!(flats.len() <= q.len(), "queue mirror ahead of queue");
        if flats.len() < q.len() {
            for req in q.range(flats.len()..) {
                flats.push(g.flat_bank(req.addr.bank) as u32);
                rows.push(req.addr.row);
            }
        }
        debug_assert!(
            flats
                .iter()
                .zip(q.iter())
                .all(|(&f, r)| f == g.flat_bank(r.addr.bank) as u32),
            "queue mirror drifted"
        );
    }

    /// Removes a served request from the queue mirror, matching the
    /// `q.remove(idx)` the controller performs for column commands.
    fn note_served(&mut self, sel: QueueSel, idx: usize) {
        let k = CtrlScratch::qi(sel);
        self.q_flat[k].remove(idx);
        self.q_row[k].remove(idx);
    }

    /// Refreshes the cached flat-bank list for the RFM at the front of
    /// the reactive queue, if it changed since the last scan.
    fn sync_rfm(&mut self, device: &DramDevice, rank: u32, scope: RfmScope) {
        if self.rfm_key != Some((rank, scope)) {
            self.rfm_key = Some((rank, scope));
            self.rfm_flats = device.rfm_banks(rank, scope);
        }
    }

    /// Total issued-command count, the FastPath's state-change stamp
    /// (every issue bumps exactly one rank epoch).
    fn issue_stamp(&self) -> u64 {
        self.rank_epoch.iter().sum()
    }

    /// Whether the FastPath verdict still binds `mc` at `now`.
    fn fp_live(&self, mc: &MemoryController, now: Time) -> bool {
        self.fp_valid
            && now < self.fp_bound
            && self.fp_stamp == self.issue_stamp()
            && mc.read_q.len() as u32 == self.fp_rq
            && mc.write_q.len() as u32 == self.fp_wq
    }

    /// Whether the carried section verdict still binds `mc` at `now`,
    /// allowing the demand-only reduced scan. The preconditions that
    /// could arise without an issue (a BlockHammer throttle is inserted
    /// on activation, but re-checking is cheap and future-proof) are
    /// tested directly; everything else moves only through issued
    /// commands, covered by the stamp test: unchanged stamp, or — for a
    /// pure verdict — only column issues since the verdict was recorded.
    fn sec_live(&self, mc: &MemoryController, now: Time) -> bool {
        if !self.sec_valid || now >= self.sec_bound || now >= self.sec_wake {
            return false;
        }
        if mc.abo.is_some()
            || !mc.rfm_queue.is_empty()
            || !mc.para_queue.is_empty()
            || !mc.throttled.is_empty()
        {
            return false;
        }
        let issued = self.issue_stamp() - self.sec_stamp;
        issued == 0 || (self.sec_pure && issued == self.col_epoch - self.sec_col)
    }

    /// Memoized `rank_quiesced` for the current wake. Inlines
    /// `MemoryController::rank_quiesced` so a not-quiesced verdict can
    /// record the instant it would flip (`deadline − frrfm_guard`) into
    /// the FastPath bound; a quiesced verdict is monotone under an
    /// unchanged issue stamp and needs no bound.
    fn quiesced(&mut self, mc: &MemoryController, rank: u32, now: Time) -> bool {
        let r = rank as usize;
        if self.q_stamp[r] != self.epoch {
            self.q_stamp[r] = self.epoch;
            let mut v = mc.ref_pending[r] > 0;
            if !v {
                if let Some(d) = mc.defense.next_deadline(rank, now) {
                    if now + mc.cfg.frrfm_guard >= d {
                        v = true;
                    } else {
                        self.fp_bound_acc = self.fp_bound_acc.min(d - mc.cfg.frrfm_guard);
                    }
                }
            }
            debug_assert_eq!(v, mc.rank_quiesced(rank, now), "quiesce memo drifted");
            self.q_val[r] = v;
        }
        self.q_val[r]
    }

    /// Memoized `earliest_legal` for `cmd` of `class` on `flat`.
    ///
    /// Column classes memoize only the rank-local component
    /// ([`DramDevice::earliest_column_rank_part`]) and re-fold the
    /// channel-global bus terms per query, so a column issue anywhere
    /// on the channel leaves every cached RD/WR bound valid — only
    /// commands on the bank's own rank invalidate. Row classes memoize
    /// the full unclamped bound; folding the fill-time `cmd_free` is
    /// sound because `cmd_free` is monotone and re-clamped per query.
    fn legal(
        &mut self,
        device: &DramDevice,
        flat: usize,
        class: usize,
        cmd: &Command,
        now: Time,
    ) -> Time {
        let i = flat * CLASSES + class;
        let stamp = self.rank_epoch[self.flat_rank[flat] as usize];
        let (cmd_free, last_col, data_free) = device.bus_state();
        let at = if class == CLASS_RD || class == CLASS_WR {
            let bank = match *cmd {
                Command::Read { bank, .. } | Command::Write { bank, .. } => bank,
                _ => unreachable!("column class carries a column command"),
            };
            if self.l_stamp[i] != stamp {
                self.l_stamp[i] = stamp;
                self.l_at[i] = device.earliest_column_rank_part(bank, class == CLASS_RD);
            }
            let t = device.timing();
            let mut at = self.l_at[i].max(cmd_free);
            if let Some((last, bg)) = last_col {
                let ccd = if bg == bank.bank_group {
                    t.t_ccd_l
                } else {
                    t.t_ccd_s
                };
                at = at.max(last + ccd);
            }
            let lat = if class == CLASS_RD { t.t_cl } else { t.t_cwl };
            at = at.max(Time::ZERO + data_free.saturating_since(Time::ZERO + lat));
            at.max(now)
        } else {
            if self.l_stamp[i] != stamp {
                self.l_stamp[i] = stamp;
                self.l_at[i] = device.earliest_legal(cmd, Time::ZERO);
            }
            self.l_at[i].max(cmd_free).max(now)
        };
        debug_assert_eq!(at, device.earliest_legal(cmd, now), "legality memo drifted");
        at
    }
}

/// Outcome of [`MemoryController::arrival_fast`].
enum ArrivalFast {
    /// The verdict absorbed the arrival in place; wait until the
    /// (possibly earlier) cached wake.
    Wait(Time),
    /// The newcomer was the unique issueable-now candidate and was
    /// issued; fall into the normal loop for the post-issue scan.
    Issued,
    /// Not a case the fast path can absorb — run the scan.
    Bail,
}

/// Step equality for the debug shadow checks (`Step` intentionally does
/// not implement `PartialEq`; the scheduler never compares steps).
#[cfg(debug_assertions)]
fn step_eq(a: &Step, b: &Step) -> bool {
    match (a, b) {
        (Step::Issue(ca, sa), Step::Issue(cb, sb)) => ca == cb && sa == sb,
        (Step::Again, Step::Again) => true,
        (Step::Wait(wa), Step::Wait(wb)) => wa == wb,
        _ => false,
    }
}

impl MemoryController {
    /// [`MemoryController::service`], computed against `scratch`'s cached
    /// row state: identical decisions and identical issued command
    /// stream, a fraction of the per-wake cost. `scratch` must have been
    /// built by [`CtrlScratch::for_controller`] on this controller (or
    /// kept in sync ever since); requests must arrive with
    /// non-decreasing `arrival` stamps (the `lh-sim` contract).
    pub fn service_batched(&mut self, now: Time, scratch: &mut CtrlScratch) -> Time {
        debug_assert!(scratch.in_sync(&self.device), "open-row mirror drifted");
        self.stats.service_calls += 1;
        if scratch.fp_live(self, now) {
            if now < scratch.fp_wake {
                // A spurious kick inside the proven-quiet window: the
                // full scan would re-derive exactly the cached wake.
                #[cfg(debug_assertions)]
                {
                    let mut shadow = scratch.clone();
                    self.update_modes(now);
                    match self.next_step_b(now, &mut shadow) {
                        Step::Wait(w) if w == scratch.fp_wake => {}
                        other => panic!(
                            "FastPath wait {} diverged from scan {other:?}",
                            scratch.fp_wake
                        ),
                    }
                }
                return scratch.fp_wake;
            }
            if now == scratch.fp_wake {
                if let Some((sel, idx, cmd)) = scratch.fp_winner {
                    // The wake landed on the precomputed demand winner:
                    // issue it without re-discovering it, then fall into
                    // the normal loop for the post-issue scan.
                    let served = cmd.is_column().then_some((sel, idx as usize));
                    #[cfg(debug_assertions)]
                    {
                        let mut shadow = scratch.clone();
                        self.update_modes(now);
                        match self.next_step_b(now, &mut shadow) {
                            Step::Issue(c, s) if c == cmd && s == served => {}
                            other => panic!("FastPath winner {cmd:?} diverged from scan {other:?}"),
                        }
                    }
                    scratch.note_issue(&cmd, self.device.geometry());
                    if let Some((sel, idx)) = served {
                        scratch.note_served(sel, idx);
                    }
                    self.issue(cmd, now, served);
                }
            }
        } else {
            match self.arrival_fast(now, scratch) {
                ArrivalFast::Wait(w) => return w,
                ArrivalFast::Issued | ArrivalFast::Bail => {}
            }
        }
        loop {
            self.update_modes(now);
            let step = if scratch.sec_live(self, now) {
                self.next_step_demand_b(now, scratch)
            } else {
                self.next_step_b(now, scratch)
            };
            match step {
                Step::Issue(cmd, served) => {
                    scratch.note_issue(&cmd, self.device.geometry());
                    if let Some((sel, idx)) = served {
                        scratch.note_served(sel, idx);
                    }
                    self.issue(cmd, now, served);
                }
                Step::Again => {}
                Step::Wait(t) => {
                    assert!(
                        t > now,
                        "scheduler wake {t} not strictly after now {now}: \
                         a deferral failed to register its flip time"
                    );
                    return t;
                }
            }
        }
    }

    /// O(1) absorption of a single request arrival into a live FastPath
    /// verdict, instead of a full (or reduced) rescan.
    ///
    /// Soundness: a single arrival changes nothing a Wait-returning scan
    /// read except the tail of one demand queue — sections 1–5 never
    /// touch the queues (the carried section verdict), and the demand
    /// stage is a pure min-fold over candidates, so one new entry either
    /// leaves the verdict untouched (non-selected queue, or a skipped
    /// candidate) or folds in as exactly one new candidate. The newcomer
    /// interacts with existing candidates only through the per-bank
    /// hit/conflict pre-scan — bailed out when an earlier same-bank
    /// entry exists — and through the comparator, where `at ≥ fp_wake >
    /// now` for every cached candidate pins the outcome.
    fn arrival_fast(&mut self, now: Time, s: &mut CtrlScratch) -> ArrivalFast {
        if !s.fp_valid
            || now >= s.fp_bound
            || now >= s.fp_wake
            || s.fp_stamp != s.issue_stamp()
            || !s.sec_live(self, now)
        {
            return ArrivalFast::Bail;
        }
        let rq = self.read_q.len() as u32;
        let wq = self.write_q.len() as u32;
        let arr_sel = if rq == s.fp_rq + 1 && wq == s.fp_wq {
            QueueSel::Read
        } else if wq == s.fp_wq + 1 && rq == s.fp_rq {
            QueueSel::Write
        } else {
            // Multi-arrival (shrinks are impossible without an issue).
            return ArrivalFast::Bail;
        };
        // The reference loop runs `update_modes` before every scan; in
        // the proven window its only live effect is the write-drain
        // hysteresis, which the selection re-derivation below observes.
        // Re-running it in the fallback loop after a bail is idempotent.
        self.update_modes(now);
        let sel = if self.draining || (self.read_q.is_empty() && !self.write_q.is_empty()) {
            QueueSel::Write
        } else {
            QueueSel::Read
        };
        if sel != s.fp_sel {
            return ArrivalFast::Bail;
        }
        #[cfg(debug_assertions)]
        let shadow = s.clone();
        if arr_sel != sel {
            // The arrival landed in the queue the verdict never reads:
            // every branch decision and every fold is untouched.
            s.fp_rq = rq;
            s.fp_wq = wq;
            #[cfg(debug_assertions)]
            {
                let mut sh = shadow;
                match self.next_step_b(now, &mut sh) {
                    Step::Wait(w) if w == s.fp_wake => {}
                    other => panic!(
                        "arrival fast wait {} diverged from scan {other:?}",
                        s.fp_wake
                    ),
                }
            }
            return ArrivalFast::Wait(s.fp_wake);
        }
        let g = *self.device.geometry();
        let q = match sel {
            QueueSel::Read => &self.read_q,
            QueueSel::Write => &self.write_q,
        };
        let k = CtrlScratch::qi(sel);
        s.sync_queue(sel, q, &g);
        let idx = q.len() - 1;
        let flat32 = s.q_flat[k][idx];
        if s.q_flat[k][..idx].contains(&flat32) {
            // An earlier same-bank entry: the newcomer can flip its
            // hit/conflict pre-scan skips (and vice versa) — rescan.
            return ArrivalFast::Bail;
        }
        let flat = flat32 as usize;
        let req = &q[idx];
        let bank = req.addr.bank;
        let row = req.addr.row;
        let col = req.addr.col;
        let kind = req.kind;
        let arrival = req.arrival;
        if self.rank_quiesced(bank.rank, now) {
            // Skipped candidate, verdict unchanged: a quiesced verdict
            // is monotone under the unchanged issue stamp (see
            // `CtrlScratch::quiesced`).
            s.fp_rq = rq;
            s.fp_wq = wq;
            #[cfg(debug_assertions)]
            {
                let mut sh = shadow;
                match self.next_step_b(now, &mut sh) {
                    Step::Wait(w) if w == s.fp_wake => {}
                    other => panic!(
                        "arrival fast wait {} diverged from scan {other:?}",
                        s.fp_wake
                    ),
                }
            }
            return ArrivalFast::Wait(s.fp_wake);
        }
        if let Some(d) = self.defense.next_deadline(bank.rank, now) {
            // The scan records every not-quiesced rank's flip instant;
            // mirror it for the newcomer's rank, which may not have had
            // a candidate in the arming scan.
            let flip = d - self.cfg.frrfm_guard;
            s.fp_bound = s.fp_bound.min(flip);
            s.sec_bound = s.sec_bound.min(flip);
        }
        let open = s.open[flat];
        let (cmd, is_hit, class) = if open == CLOSED {
            (Command::Activate { bank, row }, false, CLASS_ACT)
        } else if open == row {
            match kind {
                AccessKind::Read => (Command::Read { bank, col }, true, CLASS_RD),
                AccessKind::Write => (Command::Write { bank, col }, true, CLASS_WR),
            }
        } else {
            // No same-bank entry ⇒ `bank_has_hit` is false: the scan
            // would take the conflict arm without skipping.
            (Command::Precharge { bank }, false, CLASS_PRE)
        };
        let at = s.legal(&self.device, flat, class, &cmd, now);
        if at <= now {
            // Every cached candidate waits (`at ≥ fp_wake > now`), so
            // the newcomer is the unique issueable-now candidate and
            // wins the comparator outright.
            let served = cmd.is_column().then_some((sel, idx));
            #[cfg(debug_assertions)]
            {
                let mut sh = shadow;
                match self.next_step_b(now, &mut sh) {
                    Step::Issue(c, sv) if c == cmd && sv == served => {}
                    other => panic!("arrival fast issue {cmd:?} diverged from scan {other:?}"),
                }
            }
            s.note_issue(&cmd, &g);
            if let Some((ssel, sidx)) = served {
                s.note_served(ssel, sidx);
            }
            self.issue(cmd, now, served);
            return ArrivalFast::Issued;
        }
        // Fold the newcomer into the cached verdict: candidate min,
        // wake, winner. Strict `<` keeps the earlier-in-queue candidate
        // on ties, matching the scan (the newcomer is last in order).
        let key = (at, !is_hit, arrival);
        if match s.fp_cand {
            None => true,
            Some((a, h, arr, _, _)) => key < (a, h, arr),
        } {
            s.fp_cand = Some((at, !is_hit, arrival, idx as u32, cmd));
        }
        s.fp_wake = s.fp_wake.min(at);
        s.fp_winner = match s.fp_cand {
            Some((cat, _, _, cidx, ccmd))
                if cat == s.fp_wake && cat < s.sec_wake && cat < s.fp_bound =>
            {
                Some((sel, cidx, ccmd))
            }
            _ => None,
        };
        s.fp_rq = rq;
        s.fp_wq = wq;
        #[cfg(debug_assertions)]
        {
            let mut sh = shadow;
            match self.next_step_b(now, &mut sh) {
                Step::Wait(w) if w == s.fp_wake => {}
                other => panic!(
                    "arrival fast fold {} diverged from scan {other:?}",
                    s.fp_wake
                ),
            }
        }
        ArrivalFast::Wait(s.fp_wake)
    }

    /// `next_step` against the mirror. Structural copy of
    /// `controller.rs`'s `next_step`; every behavioral divergence is a
    /// bug the identity tests exist to catch.
    fn next_step_b(&mut self, now: Time, s: &mut CtrlScratch) -> Step {
        s.epoch += 1;
        s.fp_valid = false;
        s.fp_bound_acc = Time::MAX;
        s.fp_cand = None;
        // FastPath preconditions: with these quiet, `update_modes` is a
        // provable no-op until the first accumulated flip instant, and
        // the only actors are the refresh schedule, FR-RFM maintenance,
        // and the demand queues — whose deferrals all fold absolute
        // instants into `wake` / `fp_bound_acc` below.
        let mut fp_ok = self.abo.is_none()
            && self.throttled.is_empty()
            && self.rfm_queue.is_empty()
            && self.para_queue.is_empty()
            && self.cfg.row_policy != RowPolicy::Closed;
        // The section verdict is "pure" while no section folded a
        // legality instant (`issue_or_wake`) into `wake`: pure folds are
        // absolute schedule times, indifferent to column issues.
        let mut sec_pure = true;
        let t = *self.device.timing();
        let mut wake = Time::MAX;

        // --- 1. ABO back-off protocol -----------------------------------
        if let Some(abo) = self.abo {
            match abo.phase {
                AboPhase::Window => {
                    wake = wake.min(abo.recover_at);
                }
                AboPhase::Recover => {
                    let scope = self
                        .device
                        .prac_config()
                        .map(|p| p.scope)
                        .unwrap_or(AlertScope::Channel);
                    let rank = abo.alert.bank.rank;
                    let alert_flat = self.device.geometry().flat_bank(abo.alert.bank);
                    let close_cmd = match scope {
                        AlertScope::Channel => (s.rank_open[rank as usize] > 0)
                            .then_some(Command::PrechargeAll { channel: 0, rank }),
                        AlertScope::Bank => {
                            (s.open[alert_flat] != CLOSED).then_some(Command::Precharge {
                                bank: abo.alert.bank,
                            })
                        }
                    };
                    if let Some(cmd) = close_cmd {
                        sec_pure = false;
                        if let Some(step) = self.issue_or_wake(cmd, now, &mut wake) {
                            return step;
                        }
                    } else if abo.rfms_left > 0 {
                        let rfm_scope = match scope {
                            AlertScope::Channel => RfmScope::AllBank,
                            AlertScope::Bank => RfmScope::SingleBank {
                                bank_group: abo.alert.bank.bank_group,
                                bank: abo.alert.bank.bank,
                            },
                        };
                        let cmd = Command::Rfm {
                            channel: 0,
                            rank,
                            scope: rfm_scope,
                        };
                        sec_pure = false;
                        if let Some(step) = self.issue_or_wake(cmd, now, &mut wake) {
                            return step;
                        }
                    } else {
                        self.device.recovery_complete(abo.last_rfm_end);
                        self.abo = None;
                        self.stats.backoffs += 1;
                        return Step::Again;
                    }
                    if scope == AlertScope::Channel {
                        return Step::Wait(wake);
                    }
                }
            }
        }

        // --- 2. Committed refreshes -------------------------------------
        for rank in 0..self.ref_due.len() as u32 {
            let pending = self.ref_pending[rank as usize];
            let due = self.ref_due[rank as usize];
            if due > now {
                wake = wake.min(due);
            }
            if pending == 0 {
                if now >= due {
                    // The commit/postpone machinery is live right now:
                    // its `clear_of_rfm` gap test re-evaluates against
                    // wall-clock every call, so no quiet window exists.
                    fp_ok = false;
                    if self.abo.is_none() {
                        let settle_end = self.rfm_end[rank as usize] + self.cfg.frrfm_guard * 2;
                        if settle_end > now {
                            wake = wake.min(settle_end);
                        }
                        let timeout = due + t.t_refi / 2;
                        if timeout > now {
                            wake = wake.min(timeout);
                        }
                    }
                } else {
                    // `update_modes` commits or postpones at `due`.
                    s.fp_bound_acc = s.fp_bound_acc.min(due);
                }
                continue;
            }
            let next_deadline = self.defense.next_deadline(rank, now);
            if let Some(d) = next_deadline {
                // `next_deadline` itself advances when `now` crosses it.
                s.fp_bound_acc = s.fp_bound_acc.min(d);
            }
            if let (Some(deadline), Some(period)) = (next_deadline, self.maint_period) {
                let fits_between_rfms = t.t_rfm + t.t_rfc + t.t_cmd * 2 <= period;
                if fits_between_rfms {
                    if now + t.t_rfc + t.t_cmd > deadline {
                        if deadline > now {
                            wake = wake.min(deadline);
                        }
                        continue;
                    }
                    // The stacking guard first flips strictly after
                    // `deadline − (tRFC + tCMD)`.
                    s.fp_bound_acc = s.fp_bound_acc.min(deadline - t.t_rfc - t.t_cmd);
                }
            }
            let cmd = if s.rank_open[rank as usize] > 0 {
                Command::PrechargeAll { channel: 0, rank }
            } else {
                Command::Refresh { channel: 0, rank }
            };
            sec_pure = false;
            if let Some(step) = self.issue_or_wake(cmd, now, &mut wake) {
                return step;
            }
        }

        // --- 3. Scheduled maintenance (FR-RFM fixed-rate RFMs) ----------
        for rank in 0..self.ref_due.len() as u32 {
            if let Some(m) = self.defense.next_maintenance(rank) {
                let deadline = m.due;
                let close_at = deadline - t.t_rp - t.t_cmd;
                if now < close_at {
                    wake = wake.min(close_at);
                    continue;
                }
                if s.rank_open[rank as usize] > 0 {
                    let cmd = Command::PrechargeAll { channel: 0, rank };
                    sec_pure = false;
                    if let Some(step) = self.issue_or_wake(cmd, now, &mut wake) {
                        return step;
                    }
                } else if now < deadline {
                    wake = wake.min(deadline);
                } else {
                    let cmd = Command::Rfm {
                        channel: 0,
                        rank,
                        scope: m.scope,
                    };
                    sec_pure = false;
                    if let Some(step) = self.issue_or_wake(cmd, now, &mut wake) {
                        return step;
                    }
                }
            }
        }

        // --- 4. Reactive RFMs (PRFM) -------------------------------------
        if let Some(&(rank, scope)) = self.rfm_queue.front() {
            s.sync_rfm(&self.device, rank, scope);
            let open_flat = s.rfm_flats.iter().copied().find(|&f| s.open[f] != CLOSED);
            let cmd = if let Some(f) = open_flat {
                Command::Precharge {
                    bank: self.device.geometry().bank_from_flat(0, f),
                }
            } else {
                Command::Rfm {
                    channel: 0,
                    rank,
                    scope,
                }
            };
            sec_pure = false;
            if let Some(step) = self.issue_or_wake(cmd, now, &mut wake) {
                return step;
            }
        }

        // --- 5. PARA victim refreshes ------------------------------------
        if let Some(job) = self.para_queue.front().copied() {
            let flat = self.device.geometry().flat_bank(job.bank);
            let is_open = s.open[flat] != CLOSED;
            let cmd = match (job.activated, is_open) {
                (false, true) => Command::Precharge { bank: job.bank },
                (false, false) => Command::Activate {
                    bank: job.bank,
                    row: job.victim,
                },
                (true, true) => Command::Precharge { bank: job.bank },
                (true, false) => {
                    self.para_queue.pop_front();
                    return Step::Again;
                }
            };
            sec_pure = false;
            if let Some(step) = self.issue_or_wake(cmd, now, &mut wake) {
                return step;
            }
        }

        // --- 5b. Strictly closed-page policy ----------------------------
        if self.cfg.row_policy == RowPolicy::Closed && !self.abo_channel_stall() {
            let g = *self.device.geometry();
            for bank in g.banks_in_channel(0) {
                let flat = g.flat_bank(bank);
                let open_row = s.open[flat];
                if open_row == CLOSED {
                    continue;
                }
                let (srow, served) = self.streak[flat];
                if srow != open_row || served == 0 {
                    continue;
                }
                let cmd = Command::Precharge { bank };
                sec_pure = false;
                if let Some(step) = self.issue_or_wake(cmd, now, &mut wake) {
                    return step;
                }
            }
        }

        // --- 6. Demand requests (FR-FCFS with column cap) ----------------
        let sec_wake = wake;
        let mut demand_sel = None;
        if !self.abo_channel_stall() {
            let sel = if self.draining || (self.read_q.is_empty() && !self.write_q.is_empty()) {
                QueueSel::Write
            } else {
                QueueSel::Read
            };
            let (step_wake, step) = self.schedule_demand_b(sel, now, s);
            if let Some(step) = step {
                return step;
            }
            wake = wake.min(step_wake);
            demand_sel = Some(sel);
        }

        if fp_ok {
            // This Wait verdict — every branch decision and folded wake —
            // stays exact until `fp_bound_acc`, the next issue, or the
            // next arrival. The demand winner is cacheable only when it
            // strictly precedes every section wake and every flip: on a
            // tie the sections act first at the shared instant.
            s.fp_valid = true;
            s.fp_wake = wake;
            s.fp_bound = s.fp_bound_acc;
            s.fp_stamp = s.issue_stamp();
            s.fp_rq = self.read_q.len() as u32;
            s.fp_wq = self.write_q.len() as u32;
            s.fp_winner = match (demand_sel, s.fp_cand) {
                (Some(sel), Some((at, _, _, idx, cmd)))
                    if at == wake && at < sec_wake && at < s.fp_bound =>
                {
                    Some((sel, idx, cmd))
                }
                _ => None,
            };
            if let Some(sel) = demand_sel {
                s.fp_sel = sel;
            }
            s.sec_valid = true;
            s.sec_wake = sec_wake;
            s.sec_pure = sec_pure;
            s.sec_stamp = s.fp_stamp;
            s.sec_col = s.col_epoch;
            s.sec_bound = s.fp_bound;
        }
        Step::Wait(wake)
    }

    /// The demand-only reduced scan: re-runs stage 6 of
    /// [`MemoryController::next_step_b`] against the carried section
    /// verdict, skipping sections 1–5 entirely. Sound exactly when
    /// [`CtrlScratch::sec_live`] holds: the sections read no demand
    /// queue, every branch they took is pinned by `sec_bound` /
    /// `sec_wake` / the stamp rule, and every wake they folded is either
    /// an absolute schedule instant (pure) or additionally protected by
    /// an unchanged issue stamp. In debug builds the full scan shadows
    /// every reduced verdict.
    fn next_step_demand_b(&mut self, now: Time, s: &mut CtrlScratch) -> Step {
        #[cfg(debug_assertions)]
        let mut shadow = s.clone();
        s.epoch += 1;
        s.fp_valid = false;
        s.fp_bound_acc = s.sec_bound;
        s.fp_cand = None;
        let mut wake = s.sec_wake;
        // `abo_channel_stall` is false: `sec_live` checked `abo.is_none()`.
        let sel = if self.draining || (self.read_q.is_empty() && !self.write_q.is_empty()) {
            QueueSel::Write
        } else {
            QueueSel::Read
        };
        let (step_wake, step) = self.schedule_demand_b(sel, now, s);
        let step = match step {
            Some(step) => step,
            None => {
                wake = wake.min(step_wake);
                // Re-arm: the section half of the verdict carries over
                // verbatim (the proof composes transitively), the demand
                // half is freshly computed.
                s.fp_valid = true;
                s.fp_wake = wake;
                s.fp_bound = s.fp_bound_acc;
                s.fp_stamp = s.issue_stamp();
                s.fp_rq = self.read_q.len() as u32;
                s.fp_wq = self.write_q.len() as u32;
                s.fp_winner = match s.fp_cand {
                    Some((at, _, _, idx, cmd))
                        if at == wake && at < s.sec_wake && at < s.fp_bound =>
                    {
                        Some((sel, idx, cmd))
                    }
                    _ => None,
                };
                s.fp_sel = sel;
                s.sec_stamp = s.fp_stamp;
                s.sec_col = s.col_epoch;
                s.sec_bound = s.fp_bound;
                Step::Wait(wake)
            }
        };
        #[cfg(debug_assertions)]
        {
            let full = self.next_step_b(now, &mut shadow);
            assert!(
                step_eq(&step, &full),
                "reduced scan {step:?} diverged from full scan {full:?}"
            );
        }
        step
    }

    /// `schedule_demand` against the mirror: same selection, with the
    /// pre-scan in persistent buffers, memoized quiesce/legality queries,
    /// and an early exit once the winner is decided.
    fn schedule_demand_b(
        &self,
        sel: QueueSel,
        now: Time,
        s: &mut CtrlScratch,
    ) -> (Time, Option<Step>) {
        let q = match sel {
            QueueSel::Read => &self.read_q,
            QueueSel::Write => &self.write_q,
        };
        let g = self.device.geometry();
        let k = CtrlScratch::qi(sel);
        s.sync_queue(sel, q, g);
        let mut wake = Time::MAX;

        s.blocked.clear();
        if let Some(&(rank, scope)) = self.rfm_queue.front() {
            s.sync_rfm(&self.device, rank, scope);
            let CtrlScratch {
                blocked, rfm_flats, ..
            } = s;
            blocked.extend_from_slice(rfm_flats);
        }
        if let Some(abo) = &self.abo {
            if abo.phase == AboPhase::Recover
                && self.device.prac_config().map(|p| p.scope) == Some(AlertScope::Bank)
            {
                s.blocked.push(g.flat_bank(abo.alert.bank));
            }
        }
        if let Some(job) = self.para_queue.front() {
            s.blocked.push(g.flat_bank(job.bank));
        }

        {
            let CtrlScratch {
                q_flat,
                q_row,
                bank_has_hit,
                bank_has_conflict,
                open,
                ..
            } = s;
            bank_has_hit.fill(false);
            bank_has_conflict.fill(false);
            for (&flat, &row) in q_flat[k].iter().zip(q_row[k].iter()) {
                let flat = flat as usize;
                let o = open[flat];
                if o != CLOSED {
                    if o == row {
                        bank_has_hit[flat] = true;
                    } else {
                        bank_has_conflict[flat] = true;
                    }
                }
            }
        }

        let have_throttles = !self.throttled.is_empty();
        let mut best: Option<(bool, Time, Time, usize, Command)> = None;
        for (idx, req) in q.iter().enumerate() {
            let bank = req.addr.bank;
            let flat = s.q_flat[k][idx] as usize;
            if s.blocked.contains(&flat) || s.quiesced(self, bank.rank, now) {
                continue;
            }
            let open = s.open[flat];
            if have_throttles {
                if let Some(&until) = self.throttled.get(&(flat, req.addr.row)) {
                    if until > now && open != req.addr.row {
                        wake = wake.min(until);
                        continue;
                    }
                }
            }
            let (cmd, is_hit, class) = if open == CLOSED {
                (
                    Command::Activate {
                        bank,
                        row: req.addr.row,
                    },
                    false,
                    CLASS_ACT,
                )
            } else if open == req.addr.row {
                match req.kind {
                    AccessKind::Read => (
                        Command::Read {
                            bank,
                            col: req.addr.col,
                        },
                        true,
                        CLASS_RD,
                    ),
                    AccessKind::Write => (
                        Command::Write {
                            bank,
                            col: req.addr.col,
                        },
                        true,
                        CLASS_WR,
                    ),
                }
            } else {
                let (srow, scount) = self.streak[flat];
                let capped = srow == open && scount >= self.cfg.col_cap;
                if s.bank_has_hit[flat] && !capped {
                    continue;
                }
                (Command::Precharge { bank }, false, CLASS_PRE)
            };
            if is_hit {
                let (srow, scount) = self.streak[flat];
                if srow == req.addr.row && scount >= self.cfg.col_cap && s.bank_has_conflict[flat] {
                    continue;
                }
            }
            let at = s.legal(&self.device, flat, class, &cmd, now);
            // FastPath winner precompute: the minimal `(at, !is_hit,
            // arrival)` candidate is the one the comparator below picks
            // once `now` reaches `at` (strict `<` keeps the first in
            // queue order, matching the scan's tie-breaks).
            let fp_key = (at, !is_hit, req.arrival);
            if match s.fp_cand {
                None => true,
                Some((a, h, arr, _, _)) => fp_key < (a, h, arr),
            } {
                s.fp_cand = Some((at, !is_hit, req.arrival, idx as u32, cmd));
            }
            let key = (!is_hit, at, req.arrival, idx, cmd);
            let better = match &best {
                None => true,
                Some(b) => {
                    let key_now = key.1 <= now;
                    let best_now = b.1 <= now;
                    match (key_now, best_now) {
                        (true, false) => true,
                        (false, true) => false,
                        (true, true) => (key.0, key.2) < (b.0, b.2),
                        (false, false) => key.1 < b.1,
                    }
                }
            };
            if better {
                best = Some(key);
            }
            // An issueable-now row hit is final: a later candidate only
            // wins by being an issueable-now hit with a strictly earlier
            // arrival, and queue order keeps arrivals non-decreasing (the
            // caller contract). The wakes later candidates would have
            // folded are irrelevant — on `Step::Issue` the wake is
            // discarded and the service loop re-evaluates.
            if is_hit && at <= now {
                break;
            }
        }
        match best {
            Some((_, at, _, idx, cmd)) if at <= now => {
                let served = cmd.is_column().then_some((sel, idx));
                (wake, Some(Step::Issue(cmd, served)))
            }
            Some((_, at, _, _, _)) => {
                wake = wake.min(at);
                (wake, None)
            }
            None => (wake, None),
        }
    }
}
