//! Adapter for the Fig. 13 performance study, sharded at cell
//! granularity: one harness unit per four-core mix *baseline* (each
//! app alone plus the mix under no defense) and one unit per
//! `(mix, defense, NRH)` cell, with every cell depending on its mix's
//! baseline unit. Quick-scale parallelism is therefore
//! `mixes × defenses × NRH` workers instead of `mixes`, while the
//! expensive baseline simulations still run exactly once per mix —
//! warm from the cache on reruns. `finish` reassembles the per-mix
//! cell grids and reuses the study's own merge, so the sharded path
//! can never drift from `run_performance`'s aggregation.

use lh_harness::{Job, JobContext, Json};

use std::sync::Arc;

use crate::experiment::perf::{
    decode_mix_trace, merge_perf_mixes, run_perf_baseline_on, run_perf_cells_on, MixBaseline,
    PerfPoint, NRH_SWEEP,
};
use crate::Scale;

use crate::registry::{num, scale_of, sim_fingerprint, text};
use crate::report;
use lh_workloads::SharedTrace;

use lh_analysis::AppPerf;
use lh_defenses::DefenseKind;
use lh_dram::Span;

/// Fig. 13: weighted speedup of defenses over NRH.
pub(crate) struct PerfJob;

/// Cells per mix: the full `figure13_set() × NRH_SWEEP` grid.
fn cells_per_mix() -> usize {
    DefenseKind::figure13_set().len() * NRH_SWEEP.len()
}

/// The memoized decoded trace of one mix — built at most once per
/// process, shared by the mix's baseline unit and every cell unit that
/// lands in the same process. Always the *uncounted* decode: whether a
/// unit got a memo hit or rebuilt depends on scheduling, and per-unit
/// counters (pinned in the envelope snapshots) must not.
fn mix_trace(ctx: &JobContext, mix: usize, sim_seed: u64, scale: Scale) -> Arc<SharedTrace> {
    let key = format!(
        "fig13:trace:{}:{}:{mix}:{sim_seed}",
        scale.mixes(),
        ctx.seed
    );
    ctx.memo.get_or_build(&key, || {
        decode_mix_trace(mix, ctx.seed, sim_seed, scale, false)
    })
}

impl PerfJob {
    /// Splits a unit index into its role: `Ok(mix)` for a baseline
    /// unit, `Err((mix, defense index, nrh index))` for a cell unit.
    fn decode(unit: usize, mixes: usize) -> Result<usize, (usize, usize, usize)> {
        if unit < mixes {
            return Ok(unit);
        }
        let cell = unit - mixes;
        let per_mix = cells_per_mix();
        let n = NRH_SWEEP.len();
        Err((cell / per_mix, (cell % per_mix) / n, cell % n))
    }
}

impl Job for PerfJob {
    fn id(&self) -> &'static str {
        "fig13"
    }

    fn description(&self) -> &'static str {
        "weighted speedup of defenses over NRH"
    }

    fn units(&self, ctx: &JobContext) -> Vec<String> {
        let mixes = scale_of(ctx).mixes();
        let defenses = DefenseKind::figure13_set();
        let mut units: Vec<String> = (0..mixes).map(|m| format!("baseline:mix:{m}")).collect();
        for m in 0..mixes {
            for d in &defenses {
                for nrh in &NRH_SWEEP {
                    units.push(format!("mix:{m}:{}:nrh:{nrh}", d.label()));
                }
            }
        }
        units
    }

    fn deps(&self, unit: usize, ctx: &JobContext) -> Vec<usize> {
        match Self::decode(unit, scale_of(ctx).mixes()) {
            Ok(_baseline) => Vec::new(),
            Err((mix, _, _)) => vec![mix],
        }
    }

    fn run_unit(&self, unit: usize, seed: u64, deps: &[Json], ctx: &JobContext) -> Json {
        let scale = scale_of(ctx);
        match Self::decode(unit, scale.mixes()) {
            Ok(mix) => {
                let trace = mix_trace(ctx, mix, seed, scale);
                let b = run_perf_baseline_on(&trace, seed, scale);
                // `sim_seed` rides along so cell units reuse the exact
                // simulation seed of their mix's baseline (alone and
                // defended runs of a mix share one seed); `seconds` is
                // recomputed from the scale, so only instruction counts
                // travel.
                Json::object()
                    .with("mix", mix)
                    .with("sim_seed", seed)
                    .with("base_ws", b.base_ws)
                    .with(
                        "alone_instructions",
                        Json::Array(b.alone.iter().map(|a| a.instructions.into()).collect()),
                    )
            }
            Err((mix, d, n)) => {
                let base = &deps[0];
                let seconds = Span::from_us(scale.perf_span_us()).as_secs();
                let baseline = MixBaseline {
                    alone: base["alone_instructions"]
                        .as_array()
                        .iter()
                        .map(|i| AppPerf {
                            instructions: i.as_u64().expect("baseline instruction count"),
                            seconds,
                        })
                        .collect(),
                    base_ws: base["base_ws"].as_f64().expect("baseline weighted speedup"),
                };
                let sim_seed = base["sim_seed"].as_u64().expect("baseline sim seed");
                let defense = DefenseKind::figure13_set()[d];
                let _ = seed; // cells inherit the baseline's sim seed
                let trace = mix_trace(ctx, mix, sim_seed, scale);
                let p = run_perf_cells_on(
                    &trace,
                    sim_seed,
                    &[(defense, NRH_SWEEP[n])],
                    &baseline,
                    scale,
                )
                .pop()
                .expect("one cell in, one point out");
                Json::object()
                    .with("mix", mix)
                    .with("defense", p.defense.label())
                    .with("nrh", p.nrh)
                    .with("normalized_ws", p.normalized_ws)
            }
        }
    }

    fn finish(&self, units: Vec<Json>, _ctx: &JobContext) -> Json {
        // Reassemble each mix's `figure13_set() × NRH_SWEEP` grid from
        // the cell units (baseline units carry no cells) and reuse the
        // study's own merge so the harness path can never drift from
        // `run_performance`'s aggregation.
        let defenses = DefenseKind::figure13_set();
        let per_mix_cells = cells_per_mix();
        let mixes = units.len() / (1 + per_mix_cells);
        let cells = &units[mixes..];
        let per_mix: Vec<Vec<PerfPoint>> = (0..mixes)
            .map(|m| {
                cells[m * per_mix_cells..(m + 1) * per_mix_cells]
                    .iter()
                    .enumerate()
                    .map(|(c, cell)| PerfPoint {
                        defense: defenses[c / NRH_SWEEP.len()],
                        nrh: NRH_SWEEP[c % NRH_SWEEP.len()],
                        normalized_ws: num(cell, "normalized_ws"),
                    })
                    .collect()
            })
            .collect();
        let study = merge_perf_mixes(&per_mix);
        Json::object().with("mixes", study.mixes).with(
            "cells",
            Json::Array(
                study
                    .points
                    .iter()
                    .map(|p| {
                        Json::object()
                            .with("defense", p.defense.label())
                            .with("nrh", p.nrh)
                            .with("normalized_ws", p.normalized_ws)
                    })
                    .collect(),
            ),
        )
    }

    fn version(&self) -> u32 {
        // v2: per-(mix, defense, NRH) cell units with per-mix baseline
        // dependencies (was: one unit per mix).
        2
    }

    fn fingerprint(&self) -> String {
        sim_fingerprint()
    }

    fn render_text(&self, merged: &Json, _ctx: &JobContext) -> String {
        let cells = merged["cells"].as_array();
        // NRH columns, descending (NRH_SWEEP order); defense rows in
        // first-seen order.
        let mut defenses: Vec<String> = Vec::new();
        for c in cells {
            let d = text(c, "defense");
            if !defenses.contains(&d) {
                defenses.push(d);
            }
        }
        let mut headers: Vec<String> = vec!["defense".to_owned()];
        headers.extend(NRH_SWEEP.iter().map(|n| format!("NRH={n}")));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let rows: Vec<Vec<String>> = defenses
            .iter()
            .map(|d| {
                let mut row = vec![d.clone()];
                for &n in &NRH_SWEEP {
                    let cell = cells.iter().find(|c| {
                        c["defense"].as_str() == Some(d) && c["nrh"].as_u64() == Some(u64::from(n))
                    });
                    row.push(cell.map_or("-".to_owned(), |c| {
                        format!("{:.2}", num(c, "normalized_ws"))
                    }));
                }
                row
            })
            .collect();
        let mut s = report::table(&header_refs, &rows);
        s.push_str(&format!(
            "(normalized weighted speedup; {} mixes; 1.00 = no defense)\n",
            merged["mixes"].as_u64().unwrap_or(0)
        ));
        s
    }
}
