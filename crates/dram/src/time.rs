//! Simulation time.
//!
//! All simulation time is integer **picoseconds**, split into two newtypes:
//! [`Time`] (an instant since simulation start) and [`Span`] (a duration).
//! Integer picoseconds keep the event-driven simulation exactly
//! deterministic: there is no floating-point rounding anywhere on the
//! simulated timeline, so two runs with the same seed produce bit-identical
//! traces.
//!
//! # Examples
//!
//! ```
//! use lh_dram::{Span, Time};
//!
//! let t = Time::ZERO + Span::from_ns(100);
//! assert_eq!(t - Time::ZERO, Span::from_ns(100));
//! assert_eq!(Span::from_us(2).as_ns(), 2_000.0);
//! ```

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant on the simulated timeline, in picoseconds since simulation
/// start.
///
/// `Time` is ordered and supports arithmetic with [`Span`]:
///
/// ```
/// use lh_dram::{Span, Time};
/// let a = Time::from_ns(10);
/// let b = a + Span::from_ns(5);
/// assert!(b > a);
/// assert_eq!(b.as_ps(), 15_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Time(u64);

/// A duration on the simulated timeline, in picoseconds.
///
/// ```
/// use lh_dram::Span;
/// assert_eq!(Span::from_ns(3) * 4, Span::from_ns(12));
/// assert_eq!(Span::from_us(1) / Span::from_ns(250), 4);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Span(u64);

impl Time {
    /// The start of simulated time.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant; useful as an "infinitely far"
    /// sentinel for schedulers.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates an instant from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Time {
        Time(ps)
    }

    /// Creates an instant from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Time {
        Time(ns * 1_000)
    }

    /// Creates an instant from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Time {
        Time(us * 1_000_000)
    }

    /// Creates an instant from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Time {
        Time(ms * 1_000_000_000)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This instant expressed in (possibly fractional) nanoseconds.
    #[inline]
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This instant expressed in (possibly fractional) microseconds.
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration since `earlier`, saturating to zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: Time) -> Span {
        Span(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }
}

impl Span {
    /// The zero-length duration.
    pub const ZERO: Span = Span(0);
    /// The largest representable duration.
    pub const MAX: Span = Span(u64::MAX);

    /// Creates a duration from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Span {
        Span(ps)
    }

    /// Creates a duration from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Span {
        Span(ns * 1_000)
    }

    /// Creates a duration from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Span {
        Span(us * 1_000_000)
    }

    /// Creates a duration from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Span {
        Span(ms * 1_000_000_000)
    }

    /// Creates a duration from a fractional nanosecond count, rounding to
    /// the nearest picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or not finite.
    pub fn from_ns_f64(ns: f64) -> Span {
        assert!(
            ns.is_finite() && ns >= 0.0,
            "span must be a finite, non-negative ns count"
        );
        Span((ns * 1e3).round() as u64)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This duration expressed in (possibly fractional) nanoseconds.
    #[inline]
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This duration expressed in (possibly fractional) microseconds.
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This duration expressed in (possibly fractional) seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// The longer of two durations.
    #[inline]
    pub fn max(self, other: Span) -> Span {
        Span(self.0.max(other.0))
    }

    /// The shorter of two durations.
    #[inline]
    pub fn min(self, other: Span) -> Span {
        Span(self.0.min(other.0))
    }

    /// `self - other`, saturating at zero.
    #[inline]
    pub fn saturating_sub(self, other: Span) -> Span {
        Span(self.0.saturating_sub(other.0))
    }

    /// Whether this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<Span> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Span) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Span> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Span) {
        self.0 += rhs.0;
    }
}

impl Sub<Span> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Span) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign<Span> for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Span) {
        self.0 -= rhs.0;
    }
}

impl Sub<Time> for Time {
    type Output = Span;
    /// Duration between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`Time::saturating_since`] when ordering is unknown.
    #[inline]
    fn sub(self, rhs: Time) -> Span {
        Span(self.0 - rhs.0)
    }
}

impl Add for Span {
    type Output = Span;
    #[inline]
    fn add(self, rhs: Span) -> Span {
        Span(self.0 + rhs.0)
    }
}

impl AddAssign for Span {
    #[inline]
    fn add_assign(&mut self, rhs: Span) {
        self.0 += rhs.0;
    }
}

impl Sub for Span {
    type Output = Span;
    #[inline]
    fn sub(self, rhs: Span) -> Span {
        Span(self.0 - rhs.0)
    }
}

impl Mul<u64> for Span {
    type Output = Span;
    #[inline]
    fn mul(self, rhs: u64) -> Span {
        Span(self.0 * rhs)
    }
}

impl Mul<Span> for u64 {
    type Output = Span;
    #[inline]
    fn mul(self, rhs: Span) -> Span {
        Span(self * rhs.0)
    }
}

impl Div<u64> for Span {
    type Output = Span;
    #[inline]
    fn div(self, rhs: u64) -> Span {
        Span(self.0 / rhs)
    }
}

impl Div<Span> for Span {
    type Output = u64;
    /// How many whole `rhs` fit into `self`.
    #[inline]
    fn div(self, rhs: Span) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem<Span> for Span {
    type Output = Span;
    #[inline]
    fn rem(self, rhs: Span) -> Span {
        Span(self.0 % rhs.0)
    }
}

impl Sum for Span {
    fn sum<I: Iterator<Item = Span>>(iter: I) -> Span {
        Span(iter.map(|s| s.0).sum())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", Span(self.0))
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps >= 1_000_000_000_000 {
            write!(f, "{:.3} s", ps as f64 / 1e12)
        } else if ps >= 1_000_000_000 {
            write!(f, "{:.3} ms", ps as f64 / 1e9)
        } else if ps >= 1_000_000 {
            write!(f, "{:.3} us", ps as f64 / 1e6)
        } else if ps >= 1_000 {
            write!(f, "{:.3} ns", ps as f64 / 1e3)
        } else {
            write!(f, "{ps} ps")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(Time::from_ns(5).as_ps(), 5_000);
        assert_eq!(Time::from_us(2).as_ps(), 2_000_000);
        assert_eq!(Span::from_ms(1).as_ps(), 1_000_000_000);
        assert_eq!(Span::from_ns_f64(1.5).as_ps(), 1_500);
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_ns(100);
        assert_eq!(t + Span::from_ns(50), Time::from_ns(150));
        assert_eq!(t - Span::from_ns(50), Time::from_ns(50));
        assert_eq!(Time::from_ns(150) - t, Span::from_ns(50));
        assert_eq!(Span::from_ns(10) * 3, Span::from_ns(30));
        assert_eq!(Span::from_ns(30) / 3, Span::from_ns(10));
        assert_eq!(Span::from_ns(30) / Span::from_ns(10), 3);
        assert_eq!(Span::from_ns(35) % Span::from_ns(10), Span::from_ns(5));
    }

    #[test]
    fn saturating_behaviour() {
        let early = Time::from_ns(10);
        let late = Time::from_ns(20);
        assert_eq!(early.saturating_since(late), Span::ZERO);
        assert_eq!(late.saturating_since(early), Span::from_ns(10));
        assert_eq!(
            Span::from_ns(5).saturating_sub(Span::from_ns(9)),
            Span::ZERO
        );
    }

    #[test]
    fn ordering_and_minmax() {
        let a = Time::from_ns(1);
        let b = Time::from_ns(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert!(Span::from_ns(1) < Span::from_ns(2));
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(Span::from_ps(999).to_string(), "999 ps");
        assert_eq!(Span::from_ns(1).to_string(), "1.000 ns");
        assert_eq!(Span::from_us(25).to_string(), "25.000 us");
        assert_eq!(Span::from_ms(32).to_string(), "32.000 ms");
    }

    #[test]
    fn sum_of_spans() {
        let spans = [Span::from_ns(1), Span::from_ns(2), Span::from_ns(3)];
        let total: Span = spans.iter().copied().sum();
        assert_eq!(total, Span::from_ns(6));
    }

    #[test]
    #[should_panic]
    fn negative_ns_f64_panics() {
        let _ = Span::from_ns_f64(-1.0);
    }
}
