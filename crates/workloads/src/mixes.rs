//! Multiprogrammed workload mixes for the Fig. 13 performance study.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::spec::AppProfile;

/// The pool of synthetic applications the mixes draw from: a spread of
/// RBMPKI values mirroring the SPEC2017+2006 range the paper uses.
pub fn app_pool() -> Vec<AppProfile> {
    [
        ("pool-0.5", 0.5),
        ("pool-1", 1.0),
        ("pool-2", 2.0),
        ("pool-4", 4.0),
        ("pool-6", 6.0),
        ("pool-9", 9.0),
        ("pool-13", 13.0),
        ("pool-18", 18.0),
        ("pool-25", 25.0),
        ("pool-35", 35.0),
    ]
    .iter()
    .map(|&(name, r)| AppProfile::with_rbmpki(name, r))
    .collect()
}

/// Draws `n` four-core mixes from the pool (with replacement), seeded.
pub fn four_core_mixes(n: usize, seed: u64) -> Vec<[AppProfile; 4]> {
    let pool = app_pool();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| core::array::from_fn(|_| pool[rng.gen_range(0..pool.len())].clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_spans_the_intensity_range() {
        let pool = app_pool();
        assert_eq!(pool.len(), 10);
        let min = pool
            .iter()
            .map(|p| p.rbmpki())
            .fold(f64::INFINITY, f64::min);
        let max = pool.iter().map(|p| p.rbmpki()).fold(0.0, f64::max);
        assert!(min < 1.0, "min {min}");
        assert!(max > 20.0, "max {max}");
    }

    #[test]
    fn mixes_are_deterministic_per_seed() {
        let a = four_core_mixes(5, 9);
        let b = four_core_mixes(5, 9);
        assert_eq!(a, b);
        let c = four_core_mixes(5, 10);
        assert_ne!(a, c);
        assert_eq!(a.len(), 5);
    }
}
