//! §6.3 multibit bench: a quaternary transmission with calibration.

use criterion::{criterion_group, criterion_main, Criterion};
use lh_bench::experiment::multibit::run_multibit;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("sec63_multibit");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(10));
    g.bench_function("quaternary_4bytes", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            run_multibit(4, 4, seed)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
