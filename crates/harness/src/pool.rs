//! A work-claiming thread pool that schedules unit DAGs topologically.
//!
//! Workers claim *ready* units — units whose dependencies have all
//! completed — from a shared scheduler and write results into their
//! unit's slot, so the returned vector is always in unit order
//! regardless of completion order. Independent units (the common case:
//! every flat sweep) degenerate to plain work claiming with perfect
//! load balance for units of unequal cost; the scheduler's per-unit
//! overhead (one mutex hop and a heap pop) is noise next to any real
//! simulation unit.
//!
//! Determinism: claim order never influences results — a unit's inputs
//! are its index, its dependency outputs (fixed by the DAG) and
//! whatever the caller derives from the index (seeds) — so any worker
//! count produces bit-identical output.

use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex};

/// Validates `deps` as a DAG over `deps.len()` units.
///
/// Returns the number of units on success.
///
/// # Errors
///
/// Out-of-range or self dependencies, and dependency cycles, are
/// reported with the offending unit indices.
pub fn validate_dag(deps: &[Vec<usize>]) -> Result<usize, String> {
    let n = deps.len();
    for (unit, unit_deps) in deps.iter().enumerate() {
        for &d in unit_deps {
            if d >= n {
                return Err(format!(
                    "unit {unit} depends on out-of-range unit {d} (only {n} units)"
                ));
            }
            if d == unit {
                return Err(format!("unit {unit} depends on itself"));
            }
        }
    }
    // Kahn's algorithm: if a topological order does not cover every
    // unit, the leftovers are exactly the units on or downstream of a
    // cycle.
    let mut indegree: Vec<usize> = deps.iter().map(Vec::len).collect();
    let mut ready: Vec<usize> = (0..n).filter(|&u| indegree[u] == 0).collect();
    let dependents = dependents_of(deps);
    let mut ordered = 0;
    while let Some(u) = ready.pop() {
        ordered += 1;
        for &t in &dependents[u] {
            indegree[t] -= 1;
            if indegree[t] == 0 {
                ready.push(t);
            }
        }
    }
    if ordered < n {
        let stuck: Vec<usize> = (0..n).filter(|&u| indegree[u] > 0).collect();
        return Err(format!(
            "dependency cycle: units {stuck:?} can never become ready"
        ));
    }
    Ok(n)
}

/// Reverse adjacency: for each unit, the units that depend on it.
fn dependents_of(deps: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut dependents = vec![Vec::new(); deps.len()];
    for (unit, unit_deps) in deps.iter().enumerate() {
        for &d in unit_deps {
            dependents[d].push(unit);
        }
    }
    dependents
}

/// An incremental topological scheduler over a validated unit DAG.
///
/// The scheduling core shared by the in-process thread pool
/// ([`run_dag`]) and the multi-process coordinator (`lh-coord`): track
/// which units are *ready* (all dependencies completed), hand them out
/// lowest-index-first, and relax dependents as completions arrive.
/// [`DagSchedule::requeue`] puts a claimed-but-unfinished unit back in
/// the ready set, which is how the coordinator tolerates a worker dying
/// mid-unit.
#[derive(Debug)]
pub struct DagSchedule {
    /// Reverse adjacency, fixed at construction.
    dependents: Vec<Vec<usize>>,
    /// Remaining unfinished dependencies per unit.
    indegree: Vec<usize>,
    /// Min-heap of ready unit indices (lowest index claimed first, so
    /// serial execution order is a stable topological order).
    ready: BinaryHeap<std::cmp::Reverse<usize>>,
    /// Completed units.
    completed: usize,
}

impl DagSchedule {
    /// Builds a schedule over `deps`, validating it as a DAG first.
    ///
    /// # Errors
    ///
    /// The same conditions as [`validate_dag`].
    pub fn new(deps: &[Vec<usize>]) -> Result<DagSchedule, String> {
        validate_dag(deps)?;
        let indegree: Vec<usize> = deps.iter().map(Vec::len).collect();
        let ready = (0..deps.len())
            .filter(|&u| indegree[u] == 0)
            .map(std::cmp::Reverse)
            .collect();
        Ok(DagSchedule {
            dependents: dependents_of(deps),
            indegree,
            ready,
            completed: 0,
        })
    }

    /// Claims the lowest-index ready unit, if any. `None` means either
    /// everything is done or all remaining units wait on claimed ones.
    pub fn claim(&mut self) -> Option<usize> {
        self.ready.pop().map(|std::cmp::Reverse(u)| u)
    }

    /// Returns a claimed unit to the ready set without completing it
    /// (its executor died; someone else must run it).
    pub fn requeue(&mut self, unit: usize) {
        self.ready.push(std::cmp::Reverse(unit));
    }

    /// Marks a claimed unit complete, readying any dependents whose
    /// last dependency this was.
    pub fn complete(&mut self, unit: usize) {
        self.completed += 1;
        for &t in &self.dependents[unit] {
            self.indegree[t] -= 1;
            if self.indegree[t] == 0 {
                self.ready.push(std::cmp::Reverse(t));
            }
        }
    }

    /// Completed units so far.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Total units in the schedule.
    pub fn total(&self) -> usize {
        self.indegree.len()
    }

    /// Whether every unit has completed.
    pub fn is_done(&self) -> bool {
        self.completed == self.total()
    }
}

/// Shared scheduler state behind one mutex.
struct SchedState {
    /// The topological schedule.
    sched: DagSchedule,
    /// Set when a worker panicked; everyone else drains and exits.
    poisoned: bool,
}

/// Runs `work(i, dep_results)` for every unit of a dependency DAG, on
/// up to `jobs` threads, returning results in unit order.
///
/// `deps[i]` lists the units whose results unit `i` consumes; `work`
/// receives clones of those results in declaration order, each edge
/// delivered exactly once. Units are claimed lowest-index-first among
/// the ready set, but results never depend on claim order.
///
/// # Errors
///
/// Fails without executing anything if `deps` is not a DAG (cycles,
/// out-of-range or self dependencies).
///
/// Panics in `work` are propagated: the pool stops claiming new units,
/// finishes outstanding claims, then re-panics on the caller thread.
pub fn run_dag<R, F>(jobs: usize, deps: &[Vec<usize>], work: F) -> Result<Vec<R>, String>
where
    R: Send + Clone,
    F: Fn(usize, Vec<R>) -> R + Sync,
{
    let n = validate_dag(deps)?;
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let take_deps = |unit: usize| -> Vec<R> {
        deps[unit]
            .iter()
            .map(|&d| {
                slots[d]
                    .lock()
                    .expect("dep slot poisoned")
                    .clone()
                    .expect("dependency scheduled before dependent")
            })
            .collect()
    };

    let jobs = jobs.max(1).min(n.max(1));
    if jobs <= 1 {
        // Serial: claim in the same lowest-index-first topological
        // order the parallel scheduler uses.
        let mut sched = DagSchedule::new(deps).expect("deps validated above");
        while let Some(u) = sched.claim() {
            let result = work(u, take_deps(u));
            *slots[u].lock().expect("result slot poisoned") = Some(result);
            sched.complete(u);
        }
        return Ok(collect(slots));
    }

    let state = Mutex::new(SchedState {
        sched: DagSchedule::new(deps).expect("deps validated above"),
        poisoned: false,
    });
    let ready_cv = Condvar::new();
    let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let unit = {
                    let mut s = state.lock().expect("scheduler state poisoned");
                    loop {
                        if s.poisoned || s.sched.is_done() {
                            return;
                        }
                        if let Some(u) = s.sched.claim() {
                            break u;
                        }
                        s = ready_cv.wait(s).expect("scheduler state poisoned");
                    }
                };
                let dep_results = take_deps(unit);
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    work(unit, dep_results)
                })) {
                    Ok(result) => {
                        *slots[unit].lock().expect("result slot poisoned") = Some(result);
                        let mut s = state.lock().expect("scheduler state poisoned");
                        s.sched.complete(unit);
                        ready_cv.notify_all();
                    }
                    Err(payload) => {
                        panic_payload
                            .lock()
                            .expect("panic slot poisoned")
                            .get_or_insert(payload);
                        state.lock().expect("scheduler state poisoned").poisoned = true;
                        ready_cv.notify_all();
                        return;
                    }
                }
            });
        }
    });

    if let Some(payload) = panic_payload.into_inner().expect("panic slot poisoned") {
        std::panic::resume_unwind(payload);
    }
    Ok(collect(slots))
}

fn collect<R>(slots: Vec<Mutex<Option<R>>>) -> Vec<R> {
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("all units claimed and completed")
        })
        .collect()
}

/// A reasonable default worker count for this machine.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order_for_any_job_count() {
        let deps: Vec<Vec<usize>> = (0..97).map(|_| Vec::new()).collect();
        let serial = run_dag(1, &deps, |i, _: Vec<usize>| i * 1000 + i * i).unwrap();
        for jobs in [2, 3, 8, 64] {
            assert_eq!(
                serial,
                run_dag(jobs, &deps, |i, _: Vec<usize>| i * 1000 + i * i).unwrap()
            );
        }
    }

    #[test]
    fn empty_and_single_items_work() {
        assert!(run_dag(8, &[], |_, _: Vec<u32>| 0).unwrap().is_empty());
        assert_eq!(
            run_dag(8, &[vec![]], |_, _: Vec<u32>| 10).unwrap(),
            vec![10]
        );
    }

    #[test]
    fn work_actually_runs_concurrently() {
        let peak = AtomicUsize::new(0);
        let live = AtomicUsize::new(0);
        let deps: Vec<Vec<usize>> = (0..16).map(|_| Vec::new()).collect();
        run_dag(4, &deps, |_, _: Vec<u32>| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(20));
            live.fetch_sub(1, Ordering::SeqCst);
            0
        })
        .unwrap();
        assert!(
            peak.load(Ordering::SeqCst) > 1,
            "expected concurrent execution"
        );
    }

    #[test]
    fn panics_propagate() {
        let deps: Vec<Vec<usize>> = (0..8).map(|_| Vec::new()).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_dag(4, &deps, |i, _: Vec<usize>| {
                if i == 3 {
                    panic!("unit 3 failed");
                }
                i
            })
        }));
        assert!(result.is_err());
    }

    /// A diamond: 0 → {1, 2} → 3. Checks topological delivery, exactly
    /// one delivery per edge, and identical results at any worker count.
    #[test]
    fn dag_delivers_each_dependency_exactly_once() {
        let deps = vec![vec![], vec![0], vec![0], vec![1, 2]];
        let serial = run_dag(1, &deps, |i, d: Vec<u64>| {
            (i as u64 + 1) * 100 + d.iter().sum::<u64>()
        })
        .unwrap();
        assert_eq!(serial, vec![100, 300, 400, 1100]);
        for jobs in [2, 4, 8] {
            let deliveries = AtomicUsize::new(0);
            let parallel = run_dag(jobs, &deps, |i, d: Vec<u64>| {
                deliveries.fetch_add(d.len(), Ordering::SeqCst);
                (i as u64 + 1) * 100 + d.iter().sum::<u64>()
            })
            .unwrap();
            assert_eq!(serial, parallel, "jobs={jobs}");
            let edges: usize = deps.iter().map(Vec::len).sum();
            assert_eq!(
                deliveries.load(Ordering::SeqCst),
                edges,
                "each dependency edge must deliver exactly once (jobs={jobs})"
            );
        }
    }

    #[test]
    fn dag_chains_execute_in_order_at_full_parallelism() {
        // A pure chain 0 → 1 → ... → 31 forces the scheduler to respect
        // edges even with more workers than ready units.
        let deps: Vec<Vec<usize>> = (0..32)
            .map(|i| if i == 0 { vec![] } else { vec![i - 1] })
            .collect();
        let results = run_dag(16, &deps, |i, d: Vec<usize>| {
            assert_eq!(d.len(), usize::from(i > 0));
            d.first().copied().unwrap_or(0) + i
        })
        .unwrap();
        assert_eq!(results[31], (0..32).sum::<usize>());
        assert_eq!(results[1], 1);
    }

    /// The standalone schedule honors edges across claim/requeue: a
    /// requeued unit becomes claimable again, and a dependent only
    /// readies once its last dependency *completes* (not when claimed).
    #[test]
    fn dag_schedule_claims_requeues_and_completes() {
        let deps = vec![vec![], vec![], vec![0, 1]];
        let mut sched = DagSchedule::new(&deps).unwrap();
        assert_eq!(sched.total(), 3);
        assert_eq!(sched.claim(), Some(0));
        assert_eq!(sched.claim(), Some(1));
        assert_eq!(sched.claim(), None, "unit 2 waits on 0 and 1");

        // Unit 0's executor dies: requeue hands it to the next claimant.
        sched.requeue(0);
        assert_eq!(sched.claim(), Some(0));

        sched.complete(0);
        assert_eq!(sched.claim(), None, "unit 2 still waits on 1");
        sched.complete(1);
        assert_eq!(sched.claim(), Some(2));
        assert!(!sched.is_done());
        sched.complete(2);
        assert!(sched.is_done());
        assert_eq!(sched.completed(), 3);

        assert!(DagSchedule::new(&[vec![1], vec![0]]).is_err());
    }

    #[test]
    fn cycles_and_bad_edges_are_rejected_before_running() {
        let ran = AtomicUsize::new(0);
        let work = |_: usize, _: Vec<u32>| {
            ran.fetch_add(1, Ordering::SeqCst);
            0u32
        };
        let err = run_dag(4, &[vec![1], vec![0]], work).unwrap_err();
        assert!(err.contains("cycle"), "{err}");
        let err = run_dag(4, &[vec![7]], work).unwrap_err();
        assert!(err.contains("out-of-range"), "{err}");
        let err = run_dag(4, &[vec![0]], work).unwrap_err();
        assert!(err.contains("itself"), "{err}");
        assert_eq!(
            ran.load(Ordering::SeqCst),
            0,
            "rejection must pre-empt execution"
        );
    }
}
