//! Property-based tests (proptest) on the core data structures and
//! invariants of the stack.

use proptest::prelude::*;

use lh_analysis::{binary_entropy, channel_capacity};
use lh_dram::{BankId, CounterInit, DramAddr, Geometry, RowCounters, Span, Time};
use lh_memctrl::{AddressMapping, MappingScheme};
use lh_obs::Hist;

proptest! {
    /// Time arithmetic: (t + a) + b == (t + b) + a and subtraction
    /// round-trips.
    #[test]
    fn time_arithmetic_commutes(t in 0u64..u64::MAX / 4, a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let t0 = Time::from_ps(t);
        let (sa, sb) = (Span::from_ps(a), Span::from_ps(b));
        prop_assert_eq!((t0 + sa) + sb, (t0 + sb) + sa);
        prop_assert_eq!((t0 + sa) - sa, t0);
        prop_assert_eq!((t0 + sa) - t0, sa);
    }

    /// Address mapping: decode is total and encode∘decode is the identity
    /// on line-aligned addresses, for both schemes.
    #[test]
    fn mapping_roundtrip(phys in 0u64..(1u64 << 40), xor in any::<bool>()) {
        let scheme = if xor { MappingScheme::XorBank } else { MappingScheme::RowBankCol };
        let m = AddressMapping::new(scheme, Geometry::paper_default());
        let addr = m.decode(phys);
        prop_assert!(m.geometry().contains(addr));
        // Encode is exact on the decoded (wrapped) location.
        let enc = m.encode(addr);
        let dec2 = m.decode(enc);
        prop_assert_eq!(addr, dec2);
    }

    /// Distinct line-aligned addresses within one channel map to distinct
    /// DRAM locations (the mapping is injective on the channel).
    #[test]
    fn mapping_is_injective(a in 0u64..(1u64 << 30), b in 0u64..(1u64 << 30)) {
        prop_assume!(a / 64 != b / 64);
        let m = AddressMapping::new(MappingScheme::XorBank, Geometry::paper_default());
        prop_assert_ne!(m.decode(a * 64 % (1 << 36)), m.decode(b * 64 % (1 << 36)));
    }

    /// Row counters: `increment` raises the value by exactly one and
    /// `reset` brings Uniform-init values below the bound.
    #[test]
    fn counters_invariants(rows in proptest::collection::vec(0u32..1024, 1..64), max in 2u32..256) {
        let mut c = RowCounters::new(4, CounterInit::Uniform { max }, 7);
        for &row in &rows {
            let before = c.value(0, row);
            let after = c.increment(0, row);
            prop_assert_eq!(after, before + 1);
        }
        for &row in &rows {
            c.reset(0, row);
            prop_assert!(c.value(0, row) < max);
        }
    }

    /// Channel capacity: bounded by the raw rate, zero at e=0.5, and
    /// monotonically non-increasing in e on [0, 0.5].
    #[test]
    fn capacity_bounds(rate in 1.0f64..1e6, e in 0.0f64..=0.5) {
        let c = channel_capacity(rate, e);
        prop_assert!(c >= -1e-9);
        prop_assert!(c <= rate + 1e-9);
        let c2 = channel_capacity(rate, (e + 0.05).min(0.5));
        prop_assert!(c2 <= c + 1e-9, "capacity must not grow with error");
        prop_assert!(binary_entropy(e) <= 1.0 + 1e-12);
    }

    /// Geometry flat-bank indexing is a bijection.
    #[test]
    fn flat_bank_bijection(rank in 0u32..2, bg in 0u32..8, bank in 0u32..4) {
        let g = Geometry::paper_default();
        let id = BankId::new(0, rank, bg, bank);
        let flat = g.flat_bank(id);
        prop_assert_eq!(g.bank_from_flat(0, flat), id);
    }

    /// Message codec: text → bits → text round-trips for ASCII.
    #[test]
    fn message_roundtrip(s in "[ -~]{1,32}") {
        let bits = lh_analysis::bits_of_str(&s);
        prop_assert_eq!(lh_analysis::str_of_bits(&bits), s);
    }

    /// Symbol codec round-trips for power-of-two bases.
    #[test]
    fn symbol_roundtrip(bits in proptest::collection::vec(0u8..2, 1..64), pow in 1u32..3) {
        let base = 2u8.pow(pow);
        let syms = lh_analysis::bits_to_symbols(&bits, base);
        let back = lh_analysis::symbols_to_bits(&syms, base, bits.len());
        prop_assert_eq!(back, bits);
    }

    /// Histogram merge is commutative and agrees with observing the
    /// concatenated sample stream — the property that makes per-unit
    /// histograms mergeable in any completion order without changing
    /// envelope bytes. Checked on counts, sums, every bucket, and the
    /// quantiles the CSV report derives.
    #[test]
    fn hist_merge_commutes(
        xs in proptest::collection::vec(0u64..u64::MAX / 2, 0..64),
        ys in proptest::collection::vec(0u64..u64::MAX / 2, 0..64),
    ) {
        let mut a = Hist::default();
        for &x in &xs { a.observe(x); }
        let mut b = Hist::default();
        for &y in &ys { b.observe(y); }

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        let mut direct = Hist::default();
        for &v in xs.iter().chain(&ys) { direct.observe(v); }

        for merged in [&ba, &direct] {
            prop_assert_eq!(ab.count(), merged.count());
            prop_assert_eq!(ab.sum(), merged.sum());
            let lhs: Vec<(u32, u64)> = ab.buckets().collect();
            let rhs: Vec<(u32, u64)> = merged.buckets().collect();
            prop_assert_eq!(&lhs, &rhs);
            for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
                prop_assert_eq!(ab.quantile(q), merged.quantile(q));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The DRAM device never violates its own invariant: issuing any
    /// random-but-legal single-bank command sequence keeps the open-row
    /// bookkeeping consistent.
    #[test]
    fn device_state_machine_is_consistent(ops in proptest::collection::vec(0u8..3, 1..200)) {
        use lh_dram::{Command, DeviceConfig, DramDevice};
        let mut cfg = DeviceConfig::paper_default();
        cfg.geometry = Geometry::tiny();
        let mut dev = DramDevice::new(cfg).unwrap();
        let bank = BankId::new(0, 0, 0, 0);
        for (i, op) in ops.iter().enumerate() {
            let cmd = match (op % 3, dev.open_row(bank)) {
                (0, None) => Command::Activate { bank, row: (i as u32) % 64 },
                (0, Some(_)) | (1, Some(_)) if *op == 1 => Command::Read { bank, col: 0 },
                (_, Some(_)) => Command::Precharge { bank },
                (_, None) => Command::Activate { bank, row: (i as u32) % 64 },
            };
            // The total legality query must make issue() succeed.
            let at = dev.earliest_legal(&cmd, Time::ZERO);
            dev.issue(&cmd, at).unwrap();
            match cmd {
                Command::Activate { row, .. } => prop_assert_eq!(dev.open_row(bank), Some(row)),
                Command::Precharge { .. } => prop_assert_eq!(dev.open_row(bank), None),
                _ => {}
            }
        }
        let _ = DramAddr::new(bank, 0, 0);
    }
}
