//! §9.1: leaking a PRAC activation-counter *value* — multiple bits per
//! observation instead of LeakyHammer's usual one.
//!
//! The attacker shares a row with the victim (row-granularity colocation,
//! the rightmost column of Table 3). The victim activates the shared row
//! some secret number of times; the attacker then activates the same row
//! until the back-off fires and infers the victim's count as
//! `NBO − own activations`. At `NBO` = 128 each measurement leaks up to
//! 7 bits; the paper reports ~7 bits per 13.6 µs ≈ 501 Kbps.
//!
//! Run with: `cargo run --release --example counter_leak`

use leakyhammer::experiment::counter_leak::run_counter_leak;
use leakyhammer::report;

fn main() {
    println!("LeakyHammer sec. 9.1: activation-counter value leakage under PRAC\n");

    let out = run_counter_leak(24, 7);
    print!("{}", report::counter_leak_report(&out));

    println!(
        "\nper-trial detail (secret = victim activations, guess = NBO - attacker activations):"
    );
    for (i, t) in out.trials.iter().enumerate().take(12) {
        println!(
            "  trial {i:>2}: secret {:>3}  guess {:>3}  ({} in {:.1} us)",
            t.secret,
            t.estimate,
            if t.secret == t.estimate {
                "exact"
            } else {
                "off"
            },
            t.elapsed.as_us(),
        );
    }
    println!(
        "\nThe attacker reads ~log2(NBO) = 7 bits per back-off by priming the shared\n\
         counter — a qualitatively stronger leak than the 1-bit presence channel,\n\
         available only at row-granularity colocation (Table 3)."
    );
}
