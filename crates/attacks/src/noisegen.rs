//! The noise-generator microbenchmark of §6.3.
//!
//! Issues row activations (alternating two rows of the target bank) with a
//! configurable sleep between consecutive activations; the sleep duration
//! maps to the paper's noise-intensity scale via
//! [`lh_analysis::noise::intensity_of_sleep`] (Eq. 2).

use core::any::Any;

use lh_dram::{Span, Time};
use lh_sim::{MemAccess, Process, ProcessStep};

/// A process that generates bank-targeted activation noise.
///
/// The generator round-robins over several rows: with fewer rows than the
/// back-off recovery refreshes aggressors (4 RFMs → top-4 counters reset),
/// its counters would be wiped by the channel's own back-offs and never
/// reach `NBO`.
#[derive(Debug, Clone)]
pub struct NoiseProcess {
    rows: Vec<u64>,
    sleep: Span,
    until: Time,
    i: usize,
}

impl NoiseProcess {
    /// Generates conflicting accesses round-robin over `rows` with `sleep`
    /// between consecutive activations, until `until`.
    ///
    /// # Panics
    ///
    /// Panics if `rows` has fewer than two entries (a single row would
    /// produce row hits, not activations).
    pub fn new(rows: Vec<u64>, sleep: Span, until: Time) -> NoiseProcess {
        assert!(
            rows.len() >= 2,
            "noise needs at least two rows to force activations"
        );
        NoiseProcess {
            rows,
            sleep,
            until,
            i: 0,
        }
    }

    /// Builds the generator from a paper noise intensity (1–100 %).
    pub fn from_intensity(rows: Vec<u64>, intensity: f64, until: Time) -> NoiseProcess {
        let sleep_us = lh_analysis::noise::sleep_of_intensity(intensity);
        NoiseProcess::new(rows, Span::from_ns_f64(sleep_us * 1_000.0), until)
    }

    /// Activations issued so far.
    pub fn issued(&self) -> usize {
        self.i
    }
}

impl Process for NoiseProcess {
    fn step(&mut self, now: Time) -> ProcessStep {
        if now >= self.until {
            return ProcessStep::Halt;
        }
        let addr = self.rows[self.i % self.rows.len()];
        self.i += 1;
        ProcessStep::Access(MemAccess::flushed_load(addr, self.sleep))
    }

    fn label(&self) -> String {
        format!("noise[sleep {}]", self.sleep)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alternates_rows_with_sleep_as_think_time() {
        let mut n = NoiseProcess::new(vec![0x0, 0x40_000], Span::from_us(1), Time::from_us(100));
        match n.step(Time::ZERO) {
            ProcessStep::Access(a) => {
                assert_eq!(a.addr, 0x0);
                assert_eq!(a.think, Span::from_us(1));
                assert!(a.flush);
            }
            other => panic!("{other:?}"),
        }
        match n.step(Time::from_us(2)) {
            ProcessStep::Access(a) => assert_eq!(a.addr, 0x40_000),
            other => panic!("{other:?}"),
        }
        assert_eq!(n.issued(), 2);
    }

    #[test]
    fn halts_at_deadline() {
        let mut n = NoiseProcess::new(vec![0, 64], Span::ZERO, Time::from_us(1));
        assert_eq!(n.step(Time::from_us(1)), ProcessStep::Halt);
    }

    #[test]
    fn intensity_mapping_matches_eq2() {
        let lo = NoiseProcess::from_intensity(vec![0, 64], 1.0, Time::MAX);
        let hi = NoiseProcess::from_intensity(vec![0, 64], 100.0, Time::MAX);
        assert_eq!(lo.sleep, Span::from_us(2));
        assert_eq!(hi.sleep, Span::from_ns(200));
    }
}
