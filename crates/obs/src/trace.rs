//! Wall-clock trace spans with a Chrome `trace_event` exporter.
//!
//! Spans measure real elapsed time, so they are deliberately kept out
//! of the deterministic [`crate::metrics`] channel: timings never touch
//! cacheable results or distributed-run envelopes. Instead they
//! accumulate in a process-global buffer and export as the Chrome
//! trace-event JSON format, loadable in `chrome://tracing` or Perfetto
//! (`lh-experiments --trace-out FILE` wires this up).
//!
//! Tracing is off by default. [`Span::enter`] checks one relaxed atomic
//! and returns an inert guard when disabled — cheap enough to leave in
//! moderately hot paths (per simulation run, per experiment unit; not
//! per simulated event).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One completed span: a `"ph":"X"` (complete) Chrome trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event name (shown on the track).
    pub name: String,
    /// Category tag (`unit`, `sim`, `harness`, ...).
    pub cat: &'static str,
    /// Start, microseconds since the tracer epoch.
    pub ts_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Small dense thread id (assigned per OS thread, first use).
    pub tid: u64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static EVENTS: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// Turns span collection on for the whole process.
pub fn enable() {
    epoch(); // pin the epoch no later than the first enable
    ENABLED.store(true, Ordering::Relaxed);
}

/// Whether spans are being collected.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Removes and returns every span collected so far (test isolation and
/// export both drain).
pub fn drain() -> Vec<TraceEvent> {
    std::mem::take(&mut EVENTS.lock().expect("trace buffer poisoned"))
}

/// An RAII wall-clock span: records one [`TraceEvent`] on drop when
/// tracing was enabled at entry, and is a no-op otherwise.
#[derive(Debug)]
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing useful"]
pub struct Span {
    /// `None` when tracing was disabled at entry.
    live: Option<(String, &'static str, Instant)>,
}

impl Span {
    /// Opens a span named `name` in category `cat`.
    pub fn enter(name: impl Into<String>, cat: &'static str) -> Span {
        if !enabled() {
            return Span { live: None };
        }
        Span {
            live: Some((name.into(), cat, Instant::now())),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some((name, cat, started)) = self.live.take() else {
            return;
        };
        let ts_us = started.duration_since(epoch()).as_micros() as u64;
        let dur_us = started.elapsed().as_micros() as u64;
        let tid = TID.with(|t| *t);
        let event = TraceEvent {
            name,
            cat,
            ts_us,
            dur_us,
            tid,
        };
        EVENTS.lock().expect("trace buffer poisoned").push(event);
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Renders spans as a Chrome trace-event JSON document
/// (`{"traceEvents":[...]}` with `"ph":"X"` complete events), loadable
/// in `chrome://tracing` and Perfetto.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    use std::fmt::Write as _;
    let pid = std::process::id();
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n{\"name\":\"");
        escape_json(&e.name, &mut out);
        out.push_str("\",\"cat\":\"");
        escape_json(e.cat, &mut out);
        let _ = write!(
            out,
            "\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{}}}",
            e.ts_us, e.dur_us, e.tid
        );
    }
    out.push_str("\n]}\n");
    out
}

/// Drains every collected span and writes the Chrome trace JSON to
/// `path`, returning how many spans were exported.
///
/// # Errors
///
/// Filesystem write failures.
pub fn export_chrome_trace(path: impl AsRef<std::path::Path>) -> std::io::Result<usize> {
    let events = drain();
    std::fs::write(path, chrome_trace_json(&events))?;
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tracing state is process-global, so every test here serializes on
    // one lock and drains before and after.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = TEST_LOCK.lock().unwrap();
        ENABLED.store(false, Ordering::Relaxed);
        drain();
        {
            let _s = Span::enter("quiet", "test");
        }
        assert!(drain().is_empty());
    }

    #[test]
    fn enabled_spans_record_and_export() {
        let _guard = TEST_LOCK.lock().unwrap();
        drain();
        enable();
        {
            let _s = Span::enter("outer \"q\"", "test");
            let _t = Span::enter("inner", "test");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        ENABLED.store(false, Ordering::Relaxed);
        let events = drain();
        assert_eq!(events.len(), 2, "{events:?}");
        // Guards drop in reverse declaration order: inner first.
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[1].name, "outer \"q\"");
        assert!(events[1].dur_us >= 1000, "slept a millisecond");

        let json = chrome_trace_json(&events);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("outer \\\"q\\\""), "names are escaped");
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn escape_handles_control_characters() {
        let mut out = String::new();
        escape_json("a\"b\\c\nd\te\u{1}", &mut out);
        assert_eq!(out, "a\\\"b\\\\c\\nd\\te\\u0001");
    }
}
