//! Composable countermeasure wrappers over the [`lh_defenses::Defense`]
//! trait — the "Mitigating" half of the paper's title.
//!
//! Every RowHammer defense the repo models leaks a covert/side channel
//! through its *observable* preventive behavior (back-off latency, RFM
//! timing, refresh pressure). This crate attacks the observable rather
//! than the defense: each [`MitigationKind`] is a wrapper that
//! implements `Defense` by delegation and reshapes only what the memory
//! controller — and therefore the attacker — can see:
//!
//! * [`MaintenanceJitter`] — seeded randomization of scheduled
//!   maintenance deadlines (decorrelate *when*);
//! * [`DeferredBatch`] — coalesce maintenance into batches released at
//!   quantized instants (quantize *when*);
//! * [`ConstantRateShaper`] — inject dummy maintenance so the
//!   observable rate is pattern-independent (fix *how much*);
//! * [`IsolationQuota`] — per-(bank, row) activation budgets per epoch
//!   (cap the attacker's trigger pressure);
//! * [`PassThrough`] — the control arm: pure delegation, byte-identical
//!   to the bare defense.
//!
//! Because wrappers are `Box<dyn Defense>` → `Box<dyn Defense>`, any
//! stack composes with any defense: [`build_mitigation`] mirrors
//! [`lh_defenses::build_defense`] and [`apply_mitigations`] folds a
//! whole stack (an empty stack returns the inner defense unchanged).
//! The `mitsweep` harness job sweeps the full defense × mitigation ×
//! modulation matrix and pairs each cell's capacity collapse with its
//! scheduling-pressure cost into Pareto curves (`lh_analysis::pareto`).
//!
//! # Examples
//!
//! ```
//! use lh_defenses::{build_defense, DefenseConfig, DefenseKind};
//! use lh_dram::{DramTiming, Geometry, Span, Time};
//! use lh_mitigate::{apply_mitigations, MitigationConfig, MitigationKind};
//!
//! let timing = DramTiming::ddr5_4800();
//! let geometry = Geometry::paper_default();
//! let defense = DefenseConfig::for_threshold(DefenseKind::FrRfm, 128, &timing);
//! let stack = vec![MitigationConfig::for_threshold(
//!     MitigationKind::MaintenanceJitter,
//!     128,
//!     &timing,
//! )];
//! let mut engine = apply_mitigations(
//!     &stack,
//!     &geometry,
//!     42,
//!     build_defense(&defense, &geometry, 42),
//! );
//! // The wrapper reports the inner defense's kind and only ever slips
//! // deadlines forward.
//! assert_eq!(engine.kind(), DefenseKind::FrRfm);
//! let first = engine.next_maintenance(0).unwrap().due;
//! let taken = engine.take_maintenance(0, first).unwrap();
//! assert_eq!(taken.due, first);
//! assert!(engine.next_maintenance(0).unwrap().due > first);
//! # let _ = Time::ZERO + Span::ZERO;
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod wrappers;

pub use config::{
    fr_rfm_period, BatchConfig, JitterConfig, MitigationConfig, MitigationKind, QuotaConfig,
    ShaperConfig,
};
pub use wrappers::{
    apply_mitigations, build_mitigated_defense, build_mitigation, ConstantRateShaper,
    DeferredBatch, IsolationQuota, MaintenanceJitter, PassThrough,
};
