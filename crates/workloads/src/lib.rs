//! # lh-workloads — synthetic workloads for the LeakyHammer reproduction
//!
//! The paper's workloads come from two places we cannot ship: SPEC
//! CPU2017/2006 binaries and Intel-Pin browser traces of 40 websites.
//! This crate substitutes both (see DESIGN.md §1 for the substitution
//! argument):
//!
//! * [`SyntheticApp`] — RBMPKI-parameterized row-streaming applications
//!   used for interference (Figs. 5/8) and the Fig. 13 weighted-speedup
//!   study ([`four_core_mixes`]);
//! * [`BrowserProcess`] / [`WebsiteProfile`] — seeded per-site load
//!   profiles for the §8 website-fingerprinting attack ([`WEBSITES`] is
//!   the paper's 40-site list).
//!
//! ## Example
//!
//! ```
//! use lh_workloads::{AppProfile, Intensity};
//!
//! let high = AppProfile::category(Intensity::High);
//! assert!(high.rbmpki() > 15.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod browser;
mod mixes;
mod spec;
mod trace;

pub use browser::{BrowserProcess, Phase, WebsiteProfile, WEBSITES};
pub use mixes::{app_pool, four_core_mixes};
pub use spec::{AppProfile, Intensity, SyntheticApp, INSTR_TIME};
pub use trace::{SharedTrace, TraceReplay};
