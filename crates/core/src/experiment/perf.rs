//! The Fig. 13 performance study: weighted speedup of PRAC, PRFM,
//! PRAC-RIAC, FR-RFM and PRAC-Bank over RowHammer thresholds
//! 1024 → 64, normalized to a system with no mitigation.

use serde::{Deserialize, Serialize};

use lh_analysis::{mean, normalized_ws, weighted_speedup, AppPerf};
use lh_defenses::{DefenseConfig, DefenseKind};
use lh_dram::{Span, Time};
use lh_memctrl::AddressMapping;
use lh_sim::SystemBuilder;
use lh_workloads::{four_core_mixes, AppProfile, SyntheticApp};

use crate::Scale;

/// The paper's swept RowHammer thresholds.
pub const NRH_SWEEP: [u32; 5] = [1024, 512, 256, 128, 64];

/// One (defense, NRH) cell of Fig. 13.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PerfPoint {
    /// The defense.
    pub defense: DefenseKind,
    /// RowHammer threshold.
    pub nrh: u32,
    /// Mean normalized weighted speedup over the workload mixes
    /// (1.0 = no overhead).
    pub normalized_ws: f64,
}

/// The Fig. 13 dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfStudy {
    /// All measured cells.
    pub points: Vec<PerfPoint>,
    /// Number of four-core mixes averaged.
    pub mixes: usize,
}

impl PerfStudy {
    /// The normalized WS of one cell.
    pub fn cell(&self, defense: DefenseKind, nrh: u32) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.defense == defense && p.nrh == nrh)
            .map(|p| p.normalized_ws)
    }
}

/// Runs one four-core mix under `defense` for `span`; returns per-app
/// performance.
fn run_mix(mix: &[AppProfile; 4], defense: DefenseConfig, span: Span, seed: u64) -> Vec<AppPerf> {
    // Performance runs do not need disturb ground truth; skipping it
    // speeds the sweep up considerably.
    let mut sys = SystemBuilder::new(defense)
        .seed(seed)
        .disturb_tracking(false)
        .build()
        .expect("valid configuration");
    let mapping: AddressMapping = *sys.mapping();
    let end = Time::ZERO + span;
    let mut pids = Vec::new();
    for (i, profile) in mix.iter().enumerate() {
        let app = SyntheticApp::new(profile.clone(), mapping, seed ^ (i as u64 * 31), end);
        let mlp = app.mlp();
        pids.push(sys.add_process(Box::new(app), mlp, Time::ZERO));
    }
    sys.run_until(end + Span::from_us(5));
    pids.iter()
        .map(|&pid| {
            let app = sys.process_as::<SyntheticApp>(pid).expect("app present");
            AppPerf {
                instructions: app.instructions(),
                seconds: span.as_secs(),
            }
        })
        .collect()
}

/// Runs each app of a mix alone (no defense) for the alone-IPC baseline.
fn run_alone(mix: &[AppProfile; 4], span: Span, seed: u64) -> Vec<AppPerf> {
    mix.iter()
        .enumerate()
        .map(|(i, profile)| {
            let mut sys = SystemBuilder::new(DefenseConfig::none())
                .seed(seed)
                .disturb_tracking(false)
                .build()
                .expect("valid configuration");
            let mapping: AddressMapping = *sys.mapping();
            let end = Time::ZERO + span;
            let app = SyntheticApp::new(profile.clone(), mapping, seed ^ (i as u64 * 31), end);
            let mlp = app.mlp();
            let pid = sys.add_process(Box::new(app), mlp, Time::ZERO);
            sys.run_until(end + Span::from_us(5));
            let app = sys.process_as::<SyntheticApp>(pid).expect("app present");
            AppPerf {
                instructions: app.instructions(),
                seconds: span.as_secs(),
            }
        })
        .collect()
}

/// One mix's defense-independent intermediates, shared by every
/// `(defense, nrh)` cell of that mix: the alone-run baselines and the
/// no-defense weighted speedup everything is normalized to.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MixBaseline {
    /// Per-app alone (no defense, no co-runners) performance.
    pub alone: Vec<AppPerf>,
    /// Weighted speedup of the shared no-defense run.
    pub base_ws: f64,
}

/// Runs one mix's baseline simulations: each app alone, plus the mix
/// under no defense.
///
/// The mix list is derived from `mixes_seed` (the study's master seed,
/// identical across shards) while the simulations run on `sim_seed`, so
/// the harness can give every mix an independently derived seed and
/// shard the study across cores bit-identically.
pub fn run_perf_baseline(
    mix_index: usize,
    mixes_seed: u64,
    sim_seed: u64,
    scale: Scale,
) -> MixBaseline {
    let span = Span::from_us(scale.perf_span_us());
    let mixes = four_core_mixes(scale.mixes(), mixes_seed);
    let mix = &mixes[mix_index];
    let alone = run_alone(mix, span, sim_seed);
    let shared = run_mix(mix, DefenseConfig::none(), span, sim_seed);
    let base_ws = weighted_speedup(&shared, &alone);
    MixBaseline { alone, base_ws }
}

/// Runs one `(mix, defense, nrh)` cell against a precomputed
/// [`MixBaseline`]. `sim_seed` must equal the baseline's — the alone
/// and defended runs of a mix share one simulation seed.
pub fn run_perf_cell(
    mix_index: usize,
    mixes_seed: u64,
    sim_seed: u64,
    defense: DefenseKind,
    nrh: u32,
    baseline: &MixBaseline,
    scale: Scale,
) -> PerfPoint {
    let span = Span::from_us(scale.perf_span_us());
    let mixes = four_core_mixes(scale.mixes(), mixes_seed);
    let mix = &mixes[mix_index];
    let timing = lh_dram::DramTiming::ddr5_4800();
    let cfg = DefenseConfig::for_threshold(defense, nrh, &timing);
    let shared = run_mix(mix, cfg, span, sim_seed);
    let ws = weighted_speedup(&shared, &baseline.alone);
    PerfPoint {
        defense,
        nrh,
        normalized_ws: normalized_ws(ws, baseline.base_ws),
    }
}

/// One mix's contribution to Fig. 13: normalized weighted speedup per
/// `(defense, nrh)` cell, in `defenses` × `nrh_values` order — the
/// baseline plus every cell, composed from [`run_perf_baseline`] and
/// [`run_perf_cell`] so a sharded (per-cell) run can never drift from
/// the serial study.
pub fn run_perf_mix(
    mix_index: usize,
    mixes_seed: u64,
    sim_seed: u64,
    defenses: &[DefenseKind],
    nrh_values: &[u32],
    scale: Scale,
) -> Vec<PerfPoint> {
    let baseline = run_perf_baseline(mix_index, mixes_seed, sim_seed, scale);
    let mut points = Vec::new();
    for &defense in defenses {
        for &nrh in nrh_values {
            points.push(run_perf_cell(
                mix_index, mixes_seed, sim_seed, defense, nrh, &baseline, scale,
            ));
        }
    }
    points
}

/// Averages per-mix cell values (from [`run_perf_mix`], all with the
/// same `defenses` × `nrh_values` layout) into the Fig. 13 study.
pub fn merge_perf_mixes(per_mix: &[Vec<PerfPoint>]) -> PerfStudy {
    let mixes = per_mix.len();
    let cells = per_mix.first().map_or(0, Vec::len);
    let points = (0..cells)
        .map(|c| {
            let values: Vec<f64> = per_mix.iter().map(|m| m[c].normalized_ws).collect();
            PerfPoint {
                normalized_ws: mean(&values),
                ..per_mix[0][c]
            }
        })
        .collect();
    PerfStudy { points, mixes }
}

/// Runs the study over `defenses` × `nrh_values`.
pub fn run_performance(
    defenses: &[DefenseKind],
    nrh_values: &[u32],
    scale: Scale,
    seed: u64,
) -> PerfStudy {
    let per_mix: Vec<Vec<PerfPoint>> = (0..scale.mixes())
        .map(|m| {
            run_perf_mix(
                m,
                seed,
                seed ^ (m as u64) << 16,
                defenses,
                nrh_values,
                scale,
            )
        })
        .collect();
    merge_perf_mixes(&per_mix)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defenses_cost_little_at_high_nrh_and_a_lot_at_low_nrh() {
        let study = run_performance(
            &[DefenseKind::Prac, DefenseKind::FrRfm],
            &[1024, 64],
            Scale::Quick,
            3,
        );
        let prac_high = study.cell(DefenseKind::Prac, 1024).unwrap();
        let frrfm_high = study.cell(DefenseKind::FrRfm, 1024).unwrap();
        let frrfm_low = study.cell(DefenseKind::FrRfm, 64).unwrap();
        // At NRH=1024 both defenses are cheap (>80 % of baseline).
        assert!(prac_high > 0.8, "PRAC@1024 {prac_high}");
        assert!(frrfm_high > 0.75, "FR-RFM@1024 {frrfm_high}");
        // At NRH=64 FR-RFM collapses (paper: ~0.06× baseline).
        assert!(frrfm_low < 0.5, "FR-RFM@64 {frrfm_low}");
        assert!(frrfm_low < frrfm_high, "overhead must grow as NRH shrinks");
    }

    #[test]
    fn riac_beats_fr_rfm_at_very_low_nrh() {
        let study = run_performance(
            &[DefenseKind::PracRiac, DefenseKind::FrRfm],
            &[64],
            Scale::Quick,
            5,
        );
        let riac = study.cell(DefenseKind::PracRiac, 64).unwrap();
        let frrfm = study.cell(DefenseKind::FrRfm, 64).unwrap();
        assert!(
            riac > frrfm,
            "§11.4: RIAC ({riac}) must outperform FR-RFM ({frrfm}) at NRH=64"
        );
    }

    #[test]
    fn prac_bank_tracks_prac() {
        let study = run_performance(
            &[DefenseKind::Prac, DefenseKind::PracBank],
            &[256],
            Scale::Quick,
            7,
        );
        let prac = study.cell(DefenseKind::Prac, 256).unwrap();
        let bank = study.cell(DefenseKind::PracBank, 256).unwrap();
        // §11.4: PRAC-Bank performs within a few percent of PRAC.
        assert!(
            (prac - bank).abs() < 0.08,
            "PRAC {prac} vs PRAC-Bank {bank} must be close"
        );
    }
}
