//! Computes the per-crate source-hash manifest the harness adapters
//! fold into their cache keys ([`lh_harness::Job::fingerprint`]): one
//! 128-bit digest per workspace crate whose code can influence an
//! experiment's results. Editing a crate changes only its digest, so
//! the on-disk result cache invalidates surgically — jobs whose results
//! never flow through the edited crate keep their entries.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// The crates whose code can affect experiment results, with their
/// source roots relative to this crate's manifest dir. The harness
/// itself is included (seed derivation and merge order live there), as
/// is the vendored `rand` stand-in: its RNG implementation directly
/// determines every sampled value, so an edit there must invalidate
/// cached results even though it lives under `crates/compat/`.
const CRATES: &[(&str, &str)] = &[
    ("leakyhammer", "src"),
    ("lh-analysis", "../analysis/src"),
    ("lh-attacks", "../attacks/src"),
    ("lh-defenses", "../defenses/src"),
    ("lh-dram", "../dram/src"),
    ("lh-harness", "../harness/src"),
    ("lh-link", "../link/src"),
    ("lh-memctrl", "../memctrl/src"),
    ("lh-mitigate", "../mitigate/src"),
    ("lh-ml", "../ml/src"),
    ("lh-obs", "../obs/src"),
    ("lh-sim", "../sim/src"),
    ("lh-workloads", "../workloads/src"),
    ("rand", "../compat/rand/src"),
];

/// 128-bit FNV-1a variant matching `lh_harness::hash::Hasher` in
/// spirit (the exact constants need not match — only stability within
/// one manifest generation matters for cache addressing).
struct Hasher {
    lo: u64,
    hi: u64,
}

impl Hasher {
    fn new() -> Hasher {
        Hasher {
            lo: 0xcbf2_9ce4_8422_2325,
            hi: 0x6c62_272e_07bb_0142,
        }
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.lo ^= u64::from(b);
            self.lo = self.lo.wrapping_mul(0x0000_0100_0000_01B3);
            self.hi ^= u64::from(b).rotate_left(32);
            self.hi = self.hi.wrapping_mul(0x0000_0100_0000_01B3) ^ self.lo.rotate_left(7);
        }
    }

    fn field(&mut self, text: &str) {
        self.update(&(text.len() as u64).to_le_bytes());
        self.update(text.as_bytes());
    }

    fn digest(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

/// All `.rs` files under `root`, sorted so the digest is independent of
/// directory-walk order.
fn rust_sources(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

fn crate_digest(manifest_dir: &Path, rel_src: &str) -> String {
    let root = manifest_dir.join(rel_src);
    let mut h = Hasher::new();
    for file in rust_sources(&root) {
        let rel = file
            .strip_prefix(&root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        h.field(&rel);
        h.update(&std::fs::read(&file).unwrap_or_default());
    }
    h.digest()
}

fn main() {
    let manifest_dir = PathBuf::from(std::env::var("CARGO_MANIFEST_DIR").expect("set by cargo"));
    let mut out = String::from(
        "/// Build-time source digests: (crate name, 128-bit content hash).\n\
         pub static CODE_MANIFEST: &[(&str, &str)] = &[\n",
    );
    for (name, rel_src) in CRATES {
        println!(
            "cargo:rerun-if-changed={}",
            manifest_dir.join(rel_src).display()
        );
        let digest = crate_digest(&manifest_dir, rel_src);
        writeln!(out, "    (\"{name}\", \"{digest}\"),").expect("write to string");
    }
    out.push_str("];\n");
    let out_path = PathBuf::from(std::env::var("OUT_DIR").expect("set by cargo"));
    std::fs::write(out_path.join("code_manifest.rs"), out).expect("write manifest");
}
