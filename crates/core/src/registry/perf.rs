//! Adapter for the Fig. 13 performance study. One harness unit per
//! four-core mix: each unit simulates its mix's alone/no-defense
//! baselines plus every `(defense, NRH)` cell, and `finish` averages
//! the normalized weighted speedups across mixes — the same math as the
//! serial study, sharded along the dimension with the most parallelism.

use lh_harness::{Job, JobContext, Json};

use crate::experiment::perf::{merge_perf_mixes, run_perf_mix, PerfPoint, NRH_SWEEP};
use crate::registry::{num, scale_of, text};
use crate::report;

use lh_defenses::DefenseKind;

/// Fig. 13: weighted speedup of defenses over NRH.
pub(crate) struct PerfJob;

impl Job for PerfJob {
    fn id(&self) -> &'static str {
        "fig13"
    }

    fn description(&self) -> &'static str {
        "weighted speedup of defenses over NRH"
    }

    fn units(&self, ctx: &JobContext) -> Vec<String> {
        (0..scale_of(ctx).mixes())
            .map(|m| format!("mix:{m}"))
            .collect()
    }

    fn run_unit(&self, unit: usize, seed: u64, ctx: &JobContext) -> Json {
        let cells = run_perf_mix(
            unit,
            ctx.seed,
            seed,
            &DefenseKind::figure13_set(),
            &NRH_SWEEP,
            scale_of(ctx),
        );
        Json::object().with("mix", unit).with(
            "cells",
            Json::Array(
                cells
                    .iter()
                    .map(|c| {
                        Json::object()
                            .with("defense", c.defense.label())
                            .with("nrh", c.nrh)
                            .with("normalized_ws", c.normalized_ws)
                    })
                    .collect(),
            ),
        )
    }

    fn finish(&self, units: Vec<Json>, _ctx: &JobContext) -> Json {
        // Decode each mix's cells back into `PerfPoint`s (the layout is
        // `figure13_set()` × `NRH_SWEEP`, the order `run_unit` produced)
        // and reuse the study's own merge so the harness path can never
        // drift from `run_performance`'s aggregation.
        let defenses = DefenseKind::figure13_set();
        let per_mix: Vec<Vec<PerfPoint>> = units
            .iter()
            .map(|u| {
                u["cells"]
                    .as_array()
                    .iter()
                    .enumerate()
                    .map(|(c, cell)| PerfPoint {
                        defense: defenses[c / NRH_SWEEP.len()],
                        nrh: NRH_SWEEP[c % NRH_SWEEP.len()],
                        normalized_ws: num(cell, "normalized_ws"),
                    })
                    .collect()
            })
            .collect();
        let study = merge_perf_mixes(&per_mix);
        Json::object().with("mixes", study.mixes).with(
            "cells",
            Json::Array(
                study
                    .points
                    .iter()
                    .map(|p| {
                        Json::object()
                            .with("defense", p.defense.label())
                            .with("nrh", p.nrh)
                            .with("normalized_ws", p.normalized_ws)
                    })
                    .collect(),
            ),
        )
    }

    fn render_text(&self, merged: &Json, _ctx: &JobContext) -> String {
        let cells = merged["cells"].as_array();
        // NRH columns, descending (NRH_SWEEP order); defense rows in
        // first-seen order.
        let mut defenses: Vec<String> = Vec::new();
        for c in cells {
            let d = text(c, "defense");
            if !defenses.contains(&d) {
                defenses.push(d);
            }
        }
        let mut headers: Vec<String> = vec!["defense".to_owned()];
        headers.extend(NRH_SWEEP.iter().map(|n| format!("NRH={n}")));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let rows: Vec<Vec<String>> = defenses
            .iter()
            .map(|d| {
                let mut row = vec![d.clone()];
                for &n in &NRH_SWEEP {
                    let cell = cells.iter().find(|c| {
                        c["defense"].as_str() == Some(d) && c["nrh"].as_u64() == Some(u64::from(n))
                    });
                    row.push(cell.map_or("-".to_owned(), |c| {
                        format!("{:.2}", num(c, "normalized_ws"))
                    }));
                }
                row
            })
            .collect();
        let mut s = report::table(&header_refs, &rows);
        s.push_str(&format!(
            "(normalized weighted speedup; {} mixes; 1.00 = no defense)\n",
            merged["mixes"].as_u64().unwrap_or(0)
        ));
        s
    }
}
