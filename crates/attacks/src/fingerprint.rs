//! Website-fingerprinting side channel (§8, Listing 2).
//!
//! The attacker runs a probe that measures its own memory latency while
//! avoiding back-offs of its own: it touches each of `N` test rows `T`
//! times (with `T` < `NBO`, and since repeated accesses to an open row are
//! row hits, the per-row activation counters barely move) and records a
//! latency trace. Back-off-class latencies in that trace are caused by
//! *other* processes on the channel — the victim's browser — and their
//! timing forms the fingerprint.

use core::any::Any;

use serde::{Deserialize, Serialize};

use lh_dram::{Span, Time};
use lh_sim::{LatencyTrace, MemAccess, Process, ProcessStep};

use crate::classify::LatencyClassifier;

/// The Listing-2 fingerprinting probe.
#[derive(Debug, Clone)]
pub struct FingerprintProbe {
    rows: Vec<u64>,
    /// Accesses per row before moving to the next (`T` = NBO − 1).
    t_per_row: u32,
    think: Span,
    until: Time,
    i: u64,
    last: Option<Time>,
    trace: LatencyTrace,
}

impl FingerprintProbe {
    /// Creates the probe over `rows` (each visited `t_per_row` times in
    /// round-robin) running until `until`.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or `t_per_row` is zero.
    pub fn new(rows: Vec<u64>, t_per_row: u32, think: Span, until: Time) -> FingerprintProbe {
        assert!(
            !rows.is_empty() && t_per_row > 0,
            "probe needs rows and a positive T"
        );
        FingerprintProbe {
            rows,
            t_per_row,
            think,
            until,
            i: 0,
            last: None,
            trace: LatencyTrace::new(),
        }
    }

    /// The recorded latency trace.
    pub fn trace(&self) -> &LatencyTrace {
        &self.trace
    }
}

impl Process for FingerprintProbe {
    fn step(&mut self, now: Time) -> ProcessStep {
        if let Some(last) = self.last.take() {
            self.trace.push(now, now - last);
        }
        if now >= self.until {
            return ProcessStep::Halt;
        }
        let row_idx = (self.i / self.t_per_row as u64) as usize % self.rows.len();
        self.i += 1;
        self.last = Some(now);
        ProcessStep::Access(MemAccess::flushed_load(self.rows[row_idx], self.think))
    }

    fn label(&self) -> String {
        format!("fingerprint-probe[{} rows]", self.rows.len())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// A fingerprint: the timestamps of the back-offs a victim's execution
/// caused, as observed by the probe.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Fingerprint {
    /// Back-off timestamps relative to the start of the observation.
    pub events: Vec<Time>,
    /// Total observation span.
    pub span: Span,
}

impl Fingerprint {
    /// Extracts the back-off events from a probe trace.
    pub fn from_trace(
        trace: &LatencyTrace,
        classifier: &LatencyClassifier,
        start: Time,
        span: Span,
    ) -> Fingerprint {
        let events = trace
            .samples()
            .iter()
            .filter(|s| s.latency >= classifier.backoff_threshold())
            .map(|s| Time::ZERO + s.at.saturating_since(start))
            .collect();
        Fingerprint { events, span }
    }

    /// Feature vector for the ML classifiers: per-execution-window
    /// back-off counts plus pairwise-timing aggregates (§8 collects, per
    /// consecutive back-off pair, the intra-pair gap, the inter-pair gap
    /// and the pair's mean timestamp; we aggregate those into fixed-size
    /// statistics so classical models can consume them).
    pub fn features(&self, n_windows: usize) -> Vec<f64> {
        let mut f = Vec::with_capacity(n_windows + 8);
        let win = self.span.as_ns() / n_windows as f64;
        let mut counts = vec![0.0f64; n_windows];
        for e in &self.events {
            let idx = ((e.as_ns() / win) as usize).min(n_windows - 1);
            counts[idx] += 1.0;
        }
        f.extend_from_slice(&counts);
        // Pairwise statistics over consecutive events.
        let gaps: Vec<f64> = self
            .events
            .windows(2)
            .map(|w| (w[1] - w[0]).as_ns())
            .collect();
        let pair_means: Vec<f64> = self
            .events
            .windows(2)
            .map(|w| (w[0].as_ns() + w[1].as_ns()) / 2.0)
            .collect();
        f.push(self.events.len() as f64);
        f.push(lh_analysis::mean(&gaps));
        f.push(lh_analysis::std_dev(&gaps));
        f.push(gaps.iter().copied().fold(f64::INFINITY, f64::min).min(1e12));
        f.push(gaps.iter().copied().fold(0.0, f64::max));
        f.push(lh_analysis::mean(&pair_means));
        f.push(self.events.first().map_or(self.span.as_ns(), |e| e.as_ns()));
        f.push(self.events.last().map_or(0.0, |e| e.as_ns()));
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lh_dram::DramTiming;

    #[test]
    fn probe_cycles_rows_every_t_accesses() {
        let mut p =
            FingerprintProbe::new(vec![0x0, 0x1000], 3, Span::from_ns(30), Time::from_us(100));
        let mut seen = Vec::new();
        let mut t = Time::ZERO;
        for _ in 0..7 {
            match p.step(t) {
                ProcessStep::Access(a) => seen.push(a.addr),
                other => panic!("{other:?}"),
            }
            t += Span::from_ns(100);
        }
        assert_eq!(seen, vec![0x0, 0x0, 0x0, 0x1000, 0x1000, 0x1000, 0x0]);
        assert_eq!(p.trace().len(), 6);
    }

    #[test]
    fn fingerprint_extracts_backoff_events_only() {
        let classifier =
            LatencyClassifier::from_timing(&DramTiming::ddr5_4800(), Span::from_ns(30));
        let mut trace = LatencyTrace::new();
        trace.push(Time::from_us(1), Span::from_ns(130)); // conflict
        trace.push(Time::from_us(2), Span::from_ns(1_600)); // back-off
        trace.push(Time::from_us(3), Span::from_ns(800)); // refresh
        trace.push(Time::from_us(4), Span::from_ns(1_700)); // back-off
        let fp = Fingerprint::from_trace(&trace, &classifier, Time::ZERO, Span::from_us(5));
        assert_eq!(fp.events.len(), 2);
        assert_eq!(fp.events[0], Time::from_us(2));
    }

    #[test]
    fn features_have_fixed_dimension() {
        let fp = Fingerprint {
            events: vec![Time::from_us(1), Time::from_us(3), Time::from_us(4)],
            span: Span::from_us(10),
        };
        let f8 = fp.features(8);
        assert_eq!(f8.len(), 16);
        let empty = Fingerprint {
            events: vec![],
            span: Span::from_us(10),
        };
        assert_eq!(empty.features(8).len(), 16);
        // Window counts sum to the event count.
        let total: f64 = f8[..8].iter().sum();
        assert_eq!(total, 3.0);
    }

    #[test]
    fn features_distinguish_different_timings() {
        let early = Fingerprint {
            events: vec![Time::from_us(1), Time::from_us(2)],
            span: Span::from_us(10),
        };
        let late = Fingerprint {
            events: vec![Time::from_us(8), Time::from_us(9)],
            span: Span::from_us(10),
        };
        assert_ne!(early.features(4), late.features(4));
    }
}
