//! Synthetic website / browser memory traces (§8 substitution).
//!
//! The paper records Chrome's memory accesses with Intel Pin while loading
//! each of 40 popular websites and replays them in simulation. We have no
//! browser or Pin, so each website gets a *seeded synthetic profile*: a
//! sequence of load phases (network wait, HTML parse, script execution,
//! layout, paint, ...) whose count, duration, access intensity and hot-row
//! working sets are deterministic functions of the site identity, with
//! per-trace jitter modeling load-to-load variation. The attack stack
//! consumes only the *timing of the back-offs* a load produces, which this
//! model generates end-to-end through the real simulator.

use core::any::Any;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use lh_dram::{BankId, DramAddr, Span, Time};
use lh_memctrl::AddressMapping;
use lh_sim::{MemAccess, Process, ProcessStep};

/// The 40 websites fingerprinted by the paper (§8, footnote 5).
pub const WEBSITES: [&str; 40] = [
    "aliexpress",
    "amazon",
    "apple",
    "baidu",
    "bilibili",
    "bing",
    "canva",
    "chatgpt",
    "discord",
    "duckduckgo",
    "facebook",
    "fandom",
    "github",
    "globo",
    "imdb",
    "instagram",
    "linkedin",
    "live",
    "naver",
    "netflix",
    "nytimes",
    "office",
    "pinterest",
    "quora",
    "reddit",
    "roblox",
    "samsung",
    "spotify",
    "telegram",
    "temu",
    "tiktok",
    "twitch",
    "weather",
    "whatsapp",
    "wikipedia",
    "x",
    "yahoo",
    "yandex",
    "youtube",
    "zoom",
];

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One load phase of a website profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Share of the total load time this phase occupies.
    pub duration_share: f64,
    /// Gap between consecutive memory accesses in this phase.
    pub access_gap: Span,
    /// Number of hot rows the phase cycles over (alternating rows forces
    /// row activations).
    pub hot_rows: u32,
    /// Fraction of accesses that thrash the cache (modeled as flushing
    /// loads) versus cache-friendly ones.
    pub thrash_frac: f64,
}

/// A deterministic per-site load profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WebsiteProfile {
    /// Index into [`WEBSITES`].
    pub site: usize,
    /// The load phases.
    pub phases: Vec<Phase>,
}

impl WebsiteProfile {
    /// Derives the profile of website `site` (0..40).
    ///
    /// # Panics
    ///
    /// Panics if `site >= WEBSITES.len()`.
    pub fn of_site(site: usize) -> WebsiteProfile {
        assert!(site < WEBSITES.len(), "site index {site} out of range");
        let h = splitmix64(0xC0FFEE ^ (site as u64).wrapping_mul(0x1234_5678_9abc_def1));
        let n_phases = 3 + (h % 4) as usize; // 3..=6 phases
        let mut phases = Vec::with_capacity(n_phases);
        let mut share_acc = 0.0;
        for p in 0..n_phases {
            let hp = splitmix64(h ^ ((p as u64) * 0x9e37_79b9));
            let share = 0.5 + ((hp >> 8) % 100) as f64 / 100.0; // 0.5..1.5
            share_acc += share;
            phases.push(Phase {
                duration_share: share,
                // 60 ns .. 1.2 µs between accesses.
                access_gap: Span::from_ns(60 + (hp % 24) * 50),
                hot_rows: 2 + ((hp >> 16) % 3) as u32,
                thrash_frac: 0.35 + ((hp >> 24) % 60) as f64 / 100.0,
            });
        }
        // Normalize shares.
        for ph in &mut phases {
            ph.duration_share /= share_acc;
        }
        WebsiteProfile { site, phases }
    }

    /// The site's name.
    pub fn name(&self) -> &'static str {
        WEBSITES[self.site]
    }
}

/// A browser process loading one website.
#[derive(Debug, Clone)]
pub struct BrowserProcess {
    profile: WebsiteProfile,
    mapping: AddressMapping,
    rng: StdRng,
    start: Time,
    load_span: Span,
    /// Jittered phase end times (absolute).
    phase_ends: Vec<Time>,
    i: u64,
    hot_base_row: u32,
}

impl BrowserProcess {
    /// Creates a load of `profile` starting at `start` and lasting
    /// `load_span`, with per-trace `trace_seed` jitter.
    pub fn new(
        profile: WebsiteProfile,
        mapping: AddressMapping,
        trace_seed: u64,
        start: Time,
        load_span: Span,
    ) -> BrowserProcess {
        let mut rng = StdRng::seed_from_u64(trace_seed ^ splitmix64(profile.site as u64 * 0xABCD));
        // Jitter phase boundaries by ±10 %.
        let mut phase_ends = Vec::with_capacity(profile.phases.len());
        let mut t = start;
        for ph in &profile.phases {
            let nominal = load_span.as_ps() as f64 * ph.duration_share;
            let jitter = rng.gen_range(0.9..1.1);
            t += Span::from_ps((nominal * jitter) as u64);
            phase_ends.push(t);
        }
        *phase_ends.last_mut().expect("profiles have phases") = start + load_span;
        let hot_base_row = 2048 + (splitmix64(profile.site as u64) % 1024) as u32 * 8;
        BrowserProcess {
            profile,
            mapping,
            rng,
            start,
            load_span,
            phase_ends,
            i: 0,
            hot_base_row,
        }
    }

    /// The profile being loaded.
    pub fn profile(&self) -> &WebsiteProfile {
        &self.profile
    }

    fn phase_at(&self, now: Time) -> Option<&Phase> {
        let idx = self.phase_ends.iter().position(|&e| now < e)?;
        Some(&self.profile.phases[idx])
    }
}

impl Process for BrowserProcess {
    fn step(&mut self, now: Time) -> ProcessStep {
        if now < self.start {
            return ProcessStep::SleepUntil(self.start);
        }
        if now >= self.start + self.load_span {
            return ProcessStep::Halt;
        }
        let Some(phase) = self.phase_at(now).copied() else {
            return ProcessStep::Halt;
        };
        let g = *self.mapping.geometry();
        // Cycle the phase's hot rows in a fixed bank region; alternating
        // rows in the same bank forces activations that drive the PRAC
        // counters (and hence back-offs) at site-specific rates.
        let hot_idx = (self.i % phase.hot_rows as u64) as u32;
        let bank = g.bank_from_flat(0, self.profile.site % g.banks_per_channel() as usize);
        let row = (self.hot_base_row + hot_idx * 4) % g.rows_per_bank();
        let col = (self.i / phase.hot_rows as u64 % g.cols_per_row() as u64) as u32;
        self.i += 1;
        let addr = self.mapping.encode(DramAddr::new(bank, row, col));
        let thrash = self.rng.gen_bool(phase.thrash_frac.clamp(0.0, 1.0));
        let _ = BankId::new(0, 0, 0, 0);
        ProcessStep::Access(MemAccess {
            addr,
            write: false,
            flush: thrash,
            think: phase.access_gap,
            blocking: true,
        })
    }

    fn label(&self) -> String {
        format!("browser[{}]", self.profile.name())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lh_defenses::DefenseConfig;
    use lh_sim::{SimConfig, System};

    #[test]
    fn site_profiles_are_deterministic_and_distinct() {
        let a1 = WebsiteProfile::of_site(3);
        let a2 = WebsiteProfile::of_site(3);
        assert_eq!(a1, a2);
        let b = WebsiteProfile::of_site(7);
        assert_ne!(a1, b);
        assert_eq!(a1.name(), "baidu");
    }

    #[test]
    fn phase_shares_sum_to_one() {
        for site in 0..WEBSITES.len() {
            let p = WebsiteProfile::of_site(site);
            let total: f64 = p.phases.iter().map(|ph| ph.duration_share).sum();
            assert!((total - 1.0).abs() < 1e-9, "{site}: {total}");
            assert!((3..=6).contains(&p.phases.len()));
        }
    }

    #[test]
    fn browser_load_triggers_backoffs_at_low_nrh() {
        // NRH = 64 (the §8 evaluation point) → NBO = 24.
        let cfg = SimConfig::paper_default(DefenseConfig::for_threshold(
            lh_defenses::DefenseKind::Prac,
            64,
            &lh_dram::DramTiming::ddr5_4800(),
        ));
        let mapping = AddressMapping::new(cfg.mapping, cfg.device.geometry);
        let mut sys = System::new(cfg).unwrap();
        let browser = BrowserProcess::new(
            WebsiteProfile::of_site(24), // reddit
            mapping,
            1,
            Time::ZERO,
            Span::from_us(400),
        );
        sys.add_process(Box::new(browser), 1, Time::ZERO);
        sys.run_until(Time::from_us(450));
        assert!(
            sys.controller().stats().backoffs > 2,
            "browser load must trigger back-offs, got {}",
            sys.controller().stats().backoffs
        );
    }

    #[test]
    fn different_trace_seeds_jitter_the_same_site() {
        let m = AddressMapping::new(
            lh_memctrl::MappingScheme::RowBankCol,
            lh_dram::Geometry::paper_default(),
        );
        let b1 = BrowserProcess::new(
            WebsiteProfile::of_site(5),
            m,
            1,
            Time::ZERO,
            Span::from_ms(1),
        );
        let b2 = BrowserProcess::new(
            WebsiteProfile::of_site(5),
            m,
            2,
            Time::ZERO,
            Span::from_ms(1),
        );
        assert_ne!(b1.phase_ends, b2.phase_ends, "traces must jitter");
    }

    #[test]
    fn forty_sites_exist() {
        assert_eq!(WEBSITES.len(), 40);
        assert_eq!(WEBSITES[38], "youtube");
    }
}
