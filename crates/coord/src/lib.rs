//! # lh-coord — distributed coordinator/worker execution for the
//! experiment unit DAG
//!
//! `lh-harness` made every experiment a machine-agnostic DAG of units
//! with content-addressed cache keys and position-derived seeds. This
//! crate is the subsystem that exploits it at fleet scale: a
//! [`Coordinator`] schedules the DAG across N worker processes, and a
//! worker mode ([`worker_loop`], surfaced as `lh-experiments
//! --worker`) executes assigned units, speaking a tiny NDJSON line
//! protocol ([`protocol`]) over a pluggable [`transport`].
//!
//! The contract mirrors the in-process runner exactly:
//!
//! * **determinism** — a unit's seed derives from `(experiment id,
//!   unit index, master seed)` *inside the worker*, dependency results
//!   ship in the assignment, and the coordinator merges in unit order,
//!   so `--workers N` envelopes are byte-identical to `--jobs M` for
//!   any N, M and any placement of units on workers;
//! * **incrementality** — the shared [`DiskCache`] is the warm path
//!   (cached units never reach a worker); workers write fresh results
//!   into private cache directories the coordinator merges back;
//! * **fault tolerance** — a dead worker's in-flight unit is requeued
//!   on the survivors, with a bounded respawn budget when the whole
//!   fleet is lost;
//! * **observability** — every worker's completions multiplex into the
//!   one [`UnitObserver`] feed behind `--stream`, and
//!   [`viewer::watch`] (surfaced as `lh-experiments watch`) renders
//!   that stream for humans.
//!
//! Transports are small trait objects ([`transport::Sender`] /
//! [`transport::Receiver`]); the stock ones cover child-process pipes
//! and wire-faithful in-memory channels, and anything
//! `Write`/`BufRead` (a `TcpStream`, say) slots in without touching
//! scheduling.
//!
//! ## Example
//!
//! In-process workers over the wire-faithful memory transport:
//!
//! ```
//! use lh_coord::{Coordinator, CoordinatorOptions, ThreadSpawner};
//! use lh_harness::{Job, JobContext, Json, Registry, ScaleLevel};
//!
//! struct Squares;
//!
//! impl Job for Squares {
//!     fn id(&self) -> &'static str { "squares" }
//!     fn description(&self) -> &'static str { "squares of the first N integers" }
//!     fn units(&self, _ctx: &JobContext) -> Vec<String> {
//!         (0..4).map(|i| format!("square:{i}")).collect()
//!     }
//!     fn run_unit(&self, unit: usize, _seed: u64, _deps: &[Json], _ctx: &JobContext) -> Json {
//!         Json::object().with("n", unit).with("sq", unit * unit)
//!     }
//!     fn finish(&self, units: Vec<Json>, _ctx: &JobContext) -> Json {
//!         Json::object().with("points", Json::Array(units))
//!     }
//!     fn render_text(&self, merged: &Json, _ctx: &JobContext) -> String {
//!         format!("{} squares\n", merged["points"].as_array().len())
//!     }
//! }
//!
//! fn registry() -> Registry {
//!     let mut r = Registry::new();
//!     r.register(Box::new(Squares));
//!     r
//! }
//!
//! let mut coordinator = Coordinator::new(
//!     Box::new(ThreadSpawner::new(registry)),
//!     CoordinatorOptions { workers: 2, ..CoordinatorOptions::default() },
//! );
//! let ctx = JobContext::new(ScaleLevel::Quick, 1);
//! let run = coordinator.run(registry().get("squares").unwrap(), &ctx).unwrap();
//! assert_eq!(run.merged["points"].as_array().len(), 4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod coordinator;
pub mod protocol;
pub mod telemetry;
pub mod transport;
pub mod viewer;
pub mod worker;

pub use coordinator::{
    CoordStats, Coordinator, CoordinatorOptions, ProcessSpawner, SpawnWorker, ThreadSpawner,
};
pub use protocol::{FromWorker, ToWorker, PROTOCOL_VERSION};
pub use telemetry::{FleetSnapshot, FleetTelemetry, WorkerTelemetry};
pub use transport::{stdio_link, Link};
pub use viewer::{watch, WatchSummary};
pub use worker::{worker_loop, WorkerOptions};

// Re-exported so transports and worker glue need only this crate.
pub use lh_harness::cache::DiskCache;
pub use lh_harness::UnitObserver;
