//! DRAMA row-buffer covert channel (Pessl et al., USENIX Security'16) —
//! the prior-work baseline LeakyHammer is compared against in §9.
//!
//! DRAMA transmits by modulating *row-buffer state*: sender and receiver
//! colocate in one bank; the receiver repeatedly accesses its row and
//! times the access. If the sender is active (accessing a different row of
//! the same bank), the receiver sees row-buffer conflicts; if idle, row
//! hits. The receiver decodes by comparing the fraction of
//! conflict-latency accesses in the window against a threshold.
//!
//! Unlike LeakyHammer, DRAMA requires same-bank colocation (Table 3) and
//! its signal (one conflict, tens of ns) is ~10× smaller than a PRAC
//! back-off.

use core::any::Any;

use serde::{Deserialize, Serialize};

use lh_dram::{Span, Time};
use lh_sim::{MemAccess, Process, ProcessStep};

/// DRAMA receiver configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramaConfig {
    /// The receiver's probe row address.
    pub row_addr: u64,
    /// Window length (DRAMA windows can be much shorter than
    /// LeakyHammer's — a single conflict suffices).
    pub window: Span,
    /// Transmission start.
    pub start: Time,
    /// Number of windows.
    pub n_windows: usize,
    /// Loop overhead.
    pub think: Span,
    /// Latency above which an access counts as a conflict.
    pub conflict_threshold: Span,
}

/// The DRAMA receiver: counts conflict-class accesses per window.
#[derive(Debug, Clone)]
pub struct DramaReceiver {
    cfg: DramaConfig,
    conflicts: Vec<u32>,
    accesses: Vec<u32>,
    last: Option<Time>,
}

impl DramaReceiver {
    /// Creates a receiver.
    pub fn new(cfg: DramaConfig) -> DramaReceiver {
        DramaReceiver {
            conflicts: vec![0; cfg.n_windows],
            accesses: vec![0; cfg.n_windows],
            cfg,
            last: None,
        }
    }

    /// Conflict counts per window.
    pub fn conflicts(&self) -> &[u32] {
        &self.conflicts
    }

    /// Decodes: bit = 1 iff at least `frac` of the window's accesses were
    /// conflicts.
    pub fn decode(&self, frac: f64) -> Vec<u8> {
        self.conflicts
            .iter()
            .zip(&self.accesses)
            .map(|(&c, &a)| (a > 0 && c as f64 / a as f64 >= frac) as u8)
            .collect()
    }
}

impl Process for DramaReceiver {
    fn step(&mut self, now: Time) -> ProcessStep {
        if now < self.cfg.start {
            self.last = None;
            return ProcessStep::SleepUntil(self.cfg.start);
        }
        if let Some(last) = self.last.take() {
            let w = ((last - self.cfg.start) / self.cfg.window) as usize;
            if w < self.cfg.n_windows {
                self.accesses[w] += 1;
                if now - last >= self.cfg.conflict_threshold {
                    self.conflicts[w] += 1;
                }
            }
        }
        let w = ((now - self.cfg.start) / self.cfg.window) as usize;
        if w >= self.cfg.n_windows {
            return ProcessStep::Halt;
        }
        self.last = Some(now);
        ProcessStep::Access(MemAccess::flushed_load(self.cfg.row_addr, self.cfg.think))
    }

    fn label(&self) -> String {
        "drama-rx".to_owned()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// The DRAMA sender: accesses its conflicting row during 1-windows.
#[derive(Debug, Clone)]
pub struct DramaSender {
    row_addr: u64,
    window: Span,
    start: Time,
    think: Span,
    bits: Vec<u8>,
}

impl DramaSender {
    /// Creates a sender transmitting `bits`.
    pub fn new(
        row_addr: u64,
        window: Span,
        start: Time,
        think: Span,
        bits: Vec<u8>,
    ) -> DramaSender {
        DramaSender {
            row_addr,
            window,
            start,
            think,
            bits,
        }
    }
}

impl Process for DramaSender {
    fn step(&mut self, now: Time) -> ProcessStep {
        if now < self.start {
            return ProcessStep::SleepUntil(self.start);
        }
        let w = ((now - self.start) / self.window) as usize;
        if w >= self.bits.len() {
            return ProcessStep::Halt;
        }
        if self.bits[w] == 0 {
            return ProcessStep::SleepUntil(self.start + self.window * (w as u64 + 1));
        }
        ProcessStep::Access(MemAccess::flushed_load(self.row_addr, self.think))
    }

    fn label(&self) -> String {
        "drama-tx".to_owned()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn receiver_counts_conflicts_per_window() {
        let cfg = DramaConfig {
            row_addr: 0x0,
            window: Span::from_us(2),
            start: Time::ZERO,
            n_windows: 2,
            think: Span::from_ns(30),
            conflict_threshold: Span::from_ns(110),
        };
        let mut rx = DramaReceiver::new(cfg);
        let mut t = Time::ZERO;
        // Window 0: three conflict-latency accesses.
        for _ in 0..3 {
            assert!(matches!(rx.step(t), ProcessStep::Access(_)));
            t += Span::from_ns(150);
        }
        // Window 1: hits only.
        t = Time::from_us(2);
        for _ in 0..3 {
            assert!(matches!(rx.step(t), ProcessStep::Access(_)));
            t += Span::from_ns(60);
        }
        let _ = rx.step(t);
        assert_eq!(rx.decode(0.5), vec![1, 0]);
    }

    #[test]
    fn sender_sleeps_on_zero_bits() {
        let mut tx = DramaSender::new(
            0x40,
            Span::from_us(2),
            Time::ZERO,
            Span::from_ns(30),
            vec![0, 1],
        );
        assert_eq!(
            tx.step(Time::ZERO),
            ProcessStep::SleepUntil(Time::from_us(2))
        );
        assert!(matches!(tx.step(Time::from_us(2)), ProcessStep::Access(_)));
        assert_eq!(tx.step(Time::from_us(4)), ProcessStep::Halt);
    }
}
