//! `lh-experiments` — regenerate any figure or table of the paper.
//!
//! ```text
//! lh-experiments <id> [--scale quick|default|paper] [--seed N]
//! lh-experiments all  [--scale quick]
//! lh-experiments list
//! ```

use lh_bench::{experiment, report, Scale, EXPERIMENTS};

use experiment::covert::{run_covert, ChannelKind, CovertOptions};
use lh_analysis::message::bits_of_str;

struct Args {
    id: String,
    scale: Scale,
    seed: u64,
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let id = args.next().unwrap_or_else(|| "list".to_owned());
    let mut scale = Scale::Default;
    let mut seed = 1u64;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().expect("--scale needs a value");
                scale = v.parse().unwrap_or_else(|e| panic!("{e}"));
            }
            "--seed" => {
                let v = args.next().expect("--seed needs a value");
                seed = v.parse().expect("--seed needs an integer");
            }
            other => panic!("unknown argument '{other}'"),
        }
    }
    Args { id, scale, seed }
}

fn run_one(id: &str, scale: Scale, seed: u64) {
    println!("== {id} ({scale:?}) ==");
    match id {
        "fig2" => {
            let out = experiment::latency_trace::run_latency_trace(
                lh_defenses::DefenseConfig::prac(128),
                600,
                lh_dram::Span::from_ns(30),
            );
            print!("{}", report::latency_trace_report(&out));
            // Also the §7.2 PRFM observations.
            let out = experiment::latency_trace::run_latency_trace(
                lh_defenses::DefenseConfig::prfm(40),
                500,
                lh_dram::Span::from_ns(30),
            );
            println!("--- under PRFM (sec. 7.2) ---");
            print!("{}", report::latency_trace_report(&out));
        }
        "fig3" => {
            let opts = CovertOptions::new(ChannelKind::Prac, bits_of_str("MICRO"));
            let out = run_covert(&opts);
            print!("{}", report::covert_report("PRAC covert channel, 40-bit MICRO", &out));
            println!("decoded: {:?}", lh_analysis::str_of_bits(&out.decoded));
        }
        "fig6" => {
            let opts = CovertOptions::new(ChannelKind::Rfm, bits_of_str("MICRO"));
            let out = run_covert(&opts);
            print!("{}", report::covert_report("RFM covert channel, 40-bit MICRO", &out));
            println!("decoded: {:?}", lh_analysis::str_of_bits(&out.decoded));
        }
        "fig4" => {
            let sweep =
                experiment::noise_sweep::run_noise_sweep(ChannelKind::Prac, scale, seed);
            print!("{}", report::noise_sweep_report(&sweep));
        }
        "fig7" => {
            let sweep =
                experiment::noise_sweep::run_noise_sweep(ChannelKind::Rfm, scale, seed);
            print!("{}", report::noise_sweep_report(&sweep));
        }
        "fig5" => {
            let series = experiment::app_noise::run_app_noise(ChannelKind::Prac, scale, seed);
            print!("{}", report::app_noise_report(&series));
        }
        "fig8" => {
            let series = experiment::app_noise::run_app_noise(ChannelKind::Rfm, scale, seed);
            print!("{}", report::app_noise_report(&series));
        }
        "fig9" => {
            let mut opts = experiment::fingerprint::CollectOptions::for_scale(scale, seed);
            opts.sites = opts.sites.min(3);
            opts.traces_per_site = 2;
            for site in 0..opts.sites {
                for t in 0..opts.traces_per_site {
                    let fp = experiment::fingerprint::collect_one(
                        site,
                        seed ^ ((site as u64) << 20) ^ t as u64,
                        &opts,
                    );
                    let name = lh_workloads::WEBSITES[site];
                    let marks: String = fp
                        .events
                        .iter()
                        .map(|e| format!("{:.0}", e.as_us()))
                        .collect::<Vec<_>>()
                        .join(" ");
                    println!("{name:>12} trace {t}: back-offs at us [{marks}]");
                }
            }
        }
        "fig10" | "table2" => {
            let opts = experiment::fingerprint::CollectOptions::for_scale(scale, seed);
            eprintln!(
                "collecting {} sites x {} traces ...",
                opts.sites, opts.traces_per_site
            );
            let traces = experiment::fingerprint::collect_dataset(&opts);
            let data = experiment::fingerprint::to_dataset(&traces);
            if id == "fig10" {
                let folds = if scale == Scale::Quick { 3 } else { 5 };
                let accs =
                    experiment::fingerprint::run_model_comparison(&data, folds, seed);
                print!("{}", report::classifier_report(&accs, opts.sites));
            } else {
                let scores = experiment::fingerprint::run_table2(&data, seed);
                print!("{}", report::table2_report(&scores));
            }
        }
        "fig11" => {
            for rfms in [2u32, 1] {
                println!("--- {rfms} RFM(s) per back-off ---");
                let sweep =
                    experiment::noise_sweep::run_rfm_count_sweep(rfms, scale, seed);
                print!("{}", report::noise_sweep_report(&sweep));
            }
            println!("--- 1 RFM, sec. 10.1 modified attack (cadence-filtered) ---");
            let sweep = experiment::noise_sweep::run_overlap_1rfm_sweep(true, scale, seed);
            print!("{}", report::noise_sweep_report(&sweep));
        }
        "fig12" => {
            let grid = experiment::latency_sweep::paper_grid();
            let bits = scale.message_bits() / 8;
            let points = experiment::latency_sweep::run_latency_sweep(&grid, bits, seed);
            print!("{}", report::latency_sweep_report(&points));
        }
        "fig13" => {
            let study = experiment::perf::run_performance(
                &lh_defenses::DefenseKind::figure13_set(),
                &experiment::perf::NRH_SWEEP,
                scale,
                seed,
            );
            print!("{}", report::perf_report(&study));
        }
        "table3" => {
            print!("{}", report::table3_report());
        }
        "multibit" => {
            let bytes = if scale == Scale::Quick { 6 } else { 32 };
            let outs: Vec<_> =
                [2u8, 3, 4].iter().map(|&b| experiment::multibit::run_multibit(b, bytes, seed)).collect();
            print!("{}", report::multibit_report(&outs));
        }
        "counterleak" => {
            let out = experiment::counter_leak::run_counter_leak(scale.leak_trials(), seed);
            print!("{}", report::counter_leak_report(&out));
        }
        "cache" => {
            let points = experiment::cache_sensitivity::run_cache_sensitivity(scale, seed);
            print!("{}", report::cache_report(&points));
        }
        "mitigation" => {
            let study = experiment::countermeasures::run_mitigation_study(scale, seed);
            print!("{}", report::mitigation_report(&study));
        }
        "rowpolicy" => {
            let bits = scale.message_bits() / 8;
            let study = experiment::row_policy::run_row_policy_study(bits, seed);
            print!("{}", report::row_policy_report(&study));
        }
        "taxonomy" => {
            println!("--- qualitative (sec. 12) ---");
            print!("{}", report::taxonomy_report());
            println!("--- measured (covert-channel attempt per class) ---");
            let points = experiment::taxonomy::run_taxonomy(scale, seed);
            print!("{}", report::taxonomy_measured_report(&points));
        }
        other => {
            eprintln!("unknown experiment '{other}'; run `lh-experiments list`");
            std::process::exit(2);
        }
    }
    println!();
}

fn main() {
    let args = parse_args();
    match args.id.as_str() {
        "list" => {
            println!("available experiments:");
            for (id, desc) in EXPERIMENTS {
                println!("  {id:<12} {desc}");
            }
        }
        "all" => {
            for (id, _) in EXPERIMENTS {
                run_one(id, args.scale, args.seed);
            }
        }
        id => run_one(id, args.scale, args.seed),
    }
}
