//! `lh-experiments` — regenerate any figure or table of the paper on
//! the `lh-harness` runner: units scheduled as a dependency DAG across
//! cores (`--jobs`) or across worker processes (`--workers`, the
//! `lh-coord` coordinator), cached across reruns, with text/JSON/CSV
//! output and an NDJSON streaming mode (`--stream`) that emits each
//! unit's result the moment it completes — one multiplexed feed no
//! matter how many workers produced it (`lh-experiments watch` renders
//! it).
//!
//! Observability: every experiment envelope carries a deterministic
//! `metrics` block (per-unit simulator counters plus totals, including
//! power-of-two-bucket histograms); `lh-experiments report` condenses
//! envelopes or `--stream` feeds into a canonical metrics document CI
//! diffs against committed snapshots, and `--trace-out FILE` exports
//! wall-clock spans as Chrome `trace_event` JSON loadable in
//! `chrome://tracing` or Perfetto.
//!
//! `--events-out FILE` turns on the flight recorder: typed events on
//! the *simulated* clock (DRAM commands, defense maintenance decisions
//! with cause, mitigation interventions, link symbol windows with
//! decode verdicts) land in an NDJSON log that is byte-identical across
//! `--jobs N`, `--workers N` and cache replay. `lh-experiments events`
//! filters, summarizes, exports (Chrome `trace_event` on the simulated
//! clock) and renders the leak-alignment view of such a log.
//!
//! `lh-experiments serve` runs the whole harness as a resident service
//! (`lh-serve`): jobs submitted over HTTP against a warm cache and a
//! resident worker fleet, live NDJSON run streaming, and a Prometheus
//! `/metrics` endpoint with fleet telemetry. `lh-experiments watch
//! --url http://host:port/runs/<id>/stream` attaches the dashboard to
//! a serve run.
//!
//! ```text
//! lh-experiments <id|all|list|watch|report|events|serve> [options]
//!
//! options:
//!   --scale quick|default|paper   experiment scale (default: default)
//!   --seed N                      master seed (default: 1)
//!   --jobs N                      in-process worker threads (default: all cores)
//!   --workers N                   distribute units across N worker child processes
//!   --no-cache                    disable the on-disk result cache
//!   --cache-dir PATH              cache location (default: .lh-cache)
//!   --format text|json|csv        output format (default: text)
//!   --stream                      stream NDJSON events to stdout as units finish
//!   --trace-out FILE              export wall-clock spans as Chrome trace_event JSON
//!   --events-out FILE             record simulated-time flight events to FILE (NDJSON)
//!   --events-cap N                flight-recorder ring capacity per unit
//!   --kind/--bank/--seg/--from/--to   events: filter predicates
//!   --summary / --align / --chrome F  events: view selection
//!   --addr HOST:PORT              serve: listen address (default: 127.0.0.1:7878)
//!   --url URL                     watch: attach to a serve stream URL instead of stdin
//!   --quiet                       suppress progress lines on stderr
//!   --worker                      internal: serve units over stdio (lh-coord protocol)
//!   --help                        this message
//! ```

use lh_coord::{Coordinator, CoordinatorOptions, ProcessSpawner};
use lh_harness::{
    DiskCache, ExperimentRun, Job, JobContext, OutputFormat, Runner, RunnerOptions, ScaleLevel,
};

const USAGE: &str = "\
usage: lh-experiments <id|all|list|watch|report|events|serve> [options]

commands:
  <id>           run one experiment (see `lh-experiments list`)
  all            run every experiment
  list           list experiment ids and descriptions
  watch          render an NDJSON --stream feed (stdin, or --url against a
                 running serve instance) as a live dashboard
  report FILE..  condense envelope JSON / --stream feeds ('-' = stdin) into
                 a canonical deterministic-metrics document
  events FILE..  filter/summarize/export an --events-out flight-event log
                 ('-' = stdin); --align renders the leak-alignment view
  serve          run as a resident HTTP service: submit jobs, stream runs,
                 scrape /metrics (see crates/serve/README.md)

options:
  --scale quick|default|paper   experiment scale (default: default)
  --seed N                      master seed (default: 1)
  --jobs N                      in-process worker threads (default: all cores)
  --workers N                   distribute units across N worker child processes
                                (serve: resident fleet size, default 2)
  --no-cache                    disable the on-disk result cache
  --cache-dir PATH              cache location (default: .lh-cache)
  --format text|json|csv        output format (default: text; report: text,
                                json, or csv — one row per unit with counters
                                and histogram quantiles)
  --stream                      stream NDJSON events to stdout as units finish
  --trace-out FILE              export wall-clock spans as Chrome trace_event JSON
  --events-out FILE             record simulated-time flight events to FILE
                                (NDJSON; byte-identical across --jobs/--workers
                                and cache replay)
  --events-cap N                flight-recorder ring capacity per unit
                                (default 65536; oldest events drop, counted)
  --kind K                      events: keep only kind K (cmd|maint|mitigation|link)
  --bank N / --seg N            events: keep only bank / segment N
  --from NS / --to NS           events: keep t_ns in [FROM, TO)
  --summary                     events: per-unit kind/verdict/drop summary
  --align                       events: leak-alignment view (link windows vs
                                in-window maintenance and mitigation)
  --chrome FILE                 events: write Chrome trace_event JSON on the
                                simulated clock to FILE
  --addr HOST:PORT              serve: listen address (default: 127.0.0.1:7878)
  --url URL                     watch: attach to a serve stream URL instead of stdin
  --quiet                       suppress progress lines on stderr
  --worker                      internal: serve units over stdio (lh-coord protocol)
  --help                        this message
";

#[derive(Debug)]
struct Args {
    id: String,
    scale: ScaleLevel,
    seed: u64,
    jobs: usize,
    workers: usize,
    worker: bool,
    cache: bool,
    cache_dir: String,
    format: Option<OutputFormat>,
    stream: bool,
    trace_out: Option<String>,
    events_out: Option<String>,
    events_cap: Option<usize>,
    query: lh_bench::flight_view::EventQuery,
    ev_summary: bool,
    ev_align: bool,
    ev_chrome: Option<String>,
    addr: String,
    url: Option<String>,
    quiet: bool,
    files: Vec<String>,
}

impl Default for Args {
    fn default() -> Args {
        Args {
            id: "list".to_owned(),
            scale: ScaleLevel::Default,
            seed: 1,
            jobs: 0,
            workers: 0,
            worker: false,
            cache: true,
            cache_dir: ".lh-cache".to_owned(),
            format: None,
            stream: false,
            trace_out: None,
            events_out: None,
            events_cap: None,
            query: lh_bench::flight_view::EventQuery::default(),
            ev_summary: false,
            ev_align: false,
            ev_chrome: None,
            addr: "127.0.0.1:7878".to_owned(),
            url: None,
            quiet: false,
            files: Vec::new(),
        }
    }
}

/// Exit codes: 0 success, 1 runtime failure, 2 usage error.
fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = argv.iter();
    let mut saw_command = false;

    fn value<'a>(flag: &str, it: &mut core::slice::Iter<'a, String>) -> Result<&'a String, String> {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    }

    while let Some(a) = it.next() {
        match a.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--scale" => args.scale = value("--scale", &mut it)?.parse()?,
            "--seed" => {
                args.seed = value("--seed", &mut it)?
                    .parse()
                    .map_err(|_| "--seed needs an unsigned integer".to_owned())?;
            }
            "--jobs" | "-j" => {
                args.jobs = value("--jobs", &mut it)?
                    .parse()
                    .map_err(|_| "--jobs needs a positive integer".to_owned())?;
                if args.jobs == 0 {
                    return Err("--jobs must be at least 1".to_owned());
                }
            }
            "--workers" => {
                args.workers = value("--workers", &mut it)?
                    .parse()
                    .map_err(|_| "--workers needs a positive integer".to_owned())?;
                if args.workers == 0 {
                    return Err("--workers must be at least 1".to_owned());
                }
            }
            "--worker" => args.worker = true,
            "--no-cache" => args.cache = false,
            "--cache-dir" => args.cache_dir = value("--cache-dir", &mut it)?.clone(),
            "--format" => args.format = Some(value("--format", &mut it)?.parse()?),
            "--stream" => args.stream = true,
            "--trace-out" => args.trace_out = Some(value("--trace-out", &mut it)?.clone()),
            "--events-out" => args.events_out = Some(value("--events-out", &mut it)?.clone()),
            "--events-cap" => {
                let cap = value("--events-cap", &mut it)?
                    .parse()
                    .map_err(|_| "--events-cap needs a positive integer".to_owned())?;
                if cap == 0 {
                    return Err("--events-cap must be at least 1".to_owned());
                }
                args.events_cap = Some(cap);
            }
            "--kind" => {
                let kind = value("--kind", &mut it)?.clone();
                if !matches!(kind.as_str(), "cmd" | "maint" | "mitigation" | "link") {
                    return Err(format!(
                        "--kind must be cmd, maint, mitigation or link, not '{kind}'"
                    ));
                }
                args.query.kind = Some(kind);
            }
            "--bank" => {
                args.query.bank = Some(
                    value("--bank", &mut it)?
                        .parse()
                        .map_err(|_| "--bank needs an unsigned integer".to_owned())?,
                );
            }
            "--seg" => {
                args.query.seg = Some(
                    value("--seg", &mut it)?
                        .parse()
                        .map_err(|_| "--seg needs an unsigned integer".to_owned())?,
                );
            }
            "--from" => {
                args.query.from = Some(
                    value("--from", &mut it)?
                        .parse()
                        .map_err(|_| "--from needs simulated ns (unsigned)".to_owned())?,
                );
            }
            "--to" => {
                args.query.to = Some(
                    value("--to", &mut it)?
                        .parse()
                        .map_err(|_| "--to needs simulated ns (unsigned)".to_owned())?,
                );
            }
            "--summary" => args.ev_summary = true,
            "--align" => args.ev_align = true,
            "--chrome" => args.ev_chrome = Some(value("--chrome", &mut it)?.clone()),
            "--addr" => args.addr = value("--addr", &mut it)?.clone(),
            "--url" => args.url = Some(value("--url", &mut it)?.clone()),
            "--quiet" | "-q" => args.quiet = true,
            // `-` names stdin for `report`; every other dash-leading
            // token is an option.
            flag if flag.starts_with('-') && flag != "-" => {
                return Err(format!("unknown option '{flag}'"));
            }
            id if !saw_command => {
                args.id = id.to_owned();
                saw_command = true;
            }
            file if args.id == "report" || args.id == "events" => args.files.push(file.to_owned()),
            extra => return Err(format!("unexpected argument '{extra}'")),
        }
    }
    if (args.id == "report" || args.id == "events") && args.files.is_empty() {
        return Err(format!(
            "{} needs at least one input file ('-' = stdin)",
            args.id
        ));
    }
    let event_views = usize::from(args.ev_summary)
        + usize::from(args.ev_align)
        + usize::from(args.ev_chrome.is_some());
    if args.id == "events" {
        if event_views > 1 {
            return Err("--summary, --align and --chrome are mutually exclusive".to_owned());
        }
        if args.format.is_some() || args.stream {
            return Err("events emits its own formats (see --summary/--align/--chrome)".to_owned());
        }
    } else {
        let has_query = args.query.kind.is_some()
            || args.query.bank.is_some()
            || args.query.seg.is_some()
            || args.query.from.is_some()
            || args.query.to.is_some();
        if event_views > 0 || has_query {
            return Err(
                "--kind/--bank/--seg/--from/--to/--summary/--align/--chrome only apply to the \
                 events command"
                    .to_owned(),
            );
        }
    }
    if args.events_out.is_some()
        && (args.worker || matches!(args.id.as_str(), "watch" | "report" | "events" | "serve"))
    {
        return Err(
            "--events-out only applies to experiment runs (serve clients request events per \
             run; workers inherit the switch from their coordinator)"
                .to_owned(),
        );
    }
    if args.events_cap.is_some() && args.events_out.is_none() {
        return Err("--events-cap needs --events-out".to_owned());
    }
    if args.stream && args.format.is_some() {
        return Err(
            "--stream and --format are mutually exclusive (streaming always emits NDJSON)"
                .to_owned(),
        );
    }
    if args.jobs != 0 && args.workers != 0 {
        return Err(
            "--jobs and --workers are mutually exclusive (threads vs worker processes)".to_owned(),
        );
    }
    if args.url.is_some() && args.id != "watch" {
        return Err("--url only applies to the watch command".to_owned());
    }
    if args.id == "serve" && (args.stream || args.format.is_some() || args.jobs != 0) {
        return Err(
            "serve takes no --stream/--format/--jobs (clients choose output; the fleet is \
             --workers)"
                .to_owned(),
        );
    }
    if args.worker
        && (saw_command
            || args.workers != 0
            || args.stream
            || args.format.is_some()
            || args.trace_out.is_some())
    {
        return Err(
            "--worker takes no command and no output flags (it serves a coordinator over \
                    stdio)"
                .to_owned(),
        );
    }
    Ok(args)
}

/// Writes to stdout. A closed downstream pipe (`lh-experiments list |
/// head`) is a normal way for a consumer to stop reading, so it exits
/// quietly; any other write error (disk full, I/O fault) is reported
/// and fails the run — a truncated report must not look successful.
fn emit(text: &str) {
    use std::io::Write;
    if let Err(e) = std::io::stdout().write_all(text.as_bytes()) {
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
        eprintln!("error: writing output failed: {e}");
        std::process::exit(1);
    }
}

/// How experiments execute: the in-process thread pool (`--jobs`) or
/// the `lh-coord` fleet of worker child processes (`--workers`).
enum Executor {
    Threads(Runner),
    Fleet(Coordinator),
}

impl Executor {
    fn run(&mut self, job: &dyn Job, ctx: &JobContext) -> Result<ExperimentRun, String> {
        match self {
            Executor::Threads(runner) => runner.run(job, ctx),
            Executor::Fleet(coordinator) => coordinator.run(job, ctx),
        }
    }

    /// The fleet-telemetry snapshot, when a fleet is executing (thread
    /// runs have no fleet to report on).
    fn fleet_snapshot(&self) -> Option<lh_harness::Json> {
        match self {
            Executor::Threads(_) => None,
            Executor::Fleet(coordinator) => Some(coordinator.telemetry().snapshot().to_json()),
        }
    }
}

/// Runs as a protocol worker over stdio: the child side of `--workers`.
/// The chaos hook (worker 0 crashing on its n-th assignment when
/// `LH_COORD_CHAOS=n` is set) exists so CI can prove requeue-on-death
/// end to end with a deterministic kill. Workers heartbeat every 500 ms
/// by default (protocol v3 liveness for the fleet telemetry);
/// `LH_COORD_HEARTBEAT_MS` overrides the period, `0` disables.
fn worker_mode(cache: Option<DiskCache>) -> ! {
    let registry = leakyhammer::registry();
    let chaos = std::env::var("LH_COORD_CHAOS")
        .ok()
        .filter(|_| std::env::var("LH_COORD_WORKER").as_deref() == Ok("0"))
        .and_then(|n| n.parse().ok());
    let heartbeat_ms: u64 = std::env::var("LH_COORD_HEARTBEAT_MS")
        .ok()
        .and_then(|ms| ms.parse().ok())
        .unwrap_or(500);
    let options = lh_coord::WorkerOptions {
        exit_after_assigns: chaos,
        heartbeat: (heartbeat_ms > 0).then(|| std::time::Duration::from_millis(heartbeat_ms)),
    };
    match lh_coord::worker_loop(&registry, lh_coord::stdio_link(), cache, options) {
        Ok(()) => std::process::exit(0),
        // The coordinator going away (its own exit closes our pipes) is
        // a normal way for a worker's life to end, not worth a scare.
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => std::process::exit(0),
        Err(e) => {
            eprintln!("error: worker: {e}");
            std::process::exit(1);
        }
    }
}

/// Extracts `(experiment id, metrics block)` pairs from one report
/// input: either a single envelope document (a committed snapshot, or
/// `--format json` output for one experiment) or an NDJSON `--stream`
/// feed whose `finished` lines carry envelopes. Envelopes predating the
/// deterministic-metrics block (no `metrics` key) are skipped, not
/// fatal: the second return counts them so the caller can warn once.
fn collect_metrics(
    content: &str,
    origin: &str,
) -> Result<(Vec<(String, lh_harness::Json)>, usize), String> {
    use lh_harness::json::parse;

    // `Ok(pair)` for a usable envelope, `Err(true)` for a pre-metrics
    // envelope (recognized, skipped), `Err(false)` for a non-envelope.
    let from_envelope = |envelope: &lh_harness::Json| -> Result<(String, lh_harness::Json), bool> {
        let Some(id) = envelope["experiment"].as_str() else {
            return Err(false);
        };
        match &envelope["metrics"] {
            lh_harness::Json::Null => Err(true),
            metrics => Ok((id.to_owned(), metrics.clone())),
        }
    };

    if let Ok(doc) = parse(content.trim()) {
        return match from_envelope(&doc) {
            Ok(pair) => Ok((vec![pair], 0)),
            Err(true) => Ok((Vec::new(), 1)),
            Err(false) => Err(format!(
                "{origin}: JSON document is not an experiment envelope"
            )),
        };
    }
    // Not one document: treat as an NDJSON stream and harvest the
    // envelopes off `finished` events.
    let mut found = Vec::new();
    let mut skipped = 0;
    for line in content.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(event) = parse(line) else { continue };
        if event["event"].as_str() == Some("finished") {
            match from_envelope(&event["envelope"]) {
                Ok(pair) => found.push(pair),
                Err(true) => skipped += 1,
                Err(false) => {}
            }
        }
    }
    if found.is_empty() && skipped == 0 {
        return Err(format!(
            "{origin}: no envelopes found (expected an envelope document or a --stream feed)"
        ));
    }
    Ok((found, skipped))
}

/// `lh-experiments report`: condenses envelopes into one canonical
/// deterministic-metrics document — experiments sorted by id, each with
/// its per-unit counters and totals, plus cross-experiment grand
/// totals. Byte-stable for byte-stable inputs, which is what the CI
/// perf-trend gate diffs against committed snapshots.
fn report_mode(files: &[String], format: OutputFormat) -> ! {
    use lh_harness::{metrics_from_json, metrics_to_json, Json};

    let mut experiments: Vec<(String, Json)> = Vec::new();
    let mut without_metrics = 0;
    for file in files {
        let content = if file == "-" {
            let mut buf = String::new();
            std::io::Read::read_to_string(&mut std::io::stdin().lock(), &mut buf)
                .map(|_| buf)
                .map_err(|e| format!("reading stdin failed: {e}"))
        } else {
            std::fs::read_to_string(file).map_err(|e| format!("reading {file} failed: {e}"))
        };
        let origin = if file == "-" { "<stdin>" } else { file };
        let collected = content.and_then(|c| collect_metrics(&c, origin));
        match collected {
            Ok((pairs, skipped)) => {
                experiments.extend(pairs);
                without_metrics += skipped;
            }
            Err(e) => {
                eprintln!("error: report: {e}");
                std::process::exit(1);
            }
        }
    }
    if without_metrics > 0 {
        eprintln!(
            "warning: report: skipped {without_metrics} envelope(s) without a metrics block \
             (written before deterministic metrics landed; re-run to refresh them)"
        );
    }
    experiments.sort_by(|a, b| a.0.cmp(&b.0));

    let mut grand = lh_obs::Metrics::new();
    let mut by_id = Json::object();
    for (id, metrics) in &experiments {
        grand.merge(&metrics_from_json(&metrics["totals"]));
        // Envelope `totals` are counters-only by design; the merged
        // histograms sit in a sibling block. Fold those in too so the
        // report's grand totals carry the full distribution.
        for (name, hist) in metrics[lh_harness::metrics::HISTOGRAMS_KEY].as_object() {
            let mut hists = lh_obs::Metrics::new();
            hists.set_hist(name, lh_harness::metrics::hist_from_json(hist));
            grand.merge(&hists);
        }
        by_id.set(id, metrics.clone());
    }
    let doc = Json::object()
        .with("experiments", by_id)
        .with("totals", metrics_to_json(&grand));

    match format {
        OutputFormat::Json => emit(&(doc.to_pretty() + "\n")),
        OutputFormat::Csv => emit(&report_csv(&experiments)),
        _ => {
            emit("== deterministic metrics ==\n");
            for (id, metrics) in &experiments {
                let units = metrics["units"].as_object().len();
                emit(&format!("{id}: {units} unit(s)\n"));
                for (name, value) in metrics["totals"].as_object() {
                    emit(&format!("  {name} = {value}\n"));
                }
            }
            emit("totals:\n");
            for (name, value) in grand.iter() {
                emit(&format!("  {name} = {value}\n"));
            }
            for (name, hist) in grand.hists() {
                emit(&format!(
                    "  {name} = {} sample(s), sum {}\n",
                    hist.count(),
                    hist.sum()
                ));
            }
        }
    }
    std::process::exit(0);
}

/// One CSV field, quoted when it holds a delimiter — unit labels carry
/// spaces and `=` freely and may grow commas.
fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// `report --format csv`: one row per experiment unit. Columns are the
/// sorted union of counter names across all units, then per histogram
/// its sample count and p50/p90/p99 quantiles — a flat table for
/// spreadsheet- or pandas-side trend analysis. Cells for counters a
/// unit never touched stay empty (absent is not zero: a unit that never
/// entered a subsystem is different from one that measured 0).
fn report_csv(experiments: &[(String, lh_harness::Json)]) -> String {
    use lh_harness::metrics::{hist_from_json, HISTOGRAMS_KEY};
    use std::collections::BTreeSet;

    let mut counters: BTreeSet<&str> = BTreeSet::new();
    let mut hists: BTreeSet<&str> = BTreeSet::new();
    for (_, metrics) in experiments {
        for (_, unit_metrics) in metrics["units"].as_object() {
            for (name, _) in unit_metrics.as_object() {
                if name != HISTOGRAMS_KEY {
                    counters.insert(name);
                }
            }
            for (name, _) in unit_metrics[HISTOGRAMS_KEY].as_object() {
                hists.insert(name);
            }
        }
    }

    let mut out = String::from("experiment,unit");
    for name in &counters {
        out.push(',');
        out.push_str(&csv_field(name));
    }
    for name in &hists {
        for suffix in ["count", "p50", "p90", "p99"] {
            out.push(',');
            out.push_str(&csv_field(&format!("{name}.{suffix}")));
        }
    }
    out.push('\n');

    for (id, metrics) in experiments {
        for (unit, unit_metrics) in metrics["units"].as_object() {
            out.push_str(&csv_field(id));
            out.push(',');
            out.push_str(&csv_field(unit));
            for name in &counters {
                out.push(',');
                if let Some(value) = unit_metrics[*name].as_u64() {
                    out.push_str(&value.to_string());
                }
            }
            for name in &hists {
                let hist_json = &unit_metrics[HISTOGRAMS_KEY][*name];
                if hist_json.as_object().is_empty() {
                    out.push_str(",,,,");
                    continue;
                }
                let hist = hist_from_json(hist_json);
                out.push_str(&format!(
                    ",{},{},{},{}",
                    hist.count(),
                    hist.quantile(0.50),
                    hist.quantile(0.90),
                    hist.quantile(0.99)
                ));
            }
            out.push('\n');
        }
    }
    out
}

/// `lh-experiments events`: filter/summarize/export a flight-event log
/// produced by `--events-out` (see `lh_bench::flight_view`).
fn events_mode(args: &Args) -> ! {
    use lh_bench::flight_view as fv;

    let mut lines: Vec<fv::LogLine> = Vec::new();
    for file in &args.files {
        let content = if file == "-" {
            let mut buf = String::new();
            std::io::Read::read_to_string(&mut std::io::stdin().lock(), &mut buf)
                .map(|_| buf)
                .map_err(|e| format!("reading stdin failed: {e}"))
        } else {
            std::fs::read_to_string(file).map_err(|e| format!("reading {file} failed: {e}"))
        };
        let origin = if file == "-" { "<stdin>" } else { file };
        match content.and_then(|c| fv::parse_log(&c, origin)) {
            Ok(mut parsed) => lines.append(&mut parsed),
            Err(e) => {
                eprintln!("error: events: {e}");
                std::process::exit(1);
            }
        }
    }
    let selected = fv::select(lines, &args.query);
    if args.ev_summary {
        emit(&fv::summary(&selected));
    } else if args.ev_align {
        emit(&fv::align(&selected));
    } else if let Some(path) = &args.ev_chrome {
        let trace = fv::chrome(&selected);
        if let Err(e) = std::fs::write(path, trace.as_bytes()) {
            eprintln!("error: events: writing {path} failed: {e}");
            std::process::exit(1);
        }
        if !args.quiet {
            eprintln!("events: wrote simulated-clock trace to {path}");
        }
    } else {
        for line in &selected {
            emit(&line.raw);
            emit("\n");
        }
    }
    std::process::exit(0);
}

/// Renders a `--stream` NDJSON feed as a live dashboard — from stdin,
/// or (with `--url`) followed live from a running serve instance's
/// `/runs/<id>/stream` endpoint.
fn watch_mode(url: Option<&str>) -> ! {
    let outcome = match url {
        None => {
            let stdin = std::io::stdin();
            lh_coord::watch(stdin.lock(), std::io::stdout())
        }
        Some(url) => match lh_serve::client::get_stream(url) {
            Ok((200, reader)) => lh_coord::watch(reader, std::io::stdout()),
            Ok((status, _)) => {
                eprintln!("error: watch: {url} answered HTTP {status}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("error: watch: connecting to {url} failed: {e}");
                std::process::exit(1);
            }
        },
    };
    match outcome {
        Ok(_) => std::process::exit(0),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => std::process::exit(0),
        Err(e) => {
            eprintln!("error: watch: {e}");
            std::process::exit(1);
        }
    }
}

/// Runs the resident experiment service until killed: a warm cache, a
/// resident worker fleet (this same binary in `--worker` mode), and
/// the lh-serve HTTP API on `--addr`.
fn serve_mode(args: &Args) -> ! {
    let exe = match std::env::current_exe() {
        Ok(exe) => exe,
        Err(e) => {
            eprintln!("error: cannot locate own binary to spawn workers: {e}");
            std::process::exit(1);
        }
    };
    let options = lh_serve::ServeOptions {
        workers: if args.workers > 0 { args.workers } else { 2 },
        cache: args.cache.then(|| DiskCache::new(&args.cache_dir)),
    };
    let server = match lh_serve::Server::bind(
        args.addr.as_str(),
        Box::new(ProcessSpawner::new(exe, Vec::new())),
        leakyhammer::registry,
        options,
    ) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: serve: binding {} failed: {e}", args.addr);
            std::process::exit(1);
        }
    };
    if !args.quiet {
        match server.addr() {
            Ok(addr) => eprintln!("lh-serve: listening on http://{addr}"),
            Err(_) => eprintln!("lh-serve: listening on {}", args.addr),
        }
    }
    match server.run() {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("error: serve: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) if msg.is_empty() => {
            emit(USAGE);
            return;
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };

    if args.worker {
        worker_mode(args.cache.then(|| DiskCache::new(&args.cache_dir)));
    }
    if args.id == "watch" {
        watch_mode(args.url.as_deref());
    }
    if args.id == "report" {
        report_mode(&args.files, args.format.unwrap_or_default());
    }
    if args.id == "events" {
        events_mode(&args);
    }
    if args.id == "serve" {
        serve_mode(&args);
    }
    // Tracing collects wall-clock spans process-wide; they export as
    // Chrome trace_event JSON at exit and never touch the deterministic
    // envelopes. (Worker child processes are separate processes — a
    // coordinator's trace covers its own spans only.)
    if args.trace_out.is_some() {
        lh_obs::trace::enable();
    }
    // Flight events, by contrast, are deterministic simulated-time
    // records: the switch must be up before any unit runs so cache keys
    // land on the events-aware side, and worker child processes get the
    // switch per assignment over the coordinator protocol.
    if let Some(cap) = args.events_cap {
        lh_obs::flight::set_cap(cap);
    }
    if args.events_out.is_some() {
        lh_obs::flight::enable();
    }

    let registry = leakyhammer::registry();
    if args.id == "list" {
        emit("available experiments:\n");
        for job in registry.jobs() {
            emit(&format!("  {:<12} {}\n", job.id(), job.description()));
        }
        return;
    }

    let ids: Vec<&str> = if args.id == "all" {
        registry.ids()
    } else if registry.get(&args.id).is_some() {
        vec![registry.get(&args.id).expect("checked").id()]
    } else {
        eprintln!(
            "error: unknown experiment '{}'; run `lh-experiments list`",
            args.id
        );
        std::process::exit(2);
    };

    // In stream mode every unit result goes to stdout as one NDJSON
    // line the moment it completes — completion order, not unit order;
    // the closing `finished` event carries the deterministic envelope.
    let observer: Option<lh_harness::UnitObserver> = args.stream.then(|| {
        std::sync::Arc::new(|event: &lh_harness::UnitEvent| {
            emit(&lh_harness::sink::stream_unit(event));
        }) as lh_harness::UnitObserver
    });
    let cache = args.cache.then(|| DiskCache::new(&args.cache_dir));
    let mut executor = if args.workers > 0 {
        // Distribute across worker child processes: each child is this
        // same binary in --worker mode, so the registry — and therefore
        // every job version and code fingerprint — matches by
        // construction.
        let exe = match std::env::current_exe() {
            Ok(exe) => exe,
            Err(e) => {
                eprintln!("error: cannot locate own binary to spawn workers: {e}");
                std::process::exit(1);
            }
        };
        Executor::Fleet(Coordinator::new(
            Box::new(ProcessSpawner::new(exe, Vec::new())),
            CoordinatorOptions {
                workers: args.workers,
                cache,
                progress: !args.quiet,
                observer,
                ..CoordinatorOptions::default()
            },
        ))
    } else {
        Executor::Threads(Runner::new(RunnerOptions {
            jobs: args.jobs,
            cache,
            progress: !args.quiet,
            observer,
        }))
    };
    let ctx = JobContext::new(args.scale, args.seed);

    let mut event_logs = String::new();
    for id in ids {
        let job = registry.get(id).expect("id comes from the registry");
        if args.stream {
            emit(&lh_harness::sink::stream_started(
                job,
                job.units(&ctx).len(),
                &ctx,
            ));
        }
        match executor.run(job, &ctx) {
            Ok(run) => {
                if let Some(events) = &run.events {
                    event_logs.push_str(events);
                }
                if args.stream {
                    // Close out each distributed run with a fleet
                    // telemetry event so `watch` can render the final
                    // worker-health column.
                    if let Some(snapshot) = executor.fleet_snapshot() {
                        emit(&lh_harness::sink::stream_fleet(snapshot));
                    }
                    emit(&lh_harness::sink::stream_finished(job, &run, &ctx));
                } else {
                    let format = args.format.unwrap_or_default();
                    emit(&lh_harness::sink::render(job, &run, &ctx, format));
                }
            }
            Err(msg) => {
                eprintln!("error: {id}: {msg}");
                std::process::exit(1);
            }
        }
    }
    if let Executor::Fleet(mut coordinator) = executor {
        coordinator.shutdown();
    }
    if let Some(path) = &args.events_out {
        if let Err(e) = std::fs::write(path, event_logs.as_bytes()) {
            eprintln!("error: writing events to {path} failed: {e}");
            std::process::exit(1);
        }
        if !args.quiet {
            eprintln!(
                "events: wrote {} line(s) to {path}",
                event_logs.lines().count()
            );
        }
    }
    if let Some(path) = &args.trace_out {
        match lh_obs::export_chrome_trace(path) {
            Ok(events) => {
                if !args.quiet {
                    eprintln!("trace: wrote {events} span(s) to {path}");
                }
            }
            Err(e) => {
                eprintln!("error: writing trace to {path} failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
