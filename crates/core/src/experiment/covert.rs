//! The covert-channel experiment runner (case studies 1 and 2).
//!
//! [`run_covert`] wires a sender/receiver pair — plus optional noise
//! generator and SPEC-like co-runners — into a full system and measures
//! the channel: decoded bits, error probability and capacity (Eq. 1).

use serde::{Deserialize, Serialize};

use lh_analysis::ChannelResult;
use lh_attacks::{
    ChannelLayout, CovertReceiver, CovertSender, LatencyClassifier, NoiseProcess, ReceiverConfig,
    SenderConfig,
};
use lh_defenses::{DefenseConfig, DefenseStats};
use lh_dram::{Span, Time};
use lh_memctrl::AddressMapping;
use lh_sim::{SimConfig, SystemBuilder};
use lh_workloads::{AppProfile, SyntheticApp};

/// Which LeakyHammer covert channel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChannelKind {
    /// PRAC back-off channel (§6.3): 25 µs windows, `NBO` = 128.
    Prac,
    /// PRFM RFM channel (§7.3): 20 µs windows, `TRFM` = 40, `Trecv` = 3.
    Rfm,
}

impl ChannelKind {
    /// The paper's window length for this channel.
    pub fn window(&self) -> Span {
        match self {
            ChannelKind::Prac => Span::from_us(25),
            ChannelKind::Rfm => Span::from_us(20),
        }
    }

    /// The paper's defense configuration for this channel.
    pub fn defense(&self) -> DefenseConfig {
        match self {
            ChannelKind::Prac => DefenseConfig::prac(128),
            ChannelKind::Rfm => DefenseConfig::prfm(40),
        }
    }

    /// The receiver's `Trecv` threshold.
    pub fn trecv(&self) -> u32 {
        match self {
            ChannelKind::Prac => 1,
            ChannelKind::Rfm => 3,
        }
    }

    /// Whether sender/receiver stop accessing after detecting the event.
    pub fn sleep_after_detect(&self) -> bool {
        matches!(self, ChannelKind::Prac)
    }

    /// The detection band `(lo, hi)` for this channel.
    pub fn detection_band(&self, cls: &LatencyClassifier) -> (Span, Span) {
        match self {
            ChannelKind::Prac => (cls.backoff_threshold(), Span::MAX),
            ChannelKind::Rfm => (cls.rfm_threshold(), cls.rfm_max),
        }
    }
}

/// Options for one covert transmission.
#[derive(Debug, Clone)]
pub struct CovertOptions {
    /// Which channel.
    pub kind: ChannelKind,
    /// The bits to transmit.
    pub bits: Vec<u8>,
    /// Full system configuration (override for countermeasure and
    /// sensitivity studies).
    pub sim: SimConfig,
    /// Transmission window (defaults to the channel's paper value).
    pub window: Span,
    /// Noise-generator intensity (1–100 %), if any (§6.3 noise study).
    pub noise_intensity: Option<f64>,
    /// SPEC-like co-runners on extra cores (Figs. 5 / 8).
    pub co_runners: Vec<AppProfile>,
    /// Receiver detection band override.
    pub detection_band: Option<(Span, Span)>,
    /// `Trecv` override.
    pub trecv: Option<u32>,
    /// Loop overhead of the attack processes.
    pub think: Span,
    /// Receiver loop-overhead override. Under a strictly closed row
    /// policy the receiver throttles itself (every probe is an activation
    /// that increments its own row's counter; an unthrottled receiver
    /// triggers spurious back-offs in 0-windows).
    pub receiver_think: Option<Span>,
    /// §10.1 cadence-based refresh filter for the receiver.
    pub refresh_filter: Option<lh_attacks::RefreshFilterConfig>,
    /// Seed.
    pub seed: u64,
}

impl CovertOptions {
    /// Paper-default options for `kind` transmitting `bits`.
    pub fn new(kind: ChannelKind, bits: Vec<u8>) -> CovertOptions {
        CovertOptions {
            kind,
            bits,
            sim: SimConfig::paper_default(kind.defense()),
            window: kind.window(),
            noise_intensity: None,
            co_runners: Vec::new(),
            detection_band: None,
            trecv: None,
            think: Span::from_ns(30),
            receiver_think: None,
            refresh_filter: None,
            seed: 1,
        }
    }
}

/// Result of one covert transmission.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CovertOutcome {
    /// Channel metrics (raw rate, error probability, capacity).
    pub result: ChannelResult,
    /// The decoded bit string.
    pub decoded: Vec<u8>,
    /// Events the receiver observed per window.
    pub per_window_events: Vec<u32>,
    /// Back-off recoveries the controller performed.
    pub backoffs: u64,
    /// RFM commands issued.
    pub rfms: u64,
    /// Defense counters, including the scheduling-pressure split of
    /// scheduled maintenance (taken exactly at the deadline vs deferred
    /// past it because the rank could not quiesce in time).
    pub defense_stats: DefenseStats,
}

/// Runs one covert transmission.
///
/// # Panics
///
/// Panics if the system cannot be constructed (invalid configuration).
pub fn run_covert(opts: &CovertOptions) -> CovertOutcome {
    let mut sys = SystemBuilder::from_config(opts.sim.clone())
        .build()
        .expect("valid system configuration");
    let cls = LatencyClassifier::from_timing(&opts.sim.device.timing, opts.think);
    let (detect, detect_max) = opts
        .detection_band
        .unwrap_or_else(|| opts.kind.detection_band(&cls));
    let trecv = opts.trecv.unwrap_or_else(|| opts.kind.trecv());
    let layout = ChannelLayout::default_bank(sys.mapping());
    let start = Time::ZERO;
    let end = start + opts.window * (opts.bits.len() as u64 + 1);

    let tx = CovertSender::new(SenderConfig::binary(
        layout.sender_rows,
        opts.window,
        start,
        opts.think,
        cls.backoff_threshold(),
        opts.kind.sleep_after_detect(),
        opts.bits.clone(),
    ));
    let rx = CovertReceiver::new(ReceiverConfig {
        row_addr: layout.receiver_row,
        window: opts.window,
        start,
        n_windows: opts.bits.len(),
        think: opts.receiver_think.unwrap_or(opts.think),
        detect,
        detect_max,
        sleep_after_detect: opts.kind.sleep_after_detect(),
        refresh_filter: opts.refresh_filter,
        calibrate: if opts.refresh_filter.is_some() {
            // Lock the refresh grid before the first bit (sec. 10.1).
            Span::from_us(20)
        } else {
            Span::ZERO
        },
    });
    sys.add_process(Box::new(tx), 1, start);
    let rx_id = sys.add_process(Box::new(rx), 1, start);

    if let Some(intensity) = opts.noise_intensity {
        let noise = NoiseProcess::from_intensity(layout.noise_rows.to_vec(), intensity, end);
        sys.add_process(Box::new(noise), 1, start);
    }
    let mapping: AddressMapping = *sys.mapping();
    for (i, profile) in opts.co_runners.iter().enumerate() {
        let app = SyntheticApp::new(profile.clone(), mapping, opts.seed ^ (i as u64 + 7), end);
        let mlp = app.mlp();
        sys.add_process(Box::new(app), mlp, start);
    }

    sys.run_until(end);

    // Reserve the flight segment before borrowing the receiver: the
    // symbol-window events below must land on this system's timeline.
    let flight_seg = lh_obs::flight::active().then(|| sys.flight_seg());
    let rx_proc = sys
        .process_as::<CovertReceiver>(rx_id)
        .expect("receiver present");
    let decoded = rx_proc.decode_binary(trecv);
    if let Some(seg) = flight_seg {
        let link_events = opts
            .bits
            .iter()
            .zip(rx_proc.observations())
            .enumerate()
            .map(|(i, (&bit, o))| {
                let t0 = start + opts.window * i as u64;
                let verdict = match (bit != 0, o.events >= trecv) {
                    (true, true) => "hit",
                    (true, false) => "miss",
                    (false, true) => "false-positive",
                    (false, false) => "idle",
                };
                lh_obs::FlightEvent::Link {
                    t_ns: t0.as_ps() / 1_000,
                    t_end_ns: (t0 + opts.window).as_ps() / 1_000,
                    window: i as u64,
                    symbol: u64::from(bit),
                    events: u64::from(o.events),
                    verdict,
                }
            })
            .collect();
        lh_obs::flight::emit_batch(seg, link_events, std::collections::BTreeMap::new());
    }
    let per_window_events = rx_proc.observations().iter().map(|o| o.events).collect();
    let seconds = (opts.window * opts.bits.len() as u64).as_secs();
    let result = ChannelResult::from_bits(&opts.bits, &decoded, seconds);
    CovertOutcome {
        result,
        decoded,
        per_window_events,
        backoffs: sys.controller().stats().backoffs,
        rfms: sys.controller().stats().rfms,
        defense_stats: sys.controller().defense_stats(),
    }
}

/// Runs the four §6.3 message patterns and merges the results.
pub fn run_patterns(kind: ChannelKind, bits_per_pattern: usize, seed: u64) -> CovertOutcome {
    use lh_analysis::MessagePattern;
    let mut outcomes = Vec::new();
    for (i, pattern) in MessagePattern::paper_set().iter().enumerate() {
        let mut opts = CovertOptions::new(kind, pattern.bits(bits_per_pattern));
        opts.seed = seed ^ (i as u64) << 8;
        outcomes.push(run_covert(&opts));
    }
    let merged = ChannelResult::merge(outcomes.iter().map(|o| &o.result));
    let mut all = outcomes.remove(0);
    for o in outcomes {
        all.decoded.extend(o.decoded);
        all.per_window_events.extend(o.per_window_events);
        all.backoffs += o.backoffs;
        all.rfms += o.rfms;
        all.defense_stats.absorb(&o.defense_stats);
    }
    all.result = merged;
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use lh_analysis::message::bits_of_str;

    #[test]
    fn prac_channel_fig3_micro() {
        let opts = CovertOptions::new(ChannelKind::Prac, bits_of_str("MICRO"));
        let out = run_covert(&opts);
        assert_eq!(out.decoded, opts.bits, "Fig. 3 transmission must be exact");
        assert_eq!(out.result.bit_errors, 0);
        // Raw bit rate: 1 bit / 25 µs = 40 Kbps (paper reports 39.0 after
        // sync overheads).
        assert!((out.result.raw_kbps() - 40.0).abs() < 1.0);
        assert!(
            out.backoffs >= 15,
            "one back-off per 1-bit, got {}",
            out.backoffs
        );
    }

    #[test]
    fn rfm_channel_fig6_micro() {
        let opts = CovertOptions::new(ChannelKind::Rfm, bits_of_str("MICRO"));
        let out = run_covert(&opts);
        assert_eq!(out.decoded, opts.bits, "Fig. 6 transmission must be exact");
        // 1 bit / 20 µs = 50 Kbps raw (paper: 48.7).
        assert!((out.result.raw_kbps() - 50.0).abs() < 1.5);
        assert!(out.rfms > 30);
    }

    #[test]
    fn noise_degrades_the_prac_channel_monotonically_at_extremes() {
        // Aggregate the four paper message patterns (the Fig. 4
        // methodology): a single short pattern under-samples the
        // noise-induced spurious back-offs, whose inter-arrival time spans
        // several transmission windows.
        let run_at = |intensity: f64| {
            let mut results = Vec::new();
            for (i, pattern) in lh_analysis::MessagePattern::paper_set().iter().enumerate() {
                let mut opts = CovertOptions::new(ChannelKind::Prac, pattern.bits(16));
                opts.noise_intensity = Some(intensity);
                opts.seed = 2 ^ ((i as u64) << 12) ^ (intensity as u64);
                results.push(run_covert(&opts).result);
            }
            ChannelResult::merge(results.iter()).error_probability()
        };
        let e_quiet = run_at(1.0);
        let e_loud = run_at(100.0);
        assert!(
            e_loud > e_quiet,
            "max noise must hurt more: quiet e={e_quiet}, loud e={e_loud}"
        );
        assert!(
            e_quiet < 0.15,
            "1% noise keeps the channel usable, e={e_quiet}"
        );
    }

    #[test]
    fn pattern_merge_aggregates_bits() {
        let out = run_patterns(ChannelKind::Prac, 12, 3);
        assert_eq!(out.result.bits, 48);
        assert_eq!(out.decoded.len(), 48);
        assert!(out.result.error_probability() < 0.2);
    }
}
