//! Per-bank state machine and timing bookkeeping.

use serde::{Deserialize, Serialize};

use crate::time::{Span, Time};
use crate::timing::DramTiming;

/// State of one DRAM bank: which row (if any) is open, and the earliest
/// instants at which each command class may next be issued to it.
///
/// The bank does not validate commands by itself — the
/// [`DramDevice`](crate::DramDevice) combines bank, rank and channel
/// constraints and performs protocol checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Bank {
    open_row: Option<u32>,
    /// When the open row was activated (for RowPress dwell accounting).
    opened_at: Time,
    next_act: Time,
    next_pre: Time,
    next_rd: Time,
    next_wr: Time,
    /// Until when the bank is blocked by REF/RFM.
    blocked_until: Time,
}

impl Bank {
    /// A freshly initialized (precharged, idle) bank.
    pub fn new() -> Bank {
        Bank::default()
    }

    /// The currently open row, if any.
    pub fn open_row(&self) -> Option<u32> {
        self.open_row
    }

    /// Whether the bank is precharged (no open row).
    pub fn is_closed(&self) -> bool {
        self.open_row.is_none()
    }

    /// Until when the bank is blocked by a refresh or RFM operation.
    pub fn blocked_until(&self) -> Time {
        self.blocked_until
    }

    /// Earliest time an `ACT` may be issued (bank-local constraints only).
    pub fn earliest_act(&self) -> Time {
        self.next_act.max(self.blocked_until)
    }

    /// Earliest time a `PRE` may be issued.
    pub fn earliest_pre(&self) -> Time {
        self.next_pre.max(self.blocked_until)
    }

    /// Earliest time a `RD` may be issued.
    pub fn earliest_rd(&self) -> Time {
        self.next_rd.max(self.blocked_until)
    }

    /// Earliest time a `WR` may be issued.
    pub fn earliest_wr(&self) -> Time {
        self.next_wr.max(self.blocked_until)
    }

    /// Applies an `ACT` issued at `now` opening `row`.
    pub fn apply_act(&mut self, now: Time, row: u32, t: &DramTiming) {
        debug_assert!(self.open_row.is_none(), "ACT to open bank");
        debug_assert!(now >= self.earliest_act(), "ACT timing violation");
        self.open_row = Some(row);
        self.opened_at = now;
        self.next_rd = now + t.t_rcd;
        self.next_wr = now + t.t_rcd;
        self.next_pre = now + t.t_ras;
        self.next_act = now + t.t_rc;
    }

    /// Applies a `RD` issued at `now`; returns the end of the data burst.
    pub fn apply_rd(&mut self, now: Time, t: &DramTiming) -> Time {
        debug_assert!(self.open_row.is_some(), "RD to closed bank");
        self.next_pre = self.next_pre.max(now + t.t_rtp);
        self.next_rd = self.next_rd.max(now + t.t_ccd_l);
        self.next_wr = self.next_wr.max(now + t.t_ccd_l);
        now + t.read_latency()
    }

    /// Applies a `WR` issued at `now`; returns the end of the data burst.
    pub fn apply_wr(&mut self, now: Time, t: &DramTiming) -> Time {
        debug_assert!(self.open_row.is_some(), "WR to closed bank");
        let data_end = now + t.write_latency();
        self.next_pre = self.next_pre.max(data_end + t.t_wr);
        self.next_rd = self.next_rd.max(data_end + t.t_wtr_l);
        self.next_wr = self.next_wr.max(now + t.t_ccd_l);
        data_end
    }

    /// Applies a `PRE` issued at `now`; returns the closed row and how
    /// long it was open (the RowPress dwell time).
    pub fn apply_pre(&mut self, now: Time, t: &DramTiming) -> Option<(u32, Span)> {
        let row = self.open_row.take();
        self.next_act = self.next_act.max(now + t.t_rp);
        row.map(|r| (r, now.saturating_since(self.opened_at)))
    }

    /// Blocks the bank (REF/RFM) until `until`.
    ///
    /// The bank must already be precharged.
    pub fn block_until(&mut self, until: Time) {
        debug_assert!(self.open_row.is_none(), "blocking a bank with an open row");
        self.blocked_until = self.blocked_until.max(until);
        self.next_act = self.next_act.max(until);
    }

    /// A conservative "all quiet" bound: the latest of every next-command
    /// constraint. Used by schedulers to find the next decision point.
    pub fn quiescent_at(&self) -> Time {
        self.next_act
            .max(self.next_pre)
            .max(self.next_rd)
            .max(self.next_wr)
            .max(self.blocked_until)
    }

    /// Shifts the precharge constraint to account for an extra delay
    /// (used in tests and custom policies).
    pub fn delay_pre(&mut self, extra: Span) {
        self.next_pre += extra;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> DramTiming {
        DramTiming::ddr5_4800()
    }

    #[test]
    fn act_opens_row_and_sets_constraints() {
        let t = timing();
        let mut b = Bank::new();
        let now = Time::from_ns(100);
        b.apply_act(now, 42, &t);
        assert_eq!(b.open_row(), Some(42));
        assert_eq!(b.earliest_rd(), now + t.t_rcd);
        assert_eq!(b.earliest_pre(), now + t.t_ras);
        assert_eq!(b.earliest_act(), now + t.t_rc);
    }

    #[test]
    fn read_pushes_precharge_by_trtp() {
        let t = timing();
        let mut b = Bank::new();
        b.apply_act(Time::ZERO, 1, &t);
        let rd_at = b.earliest_rd();
        let done = b.apply_rd(rd_at, &t);
        assert_eq!(done, rd_at + t.read_latency());
        // tRAS dominates tRTP here.
        assert_eq!(b.earliest_pre(), Time::ZERO + t.t_ras);
    }

    #[test]
    fn write_recovery_delays_precharge() {
        let t = timing();
        let mut b = Bank::new();
        b.apply_act(Time::ZERO, 1, &t);
        let wr_at = b.earliest_wr();
        let data_end = b.apply_wr(wr_at, &t);
        assert_eq!(b.earliest_pre(), data_end + t.t_wr);
        assert!(b.earliest_rd() >= data_end + t.t_wtr_l);
    }

    #[test]
    fn precharge_closes_and_enforces_trp() {
        let t = timing();
        let mut b = Bank::new();
        b.apply_act(Time::ZERO, 7, &t);
        let pre_at = b.earliest_pre();
        let (row, dwell) = b.apply_pre(pre_at, &t).unwrap();
        assert_eq!(row, 7);
        assert_eq!(dwell, t.t_ras, "row was open exactly tRAS");
        assert!(b.is_closed());
        assert_eq!(b.earliest_act(), pre_at + t.t_rp);
    }

    #[test]
    fn full_act_pre_act_cycle_respects_trc() {
        let t = timing();
        let mut b = Bank::new();
        b.apply_act(Time::ZERO, 1, &t);
        b.apply_pre(b.earliest_pre(), &t);
        // tRAS + tRP == tRC for this part, so both bounds agree.
        assert_eq!(b.earliest_act(), Time::ZERO + t.t_rc);
    }

    #[test]
    fn blocking_delays_activation() {
        let t = timing();
        let mut b = Bank::new();
        b.block_until(Time::from_ns(500));
        assert_eq!(b.earliest_act(), Time::from_ns(500));
        b.apply_act(Time::from_ns(500), 3, &t);
        assert_eq!(b.open_row(), Some(3));
    }

    #[test]
    fn precharging_a_closed_bank_returns_none() {
        let t = timing();
        let mut b = Bank::new();
        assert_eq!(b.apply_pre(Time::from_ns(1), &t), None);
        assert!(b.is_closed());
    }
}
