//! Activation-counter value leakage (§9.1).
//!
//! A victim activates a shared row a secret number of times; the attacker
//! then hammers the same row until the PRAC back-off fires and infers the
//! secret from its own activation count. The paper reports leaking a
//! 7-bit counter value in 13.6 µs on average (≈501 Kbps).

use serde::{Deserialize, Serialize};

use lh_attacks::{ChannelLayout, CounterLeakAttacker, CounterLeakVictim, LatencyClassifier};
use lh_defenses::DefenseConfig;
use lh_dram::{Span, Time};
use lh_sim::{SimConfig, SystemBuilder};

/// One trial's result.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LeakTrial {
    /// The victim's secret activation count.
    pub secret: u32,
    /// The attacker's estimate.
    pub estimate: u32,
    /// Time the attacker spent measuring.
    pub elapsed: Span,
}

/// Aggregate over many trials.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CounterLeakOutcome {
    /// The back-off threshold used.
    pub nbo: u32,
    /// All trials.
    pub trials: Vec<LeakTrial>,
    /// Mean absolute estimation error (activations).
    pub mean_abs_error: f64,
    /// Mean measurement time in µs.
    pub mean_elapsed_us: f64,
    /// Leakage throughput in Kbps (log2(NBO) bits per measurement).
    pub throughput_kbps: f64,
}

/// Runs `trials` counter-leak measurements with secrets spread over
/// `8..NBO-8`.
pub fn run_counter_leak(trials: usize, seed: u64) -> CounterLeakOutcome {
    let nbo = 128u32;
    let think = Span::from_ns(30);
    let mut out = Vec::new();
    for t in 0..trials {
        let secret = 8 + ((seed ^ (t as u64).wrapping_mul(0x9e37_79b9)) % (nbo as u64 - 16)) as u32;
        let sim = SimConfig::paper_default(DefenseConfig::prac(nbo));
        let cls = LatencyClassifier::from_timing(&sim.device.timing, think);
        let mut sys = SystemBuilder::from_config(sim)
            .seed(seed ^ t as u64)
            .build()
            .expect("valid configuration");
        let layout = ChannelLayout::default_bank(sys.mapping());
        let victim =
            CounterLeakVictim::new(layout.sender_rows[0], layout.sender_rows[1], secret, think);
        let attacker = CounterLeakAttacker::new(
            layout.sender_rows[0],
            layout.receiver_row,
            think,
            cls.backoff_threshold(),
            Time::from_us(60),
        );
        sys.add_process(Box::new(victim), 1, Time::ZERO);
        let aid = sys.add_process(Box::new(attacker), 1, Time::ZERO);
        sys.run_until(Time::from_us(300));
        if let Some(result) = sys
            .process_as::<CounterLeakAttacker>(aid)
            .expect("attacker present")
            .result()
        {
            out.push(LeakTrial {
                secret,
                estimate: result.estimate_victim(nbo),
                elapsed: result.elapsed,
            });
        }
    }
    let mean_abs_error = out
        .iter()
        .map(|t| t.secret.abs_diff(t.estimate) as f64)
        .sum::<f64>()
        / out.len().max(1) as f64;
    let mean_elapsed_us =
        out.iter().map(|t| t.elapsed.as_us()).sum::<f64>() / out.len().max(1) as f64;
    let bits = (nbo as f64).log2();
    let throughput_kbps = if mean_elapsed_us > 0.0 {
        bits / (mean_elapsed_us * 1e-6) / 1e3
    } else {
        0.0
    };
    CounterLeakOutcome {
        nbo,
        trials: out,
        mean_abs_error,
        mean_elapsed_us,
        throughput_kbps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leak_recovers_secrets_with_small_error() {
        let out = run_counter_leak(6, 21);
        assert_eq!(out.trials.len(), 6, "every trial must observe a back-off");
        assert!(
            out.mean_abs_error <= 10.0,
            "mean |error| {} activations",
            out.mean_abs_error
        );
    }

    #[test]
    fn throughput_is_hundreds_of_kbps() {
        // §9.1: 7 bits in ~13.6 µs ≈ 501 Kbps. Our loop overheads differ,
        // but the order of magnitude must match.
        let out = run_counter_leak(4, 9);
        assert!(
            (100.0..2_000.0).contains(&out.throughput_kbps),
            "throughput {} Kbps",
            out.throughput_kbps
        );
        assert!(
            out.mean_elapsed_us < 40.0,
            "elapsed {} µs",
            out.mean_elapsed_us
        );
    }
}
