//! The orchestrator: cache lookup → parallel unit execution → ordered
//! merge, with per-run statistics.

use std::time::Instant;

use crate::cache::{CacheKey, DiskCache};
use crate::job::{Job, JobContext};
use crate::json::Json;
use crate::pool;
use crate::progress::{Progress, UnitOutcome};
use crate::seed::derive_seed;

/// Unit fingerprint of a job's merged (post-`finish`) result. Includes
/// the unit list digest so a changed decomposition invalidates the
/// merged entry even at an unchanged job version.
fn merged_fingerprint(units: &[String]) -> String {
    let mut h = crate::hash::Hasher::new();
    for u in units {
        h.field(u);
    }
    format!("merged:{}", h.digest())
}

/// Execution options for a [`Runner`].
#[derive(Debug, Clone, Default)]
pub struct RunnerOptions {
    /// Worker threads for unit execution (0 = autodetect).
    pub jobs: usize,
    /// Result cache; `None` disables caching entirely.
    pub cache: Option<DiskCache>,
    /// Emit progress lines on stderr.
    pub progress: bool,
}

/// Statistics of one experiment run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Units the job decomposed into.
    pub units_total: usize,
    /// Units served from the cache.
    pub units_cached: usize,
    /// Units executed in this run.
    pub units_executed: usize,
    /// Whether the merged result was served from the cache (in which
    /// case no units were even enumerated for execution).
    pub merged_cached: bool,
    /// Wall-clock milliseconds for the whole experiment.
    pub wall_ms: u128,
}

/// One experiment's merged result plus run statistics.
#[derive(Debug, Clone)]
pub struct ExperimentRun {
    /// Experiment id.
    pub id: &'static str,
    /// The merged (post-`finish`) result.
    pub merged: Json,
    /// What it took.
    pub stats: RunStats,
}

/// Executes jobs according to [`RunnerOptions`].
#[derive(Debug, Default)]
pub struct Runner {
    options: RunnerOptions,
}

impl Runner {
    /// A runner with the given options.
    pub fn new(options: RunnerOptions) -> Runner {
        Runner { options }
    }

    /// The effective worker count.
    pub fn jobs(&self) -> usize {
        if self.options.jobs == 0 {
            pool::default_jobs()
        } else {
            self.options.jobs
        }
    }

    fn key(&self, job: &dyn Job, unit: &str, ctx: &JobContext) -> CacheKey {
        CacheKey {
            experiment: job.id().to_owned(),
            unit: unit.to_owned(),
            scale: ctx.scale.as_str().to_owned(),
            seed: ctx.seed,
            job_version: job.version(),
        }
    }

    /// Runs one experiment end to end.
    ///
    /// Returns an error string if a cache write fails (results are
    /// still computed and returned on a read-only cache directory —
    /// write failures are reported, not fatal — so the only error path
    /// is a poisoned unit execution, which panics instead).
    pub fn run(&self, job: &dyn Job, ctx: &JobContext) -> Result<ExperimentRun, String> {
        let started = Instant::now();
        let units = job.units(ctx);
        let merged_key = self.key(job, &merged_fingerprint(&units), ctx);

        if let Some(cache) = &self.options.cache {
            if let Some(merged) = cache.get(&merged_key) {
                let stats = RunStats {
                    units_total: units.len(),
                    units_cached: units.len(),
                    units_executed: 0,
                    merged_cached: true,
                    wall_ms: started.elapsed().as_millis(),
                };
                if self.options.progress {
                    crate::progress::note(format_args!(
                        "{}: merged result cached, nothing to do",
                        job.id()
                    ));
                }
                return Ok(ExperimentRun {
                    id: job.id(),
                    merged,
                    stats,
                });
            }
        }

        let progress = Progress::new(job.id(), units.len(), self.options.progress);
        let cache = self.options.cache.as_ref();
        let results: Vec<(Json, bool)> = pool::run_indexed(self.jobs(), &units, |i, unit| {
            let key = self.key(job, unit, ctx);
            if let Some(hit) = cache.and_then(|c| c.get(&key)) {
                progress.unit_done(unit, UnitOutcome::Cached);
                return (hit, true);
            }
            let unit_started = Instant::now();
            let result = job.run_unit(i, derive_seed(job.id(), i, ctx.seed), ctx);
            if let Some(c) = cache {
                if let Err(e) = c.put(&key, &result) {
                    crate::progress::note(format_args!(
                        "warning: cache write failed for {}/{unit}: {e}",
                        job.id()
                    ));
                }
            }
            progress.unit_done(unit, UnitOutcome::Ran(unit_started.elapsed().as_millis()));
            (result, false)
        });

        let units_cached = results.iter().filter(|(_, cached)| *cached).count();
        let units_executed = results.len() - units_cached;
        let merged = job.finish(results.into_iter().map(|(r, _)| r).collect(), ctx);
        if let Some(c) = cache {
            if let Err(e) = c.put(&merged_key, &merged) {
                crate::progress::note(format_args!(
                    "warning: cache write failed for {} merge: {e}",
                    job.id()
                ));
            }
        }
        progress.finished(units_cached, units_executed);

        Ok(ExperimentRun {
            id: job.id(),
            merged,
            stats: RunStats {
                units_total: units.len(),
                units_cached,
                units_executed,
                merged_cached: false,
                wall_ms: started.elapsed().as_millis(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::ScaleLevel;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A job whose unit results depend only on (index, seed), with an
    /// execution counter to observe cache skips.
    struct Counting {
        executions: AtomicUsize,
    }

    impl Job for Counting {
        fn id(&self) -> &'static str {
            "counting"
        }
        fn description(&self) -> &'static str {
            "cache/parallel test job"
        }
        fn units(&self, _ctx: &JobContext) -> Vec<String> {
            (0..12).map(|i| format!("unit:{i}")).collect()
        }
        fn run_unit(&self, unit: usize, seed: u64, _ctx: &JobContext) -> Json {
            self.executions.fetch_add(1, Ordering::SeqCst);
            Json::object().with("unit", unit).with("seed", seed)
        }
        fn finish(&self, units: Vec<Json>, _ctx: &JobContext) -> Json {
            Json::object().with("points", Json::Array(units))
        }
        fn render_text(&self, merged: &Json, _ctx: &JobContext) -> String {
            merged.to_compact()
        }
    }

    fn ctx() -> JobContext {
        JobContext {
            scale: ScaleLevel::Quick,
            seed: 7,
        }
    }

    #[test]
    fn parallel_output_is_bit_identical_to_serial() {
        let job = Counting {
            executions: AtomicUsize::new(0),
        };
        let serial = Runner::new(RunnerOptions {
            jobs: 1,
            ..Default::default()
        })
        .run(&job, &ctx())
        .unwrap();
        for jobs in [2, 8] {
            let parallel = Runner::new(RunnerOptions {
                jobs,
                ..Default::default()
            })
            .run(&job, &ctx())
            .unwrap();
            assert_eq!(serial.merged, parallel.merged);
        }
    }

    #[test]
    fn warm_cache_skips_execution_and_preserves_output() {
        let dir =
            std::env::temp_dir().join(format!("lh-harness-runner-test-{}", std::process::id()));
        let cache = DiskCache::new(&dir);
        cache.clear().unwrap();

        let job = Counting {
            executions: AtomicUsize::new(0),
        };
        let mk = |jobs| {
            Runner::new(RunnerOptions {
                jobs,
                cache: Some(cache.clone()),
                progress: false,
            })
        };
        let cold = mk(4).run(&job, &ctx()).unwrap();
        assert_eq!(job.executions.load(Ordering::SeqCst), 12);
        assert_eq!(cold.stats.units_executed, 12);
        assert!(!cold.stats.merged_cached);

        let warm = mk(4).run(&job, &ctx()).unwrap();
        assert_eq!(
            job.executions.load(Ordering::SeqCst),
            12,
            "warm run must not execute"
        );
        assert!(warm.stats.merged_cached);
        assert_eq!(warm.merged, cold.merged);

        // A different seed misses the cache.
        let other = mk(4).run(&job, &JobContext { seed: 8, ..ctx() }).unwrap();
        assert_eq!(job.executions.load(Ordering::SeqCst), 24);
        assert_ne!(other.merged, cold.merged);
        cache.clear().unwrap();
    }
}
