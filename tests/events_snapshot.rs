//! Event-log snapshot gate: the fig2 quick-scale flight-event log is
//! committed at `crates/bench/snapshots/events/fig2.quick.ndjson` and
//! any byte of drift fails this test. Event logs are deterministic
//! simulated-time records, so drift means the simulator's command or
//! maintenance behaviour changed — if deliberate, regenerate with
//!
//! ```text
//! LH_UPDATE_SNAPSHOTS=1 cargo test --release --test events_snapshot
//! ```
//!
//! and commit the new snapshot with an explanation in the same PR.
//! (Separate test binary on purpose: the flight switch is
//! process-global, and this is the only test in this process.)

use lh_harness::{JobContext, Runner, RunnerOptions, ScaleLevel};

const SNAPSHOT: &str = "crates/bench/snapshots/events/fig2.quick.ndjson";

#[test]
fn fig2_quick_event_log_matches_the_committed_snapshot() {
    let registry = leakyhammer::registry();
    let job = registry.get("fig2").expect("fig2 registered");
    let ctx = JobContext::new(ScaleLevel::Quick, 1);

    lh_obs::flight::set_enabled(true);
    let run = Runner::new(RunnerOptions {
        jobs: 1,
        cache: None,
        progress: false,
        observer: None,
    })
    .run(job, &ctx)
    .expect("fig2 quick run");
    lh_obs::flight::set_enabled(false);
    let log = run.events.expect("recording on produces a log");

    if std::env::var("LH_UPDATE_SNAPSHOTS").as_deref() == Ok("1") {
        std::fs::create_dir_all(std::path::Path::new(SNAPSHOT).parent().unwrap())
            .expect("create snapshot dir");
        std::fs::write(SNAPSHOT, &log).expect("write snapshot");
        eprintln!("updated {SNAPSHOT}");
        return;
    }

    let recorded = std::fs::read_to_string(SNAPSHOT).unwrap_or_else(|e| {
        panic!("missing event-log snapshot {SNAPSHOT} ({e}); regenerate with LH_UPDATE_SNAPSHOTS=1")
    });
    assert_eq!(
        log, recorded,
        "fig2 quick event log drifted from {SNAPSHOT}; if the simulator change is deliberate, \
         regenerate with LH_UPDATE_SNAPSHOTS=1 and commit the snapshot"
    );
}
