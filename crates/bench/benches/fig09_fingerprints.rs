//! Fig. 9 bench: collecting one website back-off fingerprint.

use criterion::{criterion_group, criterion_main, Criterion};
use lh_bench::experiment::fingerprint::{collect_one, CollectOptions};
use lh_bench::Scale;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig09_fingerprints");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(5));
    let opts = CollectOptions::for_scale(Scale::Quick, 42);
    g.bench_function("one_trace_reddit", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            collect_one(24, seed, &opts)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
