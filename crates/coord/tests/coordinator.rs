//! Coordinator behavior end to end over in-process (but wire-faithful)
//! workers: distributed runs reproduce the in-process runner byte for
//! byte, worker death requeues in-flight units, fleet loss respawns,
//! deterministic unit failures abort, and worker caches merge back
//! into the shared cache the runner reads.

use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex};

use lh_coord::transport::memory_pair;
use lh_coord::{Coordinator, CoordinatorOptions, Link, SpawnWorker, ThreadSpawner, WorkerOptions};
use lh_harness::runner::{merged_fingerprint, unit_key};
use lh_harness::{
    DiskCache, Job, JobContext, Json, Registry, Runner, RunnerOptions, ScaleLevel, UnitEvent,
};

/// A two-layer DAG: four "source" units feed a per-pair "combine"
/// layer, so dependency results must travel in assignment messages.
struct Layered;

impl Job for Layered {
    fn id(&self) -> &'static str {
        "layered"
    }
    fn description(&self) -> &'static str {
        "distributed test job"
    }
    fn units(&self, _ctx: &JobContext) -> Vec<String> {
        (0..4)
            .map(|i| format!("src:{i}"))
            .chain((0..2).map(|i| format!("combine:{i}")))
            .collect()
    }
    fn deps(&self, unit: usize, _ctx: &JobContext) -> Vec<usize> {
        match unit {
            4 => vec![0, 1],
            5 => vec![2, 3],
            _ => Vec::new(),
        }
    }
    fn run_unit(&self, _unit: usize, seed: u64, deps: &[Json], _ctx: &JobContext) -> Json {
        let dep_sum: u64 = deps.iter().filter_map(|d| d["v"].as_u64()).sum();
        Json::object().with("v", seed % 10_000 + dep_sum * 3)
    }
    fn finish(&self, units: Vec<Json>, _ctx: &JobContext) -> Json {
        Json::object().with("points", Json::Array(units))
    }
    fn render_text(&self, merged: &Json, _ctx: &JobContext) -> String {
        merged.to_compact()
    }
}

/// A job whose last unit always panics inside the worker.
struct Poisoned;

impl Job for Poisoned {
    fn id(&self) -> &'static str {
        "poisoned"
    }
    fn description(&self) -> &'static str {
        "deterministic-failure test job"
    }
    fn units(&self, _ctx: &JobContext) -> Vec<String> {
        vec!["fine".into(), "boom".into()]
    }
    fn run_unit(&self, unit: usize, seed: u64, _deps: &[Json], _ctx: &JobContext) -> Json {
        assert!(unit != 1, "unit 1 is poisoned");
        Json::object().with("v", seed)
    }
    fn finish(&self, units: Vec<Json>, _ctx: &JobContext) -> Json {
        Json::Array(units)
    }
    fn render_text(&self, _merged: &Json, _ctx: &JobContext) -> String {
        String::new()
    }
}

fn registry() -> Registry {
    let mut r = Registry::new();
    r.register(Box::new(Layered));
    r.register(Box::new(Poisoned));
    r
}

fn ctx() -> JobContext {
    JobContext::new(ScaleLevel::Quick, 23)
}

fn temp_cache(tag: &str) -> DiskCache {
    let dir = std::env::temp_dir().join(format!("lh-coord-test-{}-{tag}", std::process::id()));
    let cache = DiskCache::new(dir);
    cache.clear().unwrap();
    cache
}

/// Spawns thread workers whose first `flaky` instances crash (drop the
/// connection) upon their first assignment, without acknowledging it.
struct FlakySpawner {
    flaky: usize,
}

impl SpawnWorker for FlakySpawner {
    fn spawn(&mut self, index: usize, cache_dir: Option<&Path>) -> io::Result<Link> {
        let (coord_side, worker_side) = memory_pair();
        let cache = cache_dir.map(DiskCache::new);
        let options = WorkerOptions {
            exit_after_assigns: (index < self.flaky).then_some(1),
            ..WorkerOptions::default()
        };
        std::thread::Builder::new()
            .name(format!("flaky-worker-{index}"))
            .spawn(move || {
                let _ = lh_coord::worker_loop(&registry(), worker_side, cache, options);
            })?;
        Ok(coord_side)
    }
}

fn in_process_reference() -> Json {
    Runner::new(RunnerOptions {
        jobs: 1,
        ..Default::default()
    })
    .run(registry().get("layered").unwrap(), &ctx())
    .unwrap()
    .merged
}

#[test]
fn distributed_run_is_byte_identical_to_in_process() {
    let reference = in_process_reference();
    for workers in [1, 2, 4] {
        let seen: Arc<Mutex<Vec<(usize, bool)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let mut coordinator = Coordinator::new(
            Box::new(ThreadSpawner::new(registry)),
            CoordinatorOptions {
                workers,
                observer: Some(Arc::new(move |e: &UnitEvent| {
                    sink.lock().unwrap().push((e.index, e.cached));
                })),
                ..Default::default()
            },
        );
        let run = coordinator
            .run(registry().get("layered").unwrap(), &ctx())
            .unwrap();
        assert_eq!(
            run.merged, reference,
            "--workers {workers} must be byte-identical to --jobs 1"
        );
        assert_eq!(run.stats.units_executed, 6);
        let mut events = seen.lock().unwrap().clone();
        events.sort_unstable();
        assert_eq!(
            events,
            (0..6).map(|i| (i, false)).collect::<Vec<_>>(),
            "the multiplexed feed must carry each unit exactly once (workers={workers})"
        );
    }
}

#[test]
fn worker_death_requeues_the_in_flight_unit() {
    let mut coordinator = Coordinator::new(
        Box::new(FlakySpawner { flaky: 1 }),
        CoordinatorOptions {
            workers: 2,
            ..Default::default()
        },
    );
    let run = coordinator
        .run(registry().get("layered").unwrap(), &ctx())
        .unwrap();
    assert_eq!(
        run.merged,
        in_process_reference(),
        "a mid-run worker death must not change the envelope"
    );
    let stats = coordinator.stats();
    assert_eq!(stats.workers_lost, 1, "the flaky worker died: {stats:?}");
    assert_eq!(
        stats.units_requeued, 1,
        "its in-flight unit was requeued: {stats:?}"
    );
    assert_eq!(stats.workers_spawned, 2, "one survivor carried the run");

    // The volatile fleet telemetry tells the same failure story.
    let snap = coordinator.telemetry().snapshot();
    assert_eq!(snap.workers_lost, 1, "{snap:?}");
    assert_eq!(snap.units_requeued, 1, "{snap:?}");
    assert_eq!(snap.workers_spawned, 2, "{snap:?}");
    assert_eq!(snap.respawns_used, 0, "{snap:?}");
    let alive: Vec<bool> = snap.workers.iter().map(|w| w.alive).collect();
    assert_eq!(alive.iter().filter(|a| **a).count(), 1, "{alive:?}");
    assert_eq!(
        snap.workers.iter().map(|w| w.units_done).sum::<u64>(),
        6,
        "every unit completion lands on some worker's tally: {snap:?}"
    );
}

#[test]
fn losing_the_whole_fleet_respawns_within_budget() {
    let mut coordinator = Coordinator::new(
        Box::new(FlakySpawner { flaky: 2 }),
        CoordinatorOptions {
            workers: 2,
            max_respawns: 4,
            ..Default::default()
        },
    );
    let run = coordinator
        .run(registry().get("layered").unwrap(), &ctx())
        .unwrap();
    assert_eq!(run.merged, in_process_reference());
    let stats = coordinator.stats();
    assert_eq!(stats.workers_lost, 2, "{stats:?}");
    assert!(
        stats.workers_spawned >= 3,
        "replacements were drawn from the respawn budget: {stats:?}"
    );
}

#[test]
fn exhausting_the_respawn_budget_fails_the_run() {
    let mut coordinator = Coordinator::new(
        Box::new(FlakySpawner { flaky: usize::MAX }),
        CoordinatorOptions {
            workers: 2,
            max_respawns: 2,
            ..Default::default()
        },
    );
    let err = coordinator
        .run(registry().get("layered").unwrap(), &ctx())
        .unwrap_err();
    assert!(err.contains("respawn budget"), "{err}");
}

#[test]
fn deterministic_unit_failures_abort_instead_of_requeueing() {
    let mut coordinator = Coordinator::new(
        Box::new(ThreadSpawner::new(registry)),
        CoordinatorOptions {
            workers: 2,
            ..Default::default()
        },
    );
    let err = coordinator
        .run(registry().get("poisoned").unwrap(), &ctx())
        .unwrap_err();
    assert!(
        err.contains("poisoned") && err.contains("panicked"),
        "the worker-reported failure must surface with its cause: {err}"
    );
    assert_eq!(
        coordinator.stats().units_requeued,
        0,
        "deterministic failures must not be requeued"
    );
}

#[test]
fn worker_caches_merge_into_the_shared_cache_the_runner_reads() {
    let cache = temp_cache("interop");
    let job_owner = registry();
    let job = job_owner.get("layered").unwrap();

    let mut coordinator = Coordinator::new(
        Box::new(ThreadSpawner::new(registry)),
        CoordinatorOptions {
            workers: 3,
            cache: Some(cache.clone()),
            ..Default::default()
        },
    );
    let cold = coordinator.run(job, &ctx()).unwrap();
    assert_eq!(cold.stats.units_executed, 6);
    coordinator.shutdown();
    assert!(
        !cache.dir().join(".workers").exists(),
        "shutdown must clean up the per-worker cache directories"
    );

    // The merged entry replays in the runner...
    let warm = Runner::new(RunnerOptions {
        jobs: 2,
        cache: Some(cache.clone()),
        ..Default::default()
    })
    .run(job, &ctx())
    .unwrap();
    assert!(warm.stats.merged_cached);
    assert_eq!(warm.merged, cold.merged);

    // ...and after evicting it, the per-unit entries the *workers*
    // wrote replay too: proof the worker-side keys match the runner's.
    let units = job.units(&ctx());
    let merged_key = unit_key(job, &merged_fingerprint(&units), &ctx(), false);
    std::fs::remove_file(
        cache
            .dir()
            .join("layered")
            .join(format!("{}.json", merged_key.digest())),
    )
    .unwrap();
    let per_unit = Runner::new(RunnerOptions {
        jobs: 2,
        cache: Some(cache.clone()),
        ..Default::default()
    })
    .run(job, &ctx())
    .unwrap();
    assert_eq!(per_unit.stats.units_cached, 6, "{:?}", per_unit.stats);
    assert_eq!(per_unit.stats.units_executed, 0);
    assert_eq!(per_unit.merged, cold.merged);

    // A fully unit-warm cache with the merged entry evicted (the
    // per-unit runner pass above rewrote it) must not wake the fleet
    // at all: every hit completes inline.
    std::fs::remove_file(
        cache
            .dir()
            .join("layered")
            .join(format!("{}.json", merged_key.digest())),
    )
    .unwrap();
    let mut unit_warm = Coordinator::new(
        Box::new(ThreadSpawner::new(registry)),
        CoordinatorOptions {
            workers: 2,
            cache: Some(cache.clone()),
            ..Default::default()
        },
    );
    let inline = unit_warm.run(job, &ctx()).unwrap();
    assert!(!inline.stats.merged_cached, "the merged entry was evicted");
    assert_eq!(inline.stats.units_cached, 6);
    assert_eq!(inline.merged, cold.merged);
    assert_eq!(
        unit_warm.stats().workers_spawned,
        0,
        "no worker should be spawned when the cache covers every unit"
    );

    // And the reverse direction: a runner-warmed cache feeds a
    // distributed run's warm path.
    let mut rerun = Coordinator::new(
        Box::new(ThreadSpawner::new(registry)),
        CoordinatorOptions {
            workers: 2,
            cache: Some(cache.clone()),
            ..Default::default()
        },
    );
    let replay = rerun.run(job, &ctx()).unwrap();
    assert!(replay.stats.merged_cached);
    assert_eq!(replay.merged, cold.merged);
    cache.clear().unwrap();
}
