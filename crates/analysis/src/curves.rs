//! Sweep-curve types for channel measurements.
//!
//! The figure sweeps and the link-layer channel sweep all produce the
//! same two shapes: a bit-error-rate curve over an interference axis
//! (noise intensity, co-runner pressure) and a capacity curve over a
//! provisioning axis (`N_RH`, action latency). [`BerCurve`] and
//! [`CapacityCurve`] give those shapes a shared vocabulary — labeled,
//! serializable, and with the summary queries reports keep re-deriving
//! by hand (usable range, collapse point, peak).

use serde::{Deserialize, Serialize};

use crate::capacity::ChannelResult;

/// One point of a BER-vs-interference curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BerPoint {
    /// Interference coordinate (e.g. noise intensity in percent).
    pub x: f64,
    /// The measured transmission at this interference level.
    pub result: ChannelResult,
}

impl BerPoint {
    /// Bit-error rate at this point.
    pub fn ber(&self) -> f64 {
        self.result.error_probability()
    }
}

/// A labeled BER-vs-interference curve, e.g. one (defense, modulation)
/// series of the channel sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct BerCurve {
    /// Series label (`"PRAC/ook+rep3"`, …).
    pub label: String,
    /// Points in ascending `x` order.
    pub points: Vec<BerPoint>,
}

impl BerCurve {
    /// An empty curve with a label.
    pub fn new(label: impl Into<String>) -> BerCurve {
        BerCurve {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a measurement, keeping the points sorted by `x`.
    pub fn push(&mut self, x: f64, result: ChannelResult) {
        let at = self
            .points
            .iter()
            .position(|p| p.x > x)
            .unwrap_or(self.points.len());
        self.points.insert(at, BerPoint { x, result });
    }

    /// The worst (highest) BER across the curve; 0 when empty.
    pub fn worst_ber(&self) -> f64 {
        self.points.iter().map(BerPoint::ber).fold(0.0, f64::max)
    }

    /// The quiet-end capacity in Kbps: the capacity at the smallest
    /// `x` (the paper's headline number per channel); 0 when empty.
    pub fn quiet_capacity_kbps(&self) -> f64 {
        self.points
            .first()
            .map_or(0.0, |p| p.result.capacity_kbps())
    }

    /// The largest `x` whose BER stays at or below `e` — the usable
    /// interference range. `None` if even the first point exceeds `e`
    /// (or the curve is empty).
    pub fn usable_until(&self, e: f64) -> Option<f64> {
        let mut last = None;
        for p in &self.points {
            if p.ber() <= e {
                last = Some(p.x);
            } else {
                break;
            }
        }
        last
    }
}

/// One point of a capacity-vs-provisioning curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapacityPoint {
    /// Provisioning coordinate (e.g. the RowHammer threshold `N_RH`).
    pub nrh: u32,
    /// Channel capacity in Kbps at this provisioning.
    pub capacity_kbps: f64,
}

/// A labeled capacity-vs-`N_RH` curve: how a channel's capacity scales
/// as the defense is provisioned for lower thresholds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct CapacityCurve {
    /// Series label (defense or modulation name).
    pub label: String,
    /// Points in ascending `nrh` order.
    pub points: Vec<CapacityPoint>,
}

impl CapacityCurve {
    /// An empty curve with a label.
    pub fn new(label: impl Into<String>) -> CapacityCurve {
        CapacityCurve {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a measurement, keeping the points sorted by `nrh`.
    pub fn push(&mut self, nrh: u32, capacity_kbps: f64) {
        let at = self
            .points
            .iter()
            .position(|p| p.nrh > nrh)
            .unwrap_or(self.points.len());
        self.points.insert(at, CapacityPoint { nrh, capacity_kbps });
    }

    /// Peak capacity across the curve; 0 when empty.
    pub fn peak_kbps(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.capacity_kbps)
            .fold(0.0, f64::max)
    }

    /// Whether capacity never *increases* as provisioning tightens
    /// (descending `nrh`), within `tol` Kbps — the qualitative shape
    /// the §11 countermeasures predict.
    pub fn monotone_in_nrh(&self, tol: f64) -> bool {
        self.points
            .windows(2)
            .all(|w| w[1].capacity_kbps >= w[0].capacity_kbps - tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(bits: usize, errors: usize, rate: f64) -> ChannelResult {
        ChannelResult {
            bits,
            bit_errors: errors,
            raw_bit_rate: rate,
        }
    }

    #[test]
    fn ber_curve_keeps_points_sorted_and_summarizes() {
        let mut c = BerCurve::new("PRAC/ook");
        c.push(50.0, r(100, 20, 40_000.0));
        c.push(0.0, r(100, 0, 40_000.0));
        c.push(100.0, r(100, 45, 40_000.0));
        let xs: Vec<f64> = c.points.iter().map(|p| p.x).collect();
        assert_eq!(xs, vec![0.0, 50.0, 100.0]);
        assert!((c.worst_ber() - 0.45).abs() < 1e-12);
        assert!((c.quiet_capacity_kbps() - 40.0).abs() < 1e-9);
        assert_eq!(c.usable_until(0.25), Some(50.0));
        assert_eq!(c.usable_until(0.5), Some(100.0));
    }

    #[test]
    fn ber_curve_empty_and_hopeless_cases() {
        let c = BerCurve::new("empty");
        assert_eq!(c.worst_ber(), 0.0);
        assert_eq!(c.quiet_capacity_kbps(), 0.0);
        assert_eq!(c.usable_until(0.1), None);
        let mut dead = BerCurve::new("dead");
        dead.push(0.0, r(10, 5, 40_000.0));
        assert_eq!(dead.usable_until(0.1), None);
    }

    #[test]
    fn capacity_curve_sorts_and_checks_monotonicity() {
        let mut c = CapacityCurve::new("PRAC");
        c.push(1024, 39.0);
        c.push(64, 12.0);
        c.push(256, 30.0);
        let nrhs: Vec<u32> = c.points.iter().map(|p| p.nrh).collect();
        assert_eq!(nrhs, vec![64, 256, 1024]);
        assert!((c.peak_kbps() - 39.0).abs() < 1e-12);
        assert!(c.monotone_in_nrh(0.0));
        c.push(512, 10.0); // capacity dips below the 256 point
        assert!(!c.monotone_in_nrh(0.0));
        assert!(c.monotone_in_nrh(25.0), "tolerance absorbs the dip");
    }
}
