//! Fig. 7 bench: RFM channel under one noise point.

use criterion::{criterion_group, criterion_main, Criterion};
use lh_analysis::MessagePattern;
use lh_bench::experiment::covert::{run_covert, ChannelKind, CovertOptions};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig07_rfm_noise");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(5));
    g.bench_function("noise_50pct", |b| {
        b.iter(|| {
            let mut opts =
                CovertOptions::new(ChannelKind::Rfm, MessagePattern::Checkered0.bits(16));
            opts.noise_intensity = Some(50.0);
            run_covert(&opts)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
