//! Controller-side mitigation engine.
//!
//! The memory controller owns one [`MitigationEngine`] per channel and
//! notifies it of every activation; the engine answers with the preventive
//! actions the controller must schedule:
//!
//! * PRFM — per-bank activation counters that request a same-bank RFM when
//!   a bank crosses `TRFM`;
//! * FR-RFM — a per-rank timer that requests an all-bank RFM at a fixed
//!   period, *independent* of traffic (the key to its security, §11.1);
//! * PARA — probabilistic neighbor-refresh requests;
//! * Graphene / Hydra / CoMeT — approximate trackers (§12) that request
//!   neighbor refreshes when their per-bank estimates cross a threshold;
//! * BlockHammer — a rate filter that requests *throttling* of blacklisted
//!   rows;
//! * MINT — a reservoir sampler whose chosen aggressor is refreshed inside
//!   the next periodic REF (overlapped latency; see
//!   [`MitigationEngine::on_periodic_refresh`]).
//!
//! PRAC-family defenses need no controller-side trigger state: the device
//! asserts ABO on its own and the controller only runs the recovery
//! protocol.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use lh_dram::{BankId, Geometry, RfmScope, Time};

use crate::config::{DefenseConfig, DefenseKind};
use crate::trackers::{BlockHammerBank, CometBank, GrapheneBank, HydraBank, MintBank, MintConfig};

/// A preventive action the controller must perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DefenseAction {
    /// Issue an RFM command on `rank` with the given scope.
    IssueRfm {
        /// Target rank.
        rank: u32,
        /// Blocking scope.
        scope: RfmScope,
    },
    /// Refresh the neighbors of `(bank, row)` (PARA, Graphene, Hydra,
    /// CoMeT): the controller performs it as activate+precharge of the
    /// victim rows.
    RefreshNeighbors {
        /// Aggressor bank.
        bank: BankId,
        /// Aggressor row whose neighbors must be refreshed.
        row: u32,
    },
    /// Delay further activations of `(bank, row)` until `until`
    /// (BlockHammer's throttle — its observable preventive action).
    ThrottleRow {
        /// Throttled bank.
        bank: BankId,
        /// Throttled row.
        row: u32,
        /// Earliest time the row may be activated again.
        until: Time,
    },
}

/// Counters kept by the engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DefenseStats {
    /// RFMs requested by PRFM counters.
    pub prfm_rfms: u64,
    /// RFMs requested by the FR-RFM timer.
    pub fr_rfm_rfms: u64,
    /// Neighbor refreshes requested by PARA.
    pub para_refreshes: u64,
    /// Neighbor refreshes requested by the approximate trackers
    /// (Graphene/Hydra/CoMeT).
    pub tracker_refreshes: u64,
    /// Throttle decisions made by BlockHammer.
    pub throttles: u64,
    /// Aggressors preventively refreshed inside periodic REFs (MINT).
    pub mint_refreshes: u64,
}

/// Controller-side defense trigger state for one channel.
///
/// # Examples
///
/// ```
/// use lh_defenses::{DefenseAction, DefenseConfig, MitigationEngine};
/// use lh_dram::{BankId, Geometry, RfmScope, Time};
///
/// let g = Geometry::tiny();
/// let mut eng = MitigationEngine::new(DefenseConfig::prfm(4), &g, 7);
/// let bank = BankId::new(0, 0, 0, 1);
/// let mut actions = Vec::new();
/// for _ in 0..4 {
///     actions.extend(eng.on_activate(bank, 10, Time::ZERO));
/// }
/// assert_eq!(
///     actions,
///     vec![DefenseAction::IssueRfm { rank: 0, scope: RfmScope::SameBank { bank: 1 } }]
/// );
/// ```
#[derive(Debug, Clone)]
pub struct MitigationEngine {
    config: DefenseConfig,
    geometry: Geometry,
    /// PRFM: per flat-bank activation counters.
    prfm_counters: Vec<u32>,
    /// FR-RFM: per-rank next RFM deadline.
    fr_rfm_due: Vec<Time>,
    /// Graphene: per flat-bank frequent-item summaries.
    graphene: Vec<GrapheneBank>,
    /// Hydra: per flat-bank hybrid trackers.
    hydra: Vec<HydraBank>,
    /// CoMeT: per flat-bank count-min sketches.
    comet: Vec<CometBank>,
    /// MINT: per flat-bank reservoir samplers.
    mint: Vec<MintBank>,
    /// BlockHammer: per flat-bank rate filters.
    blockhammer: Vec<BlockHammerBank>,
    rng: StdRng,
    stats: DefenseStats,
}

impl MitigationEngine {
    /// Creates the engine for a channel of shape `geometry`.
    pub fn new(config: DefenseConfig, geometry: &Geometry, seed: u64) -> MitigationEngine {
        let first_due = config
            .fr_rfm
            .map(|f| Time::ZERO + f.period)
            .unwrap_or(Time::MAX);
        let banks = geometry.banks_per_channel() as usize;
        let graphene = config
            .graphene
            .map(|g| (0..banks).map(|_| GrapheneBank::new(g)).collect())
            .unwrap_or_default();
        let hydra = config
            .hydra
            .map(|h| (0..banks).map(|_| HydraBank::new(h)).collect())
            .unwrap_or_default();
        let comet = config
            .comet
            .map(|c| {
                (0..banks)
                    .map(|b| {
                        // Per-bank hash families: a row index must not
                        // collide identically in every bank.
                        let mut cfg = c;
                        cfg.seed = c.seed ^ ((b as u64) << 48);
                        CometBank::new(cfg)
                    })
                    .collect()
            })
            .unwrap_or_default();
        let mint = config
            .mint
            .map(|m| {
                (0..banks)
                    .map(|b| {
                        MintBank::new(MintConfig {
                            seed: m.seed ^ ((b as u64 + 1) << 32),
                        })
                    })
                    .collect()
            })
            .unwrap_or_default();
        let blockhammer = config
            .blockhammer
            .map(|bh| {
                (0..banks)
                    .map(|b| {
                        let mut cfg = bh;
                        cfg.seed = bh.seed ^ ((b as u64) << 40);
                        BlockHammerBank::new(cfg)
                    })
                    .collect()
            })
            .unwrap_or_default();
        MitigationEngine {
            config,
            geometry: *geometry,
            prfm_counters: vec![0; banks],
            fr_rfm_due: vec![first_due; geometry.ranks_per_channel() as usize],
            graphene,
            hydra,
            comet,
            mint,
            blockhammer,
            rng: StdRng::seed_from_u64(seed),
            stats: DefenseStats::default(),
        }
    }

    /// The defense configuration.
    pub fn config(&self) -> &DefenseConfig {
        &self.config
    }

    /// Engine statistics.
    pub fn stats(&self) -> &DefenseStats {
        &self.stats
    }

    /// Notifies the engine of an `ACT` to `(bank, row)` at `now`; returns
    /// the preventive actions the controller must schedule (possibly none).
    pub fn on_activate(&mut self, bank: BankId, row: u32, now: Time) -> Vec<DefenseAction> {
        let mut actions = Vec::new();
        let flat = self.geometry.flat_bank(bank);
        match self.config.kind {
            DefenseKind::Prfm => {
                if let Some(prfm) = self.config.prfm {
                    self.prfm_counters[flat] += 1;
                    if self.prfm_counters[flat] >= prfm.trfm {
                        self.prfm_counters[flat] -= prfm.trfm;
                        self.stats.prfm_rfms += 1;
                        actions.push(DefenseAction::IssueRfm {
                            rank: bank.rank,
                            scope: RfmScope::SameBank { bank: bank.bank },
                        });
                    }
                }
            }
            DefenseKind::Para => {
                if let Some(para) = self.config.para {
                    if self.rng.gen_bool(para.probability.clamp(0.0, 1.0)) {
                        self.stats.para_refreshes += 1;
                        actions.push(DefenseAction::RefreshNeighbors { bank, row });
                    }
                }
            }
            DefenseKind::Graphene => {
                if let Some(aggressor) = self.graphene[flat].on_activate(row, now) {
                    self.stats.tracker_refreshes += 1;
                    actions.push(DefenseAction::RefreshNeighbors {
                        bank,
                        row: aggressor,
                    });
                }
            }
            DefenseKind::Hydra => {
                if let Some(aggressor) = self.hydra[flat].on_activate(row, now) {
                    self.stats.tracker_refreshes += 1;
                    actions.push(DefenseAction::RefreshNeighbors {
                        bank,
                        row: aggressor,
                    });
                }
            }
            DefenseKind::Comet => {
                if let Some(aggressor) = self.comet[flat].on_activate(row, now) {
                    self.stats.tracker_refreshes += 1;
                    actions.push(DefenseAction::RefreshNeighbors {
                        bank,
                        row: aggressor,
                    });
                }
            }
            DefenseKind::Mint => {
                self.mint[flat].on_activate(row);
            }
            DefenseKind::BlockHammer => {
                if let Some(until) = self.blockhammer[flat].on_activate(row, now) {
                    self.stats.throttles += 1;
                    actions.push(DefenseAction::ThrottleRow { bank, row, until });
                }
            }
            _ => {}
        }
        actions
    }

    /// Notifies the engine that a periodic REF is being issued on `rank`;
    /// returns the aggressor rows whose victims the device should refresh
    /// *inside* the REF window (MINT's overlapped-latency mitigation —
    /// zero extra blocking time, hence nothing for an attacker to
    /// observe).
    pub fn on_periodic_refresh(&mut self, rank: u32) -> Vec<(BankId, u32)> {
        if self.mint.is_empty() {
            return Vec::new();
        }
        let mut refreshed = Vec::new();
        for flat in 0..self.mint.len() {
            let bank = self.geometry.bank_from_flat(0, flat);
            if bank.rank != rank {
                continue;
            }
            if let Some(row) = self.mint[flat].take_sample() {
                self.stats.mint_refreshes += 1;
                refreshed.push((bank, row));
            }
        }
        refreshed
    }

    /// The Graphene tracker of `bank` (instrumentation).
    pub fn graphene_bank(&self, bank: BankId) -> Option<&GrapheneBank> {
        self.graphene.get(self.geometry.flat_bank(bank))
    }

    /// The BlockHammer filter of `bank` (instrumentation).
    pub fn blockhammer_bank(&self, bank: BankId) -> Option<&BlockHammerBank> {
        self.blockhammer.get(self.geometry.flat_bank(bank))
    }

    /// FR-RFM: the absolute deadline of the next fixed-rate RFM on `rank`,
    /// or `None` when FR-RFM is not enabled.
    ///
    /// The controller must quiesce the rank and issue the RFM exactly at
    /// this instant (never earlier, never later) so the RFM stream carries
    /// no information about memory traffic.
    pub fn fr_rfm_deadline(&self, rank: u32) -> Option<Time> {
        self.config.fr_rfm?;
        Some(self.fr_rfm_due[rank as usize])
    }

    /// FR-RFM: records that the scheduled RFM for `rank` was issued and
    /// advances the deadline by one period.
    pub fn fr_rfm_issued(&mut self, rank: u32) {
        if let Some(f) = self.config.fr_rfm {
            self.stats.fr_rfm_rfms += 1;
            let due = &mut self.fr_rfm_due[rank as usize];
            *due += f.period;
        }
    }

    /// Current PRFM counter of a bank (for tests and instrumentation).
    pub fn prfm_counter(&self, bank: BankId) -> u32 {
        self.prfm_counters[self.geometry.flat_bank(bank)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank(bg: u32, b: u32) -> BankId {
        BankId::new(0, 0, bg, b)
    }

    #[test]
    fn prfm_counts_per_bank_independently() {
        let g = Geometry::tiny();
        let mut eng = MitigationEngine::new(DefenseConfig::prfm(3), &g, 0);
        // Two different banks interleaved: no single bank reaches 3.
        for _ in 0..2 {
            assert!(eng.on_activate(bank(0, 0), 1, Time::ZERO).is_empty());
            assert!(eng.on_activate(bank(1, 1), 1, Time::ZERO).is_empty());
        }
        // Third ACT to bank (0,0) fires.
        let a = eng.on_activate(bank(0, 0), 1, Time::ZERO);
        assert_eq!(
            a,
            vec![DefenseAction::IssueRfm {
                rank: 0,
                scope: RfmScope::SameBank { bank: 0 }
            }]
        );
        assert_eq!(eng.prfm_counter(bank(0, 0)), 0);
        assert_eq!(eng.prfm_counter(bank(1, 1)), 2);
        assert_eq!(eng.stats().prfm_rfms, 1);
    }

    #[test]
    fn prfm_counter_keeps_remainder() {
        let g = Geometry::tiny();
        let mut eng = MitigationEngine::new(DefenseConfig::prfm(2), &g, 0);
        for i in 0..10 {
            let fired = !eng.on_activate(bank(0, 0), 1, Time::ZERO).is_empty();
            assert_eq!(fired, i % 2 == 1, "fires on every second ACT");
        }
    }

    #[test]
    fn fr_rfm_deadline_advances_independently_of_traffic() {
        let g = Geometry::tiny();
        let t = lh_dram::DramTiming::ddr5_4800();
        let cfg = DefenseConfig::fr_rfm(4, t.t_rc);
        let period = cfg.fr_rfm.unwrap().period;
        let mut eng = MitigationEngine::new(cfg, &g, 0);
        let d0 = eng.fr_rfm_deadline(0).unwrap();
        assert_eq!(d0, Time::ZERO + period);
        // Activations do not move the deadline.
        for _ in 0..100 {
            assert!(eng.on_activate(bank(0, 0), 1, Time::ZERO).is_empty());
        }
        assert_eq!(eng.fr_rfm_deadline(0).unwrap(), d0);
        eng.fr_rfm_issued(0);
        assert_eq!(eng.fr_rfm_deadline(0).unwrap(), d0 + period);
        assert_eq!(eng.stats().fr_rfm_rfms, 1);
    }

    #[test]
    fn para_fires_probabilistically() {
        let g = Geometry::tiny();
        let mut eng = MitigationEngine::new(DefenseConfig::para(0.25), &g, 42);
        let mut fired = 0;
        for _ in 0..10_000 {
            fired += eng.on_activate(bank(0, 0), 7, Time::ZERO).len();
        }
        let rate = fired as f64 / 10_000.0;
        assert!((0.2..0.3).contains(&rate), "observed PARA rate {rate}");
        assert_eq!(eng.stats().para_refreshes as usize, fired);
    }

    #[test]
    fn none_and_prac_request_nothing_from_the_controller() {
        let g = Geometry::tiny();
        for cfg in [DefenseConfig::none(), DefenseConfig::prac(128)] {
            let mut eng = MitigationEngine::new(cfg, &g, 0);
            for _ in 0..500 {
                assert!(eng.on_activate(bank(0, 0), 1, Time::ZERO).is_empty());
            }
            assert!(eng.fr_rfm_deadline(0).is_none());
        }
    }

    #[test]
    fn graphene_engine_requests_neighbor_refresh_at_threshold() {
        let g = Geometry::tiny();
        let t = lh_dram::DramTiming::ddr5_4800();
        let mut cfg = DefenseConfig::graphene(64, &t);
        let threshold = cfg.graphene.unwrap().threshold;
        cfg.graphene.as_mut().unwrap().entries = 8;
        let mut eng = MitigationEngine::new(cfg, &g, 0);
        let mut fired = Vec::new();
        for _ in 0..threshold {
            fired.extend(eng.on_activate(bank(0, 0), 42, Time::ZERO));
        }
        assert_eq!(
            fired,
            vec![DefenseAction::RefreshNeighbors {
                bank: bank(0, 0),
                row: 42
            }]
        );
        assert_eq!(eng.stats().tracker_refreshes, 1);
    }

    #[test]
    fn tracker_state_is_per_bank() {
        let g = Geometry::tiny();
        let t = lh_dram::DramTiming::ddr5_4800();
        let mut cfg = DefenseConfig::graphene(64, &t);
        let threshold = cfg.graphene.unwrap().threshold;
        cfg.graphene.as_mut().unwrap().entries = 8;
        let mut eng = MitigationEngine::new(cfg, &g, 0);
        // Alternate banks: neither bank's tracker reaches the threshold
        // even after `threshold` total activations of row 42.
        let mut fired = 0;
        for i in 0..threshold {
            fired += eng.on_activate(bank(0, i % 2), 42, Time::ZERO).len();
        }
        assert_eq!(fired, 0);
    }

    #[test]
    fn hydra_and_comet_engines_fire_eventually_under_hammering() {
        let g = Geometry::tiny();
        let t = lh_dram::DramTiming::ddr5_4800();
        for cfg in [
            DefenseConfig::hydra(64, &t),
            DefenseConfig::comet(64, &t, 9),
        ] {
            let kind = cfg.kind;
            let mut eng = MitigationEngine::new(cfg, &g, 0);
            let mut fired = 0;
            for _ in 0..256 {
                fired += eng.on_activate(bank(0, 0), 7, Time::ZERO).len();
            }
            assert!(fired >= 1, "{kind} never fired under 256 single-row ACTs");
        }
    }

    #[test]
    fn blockhammer_engine_throttles_hammered_row_only() {
        let g = Geometry::tiny();
        let t = lh_dram::DramTiming::ddr5_4800();
        let cfg = DefenseConfig::blockhammer(64, &t, 5);
        let mut eng = MitigationEngine::new(cfg, &g, 0);
        let mut throttles = Vec::new();
        for _ in 0..64 {
            throttles.extend(eng.on_activate(bank(0, 0), 3, Time::ZERO));
        }
        assert!(!throttles.is_empty(), "hammered row must be throttled");
        assert!(throttles
            .iter()
            .all(|a| matches!(a, DefenseAction::ThrottleRow { row: 3, .. })));
        // A cold row on the same bank is not throttled.
        assert!(eng.on_activate(bank(0, 0), 999, Time::ZERO).is_empty());
        assert_eq!(eng.stats().throttles, throttles.len() as u64);
    }

    #[test]
    fn mint_engine_samples_one_aggressor_per_bank_per_ref() {
        let g = Geometry::tiny();
        let mut eng = MitigationEngine::new(DefenseConfig::mint(11), &g, 0);
        // ACTs never produce inline actions (overlapped latency).
        for _ in 0..100 {
            assert!(eng.on_activate(bank(0, 0), 5, Time::ZERO).is_empty());
        }
        for _ in 0..100 {
            assert!(eng.on_activate(bank(1, 1), 6, Time::ZERO).is_empty());
        }
        let refreshed = eng.on_periodic_refresh(0);
        assert_eq!(refreshed.len(), 2, "one sample per active bank");
        assert!(refreshed.contains(&(bank(0, 0), 5)));
        assert!(refreshed.contains(&(bank(1, 1), 6)));
        assert_eq!(eng.stats().mint_refreshes, 2);
        // The interval restarted: nothing to refresh now.
        assert!(eng.on_periodic_refresh(0).is_empty());
    }

    #[test]
    fn mint_refresh_only_covers_the_refreshed_rank() {
        let g = Geometry::tiny();
        let mut eng = MitigationEngine::new(DefenseConfig::mint(11), &g, 0);
        if g.ranks_per_channel() < 2 {
            // tiny geometry has one rank; sampling on rank 0 must still
            // return nothing for an out-of-range rank.
            eng.on_activate(bank(0, 0), 5, Time::ZERO);
            assert!(eng.on_periodic_refresh(7).is_empty());
        }
    }
}
