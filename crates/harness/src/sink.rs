//! Structured output sinks: text, JSON and CSV rendering of run
//! results, plus the NDJSON streaming events behind `--stream`.

use core::str::FromStr;

use crate::job::{Job, JobContext};
use crate::json::Json;
use crate::runner::{ExperimentRun, UnitEvent};

/// Output format of the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// The paper-style plain-text reports.
    #[default]
    Text,
    /// One JSON envelope per experiment.
    Json,
    /// One CSV block per experiment.
    Csv,
}

impl FromStr for OutputFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<OutputFormat, String> {
        match s {
            "text" => Ok(OutputFormat::Text),
            "json" => Ok(OutputFormat::Json),
            "csv" => Ok(OutputFormat::Csv),
            other => Err(format!("unknown format '{other}' (text|json|csv)")),
        }
    }
}

/// Renders one finished experiment in the requested format.
pub fn render(
    job: &dyn Job,
    run: &ExperimentRun,
    ctx: &JobContext,
    format: OutputFormat,
) -> String {
    match format {
        OutputFormat::Text => {
            format!(
                "== {} ({}) ==\n{}\n",
                job.id(),
                ctx.scale.as_str(),
                job.render_text(&run.merged, ctx)
            )
        }
        OutputFormat::Json => envelope(job, run, ctx).to_pretty() + "\n",
        OutputFormat::Csv => {
            let body = job
                .render_csv(&run.merged, ctx)
                .unwrap_or_else(|| csv_from_json(&run.merged));
            format!("# {} ({})\n{body}", job.id(), ctx.scale.as_str())
        }
    }
}

/// The JSON envelope for one experiment run.
///
/// Deliberately free of run statistics (unit counts, cache hits, wall
/// time): the envelope describes the *result*, so it stays byte-stable
/// across resharding, cache states and worker counts — which is what
/// lets CI diff committed envelope snapshots across refactors. Run
/// statistics travel in [`RunStats`](crate::RunStats) and the streaming
/// events instead.
///
/// The `metrics` block is the one piece of execution telemetry that
/// *is* included, because it is deterministic by contract: per-unit
/// counters in unit order plus their totals
/// ([`metrics_block`](crate::metrics::metrics_block)), identical
/// whether units ran cold, replayed from cache, or executed on remote
/// workers. Wall-clock span timings never appear here — they export
/// separately as Chrome `trace_event` JSON.
pub fn envelope(job: &dyn Job, run: &ExperimentRun, ctx: &JobContext) -> Json {
    Json::object()
        .with("experiment", job.id())
        .with("description", job.description())
        .with("scale", ctx.scale.as_str())
        .with("seed", ctx.seed)
        .with("result", run.merged.clone())
        .with("metrics", run.metrics.clone())
}

/// Wall-clock milliseconds since the Unix epoch, for the `ts_ms` field
/// stream events carry.
///
/// `ts_ms` lives strictly in the volatile channel: stream lines are
/// transient progress feed, never cached and never part of an envelope,
/// so stamping them lets `watch` and the serve dashboard compute live
/// rates without touching the byte-identity contract.
pub fn wall_clock_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// One NDJSON line announcing that an experiment started: emit before
/// running when streaming.
pub fn stream_started(job: &dyn Job, units: usize, ctx: &JobContext) -> String {
    Json::object()
        .with("event", "started")
        .with("ts_ms", wall_clock_ms())
        .with("experiment", job.id())
        .with("scale", ctx.scale.as_str())
        .with("seed", ctx.seed)
        .with("units", units)
        .to_compact()
        + "\n"
}

/// One NDJSON line for a completed unit: wire a
/// [`UnitObserver`](crate::runner::UnitObserver) that emits this as
/// each unit finishes, in completion order.
pub fn stream_unit(event: &UnitEvent) -> String {
    Json::object()
        .with("event", "unit")
        .with("ts_ms", wall_clock_ms())
        .with("experiment", event.experiment)
        .with("unit", event.unit.as_str())
        .with("index", event.index)
        .with("cached", event.cached)
        .with("ms", event.wall_ms as u64)
        .with("metrics", event.metrics.clone())
        .with("result", event.result.clone())
        .to_compact()
        + "\n"
}

/// One NDJSON line carrying the finished experiment's envelope plus run
/// statistics: emit after `finish` when streaming.
pub fn stream_finished(job: &dyn Job, run: &ExperimentRun, ctx: &JobContext) -> String {
    Json::object()
        .with("event", "finished")
        .with("ts_ms", wall_clock_ms())
        .with("experiment", job.id())
        .with("units", run.stats.units_total)
        .with("cached_units", run.stats.units_cached)
        .with("executed_units", run.stats.units_executed)
        .with("wall_ms", run.stats.wall_ms as u64)
        .with("envelope", envelope(job, run, ctx))
        .to_compact()
        + "\n"
}

/// One NDJSON line carrying a fleet-telemetry snapshot (`event:
/// "fleet"`): the coordinator's volatile view of its workers —
/// heartbeat ages, in-flight units, completion counts, deaths and
/// requeues. Emitted by the serve streaming endpoint (periodically,
/// while a run is live) and by `--workers` runs when streaming. The
/// snapshot is wall-clock shaped and therefore never enters envelopes
/// or the cache.
pub fn stream_fleet(snapshot: Json) -> String {
    Json::object()
        .with("event", "fleet")
        .with("ts_ms", wall_clock_ms())
        .with("fleet", snapshot)
        .to_compact()
        + "\n"
}

/// Generic CSV fallback: uses the first array-of-objects field of the
/// merged result as rows (header = union of keys in first-seen order);
/// if none exists, emits the scalar fields as a single row.
pub fn csv_from_json(merged: &Json) -> String {
    let rows: &[Json] = merged
        .as_object()
        .iter()
        .find_map(|(_, v)| {
            let items = v.as_array();
            (!items.is_empty() && items.iter().all(|i| !i.as_object().is_empty())).then_some(items)
        })
        .unwrap_or(&[]);

    let records: Vec<&Json> = if rows.is_empty() {
        vec![merged]
    } else {
        rows.iter().collect()
    };
    let mut header: Vec<&str> = Vec::new();
    for record in &records {
        for (k, v) in record.as_object() {
            if scalar(v) && !header.contains(&k.as_str()) {
                header.push(k);
            }
        }
    }
    let mut out = header.join(",");
    out.push('\n');
    for record in &records {
        let cells: Vec<String> = header.iter().map(|k| scalar_cell(record.get(k))).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

fn scalar(v: &Json) -> bool {
    !matches!(v, Json::Array(_) | Json::Object(_))
}

fn scalar_cell(v: &Json) -> String {
    match v {
        Json::Str(s) => {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        }
        Json::Null => String::new(),
        other => other.to_compact(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_parses() {
        assert_eq!("csv".parse::<OutputFormat>().unwrap(), OutputFormat::Csv);
        assert!("xml".parse::<OutputFormat>().is_err());
    }

    #[test]
    fn csv_flattens_point_arrays() {
        let merged = Json::object().with(
            "points",
            Json::Array(vec![
                Json::object().with("intensity", 1.0).with("capacity", 39.5),
                Json::object()
                    .with("intensity", 50.0)
                    .with("capacity", 20.25),
            ]),
        );
        let csv = csv_from_json(&merged);
        assert_eq!(csv, "intensity,capacity\n1.0,39.5\n50.0,20.25\n");
    }

    #[test]
    fn csv_falls_back_to_scalars_and_escapes() {
        let merged = Json::object().with("label", "a,b").with("n", 3i64);
        assert_eq!(csv_from_json(&merged), "label,n\n\"a,b\",3\n");
    }

    #[test]
    fn stream_lines_are_single_line_ndjson() {
        let event = UnitEvent {
            experiment: "fig4",
            unit: "noise:1".into(),
            index: 1,
            cached: false,
            wall_ms: 12,
            metrics: Json::object().with("sim.service_wakes", 42u64),
            result: Json::object().with("capacity", 39.5),
        };
        let line = stream_unit(&event);
        assert!(line.ends_with('\n'));
        assert_eq!(line.trim_end().matches('\n').count(), 0, "one line");
        let parsed = crate::json::parse(line.trim_end()).unwrap();
        assert_eq!(parsed["event"].as_str(), Some("unit"));
        assert_eq!(parsed["unit"].as_str(), Some("noise:1"));
        assert_eq!(parsed["metrics"]["sim.service_wakes"].as_u64(), Some(42));
        assert_eq!(parsed["result"]["capacity"].as_f64(), Some(39.5));
        assert!(
            parsed["ts_ms"].as_u64().is_some_and(|ts| ts > 0),
            "stream lines carry a wall-clock stamp: {parsed:?}"
        );
    }

    #[test]
    fn fleet_lines_wrap_the_snapshot() {
        let snap = Json::object().with("spawned", 2u64);
        let line = stream_fleet(snap);
        let parsed = crate::json::parse(line.trim_end()).unwrap();
        assert_eq!(parsed["event"].as_str(), Some("fleet"));
        assert_eq!(parsed["fleet"]["spawned"].as_u64(), Some(2));
        assert!(parsed["ts_ms"].as_u64().is_some());
    }
}
