//! Content-addressed on-disk result cache.
//!
//! Entries are keyed by a 128-bit hash of `(experiment id, unit
//! fingerprint, scale, master seed, job version, job code fingerprint)`
//! and stored as JSON files under `<dir>/<experiment>/<digest>.json`.
//! Invalidation is surgical: the last two components come from the job
//! itself ([`crate::Job::version`] and [`crate::Job::fingerprint`] —
//! typically a per-crate source-hash manifest), so bumping one
//! experiment, or editing one crate, invalidates only the entries whose
//! results could actually change — never the whole cache.
//! Writes are atomic (temp file + rename), so a cache shared between a
//! parallel run's workers — or between concurrent invocations — can
//! never expose a torn entry; the worst case is both sides computing
//! and one rename winning.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::hash::Hasher;
use crate::json::{self, Json};

/// Everything that addresses one cached result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    /// Experiment id.
    pub experiment: String,
    /// Unit fingerprint, or a merge marker for finished results.
    pub unit: String,
    /// Scale identifier.
    pub scale: String,
    /// Master seed.
    pub seed: u64,
    /// Job result-schema version.
    pub job_version: u32,
    /// Job code fingerprint ([`crate::Job::fingerprint`]); empty for
    /// jobs that rely on `job_version` alone.
    pub fingerprint: String,
}

impl CacheKey {
    /// The content digest addressing this key.
    pub fn digest(&self) -> String {
        let mut h = Hasher::new();
        h.field(&self.experiment)
            .field(&self.unit)
            .field(&self.scale)
            .number(self.seed)
            .number(u64::from(self.job_version))
            .field(&self.fingerprint);
        h.digest()
    }
}

/// A directory of cached results.
#[derive(Debug, Clone)]
pub struct DiskCache {
    dir: PathBuf,
}

impl DiskCache {
    /// Opens (and lazily creates) a cache rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> DiskCache {
        DiskCache { dir: dir.into() }
    }

    /// The cache root.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_of(&self, key: &CacheKey) -> PathBuf {
        self.dir
            .join(&key.experiment)
            .join(format!("{}.json", key.digest()))
    }

    /// Looks a result up. Unreadable or corrupt entries read as misses
    /// (the runner recomputes and rewrites them).
    pub fn get(&self, key: &CacheKey) -> Option<Json> {
        let text = fs::read_to_string(self.path_of(key)).ok()?;
        json::parse(&text).ok()
    }

    /// Stores a result atomically.
    pub fn put(&self, key: &CacheKey, value: &Json) -> io::Result<()> {
        let path = self.path_of(key);
        let parent = path.parent().expect("cache paths have parents");
        fs::create_dir_all(parent)?;
        let tmp = parent.join(format!(
            ".{}.tmp.{}",
            path.file_name().and_then(|n| n.to_str()).unwrap_or("entry"),
            std::process::id()
        ));
        fs::write(&tmp, value.to_compact())?;
        fs::rename(&tmp, &path)
    }

    /// Removes every entry (best-effort; missing dir is fine).
    pub fn clear(&self) -> io::Result<()> {
        match fs::remove_dir_all(&self.dir) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            other => other,
        }
    }

    /// Merges another cache directory into this one, moving every entry
    /// (`<experiment>/<digest>.json`) across and replacing duplicates —
    /// both sides of a duplicate digest hold the same content, so
    /// either copy is correct. Hidden files (in-flight `.*.tmp.*`
    /// writes) are skipped. A missing `from` directory merges zero
    /// entries. Returns the number of entries absorbed.
    ///
    /// This is how a coordinator folds per-worker cache directories
    /// back into the shared cache after a distributed run.
    pub fn absorb(&self, from: &Path) -> io::Result<usize> {
        let experiments = match fs::read_dir(from) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
            other => other?,
        };
        let mut moved = 0;
        for experiment in experiments {
            let experiment = experiment?.path();
            if !experiment.is_dir() {
                continue;
            }
            let dest_dir = self
                .dir
                .join(experiment.file_name().expect("read_dir names"));
            fs::create_dir_all(&dest_dir)?;
            for entry in fs::read_dir(&experiment)? {
                let entry = entry?.path();
                let name = match entry.file_name().and_then(|n| n.to_str()) {
                    Some(n) if !n.starts_with('.') && n.ends_with(".json") => n.to_owned(),
                    _ => continue,
                };
                let dest = dest_dir.join(&name);
                if fs::rename(&entry, &dest).is_err() {
                    // Cross-device fallback: copy, then best-effort
                    // cleanup of the source.
                    fs::copy(&entry, &dest)?;
                    let _ = fs::remove_file(&entry);
                }
                moved += 1;
            }
        }
        Ok(moved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_cache(tag: &str) -> DiskCache {
        let dir = std::env::temp_dir().join(format!(
            "lh-harness-cache-test-{}-{tag}",
            std::process::id()
        ));
        let cache = DiskCache::new(dir);
        cache.clear().unwrap();
        cache
    }

    fn key(unit: &str) -> CacheKey {
        CacheKey {
            experiment: "fig4".into(),
            unit: unit.into(),
            scale: "quick".into(),
            seed: 1,
            job_version: 1,
            fingerprint: String::new(),
        }
    }

    #[test]
    fn round_trips_and_misses() {
        let cache = temp_cache("roundtrip");
        let value = Json::object().with("e", 0.125).with("n", 3i64);
        assert!(cache.get(&key("point:1")).is_none());
        cache.put(&key("point:1"), &value).unwrap();
        assert_eq!(cache.get(&key("point:1")), Some(value));
        assert!(
            cache.get(&key("point:2")).is_none(),
            "distinct units are distinct keys"
        );
        cache.clear().unwrap();
    }

    #[test]
    fn every_key_field_changes_the_digest() {
        let base = key("point:1");
        let digest = base.digest();
        let mut other = base.clone();
        other.unit = "point:2".into();
        assert_ne!(digest, other.digest());
        let mut other = base.clone();
        other.scale = "paper".into();
        assert_ne!(digest, other.digest());
        let mut other = base.clone();
        other.seed = 2;
        assert_ne!(digest, other.digest());
        let mut other = base.clone();
        other.job_version = 2;
        assert_ne!(digest, other.digest());
        let mut other = base.clone();
        other.fingerprint = "crates:abc123".into();
        assert_ne!(digest, other.digest());
        assert_eq!(digest, base.digest(), "digest must be pure");
    }

    #[test]
    fn absorb_moves_entries_and_replaces_duplicates() {
        let main = temp_cache("absorb-main");
        let worker = temp_cache("absorb-worker");
        // One entry only the worker has, one both have, plus a stray
        // temp file that must not travel.
        worker.put(&key("point:1"), &Json::Int(1)).unwrap();
        worker.put(&key("point:2"), &Json::Int(2)).unwrap();
        main.put(&key("point:2"), &Json::Int(2)).unwrap();
        std::fs::write(worker.dir().join("fig4").join(".orphan.tmp.1"), "junk").unwrap();

        let moved = main.absorb(worker.dir()).unwrap();
        assert_eq!(moved, 2);
        assert_eq!(main.get(&key("point:1")), Some(Json::Int(1)));
        assert_eq!(main.get(&key("point:2")), Some(Json::Int(2)));
        assert!(
            worker.get(&key("point:1")).is_none(),
            "absorb moves, not copies"
        );
        assert!(!main.dir().join("fig4").join(".orphan.tmp.1").exists());

        // Absorbing a missing directory is a no-op.
        assert_eq!(
            main.absorb(&worker.dir().join("does-not-exist")).unwrap(),
            0
        );
        main.clear().unwrap();
        worker.clear().unwrap();
    }

    #[test]
    fn corrupt_entries_read_as_misses() {
        let cache = temp_cache("corrupt");
        let k = key("point:1");
        cache.put(&k, &Json::Int(1)).unwrap();
        let path = cache
            .dir()
            .join("fig4")
            .join(format!("{}.json", k.digest()));
        std::fs::write(&path, "{not json").unwrap();
        assert!(cache.get(&k).is_none());
        cache.clear().unwrap();
    }
}
