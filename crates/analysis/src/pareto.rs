//! Security-vs-cost Pareto curves for the mitigation sweep.
//!
//! Every (defense, mitigation) cell of the `mitsweep` matrix yields two
//! numbers: how far the covert channel's capacity *collapsed* relative
//! to the unmitigated baseline (security — higher is better) and how
//! much extra *scheduling pressure* the mitigation bought it (cost —
//! RFMs, throttles and deferred maintenance beyond the baseline; lower
//! is better). [`ParetoCurve`] collects those points per series and
//! answers the question the paper's "Mitigating" half poses: which
//! mitigations are worth their cost — the non-dominated
//! [`frontier`](ParetoCurve::frontier).

use serde::{Deserialize, Serialize};

/// One mitigation evaluated against one defense.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// Mitigation label (`"jitter"`, `"shaper"`, … or `"none"`).
    pub label: String,
    /// Capacity collapse relative to the unmitigated baseline, in
    /// percent (0 = channel untouched, 100 = channel eliminated).
    /// Negative values mean the mitigation *widened* the channel.
    pub collapse_pct: f64,
    /// Extra scheduling-pressure operations per millisecond of
    /// simulated time, relative to the unmitigated baseline.
    pub cost_ops_per_ms: f64,
}

impl ParetoPoint {
    /// Whether `self` dominates `other`: at least as secure and at
    /// most as costly, and strictly better on one axis.
    pub fn dominates(&self, other: &ParetoPoint) -> bool {
        self.collapse_pct >= other.collapse_pct
            && self.cost_ops_per_ms <= other.cost_ops_per_ms
            && (self.collapse_pct > other.collapse_pct
                || self.cost_ops_per_ms < other.cost_ops_per_ms)
    }
}

/// A labeled security-vs-cost series: every mitigation evaluated
/// against one (defense, modulation) cell family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ParetoCurve {
    /// Series label (`"PRFM/ook+rep3"`, …).
    pub label: String,
    /// Points in insertion (mitigation-axis) order.
    pub points: Vec<ParetoPoint>,
}

impl ParetoCurve {
    /// An empty curve with a label.
    pub fn new(label: impl Into<String>) -> ParetoCurve {
        ParetoCurve {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a measurement.
    pub fn push(&mut self, label: impl Into<String>, collapse_pct: f64, cost_ops_per_ms: f64) {
        self.points.push(ParetoPoint {
            label: label.into(),
            collapse_pct,
            cost_ops_per_ms,
        });
    }

    /// The non-dominated subset, in insertion order: every point no
    /// other point beats on both axes. This is the menu a deployer
    /// actually chooses from.
    pub fn frontier(&self) -> Vec<&ParetoPoint> {
        self.points
            .iter()
            .filter(|p| !self.points.iter().any(|q| q.dominates(p)))
            .collect()
    }

    /// The cheapest point that collapses capacity by at least
    /// `min_collapse_pct`, if any.
    pub fn cheapest_collapse(&self, min_collapse_pct: f64) -> Option<&ParetoPoint> {
        self.points
            .iter()
            .filter(|p| p.collapse_pct >= min_collapse_pct)
            .min_by(|a, b| {
                a.cost_ops_per_ms
                    .partial_cmp(&b.cost_ops_per_ms)
                    .expect("finite costs")
            })
    }

    /// The strongest collapse on the curve; 0 when empty.
    pub fn best_collapse_pct(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.collapse_pct)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> ParetoCurve {
        let mut c = ParetoCurve::new("PRFM/ook+rep3");
        c.push("none", 0.0, 0.0);
        c.push("jitter", 40.0, 2.0);
        c.push("batch", 30.0, 5.0); // dominated by jitter
        c.push("shaper", 99.0, 20.0);
        c.push("quota", 99.0, 25.0); // dominated by shaper
        c
    }

    #[test]
    fn frontier_drops_dominated_points() {
        let c = curve();
        let labels: Vec<&str> = c.frontier().iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, ["none", "jitter", "shaper"]);
    }

    #[test]
    fn domination_is_strict_on_at_least_one_axis() {
        let a = ParetoPoint {
            label: "a".into(),
            collapse_pct: 50.0,
            cost_ops_per_ms: 3.0,
        };
        assert!(!a.dominates(&a), "a point must not dominate itself");
        let cheaper = ParetoPoint {
            cost_ops_per_ms: 2.0,
            ..a.clone()
        };
        assert!(cheaper.dominates(&a));
        assert!(!a.dominates(&cheaper));
    }

    #[test]
    fn cheapest_collapse_picks_the_thrifty_option() {
        let c = curve();
        assert_eq!(c.cheapest_collapse(90.0).unwrap().label, "shaper");
        assert_eq!(c.cheapest_collapse(10.0).unwrap().label, "jitter");
        assert!(c.cheapest_collapse(99.5).is_none());
    }

    #[test]
    fn best_collapse_tracks_the_maximum() {
        assert_eq!(curve().best_collapse_pct(), 99.0);
        assert_eq!(ParetoCurve::new("empty").best_collapse_pct(), 0.0);
    }

    #[test]
    fn frontier_keeps_ties_on_both_axes() {
        let mut c = ParetoCurve::new("ties");
        c.push("a", 50.0, 3.0);
        c.push("b", 50.0, 3.0);
        // Neither dominates the other (no strict edge), so both stay.
        assert_eq!(c.frontier().len(), 2);
    }
}
