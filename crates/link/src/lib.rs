//! # lh-link — the covert-channel link layer
//!
//! The LeakyHammer paper demonstrates one sender/receiver pair per
//! defense; this crate turns that pair into a *link layer* whose three
//! pluggable stages compose over **any** registered RowHammer defense
//! (everything behind the `Defense` trait seam):
//!
//! * [`Modulator`] — how coded bits become per-window hammering
//!   intensity and how [`WindowObservation`]s become bits again:
//!   [`OnOffKeying`] (the paper's binary channel), [`PulsePosition`]
//!   and [`MultiLevelAmplitude`] (the §6.3 multibit extension,
//!   generalized);
//! * [`PreambleSync`] — preamble detection and window-clock drift
//!   correction, removing the paper's shared-wall-clock assumption;
//! * [`Codec`] — bit-level redundancy: [`Plain`], [`Repetition`],
//!   [`Hamming74`] and [`CrcFramed`] packets.
//!
//! [`pipeline::calibrate`] learns the receiver's decision parameters
//! against a concrete defense, and [`pipeline::transmit_message`] runs
//! the full round trip inside the simulator, reporting BER, capacity,
//! sync diagnostics and defense counters.
//!
//! ## Example: Hamming-coded OOK over PRAC, found by the synchronizer
//!
//! ```
//! use lh_defenses::DefenseKind;
//! use lh_link::{calibrate, transmit_message, Hamming74, LinkConfig, OnOffKeying};
//!
//! let cfg = LinkConfig::against(DefenseKind::Prac, 256, 7);
//! let cal = calibrate(&cfg, &OnOffKeying, 4);
//! let msg = lh_analysis::bits_of_str("A");
//! let out = transmit_message(&cfg, &OnOffKeying, &Hamming74, &cal, &msg);
//! assert!(out.alignment.locked());
//! assert_eq!(out.decoded, msg);
//! ```
//!
//! [`WindowObservation`]: lh_attacks::WindowObservation

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codec;
pub mod modem;
pub mod pipeline;
pub mod sync;

pub use codec::{crc8, flip_bits, Codec, CrcFramed, Decoded, Hamming74, Plain, Repetition};
pub use modem::{Calibration, Modulator, MultiLevelAmplitude, OnOffKeying, PulsePosition};
pub use pipeline::{
    calibrate, transmit_message, transmit_payload, transmit_windows, LinkConfig, LinkOutcome,
    LinkTuning, PayloadOutcome, WireOutcome,
};
pub use sync::{Alignment, PreambleSync};
