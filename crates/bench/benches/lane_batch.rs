//! Lane-batch bench: an 8-lane fig13-shaped batch (one decoded trace,
//! one wake heap, batched controller service) against the same eight
//! cells run the pre-lane way — eight sequential single-lane systems,
//! each re-decoding its own trace on the legacy service path.
//!
//! Both sides simulate the identical eight `(defense, NRH)` cells of
//! one quick-scale four-core mix, so the printed `speedup` line is the
//! honest per-sweep win. Measured on the development container it sits
//! around 1.5×: the shared decode eliminates all redundant trace work
//! and the batched controller service (verdict carry-over plus the
//! arrival fast path) absorbs roughly half of all scheduler wakes, but
//! the remaining full FR-FCFS scans dominate the wall clock, so the
//! sweep does not approach the 3× that pure decode amortization would
//! suggest.

use std::sync::Arc;
use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lh_defenses::{DefenseConfig, DefenseKind};
use lh_dram::{DramTiming, Span, Time};
use lh_memctrl::AddressMapping;
use lh_sim::{LaneBatch, SimConfig, SystemBuilder};
use lh_workloads::{four_core_mixes, AppProfile, SharedTrace, SyntheticApp, TraceReplay};

const SIM_SEED: u64 = 3;
const SPAN_US: u64 = 150; // quick-scale fig13 span

/// Eight fig13-shaped cells: every figure-13 defense, ladder of NRHs.
fn cells() -> [(DefenseKind, u32); 8] {
    [
        (DefenseKind::Prac, 1024),
        (DefenseKind::Prac, 256),
        (DefenseKind::Prfm, 512),
        (DefenseKind::Prfm, 128),
        (DefenseKind::PracRiac, 256),
        (DefenseKind::FrRfm, 512),
        (DefenseKind::FrRfm, 128),
        (DefenseKind::PracBank, 1024),
    ]
}

fn mix() -> Vec<AppProfile> {
    four_core_mixes(2, 1)[0].to_vec()
}

fn defense_cfg(defense: DefenseKind, nrh: u32) -> DefenseConfig {
    DefenseConfig::for_threshold(defense, nrh, &DramTiming::ddr5_4800())
}

/// One cell the pre-lane way: its own system on the legacy service
/// path, its own [`SyntheticApp`] decode. Returns total instructions
/// (consumed via `black_box` so nothing is optimized away).
fn run_sequential_cell(mix: &[AppProfile], defense: DefenseKind, nrh: u32) -> u64 {
    let mut sys = SystemBuilder::new(defense_cfg(defense, nrh))
        .seed(SIM_SEED)
        .disturb_tracking(false)
        .build()
        .expect("valid configuration");
    let mapping: AddressMapping = *sys.mapping();
    let end = Time::ZERO + Span::from_us(SPAN_US);
    let mut pids = Vec::new();
    for (i, profile) in mix.iter().enumerate() {
        let app = SyntheticApp::new(profile.clone(), mapping, SIM_SEED ^ (i as u64 * 31), end);
        let mlp = app.mlp();
        pids.push(sys.add_process(Box::new(app), mlp, Time::ZERO));
    }
    sys.run_until(end + Span::from_us(5));
    pids.iter()
        .map(|&pid| {
            sys.process_as::<SyntheticApp>(pid)
                .expect("app present")
                .instructions()
        })
        .sum()
}

fn run_sequential(mix: &[AppProfile]) -> u64 {
    cells()
        .iter()
        .map(|&(d, n)| run_sequential_cell(mix, d, n))
        .sum()
}

/// All eight cells as one lane batch over one decoded trace.
fn run_lane_batch(mix: &[AppProfile]) -> u64 {
    let sim = SimConfig::paper_default(DefenseConfig::none());
    let mapping = AddressMapping::new(sim.mapping, sim.device.geometry);
    let seeds: Vec<u64> = (0..mix.len()).map(|i| SIM_SEED ^ (i as u64 * 31)).collect();
    let trace = SharedTrace::decode(mix.to_vec(), mapping, &seeds);
    let end = Time::ZERO + Span::from_us(SPAN_US);
    let horizon = end + Span::from_us(5);
    let mut batch = LaneBatch::new();
    let mut lane_pids = Vec::new();
    for (d, n) in cells() {
        let builder = SystemBuilder::new(defense_cfg(d, n))
            .seed(SIM_SEED)
            .disturb_tracking(false);
        let lane = batch
            .push_lane(builder, horizon)
            .expect("valid configuration");
        let pids: Vec<_> = (0..trace.cores())
            .map(|core| {
                let replay = TraceReplay::new(Arc::clone(&trace), core, end);
                let mlp = replay.mlp();
                batch
                    .lane_mut(lane)
                    .add_process(Box::new(replay), mlp, Time::ZERO)
            })
            .collect();
        lane_pids.push((lane, pids));
    }
    batch.run();
    lane_pids
        .iter()
        .map(|(lane, pids)| {
            pids.iter()
                .map(|&pid| {
                    batch
                        .lane(*lane)
                        .process_as::<TraceReplay>(pid)
                        .expect("replay present")
                        .instructions()
                })
                .sum::<u64>()
        })
        .sum()
}

fn bench(c: &mut Criterion) {
    let mix = mix();

    // The two sides must agree on what they simulated — the batch is an
    // engine, not an approximation.
    assert_eq!(run_sequential(&mix), run_lane_batch(&mix));

    let mut g = c.benchmark_group("lane_batch");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(15));
    g.bench_function("sequential_8x1_quick", |b| {
        b.iter(|| black_box(run_sequential(&mix)))
    });
    g.bench_function("lane_batch_8_quick", |b| {
        b.iter(|| black_box(run_lane_batch(&mix)))
    });
    g.finish();

    // Advisory speedup line (min-of-3 per side); ~1.5× on the
    // development container, see the module docs for why.
    let min_of = |f: &dyn Fn() -> u64| {
        (0..3)
            .map(|_| {
                let t = Instant::now();
                black_box(f());
                t.elapsed()
            })
            .min()
            .expect("three samples")
    };
    let seq = min_of(&|| run_sequential(&mix));
    let lane = min_of(&|| run_lane_batch(&mix));
    println!(
        "lane_batch speedup: {:.2}x (sequential {seq:.3?} vs lane batch {lane:.3?})",
        seq.as_secs_f64() / lane.as_secs_f64()
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
