//! End-to-end acceptance for the resident experiment service: a real
//! `lh-serve` server on a loopback socket, driven through the bundled
//! HTTP client. The load-bearing assertion is the determinism
//! boundary — an envelope fetched over HTTP is byte-identical to the
//! one `lh-experiments <id> --format json` prints for the same scale
//! and seed — plus the volatile side: `/metrics` exposes registry
//! totals, histogram families, and fleet telemetry, and the run stream
//! tails live NDJSON events stamped with wall-clock `ts_ms`.

use std::io::BufRead;
use std::time::{Duration, Instant};

use lh_harness::json::parse;
use lh_harness::sink;
use lh_harness::{JobContext, OutputFormat, Runner, RunnerOptions, ScaleLevel};
use lh_serve::{client, ServeOptions, Server, ThreadSpawner};

/// Binds a service on an ephemeral loopback port with an in-process
/// thread fleet and returns its base URL.
fn start_server() -> String {
    let server = Server::bind(
        "127.0.0.1:0",
        Box::new(ThreadSpawner::new(leakyhammer::registry)),
        leakyhammer::registry,
        ServeOptions {
            workers: 2,
            cache: None,
        },
    )
    .expect("bind loopback");
    let addr = server.addr().expect("bound addr");
    std::thread::spawn(move || server.run());
    format!("http://{addr}")
}

/// Polls `GET /runs/<id>` until the run leaves the queued/running
/// phases, returning its final status document.
fn wait_done(base: &str, id: u64) -> lh_harness::json::Json {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let response = client::get(&format!("{base}/runs/{id}")).expect("poll status");
        assert_eq!(response.status, 200, "{}", response.text());
        let status = parse(&response.text()).expect("status is JSON");
        match status["status"].as_str() {
            Some("queued" | "running") => {
                assert!(Instant::now() < deadline, "run {id} never finished");
                std::thread::sleep(Duration::from_millis(50));
            }
            _ => return status,
        }
    }
}

#[test]
fn http_submitted_envelope_is_byte_identical_to_the_cli_path() {
    let base = start_server();

    let response = client::post(
        &format!("{base}/runs"),
        br#"{"experiment": "fig2", "scale": "quick", "seed": 11}"#,
    )
    .expect("submit");
    assert_eq!(response.status, 202, "{}", response.text());
    let id = parse(&response.text()).expect("submit reply is JSON")["id"]
        .as_u64()
        .expect("submit reply carries the run id");

    // Too early for an envelope: the service answers 409, not garbage.
    let early = client::get(&format!("{base}/runs/{id}/envelope")).expect("early fetch");
    assert!(
        early.status == 409 || early.status == 200,
        "unfinished envelope must 409 (or 200 if the run already won the race): {}",
        early.status
    );

    let status = wait_done(&base, id);
    assert_eq!(status["status"].as_str(), Some("done"), "{status}");
    assert!(
        status["fleet"]["workers"].as_array().len() >= 2,
        "status carries a fleet snapshot: {status}"
    );

    let served = client::get(&format!("{base}/runs/{id}/envelope")).expect("fetch envelope");
    assert_eq!(served.status, 200);

    // The reference bytes: the exact CLI path (`--format json`).
    let registry = leakyhammer::registry();
    let job = registry.get("fig2").expect("fig2 registered");
    let ctx = JobContext::new(ScaleLevel::Quick, 11);
    let run = Runner::new(RunnerOptions::default())
        .run(job, &ctx)
        .expect("reference run");
    let reference = sink::render(job, &run, &ctx, OutputFormat::Json);
    assert_eq!(
        served.text(),
        reference,
        "HTTP-served envelope must be byte-identical to the CLI's --format json output"
    );

    // The deterministic envelope carries the histogram block.
    let envelope = parse(&served.text()).expect("envelope is JSON");
    assert!(
        envelope["metrics"]["histograms"]["sim.queue_wait"]["count"]
            .as_u64()
            .unwrap_or(0)
            > 0,
        "envelope metrics must include merged histograms"
    );
}

#[test]
fn metrics_page_exposes_totals_histograms_and_fleet_telemetry() {
    let base = start_server();

    let response = client::post(
        &format!("{base}/runs"),
        br#"{"experiment": "fig2", "scale": "quick", "seed": 7}"#,
    )
    .expect("submit");
    assert_eq!(response.status, 202, "{}", response.text());
    let id = parse(&response.text()).expect("submit reply is JSON")["id"]
        .as_u64()
        .expect("run id");
    wait_done(&base, id);

    let page = client::get(&format!("{base}/metrics")).expect("scrape");
    assert_eq!(page.status, 200);
    let text = page.text();
    for needle in [
        "# TYPE lh_units_absorbed counter",
        "lh_sim_service_wakes",
        "# TYPE lh_sim_queue_wait histogram",
        "lh_sim_queue_wait_bucket{le=\"",
        "lh_sim_queue_wait_sum",
        "lh_sim_queue_wait_count",
        "# TYPE lh_fleet_workers_alive gauge",
        "lh_fleet_workers_spawned",
        "lh_fleet_worker_units_done{worker=\"0\"}",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
}

#[test]
fn stream_tails_ndjson_events_with_wall_clock_stamps() {
    let base = start_server();

    let response = client::post(
        &format!("{base}/runs"),
        br#"{"experiment": "fig2", "scale": "quick", "seed": 3}"#,
    )
    .expect("submit");
    assert_eq!(response.status, 202, "{}", response.text());
    let id = parse(&response.text()).expect("submit reply is JSON")["id"]
        .as_u64()
        .expect("run id");

    // Attach immediately: the stream replays anything already recorded
    // and then follows live until the run finishes.
    let (status, reader) =
        client::get_stream(&format!("{base}/runs/{id}/stream")).expect("attach stream");
    assert_eq!(status, 200);
    let mut kinds = Vec::new();
    for line in reader.lines() {
        let line = line.expect("stream line");
        if line.is_empty() {
            continue;
        }
        let event = parse(&line).unwrap_or_else(|e| panic!("bad NDJSON {e}: {line}"));
        assert!(
            event["ts_ms"].as_u64().is_some(),
            "every stream line is wall-clock stamped: {line}"
        );
        kinds.push(event["event"].as_str().unwrap_or("?").to_owned());
    }
    assert_eq!(
        kinds.first().map(String::as_str),
        Some("started"),
        "{kinds:?}"
    );
    assert_eq!(
        kinds.last().map(String::as_str),
        Some("finished"),
        "{kinds:?}"
    );
    assert!(
        kinds.iter().filter(|k| *k == "unit").count() > 0,
        "stream carries unit completions: {kinds:?}"
    );
}

#[test]
fn submission_errors_are_structured() {
    let base = start_server();

    let missing = client::post(&format!("{base}/runs"), b"{}").expect("post");
    assert_eq!(missing.status, 400, "{}", missing.text());

    let unknown =
        client::post(&format!("{base}/runs"), br#"{"experiment": "fig99"}"#).expect("post");
    assert_eq!(unknown.status, 404, "{}", unknown.text());
    assert!(unknown.text().contains("unknown experiment"));

    let bad_scale = client::post(
        &format!("{base}/runs"),
        br#"{"experiment": "fig2", "scale": "enormous"}"#,
    )
    .expect("post");
    assert_eq!(bad_scale.status, 400, "{}", bad_scale.text());

    let gone = client::get(&format!("{base}/runs/999")).expect("get");
    assert_eq!(gone.status, 404, "{}", gone.text());

    let health = client::get(&format!("{base}/healthz")).expect("get");
    assert_eq!(health.status, 200);
    let health_doc = parse(&health.text()).expect("healthz is JSON");
    assert_eq!(health_doc["status"].as_str(), Some("ok"), "{health_doc}");
    assert!(
        health_doc["uptime_ms"].as_u64().is_some(),
        "healthz reports uptime: {health_doc}"
    );
    assert!(
        health_doc["workers_alive"].as_u64().is_some(),
        "healthz reports fleet liveness: {health_doc}"
    );
}

#[test]
fn version_reports_the_binary_fingerprint() {
    let base = start_server();
    let version = client::get(&format!("{base}/version")).expect("get");
    assert_eq!(version.status, 200);
    let doc = parse(&version.text()).expect("version is JSON");
    assert_eq!(doc["service"].as_str(), Some("lh-serve"), "{doc}");
    assert!(doc["version"].as_str().is_some(), "{doc}");
    assert!(doc["protocol"].as_u64().is_some(), "{doc}");
    let digest = doc["registry"].as_str().unwrap_or("");
    assert!(
        !digest.is_empty(),
        "version carries the registry digest: {doc}"
    );

    // The digest is a pure function of the registered jobs, so a second
    // service over the same registry reports the same identity.
    let other = start_server();
    let again = client::get(&format!("{other}/version")).expect("get");
    let again_doc = parse(&again.text()).expect("version is JSON");
    assert_eq!(again_doc["registry"].as_str(), Some(digest), "{again_doc}");
}

#[test]
fn flight_events_are_served_per_run_when_requested() {
    let base = start_server();

    // A run submitted without events: the endpoint 404s rather than
    // serving an empty log.
    let plain = client::post(
        &format!("{base}/runs"),
        br#"{"experiment": "fig2", "scale": "quick", "seed": 5}"#,
    )
    .expect("submit");
    assert_eq!(plain.status, 202, "{}", plain.text());
    let plain_id = parse(&plain.text()).expect("submit reply")["id"]
        .as_u64()
        .expect("run id");
    let status = wait_done(&base, plain_id);
    assert_eq!(status["flight"].as_bool(), Some(false), "{status}");
    let none = client::get(&format!("{base}/runs/{plain_id}/events")).expect("get");
    assert_eq!(none.status, 404, "{}", none.text());

    // The same submission with "events": true serves the flight log.
    let recorded = client::post(
        &format!("{base}/runs"),
        br#"{"experiment": "fig2", "scale": "quick", "seed": 5, "events": true}"#,
    )
    .expect("submit");
    assert_eq!(recorded.status, 202, "{}", recorded.text());
    let id = parse(&recorded.text()).expect("submit reply")["id"]
        .as_u64()
        .expect("run id");
    let status = wait_done(&base, id);
    assert_eq!(status["status"].as_str(), Some("done"), "{status}");
    assert_eq!(status["flight"].as_bool(), Some(true), "{status}");

    let events = client::get(&format!("{base}/runs/{id}/events")).expect("get");
    assert_eq!(events.status, 200, "{}", events.text());
    let log = events.text();
    let first = log.lines().next().expect("log has a header");
    let header = parse(first).expect("header is JSON");
    assert_eq!(header["kind"].as_str(), Some("experiment"), "{first}");
    assert_eq!(header["experiment"].as_str(), Some("fig2"), "{first}");
    assert!(
        log.contains("\"kind\":\"unit\""),
        "per-unit headers present"
    );
    assert!(log.contains("\"kind\":\"cmd\""), "DRAM commands recorded");
    for line in log.lines() {
        parse(line).unwrap_or_else(|e| panic!("bad event NDJSON {e}: {line}"));
    }

    // The recording run's envelope stays byte-identical to a plain
    // run's: flight events ride beside results, never inside them.
    let with = client::get(&format!("{base}/runs/{id}/envelope")).expect("get");
    let without = client::get(&format!("{base}/runs/{plain_id}/envelope")).expect("get");
    assert_eq!(with.text(), without.text());
}
