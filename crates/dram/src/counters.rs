//! Per-row activation counters (the PRAC counter array).
//!
//! The device always maintains per-row activation counts: PRAC reads them
//! to decide when to assert ABO, preventive refreshes reset them, and the
//! security tests use them as ground truth. Counters are stored sparsely
//! (hash map per bank) because workloads touch a small fraction of the
//! 4 M+ rows of a channel.
//!
//! [`CounterInit`] selects the (re)initialization policy, which is how the
//! RIAC countermeasure (§11.2 of the paper) is expressed: counters start at
//! — and reset to — uniformly random values instead of zero.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Counter (re)initialization policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CounterInit {
    /// Counters start at zero (plain PRAC).
    Zero,
    /// Counters start at a uniformly random value in `0..max`
    /// (the RIAC countermeasure). New random values are drawn at boot
    /// (lazily, per row) and after every preventive refresh.
    Uniform {
        /// Exclusive upper bound of the random initial value; RIAC uses
        /// the back-off threshold `NBO`.
        max: u32,
    },
}

impl CounterInit {
    fn value(self, seed: u64, bank: usize, row: u32, nonce: u64) -> u32 {
        match self {
            CounterInit::Zero => 0,
            CounterInit::Uniform { max } => {
                let max = max.max(1);
                let h = splitmix64(
                    seed ^ (bank as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        ^ (row as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9)
                        ^ nonce.wrapping_mul(0x94d0_49bb_1331_11eb),
                );
                (h % max as u64) as u32
            }
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Sparse per-row activation counter array for one channel.
///
/// # Examples
///
/// ```
/// use lh_dram::{CounterInit, RowCounters};
///
/// let mut c = RowCounters::new(4, CounterInit::Zero, 7);
/// assert_eq!(c.increment(0, 100), 1);
/// assert_eq!(c.increment(0, 100), 2);
/// c.reset(0, 100);
/// assert_eq!(c.value(0, 100), 0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RowCounters {
    banks: Vec<HashMap<u32, u32>>,
    init: CounterInit,
    seed: u64,
    reset_nonce: u64,
}

impl RowCounters {
    /// Creates counters for `num_banks` banks with the given init policy.
    pub fn new(num_banks: usize, init: CounterInit, seed: u64) -> RowCounters {
        RowCounters {
            banks: vec![HashMap::new(); num_banks],
            init,
            seed,
            reset_nonce: 0,
        }
    }

    /// The configured initialization policy.
    pub fn init_policy(&self) -> CounterInit {
        self.init
    }

    /// Current counter value of `(bank, row)` (lazily initialized).
    pub fn value(&self, bank: usize, row: u32) -> u32 {
        self.banks[bank]
            .get(&row)
            .copied()
            .unwrap_or_else(|| self.init.value(self.seed, bank, row, 0))
    }

    /// Increments the counter of `(bank, row)` and returns the new value.
    pub fn increment(&mut self, bank: usize, row: u32) -> u32 {
        let init = self.init;
        let seed = self.seed;
        let e = self.banks[bank]
            .entry(row)
            .or_insert_with(|| init.value(seed, bank, row, 0));
        *e = e.saturating_add(1);
        *e
    }

    /// Resets the counter of `(bank, row)` to a fresh initial value
    /// (zero, or a new random draw for [`CounterInit::Uniform`]).
    pub fn reset(&mut self, bank: usize, row: u32) {
        self.reset_nonce += 1;
        let v = self.init.value(self.seed, bank, row, self.reset_nonce);
        self.banks[bank].insert(row, v);
    }

    /// The row with the highest counter in `bank`, if any row was touched.
    pub fn top_row(&self, bank: usize) -> Option<(u32, u32)> {
        self.banks[bank]
            .iter()
            .max_by_key(|&(row, count)| (*count, core::cmp::Reverse(*row)))
            .map(|(&row, &count)| (row, count))
    }

    /// The `k` highest (bank, row, count) triples across `banks`.
    ///
    /// Ties break towards lower bank / row indices so results are
    /// deterministic.
    pub fn top_rows_in(&self, banks: &[usize], k: usize) -> Vec<(usize, u32, u32)> {
        let mut all: Vec<(usize, u32, u32)> = Vec::new();
        for &b in banks {
            for (&row, &count) in &self.banks[b] {
                all.push((b, row, count));
            }
        }
        all.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
        all.truncate(k);
        all
    }

    /// Number of rows with materialized counters in `bank`.
    pub fn touched_rows(&self, bank: usize) -> usize {
        self.banks[bank].len()
    }

    /// The maximum counter value across the whole channel (0 if untouched).
    pub fn max_value(&self) -> u32 {
        self.banks
            .iter()
            .flat_map(|b| b.values())
            .copied()
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_init_counts_from_zero() {
        let mut c = RowCounters::new(2, CounterInit::Zero, 1);
        assert_eq!(c.value(0, 5), 0);
        assert_eq!(c.increment(0, 5), 1);
        assert_eq!(c.increment(0, 5), 2);
        assert_eq!(c.value(1, 5), 0, "banks are independent");
    }

    #[test]
    fn uniform_init_is_deterministic_and_bounded() {
        let c1 = RowCounters::new(2, CounterInit::Uniform { max: 128 }, 42);
        let c2 = RowCounters::new(2, CounterInit::Uniform { max: 128 }, 42);
        for row in 0..200 {
            let v = c1.value(0, row);
            assert!(v < 128);
            assert_eq!(v, c2.value(0, row), "same seed, same init");
        }
        let c3 = RowCounters::new(2, CounterInit::Uniform { max: 128 }, 43);
        let differs = (0..200).any(|row| c1.value(0, row) != c3.value(0, row));
        assert!(differs, "different seeds should differ somewhere");
    }

    #[test]
    fn uniform_values_are_spread_out() {
        let c = RowCounters::new(1, CounterInit::Uniform { max: 128 }, 9);
        let mean: f64 = (0..1000).map(|row| c.value(0, row) as f64).sum::<f64>() / 1000.0;
        assert!((40.0..90.0).contains(&mean), "mean {mean} not near 63.5");
    }

    #[test]
    fn reset_redraws_random_values() {
        let mut c = RowCounters::new(1, CounterInit::Uniform { max: 1024 }, 5);
        let before = c.value(0, 7);
        let mut changed = false;
        for _ in 0..8 {
            c.reset(0, 7);
            if c.value(0, 7) != before {
                changed = true;
            }
        }
        assert!(changed, "reset should eventually draw a different value");
    }

    #[test]
    fn top_rows_ranks_by_count() {
        let mut c = RowCounters::new(2, CounterInit::Zero, 0);
        for _ in 0..5 {
            c.increment(0, 10);
        }
        for _ in 0..9 {
            c.increment(1, 20);
        }
        for _ in 0..2 {
            c.increment(0, 30);
        }
        let top = c.top_rows_in(&[0, 1], 2);
        assert_eq!(top, vec![(1, 20, 9), (0, 10, 5)]);
        assert_eq!(c.top_row(0), Some((10, 5)));
        assert_eq!(c.max_value(), 9);
    }

    #[test]
    fn saturating_increment_never_overflows() {
        let mut c = RowCounters::new(1, CounterInit::Zero, 0);
        c.banks[0].insert(1, u32::MAX - 1);
        assert_eq!(c.increment(0, 1), u32::MAX);
        assert_eq!(c.increment(0, 1), u32::MAX);
    }
}
