//! Table 2 bench: 10-fold decision-tree cross-validation.

use criterion::{criterion_group, criterion_main, Criterion};
use lh_bench::experiment::fingerprint::{collect_dataset, run_table2, to_dataset, CollectOptions};
use lh_bench::Scale;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_cv");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(5));
    let mut opts = CollectOptions::for_scale(Scale::Quick, 11);
    opts.sites = 3;
    opts.traces_per_site = 10; // 10-fold CV needs 10 traces per class
    let data = to_dataset(&collect_dataset(&opts));
    g.bench_function("tree_10fold", |b| b.iter(|| run_table2(&data, 5)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
