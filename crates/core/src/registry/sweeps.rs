//! Adapters for the sweep experiments: noise sweeps (Figs. 4/7/11),
//! application-interference sweeps (Figs. 5/8) and the
//! preventive-action latency sweep (Fig. 12). Every sweep point is one
//! harness unit, so the whole figure shards across cores.

use lh_harness::{Job, JobContext, Json};

use crate::experiment::app_noise;
use crate::experiment::covert::ChannelKind;
use crate::experiment::latency_sweep;
use crate::experiment::noise_sweep;
use crate::registry::{num, scale_of, sim_fingerprint, text};
use crate::report;

use lh_workloads::Intensity;

fn noise_point_json(p: &noise_sweep::NoisePoint) -> Json {
    Json::object()
        .with("intensity", p.intensity)
        .with("error_probability", p.error_probability)
        .with("capacity_kbps", p.capacity_kbps)
}

fn noise_table(points: &[Json]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}", num(p, "intensity")),
                format!("{:.3}", num(p, "error_probability")),
                format!("{:.1}", num(p, "capacity_kbps")),
            ]
        })
        .collect();
    report::table(&["noise %", "error prob", "capacity Kbps"], &rows)
}

/// Figs. 4 and 7: covert-channel capacity vs noise intensity.
pub(crate) struct NoiseSweepJob {
    kind: ChannelKind,
    id: &'static str,
    desc: &'static str,
}

impl NoiseSweepJob {
    /// The Fig. 4 PRAC sweep.
    pub(crate) const PRAC: NoiseSweepJob = NoiseSweepJob {
        kind: ChannelKind::Prac,
        id: "fig4",
        desc: "PRAC covert channel vs noise intensity",
    };

    /// The Fig. 7 RFM sweep.
    pub(crate) const RFM: NoiseSweepJob = NoiseSweepJob {
        kind: ChannelKind::Rfm,
        id: "fig7",
        desc: "RFM covert channel vs noise intensity",
    };
}

impl Job for NoiseSweepJob {
    fn id(&self) -> &'static str {
        self.id
    }

    fn description(&self) -> &'static str {
        self.desc
    }

    fn units(&self, ctx: &JobContext) -> Vec<String> {
        scale_of(ctx)
            .noise_points()
            .iter()
            .map(|i| format!("noise:{i}"))
            .collect()
    }

    fn run_unit(&self, unit: usize, seed: u64, _deps: &[Json], ctx: &JobContext) -> Json {
        let scale = scale_of(ctx);
        let intensity = scale.noise_points()[unit];
        let p = noise_sweep::sweep_point(
            self.kind,
            4,
            true,
            intensity,
            scale.message_bits() / 4,
            seed,
        );
        noise_point_json(&p)
    }

    fn finish(&self, units: Vec<Json>, _ctx: &JobContext) -> Json {
        Json::object().with("points", Json::Array(units))
    }

    fn fingerprint(&self) -> String {
        sim_fingerprint()
    }

    fn render_text(&self, merged: &Json, _ctx: &JobContext) -> String {
        noise_table(merged["points"].as_array())
    }
}

/// Figs. 5 and 8: covert-channel capacity vs SPEC-like interference.
pub(crate) struct AppNoiseJob {
    kind: ChannelKind,
    id: &'static str,
    desc: &'static str,
}

impl AppNoiseJob {
    const LEVELS: [Intensity; 3] = [Intensity::Low, Intensity::Medium, Intensity::High];

    /// The Fig. 5 PRAC series.
    pub(crate) const PRAC: AppNoiseJob = AppNoiseJob {
        kind: ChannelKind::Prac,
        id: "fig5",
        desc: "PRAC covert channel vs SPEC-like interference",
    };

    /// The Fig. 8 RFM series.
    pub(crate) const RFM: AppNoiseJob = AppNoiseJob {
        kind: ChannelKind::Rfm,
        id: "fig8",
        desc: "RFM covert channel vs SPEC-like interference",
    };
}

impl Job for AppNoiseJob {
    fn id(&self) -> &'static str {
        self.id
    }

    fn description(&self) -> &'static str {
        self.desc
    }

    fn units(&self, _ctx: &JobContext) -> Vec<String> {
        Self::LEVELS
            .iter()
            .map(|l| format!("intensity:{}", l.label()))
            .collect()
    }

    fn run_unit(&self, unit: usize, seed: u64, _deps: &[Json], ctx: &JobContext) -> Json {
        let p = app_noise::app_noise_point(
            self.kind,
            Self::LEVELS[unit],
            scale_of(ctx).message_bits() / 4,
            seed,
        );
        Json::object()
            .with("intensity", p.intensity.label())
            .with("error_probability", p.error_probability)
            .with("capacity_kbps", p.capacity_kbps)
    }

    fn finish(&self, units: Vec<Json>, _ctx: &JobContext) -> Json {
        Json::object().with("points", Json::Array(units))
    }

    fn fingerprint(&self) -> String {
        sim_fingerprint()
    }

    fn render_text(&self, merged: &Json, _ctx: &JobContext) -> String {
        let rows: Vec<Vec<String>> = merged["points"]
            .as_array()
            .iter()
            .map(|p| {
                vec![
                    text(p, "intensity"),
                    format!("{:.3}", num(p, "error_probability")),
                    format!("{:.1}", num(p, "capacity_kbps")),
                ]
            })
            .collect();
        report::table(&["intensity", "error prob", "capacity Kbps"], &rows)
    }
}

/// Fig. 11: 2-RFM / 1-RFM back-offs vs noise, plus the §10.1 modified
/// (cadence-filtered) 1-RFM attack.
pub(crate) struct RfmCountJob;

/// The three Fig. 11 panels.
const PANELS: [(&str, &str); 3] = [
    ("2rfm", "--- 2 RFM(s) per back-off ---"),
    ("1rfm", "--- 1 RFM(s) per back-off ---"),
    (
        "1rfm-filtered",
        "--- 1 RFM, sec. 10.1 modified attack (cadence-filtered) ---",
    ),
];

impl Job for RfmCountJob {
    fn id(&self) -> &'static str {
        "fig11"
    }

    fn description(&self) -> &'static str {
        "2-RFM / 1-RFM back-offs vs noise"
    }

    fn units(&self, ctx: &JobContext) -> Vec<String> {
        let points = scale_of(ctx).noise_points();
        PANELS
            .iter()
            .flat_map(|(panel, _)| points.iter().map(move |i| format!("{panel}:noise:{i}")))
            .collect()
    }

    fn run_unit(&self, unit: usize, seed: u64, _deps: &[Json], ctx: &JobContext) -> Json {
        let scale = scale_of(ctx);
        let points = scale.noise_points();
        let (panel, _) = PANELS[unit / points.len()];
        let intensity = points[unit % points.len()];
        let p = match panel {
            "2rfm" => noise_sweep::sweep_point(
                ChannelKind::Prac,
                2,
                false,
                intensity,
                scale.message_bits() / 4,
                seed,
            ),
            "1rfm" => noise_sweep::sweep_point(
                ChannelKind::Prac,
                1,
                false,
                intensity,
                scale.message_bits() / 4,
                seed,
            ),
            _ => noise_sweep::overlap_1rfm_point(true, intensity, scale.message_bits() / 8, seed),
        };
        noise_point_json(&p).with("panel", panel)
    }

    fn finish(&self, units: Vec<Json>, _ctx: &JobContext) -> Json {
        Json::object().with("points", Json::Array(units))
    }

    fn fingerprint(&self) -> String {
        sim_fingerprint()
    }

    fn render_text(&self, merged: &Json, _ctx: &JobContext) -> String {
        let mut s = String::new();
        for (panel, heading) in PANELS {
            let points: Vec<Json> = merged["points"]
                .as_array()
                .iter()
                .filter(|p| p["panel"].as_str() == Some(panel))
                .cloned()
                .collect();
            s.push_str(heading);
            s.push('\n');
            s.push_str(&noise_table(&points));
        }
        s
    }
}

/// Fig. 12: capacity vs preventive-action latency.
pub(crate) struct LatencySweepJob;

impl Job for LatencySweepJob {
    fn id(&self) -> &'static str {
        "fig12"
    }

    fn description(&self) -> &'static str {
        "capacity vs preventive-action latency"
    }

    fn units(&self, _ctx: &JobContext) -> Vec<String> {
        latency_sweep::paper_grid()
            .iter()
            .map(|ns| format!("action:{ns}ns"))
            .collect()
    }

    fn run_unit(&self, unit: usize, seed: u64, _deps: &[Json], ctx: &JobContext) -> Json {
        let lat = latency_sweep::paper_grid()[unit];
        let p = latency_sweep::latency_sweep_point(lat, scale_of(ctx).message_bits() / 8, seed);
        Json::object()
            .with("action_latency_ns", p.action_latency_ns)
            .with("error_probability", p.error_probability)
            .with("capacity_kbps", p.capacity_kbps)
    }

    fn finish(&self, units: Vec<Json>, _ctx: &JobContext) -> Json {
        Json::object().with("points", Json::Array(units))
    }

    fn fingerprint(&self) -> String {
        sim_fingerprint()
    }

    fn render_text(&self, merged: &Json, _ctx: &JobContext) -> String {
        let rows: Vec<Vec<String>> = merged["points"]
            .as_array()
            .iter()
            .map(|p| {
                vec![
                    p["action_latency_ns"].as_u64().unwrap_or(0).to_string(),
                    format!("{:.3}", num(p, "error_probability")),
                    format!("{:.1}", num(p, "capacity_kbps")),
                ]
            })
            .collect();
        report::table(&["action ns", "error prob", "capacity Kbps"], &rows)
    }
}
