//! Decode-once shared access traces.
//!
//! A [`SyntheticApp`]'s access stream — the `(address, is_write)`
//! sequence — is a pure function of its profile and seed: the RNG draws
//! do not depend on simulated time, only on the step index. Every cell
//! of a sweep that replays the same mix therefore re-derives the exact
//! same stream. [`SharedTrace`] decodes each core's stream once, lazily
//! and behind an `Arc`, and [`TraceReplay`] is a drop-in [`Process`]
//! that replays it step-for-step — byte-identical to running the
//! original app, for *any* co-runner timing, because the step index is
//! the only coupling.
//!
//! The `sim.trace.decodes` counter proves the memoization: it is
//! emitted once per *counted* decode ([`SharedTrace::decode`]), so a
//! sweep whose baselines and cells share one trace shows exactly one
//! decode per shared trace. [`SharedTrace::decode_uncounted`] builds
//! the identical trace without touching the counter — for fallback
//! paths whose attribution would otherwise depend on scheduling.

use std::sync::{Arc, Mutex};

use core::any::Any;

use lh_dram::Time;
use lh_memctrl::AddressMapping;
use lh_obs::Counter;
use lh_sim::{MemAccess, Process, ProcessStep};

use crate::spec::{AppProfile, SyntheticApp, INSTR_TIME};

/// Counted trace decodes (one per [`SharedTrace::decode`] call).
const TRACE_DECODES: Counter = Counter::new("sim.trace.decodes");

/// Lazy per-core stream generator: the original app stepped at a fixed
/// instant, with every produced access memoized by step index.
struct CoreGen {
    app: SyntheticApp,
    steps: Vec<(u64, bool)>,
}

/// A decode-once access trace for one multi-core mix.
///
/// Construction is cheap; each core's stream is generated on demand the
/// first time a step index is requested (under a per-core mutex, so
/// concurrent lanes of one process share the work) and memoized
/// forever after.
pub struct SharedTrace {
    profiles: Vec<AppProfile>,
    cores: Vec<Mutex<CoreGen>>,
}

impl std::fmt::Debug for SharedTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedTrace")
            .field("cores", &self.profiles.len())
            .finish()
    }
}

impl SharedTrace {
    /// Decodes the trace of one mix: core `i` replays `profiles[i]`
    /// seeded with `seeds[i]`. Emits one `sim.trace.decodes` tick —
    /// call this on the path that owns the trace (a sweep's baseline
    /// unit), so the counter proves cells stopped re-decoding.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` and `seeds` differ in length.
    pub fn decode(
        profiles: Vec<AppProfile>,
        mapping: AddressMapping,
        seeds: &[u64],
    ) -> Arc<SharedTrace> {
        TRACE_DECODES.incr();
        SharedTrace::decode_uncounted(profiles, mapping, seeds)
    }

    /// [`SharedTrace::decode`] without the obs tick — for fallback
    /// re-decodes whose unit attribution must stay byte-identical
    /// across execution modes.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` and `seeds` differ in length.
    pub fn decode_uncounted(
        profiles: Vec<AppProfile>,
        mapping: AddressMapping,
        seeds: &[u64],
    ) -> Arc<SharedTrace> {
        assert_eq!(profiles.len(), seeds.len(), "one seed per core");
        let cores = profiles
            .iter()
            .zip(seeds)
            .map(|(p, &seed)| {
                Mutex::new(CoreGen {
                    // `until` is a horizon the generator never reaches:
                    // the stream is unbounded and cut by each replay.
                    app: SyntheticApp::new(p.clone(), mapping, seed, Time::MAX),
                    steps: Vec::new(),
                })
            })
            .collect();
        Arc::new(SharedTrace { profiles, cores })
    }

    /// Number of cores (= profiles) in the trace.
    pub fn cores(&self) -> usize {
        self.profiles.len()
    }

    /// The profile replayed by `core`.
    pub fn profile(&self, core: usize) -> &AppProfile {
        &self.profiles[core]
    }

    /// The `(address, is_write)` of step `idx` on `core`, generating
    /// and memoizing the stream up to `idx` on first request.
    #[cfg(test)]
    fn step(&self, core: usize, idx: usize) -> (u64, bool) {
        let mut gen = self.cores[core].lock().expect("trace generator poisoned");
        while gen.steps.len() <= idx {
            // The generator app never halts (its horizon is `Time::MAX`)
            // and a SyntheticApp step is always an access.
            match gen.app.step(Time::ZERO) {
                ProcessStep::Access(a) => gen.steps.push((a.addr, a.write)),
                other => unreachable!("unbounded generator produced {other:?}"),
            }
        }
        gen.steps[idx]
    }

    /// Copies steps `[start, start + out.capacity())` of `core` into
    /// `out`, generating as needed — one lock acquisition per block
    /// instead of one per access, for replays that walk sequentially.
    fn steps_block(&self, core: usize, start: usize, out: &mut Vec<(u64, bool)>) {
        out.clear();
        let want = start + out.capacity().max(1);
        let mut gen = self.cores[core].lock().expect("trace generator poisoned");
        while gen.steps.len() < want {
            match gen.app.step(Time::ZERO) {
                ProcessStep::Access(a) => gen.steps.push((a.addr, a.write)),
                other => unreachable!("unbounded generator produced {other:?}"),
            }
        }
        out.extend_from_slice(&gen.steps[start..want]);
    }
}

/// A [`Process`] replaying one core of a [`SharedTrace`] — step-for-step
/// identical to the [`SyntheticApp`] the trace was decoded from.
#[derive(Debug, Clone)]
pub struct TraceReplay {
    trace: Arc<SharedTrace>,
    core: usize,
    until: Time,
    idx: usize,
    instructions: u64,
    halted_at: Option<Time>,
    /// Locally buffered steps `[buf_start, buf_start + buf.len())` of
    /// the shared stream, refilled a block at a time so steady-state
    /// replay stays off the generator mutex.
    buf: Vec<(u64, bool)>,
    buf_start: usize,
}

/// Steps fetched per generator-mutex acquisition by [`TraceReplay`].
const REPLAY_BLOCK: usize = 256;

impl TraceReplay {
    /// A replay of `trace`'s `core` running until `until` (the same
    /// horizon contract as [`SyntheticApp::new`]).
    pub fn new(trace: Arc<SharedTrace>, core: usize, until: Time) -> TraceReplay {
        TraceReplay {
            trace,
            core,
            until,
            idx: 0,
            instructions: 0,
            halted_at: None,
            buf: Vec::with_capacity(REPLAY_BLOCK),
            buf_start: 0,
        }
    }

    /// Instructions retired so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// When the replay halted, if it has.
    pub fn halted_at(&self) -> Option<Time> {
        self.halted_at
    }

    /// The replayed profile's memory-level parallelism (pass to
    /// [`lh_sim::System::add_process`]).
    pub fn mlp(&self) -> u32 {
        self.trace.profile(self.core).mlp
    }
}

impl Process for TraceReplay {
    fn step(&mut self, now: Time) -> ProcessStep {
        if now >= self.until {
            self.halted_at = self.halted_at.or(Some(now));
            return ProcessStep::Halt;
        }
        let profile = self.trace.profile(self.core);
        self.instructions += profile.instr_per_access;
        let think = INSTR_TIME * profile.instr_per_access;
        let blocking = profile.mlp <= 1;
        if self.idx >= self.buf_start + self.buf.len() {
            self.buf_start = self.idx;
            let (trace, core) = (&self.trace, self.core);
            trace.steps_block(core, self.idx, &mut self.buf);
        }
        let (addr, write) = self.buf[self.idx - self.buf_start];
        self.idx += 1;
        let access = if write {
            MemAccess::store_async(addr, think)
        } else {
            MemAccess {
                blocking,
                ..MemAccess::load_async(addr, think)
            }
        };
        ProcessStep::Access(access)
    }

    fn label(&self) -> String {
        self.trace.profile(self.core).name.clone()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Intensity;
    use lh_defenses::DefenseConfig;
    use lh_sim::SimConfig;

    fn mapping() -> AddressMapping {
        let cfg = SimConfig::paper_default(DefenseConfig::none());
        AddressMapping::new(cfg.mapping, cfg.device.geometry)
    }

    #[test]
    fn replay_reproduces_the_original_stream() {
        let profile = AppProfile::category(Intensity::High);
        let m = mapping();
        let trace = SharedTrace::decode_uncounted(vec![profile.clone()], m, &[42]);
        let mut replay = TraceReplay::new(trace, 0, Time::from_us(10));
        let mut app = SyntheticApp::new(profile, m, 42, Time::from_us(10));
        let mut t = Time::ZERO;
        for _ in 0..500 {
            let a = match app.step(t) {
                ProcessStep::Access(a) => a,
                other => panic!("{other:?}"),
            };
            let b = match replay.step(t) {
                ProcessStep::Access(b) => b,
                other => panic!("{other:?}"),
            };
            assert_eq!(
                (a.addr, a.write, a.think, a.blocking),
                (b.addr, b.write, b.think, b.blocking)
            );
            t += lh_dram::Span::from_ns(17);
        }
        assert_eq!(app.instructions(), replay.instructions());
        // Both halt at the horizon.
        t = Time::from_us(10);
        assert!(matches!(app.step(t), ProcessStep::Halt));
        assert!(matches!(replay.step(t), ProcessStep::Halt));
    }

    #[test]
    fn decode_ticks_the_counter_once_and_uncounted_never() {
        let profile = AppProfile::category(Intensity::Low);
        let m = mapping();
        let ((), metrics) = lh_obs::record(|| {
            let trace = SharedTrace::decode(vec![profile.clone()], m, &[7]);
            // Replays of the shared trace never re-decode.
            for _ in 0..3 {
                let mut r = TraceReplay::new(Arc::clone(&trace), 0, Time::from_us(1));
                for _ in 0..50 {
                    let _ = r.step(Time::ZERO);
                }
            }
            let _ = SharedTrace::decode_uncounted(vec![profile.clone()], m, &[7]);
        });
        assert_eq!(metrics.get("sim.trace.decodes"), 1);
    }

    #[test]
    fn lazy_generation_is_index_stable() {
        let profile = AppProfile::category(Intensity::Medium);
        let m = mapping();
        let a = SharedTrace::decode_uncounted(vec![profile.clone()], m, &[9]);
        let b = SharedTrace::decode_uncounted(vec![profile], m, &[9]);
        // Walk `a` far first, then compare early indices against `b`.
        let _ = a.step(0, 999);
        for i in 0..1000 {
            assert_eq!(a.step(0, i), b.step(0, i));
        }
    }
}
