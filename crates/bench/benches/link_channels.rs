//! Link-layer bench: one calibrated, preamble-synchronized OOK
//! transmission (repetition-coded) over PRAC — the hot path every
//! chansweep cell runs.

use criterion::{criterion_group, criterion_main, Criterion};
use lh_defenses::DefenseKind;
use lh_link::{calibrate, transmit_message, LinkConfig, OnOffKeying, Repetition};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("link_channels");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(10));
    let msg = lh_analysis::bits_of_str("LK");
    g.bench_function("ook_rep3_prac_2bytes", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let cfg = LinkConfig::against(DefenseKind::Prac, 128, seed);
            let cal = calibrate(&cfg, &OnOffKeying, 4);
            transmit_message(&cfg, &OnOffKeying, &Repetition::new(3), &cal, &msg)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
