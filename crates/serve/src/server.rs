//! The resident experiment service: one process owning a warm
//! [`DiskCache`] and a resident worker fleet, accepting jobs over
//! HTTP and keeping every envelope byte-identical to the CLI paths.
//!
//! ## Architecture
//!
//! One **executor thread** owns the [`Coordinator`] (and through it the
//! worker fleet and the shared cache) and drains a FIFO run queue —
//! runs execute one at a time, exactly like consecutive
//! `lh-experiments` invocations against the same cache directory, which
//! is what keeps the determinism contract trivially intact. HTTP
//! handler threads never touch the coordinator; they share:
//!
//! * the run table (`Arc<RunEntry>` per submission) — status, the
//!   accumulated NDJSON event lines, and the finished envelope bytes,
//!   all behind a mutex+condvar so stream followers tail live;
//! * the coordinator's [`FleetTelemetry`] handle — snapshots feed
//!   `/metrics`, run-status responses, and periodic `fleet` stream
//!   events while the fleet works.
//!
//! ## Determinism boundary
//!
//! The envelope served by `GET /runs/<id>/envelope` is byte-identical
//! to `lh-experiments <id> --format json` at the same scale/seed — it
//! flows through the same [`lh_harness::sink::render`]. Everything
//! else the service exposes (`ts_ms` stamps, fleet snapshots,
//! `/metrics`) is volatile wall-clock telemetry and is never folded
//! into envelopes or cache entries.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use lh_coord::{Coordinator, CoordinatorOptions, FleetTelemetry, SpawnWorker};
use lh_harness::cache::DiskCache;
use lh_harness::job::Registry;
use lh_harness::json::{parse, Json};
use lh_harness::sink;
use lh_harness::{JobContext, OutputFormat, ScaleLevel, UnitEvent, UnitObserver};

use crate::http::{read_request, respond, ChunkedWriter, Request};
use crate::prom;

/// How often a live `/runs/<id>/stream` follower receives a `fleet`
/// telemetry event while waiting for unit completions.
const FLEET_PERIOD: Duration = Duration::from_millis(500);

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Resident worker count handed to the coordinator.
    pub workers: usize,
    /// Shared result cache; `None` disables caching.
    pub cache: Option<DiskCache>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            workers: 2,
            cache: None,
        }
    }
}

/// Where a submitted run is in its lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
enum RunPhase {
    Queued,
    Running,
    Done,
    Failed(String),
}

impl RunPhase {
    fn as_str(&self) -> &'static str {
        match self {
            RunPhase::Queued => "queued",
            RunPhase::Running => "running",
            RunPhase::Done => "done",
            RunPhase::Failed(_) => "failed",
        }
    }
}

struct RunInner {
    phase: RunPhase,
    /// NDJSON event lines (`started`/`unit`/`finished`) in emission
    /// order; stream followers tail this.
    lines: Vec<String>,
    /// The finished envelope, pretty-printed plus trailing newline —
    /// the exact bytes `--format json` would print.
    envelope: Option<String>,
    /// The flight-event log, present once a run submitted with
    /// `"events": true` finishes — the exact bytes `--events-out`
    /// would write for the same experiment/scale/seed.
    events: Option<String>,
}

/// One submitted run: immutable identity plus mutexed progress state.
struct RunEntry {
    id: u64,
    experiment: String,
    scale: ScaleLevel,
    seed: u64,
    /// Whether the submission asked for flight-event recording.
    events: bool,
    inner: Mutex<RunInner>,
    cond: Condvar,
}

impl RunEntry {
    fn lock(&self) -> std::sync::MutexGuard<'_, RunInner> {
        self.inner.lock().expect("run entry poisoned")
    }

    fn push_line(&self, line: String) {
        self.lock().lines.push(line);
        self.cond.notify_all();
    }

    fn set_phase(&self, phase: RunPhase) {
        self.lock().phase = phase;
        self.cond.notify_all();
    }

    fn status_json(&self) -> Json {
        let inner = self.lock();
        let mut obj = Json::object()
            .with("id", self.id)
            .with("experiment", self.experiment.as_str())
            .with("scale", self.scale.as_str())
            .with("seed", self.seed)
            .with("status", inner.phase.as_str())
            .with("events", inner.lines.len())
            .with("flight", self.events);
        if let RunPhase::Failed(error) = &inner.phase {
            obj.set("error", error.as_str());
        }
        obj
    }
}

struct ServerState {
    runs: Mutex<Vec<Arc<RunEntry>>>,
    /// Hands queued entries to the executor thread. (`mpsc::Sender` is
    /// not `Sync`, hence the mutex.)
    queue: Mutex<mpsc::Sender<Arc<RunEntry>>>,
    telemetry: FleetTelemetry,
    /// `(id, description)` pairs for `/experiments` and submit-time
    /// validation.
    experiments: Vec<(String, String)>,
    /// When the service bound, for `/healthz` uptime.
    started: std::time::Instant,
    /// Combined digest of every registered job's id, version and code
    /// fingerprint — the `/version` identity of this binary's
    /// experiment surface (two services with equal digests produce
    /// byte-identical envelopes for equal submissions).
    registry_digest: String,
}

impl ServerState {
    fn run_by_id(&self, id: u64) -> Option<Arc<RunEntry>> {
        self.runs
            .lock()
            .expect("run table poisoned")
            .iter()
            .find(|r| r.id == id)
            .cloned()
    }
}

/// The resident experiment service, bound but not yet serving.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.listener.local_addr().ok())
            .finish()
    }
}

impl Server {
    /// Binds `addr` and starts the executor thread owning the resident
    /// coordinator. `make_registry` builds the executor's experiment
    /// registry (the same factory worker processes use, so job versions
    /// agree by construction).
    ///
    /// # Errors
    ///
    /// Socket binding failures and executor-thread spawn failures.
    pub fn bind(
        addr: impl ToSocketAddrs,
        spawner: Box<dyn SpawnWorker>,
        make_registry: impl Fn() -> Registry + Send + 'static,
        options: ServeOptions,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;

        // The coordinator is built here (so its telemetry handle can be
        // shared with HTTP threads) and moved into the executor thread,
        // which owns it for the lifetime of the service.
        let live: Arc<Mutex<Option<Arc<RunEntry>>>> = Arc::new(Mutex::new(None));
        let observer_live = Arc::clone(&live);
        let observer: UnitObserver = Arc::new(move |event: &UnitEvent| {
            if let Some(entry) = observer_live.lock().expect("live slot poisoned").as_ref() {
                entry.push_line(sink::stream_unit(event));
            }
        });
        let coordinator = Coordinator::new(
            spawner,
            CoordinatorOptions {
                workers: options.workers.max(1),
                cache: options.cache,
                progress: false,
                observer: Some(observer),
                ..CoordinatorOptions::default()
            },
        );
        let telemetry = coordinator.telemetry();

        let registry = make_registry();
        let experiments = registry
            .jobs()
            .map(|j| (j.id().to_owned(), j.description().to_owned()))
            .collect();
        let mut hasher = lh_harness::hash::Hasher::new();
        for job in registry.jobs() {
            hasher
                .field(job.id())
                .number(u64::from(job.version()))
                .field(&job.fingerprint());
        }
        let registry_digest = hasher.digest();

        let (queue_tx, queue_rx) = mpsc::channel::<Arc<RunEntry>>();
        std::thread::Builder::new()
            .name("lh-serve-executor".into())
            .spawn(move || executor(coordinator, registry, live, queue_rx))?;

        Ok(Server {
            listener,
            state: Arc::new(ServerState {
                runs: Mutex::new(Vec::new()),
                queue: Mutex::new(queue_tx),
                telemetry,
                experiments,
                started: std::time::Instant::now(),
                registry_digest,
            }),
        })
    }

    /// The bound socket address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Socket introspection failures.
    pub fn addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves forever: accepts connections and handles each on its own
    /// thread. Returns only if the listener itself fails.
    ///
    /// # Errors
    ///
    /// Accept-loop failures on the listening socket.
    pub fn run(self) -> io::Result<()> {
        for stream in self.listener.incoming() {
            let stream = stream?;
            let state = Arc::clone(&self.state);
            let _ = std::thread::Builder::new()
                .name("lh-serve-conn".into())
                .spawn(move || {
                    // Peer faults (hangups, garbage) end this
                    // connection only; the acceptor never sees them.
                    let _ = handle_connection(stream, &state);
                });
        }
        Ok(())
    }
}

/// The executor loop: drains the run queue into the resident
/// coordinator, one run at a time, recording stream lines and the
/// finished envelope on each entry.
fn executor(
    mut coordinator: Coordinator,
    registry: Registry,
    live: Arc<Mutex<Option<Arc<RunEntry>>>>,
    queue: mpsc::Receiver<Arc<RunEntry>>,
) {
    while let Ok(entry) = queue.recv() {
        let ctx = JobContext::new(entry.scale, entry.seed);
        let Some(job) = registry.get(&entry.experiment) else {
            entry.set_phase(RunPhase::Failed(format!(
                "unknown experiment '{}'",
                entry.experiment
            )));
            continue;
        };
        entry.set_phase(RunPhase::Running);
        entry.push_line(sink::stream_started(job, job.units(&ctx).len(), &ctx));
        *live.lock().expect("live slot poisoned") = Some(Arc::clone(&entry));
        // The flight switch is per run: the executor is the only thread
        // driving the coordinator, so flipping the process-global
        // recorder here scopes it to exactly this run's assignments.
        lh_obs::flight::set_enabled(entry.events);
        let outcome = coordinator.run(job, &ctx);
        lh_obs::flight::set_enabled(false);
        *live.lock().expect("live slot poisoned") = None;
        match outcome {
            Ok(run) => {
                entry.push_line(sink::stream_finished(job, &run, &ctx));
                let envelope = sink::render(job, &run, &ctx, OutputFormat::Json);
                let mut inner = entry.lock();
                inner.envelope = Some(envelope);
                inner.events = run.events;
                inner.phase = RunPhase::Done;
                drop(inner);
                entry.cond.notify_all();
            }
            Err(error) => entry.set_phase(RunPhase::Failed(error)),
        }
    }
    // Queue sender gone: the server was dropped. Retire the fleet.
    coordinator.shutdown();
}

fn json_response(stream: &mut TcpStream, status: u16, body: &Json) -> io::Result<()> {
    respond(
        stream,
        status,
        "application/json",
        (body.to_pretty() + "\n").as_bytes(),
    )
}

fn error_response(stream: &mut TcpStream, status: u16, message: &str) -> io::Result<()> {
    json_response(stream, status, &Json::object().with("error", message))
}

fn handle_connection(mut stream: TcpStream, state: &ServerState) -> io::Result<()> {
    let request = match read_request(&mut stream) {
        Ok(request) => request,
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            return error_response(&mut stream, 400, &e.to_string());
        }
        Err(e) => return Err(e),
    };

    let segments: Vec<&str> = request
        .path
        .split('?')
        .next()
        .unwrap_or("")
        .split('/')
        .filter(|s| !s.is_empty())
        .collect();

    match (request.method.as_str(), segments.as_slice()) {
        // Liveness first, depth nowhere: /healthz must answer 200 the
        // moment the socket is bound, even with the fleet mid-respawn —
        // it reports uptime and fleet health, it does not gate on them.
        ("GET", ["healthz"]) => {
            let snapshot = state.telemetry.snapshot();
            let alive = snapshot.workers.iter().filter(|w| w.alive).count();
            json_response(
                &mut stream,
                200,
                &Json::object()
                    .with("status", "ok")
                    .with("uptime_ms", state.started.elapsed().as_millis() as u64)
                    .with("workers_alive", alive),
            )
        }
        ("GET", ["version"]) => json_response(
            &mut stream,
            200,
            &Json::object()
                .with("service", "lh-serve")
                .with("version", env!("CARGO_PKG_VERSION"))
                .with("protocol", lh_coord::PROTOCOL_VERSION)
                .with("registry", state.registry_digest.as_str()),
        ),
        ("GET", ["metrics"]) => {
            let registry = lh_obs::Registry::global();
            let page = prom::render(
                &registry.totals(),
                registry.units_absorbed(),
                &state.telemetry.snapshot(),
            );
            respond(
                &mut stream,
                200,
                "text/plain; version=0.0.4",
                page.as_bytes(),
            )
        }
        ("GET", ["experiments"]) => {
            let list = state
                .experiments
                .iter()
                .map(|(id, description)| {
                    Json::object()
                        .with("id", id.as_str())
                        .with("description", description.as_str())
                })
                .collect();
            json_response(&mut stream, 200, &Json::Array(list))
        }
        ("POST", ["runs"]) => submit_run(&mut stream, state, &request),
        ("GET", ["runs"]) => {
            let list = state
                .runs
                .lock()
                .expect("run table poisoned")
                .iter()
                .map(|r| r.status_json())
                .collect();
            json_response(&mut stream, 200, &Json::Array(list))
        }
        ("GET", ["runs", id]) => match id.parse().ok().and_then(|id| state.run_by_id(id)) {
            Some(entry) => {
                let status = entry
                    .status_json()
                    .with("fleet", state.telemetry.snapshot().to_json());
                json_response(&mut stream, 200, &status)
            }
            None => error_response(&mut stream, 404, &format!("no run {id}")),
        },
        ("GET", ["runs", id, "envelope"]) => {
            match id.parse().ok().and_then(|id| state.run_by_id(id)) {
                Some(entry) => {
                    let inner = entry.lock();
                    match (&inner.phase, &inner.envelope) {
                        (_, Some(envelope)) => {
                            let bytes = envelope.clone().into_bytes();
                            drop(inner);
                            respond(&mut stream, 200, "application/json", &bytes)
                        }
                        (RunPhase::Failed(error), None) => {
                            let message = error.clone();
                            drop(inner);
                            error_response(&mut stream, 500, &message)
                        }
                        _ => {
                            drop(inner);
                            error_response(&mut stream, 409, "run not finished yet")
                        }
                    }
                }
                None => error_response(&mut stream, 404, &format!("no run {id}")),
            }
        }
        ("GET", ["runs", id, "events"]) => {
            match id.parse().ok().and_then(|id| state.run_by_id(id)) {
                Some(entry) if !entry.events => error_response(
                    &mut stream,
                    404,
                    "run was submitted without \"events\": true",
                ),
                Some(entry) => {
                    let inner = entry.lock();
                    match (&inner.phase, &inner.events) {
                        (_, Some(events)) => {
                            let bytes = events.clone().into_bytes();
                            drop(inner);
                            respond(&mut stream, 200, "application/x-ndjson", &bytes)
                        }
                        (RunPhase::Failed(error), None) => {
                            let message = error.clone();
                            drop(inner);
                            error_response(&mut stream, 500, &message)
                        }
                        _ => {
                            drop(inner);
                            error_response(&mut stream, 409, "run not finished yet")
                        }
                    }
                }
                None => error_response(&mut stream, 404, &format!("no run {id}")),
            }
        }
        ("GET", ["runs", id, "stream"]) => {
            match id.parse().ok().and_then(|id| state.run_by_id(id)) {
                Some(entry) => stream_run(stream, state, &entry),
                None => error_response(&mut stream, 404, &format!("no run {id}")),
            }
        }
        ("GET", _) => error_response(&mut stream, 404, &format!("no route {}", request.path)),
        _ => error_response(
            &mut stream,
            405,
            &format!("{} not supported on {}", request.method, request.path),
        ),
    }
}

/// `POST /runs`: validates and enqueues a submission, answering `202`
/// with the new run id.
fn submit_run(stream: &mut TcpStream, state: &ServerState, request: &Request) -> io::Result<()> {
    let Ok(body) = std::str::from_utf8(&request.body) else {
        return error_response(stream, 400, "body must be UTF-8 JSON");
    };
    let Ok(doc) = parse(body.trim()) else {
        return error_response(stream, 400, "body must be a JSON object");
    };
    let Some(experiment) = doc["experiment"].as_str() else {
        return error_response(stream, 400, "missing field 'experiment'");
    };
    if !state.experiments.iter().any(|(id, _)| id == experiment) {
        return error_response(
            stream,
            404,
            &format!("unknown experiment '{experiment}' (see GET /experiments)"),
        );
    }
    let scale = match doc["scale"].as_str() {
        None => ScaleLevel::Default,
        Some(text) => match text.parse::<ScaleLevel>() {
            Ok(scale) => scale,
            Err(e) => return error_response(stream, 400, &e),
        },
    };
    let seed = match &doc["seed"] {
        Json::Null => 1,
        value => match value.as_u64() {
            Some(seed) => seed,
            None => return error_response(stream, 400, "field 'seed' must be an unsigned integer"),
        },
    };
    let events = match &doc["events"] {
        Json::Null => false,
        Json::Bool(events) => *events,
        _ => return error_response(stream, 400, "field 'events' must be a boolean"),
    };

    let entry = {
        let mut runs = state.runs.lock().expect("run table poisoned");
        let entry = Arc::new(RunEntry {
            id: runs.len() as u64 + 1,
            experiment: experiment.to_owned(),
            scale,
            seed,
            events,
            inner: Mutex::new(RunInner {
                phase: RunPhase::Queued,
                lines: Vec::new(),
                envelope: None,
                events: None,
            }),
            cond: Condvar::new(),
        });
        runs.push(Arc::clone(&entry));
        entry
    };
    state
        .queue
        .lock()
        .expect("queue sender poisoned")
        .send(Arc::clone(&entry))
        .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "executor is gone"))?;

    json_response(
        stream,
        202,
        &Json::object().with("id", entry.id).with("status", "queued"),
    )
}

/// `GET /runs/<id>/stream`: a chunked NDJSON tail of the run's event
/// lines — everything recorded so far, then live as units complete,
/// with periodic `fleet` telemetry events interleaved while the run is
/// in flight. The stream ends when the run does.
fn stream_run(stream: TcpStream, state: &ServerState, entry: &RunEntry) -> io::Result<()> {
    let mut writer = ChunkedWriter::start(stream, "application/x-ndjson")?;
    let mut sent = 0usize;
    loop {
        // Collect under the lock, write outside it: a slow follower
        // must not stall the executor's push_line.
        let (fresh, finished) = {
            let mut inner = entry.lock();
            while inner.lines.len() == sent
                && matches!(inner.phase, RunPhase::Queued | RunPhase::Running)
            {
                let (guard, timeout) = entry
                    .cond
                    .wait_timeout(inner, FLEET_PERIOD)
                    .expect("run entry poisoned");
                inner = guard;
                if timeout.timed_out() {
                    break;
                }
            }
            let fresh: Vec<String> = inner.lines[sent..].to_vec();
            sent = inner.lines.len();
            let finished = !matches!(inner.phase, RunPhase::Queued | RunPhase::Running);
            (fresh, finished)
        };
        for line in &fresh {
            writer.chunk(line.as_bytes())?;
        }
        if finished {
            return writer.finish();
        }
        if fresh.is_empty() {
            // Nothing completed this period: feed the follower a live
            // fleet snapshot instead of silence.
            writer.chunk(sink::stream_fleet(state.telemetry.snapshot().to_json()).as_bytes())?;
        }
    }
}
