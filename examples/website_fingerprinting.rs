//! Website fingerprinting over PRAC back-offs (§8).
//!
//! Loads several synthetic website profiles while the Listing-2 probe
//! observes the channel, extracts back-off fingerprints, trains the
//! decision-tree classifier, and reports how well websites can be
//! identified — the Fig. 9 / Fig. 10 / Table 2 pipeline in miniature.
//!
//! Run with: `cargo run --release --example website_fingerprinting`

use leakyhammer::experiment::fingerprint::{
    collect_dataset, run_model_comparison, to_dataset, CollectOptions,
};
use leakyhammer::report;
use leakyhammer::Scale;
use lh_workloads::WEBSITES;

fn main() {
    println!("LeakyHammer website fingerprinting (NRH = 64)\n");
    let mut opts = CollectOptions::for_scale(Scale::Quick, 42);
    opts.sites = 5;
    opts.traces_per_site = 8;
    println!(
        "collecting {} traces ({} sites x {} loads) ...",
        opts.sites * opts.traces_per_site,
        opts.sites,
        opts.traces_per_site
    );
    let traces = collect_dataset(&opts);

    // Fig. 9 flavour: back-off counts per site.
    println!("\nback-offs observed per load:");
    for (site, name) in WEBSITES.iter().enumerate().take(opts.sites) {
        let counts: Vec<usize> = traces
            .iter()
            .filter(|t| t.site == site)
            .map(|t| t.fingerprint.events.len())
            .collect();
        println!("  {name:>12}: {counts:?}");
    }

    // Fig. 10 flavour: classifier comparison.
    let data = to_dataset(&traces);
    println!("\ntraining the model zoo (3-fold cross-validation):");
    let accs = run_model_comparison(&data, 3, 7);
    print!("{}", report::classifier_report(&accs, opts.sites));
    println!(
        "\nEach website's load phases trigger PRAC back-offs at characteristic\n\
         times; the probe never causes back-offs itself (it stays below NBO)."
    );
}
