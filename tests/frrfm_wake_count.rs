//! Regression test for the FR-RFM low-`N_RH` scheduler hot loop.
//!
//! With a dense fixed-rate RFM schedule (FR-RFM provisioned for
//! `N_RH` = 64 has a period of ~1.26 µs), the pre-redesign controller
//! degenerated into picosecond-granularity re-arming whenever a wake
//! deadline had passed but the due command was still transiently
//! illegal: one quick-scale four-core mix over 150 µs of simulated time
//! cost **100,578,972** `service()` invocations (~75 s of release CPU).
//!
//! Under the total-time scheduling contract every wake is the exact
//! next decision point, and the same mix costs **15,853** invocations
//! (a ~6,300× reduction) while issuing the *identical* command stream
//! (476 RFMs, 76 REFs, 5,021 served reads).
//!
//! The test counts wakes, not wall-clock, so it is deterministic; the
//! cap has ~6× headroom over the measured count but sits four orders of
//! magnitude below the pathological baseline.

use lh_defenses::{DefenseConfig, DefenseKind};
use lh_dram::{DramTiming, Span, Time};
use lh_memctrl::AddressMapping;
use lh_sim::SystemBuilder;
use lh_workloads::{four_core_mixes, SyntheticApp};

/// The pre-redesign wake count for this exact scenario (measured at the
/// commit that introduced this test).
const BASELINE_WAKES: u64 = 100_578_972;

/// Deterministic cap: measured post-redesign count is 15,853.
const MAX_WAKES: u64 = 100_000;

#[test]
fn frrfm_nrh64_mix_does_not_spin() {
    let timing = DramTiming::ddr5_4800();
    let defense = DefenseConfig::for_threshold(DefenseKind::FrRfm, 64, &timing);
    let mut sys = SystemBuilder::new(defense)
        .seed(7)
        .disturb_tracking(false)
        .build()
        .expect("valid configuration");
    let mapping: AddressMapping = *sys.mapping();
    let span = Span::from_us(150); // Scale::Quick perf span
    let end = Time::ZERO + span;
    let mix = &four_core_mixes(2, 7)[0];
    for (i, profile) in mix.iter().enumerate() {
        let app = SyntheticApp::new(profile.clone(), mapping, 7 ^ (i as u64 * 31), end);
        let mlp = app.mlp();
        sys.add_process(Box::new(app), mlp, Time::ZERO);
    }
    sys.run_until(end + Span::from_us(5));

    let stats = *sys.controller().stats();
    println!(
        "service_calls={} rfms={} refreshes={} reads={}",
        stats.service_calls, stats.rfms, stats.refreshes, stats.reads_served
    );
    assert!(
        stats.service_calls <= MAX_WAKES,
        "FR-RFM@64 scheduler woke {} times (cap {MAX_WAKES}); \
         the 1-ps re-arm pathology is back",
        stats.service_calls
    );
    assert!(
        stats.service_calls * 10 <= BASELINE_WAKES,
        "less than a 10x reduction over the pre-redesign baseline"
    );
    // The redesign must not change *what* the controller does — only
    // when it wakes. These counts are the pre-redesign values.
    assert_eq!(stats.rfms, 476, "fixed-rate RFM stream changed");
    assert_eq!(stats.refreshes, 76, "refresh schedule changed");
    assert_eq!(stats.reads_served, 5021, "served request stream changed");
}
