//! Property-based tests on the total-time scheduling contract: progress,
//! exactly-once completion and latency sanity for arbitrary request
//! batches under every defense family, plus the three guarantees of
//! [`DramDevice::earliest_legal`] the controller's scheduler builds on —
//! it is *total* (never an error, even for transiently illegal
//! commands), *monotone* in `now`, and *agrees with actual issue
//! legality* at the returned instant.
//!
//! [`DramDevice::earliest_legal`]: lh_dram::DramDevice::earliest_legal

use proptest::prelude::*;

use lh_defenses::{DefenseConfig, DefenseKind};
use lh_dram::{
    BankId, Command, DeviceConfig, DramAddr, DramDevice, DramTiming, Geometry, PracConfig,
    RfmScope, Span, Time,
};
use lh_memctrl::{AccessKind, CtrlConfig, MemRequest, MemoryController};

/// Builds a controller over the tiny geometry with the given defense.
fn controller(defense: DefenseConfig, seed: u64) -> MemoryController {
    let mut dev = DeviceConfig::paper_default();
    dev.geometry = Geometry::tiny();
    MemoryController::new(CtrlConfig::paper_default(), dev, defense, seed).unwrap()
}

/// A compact encoding of a request: (bank-group, bank, row, col, read?,
/// arrival offset in ns).
type ReqSpec = (u32, u32, u32, u32, bool, u64);

fn defense_of(sel: u8) -> DefenseConfig {
    match sel % 6 {
        0 => DefenseConfig::none(),
        1 => DefenseConfig::prac(64),
        2 => DefenseConfig::prfm(16),
        3 => DefenseConfig::fr_rfm(16, DramTiming::ddr5_4800().t_rc),
        4 => DefenseConfig::graphene(256, &DramTiming::ddr5_4800()),
        // N_RH = 64: the FR-RFM period floors at tRFM + 300 ns — the
        // pathologically dense schedule of the ROADMAP hot loop.
        _ => DefenseConfig::for_threshold(DefenseKind::FrRfm, 64, &DramTiming::ddr5_4800()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every accepted request completes exactly once, with a sane latency
    /// (at least the device's column latency, completion after arrival),
    /// under every defense family.
    #[test]
    fn all_requests_complete_exactly_once(
        specs in proptest::collection::vec(
            (0u32..2, 0u32..2, 0u32..32, 0u32..16, any::<bool>(), 0u64..40_000),
            1..60,
        ),
        defense_sel in 0u8..6,
    ) {
        let mut mc = controller(defense_of(defense_sel), 7);
        let g = Geometry::tiny();
        let mut reqs: Vec<MemRequest> = specs
            .iter()
            .enumerate()
            .map(|(i, &(bg, b, row, col, read, at)): (usize, &ReqSpec)| MemRequest {
                id: i as u64,
                addr: DramAddr::new(
                    BankId::new(0, 0, bg % g.bank_groups_per_rank(), b % g.banks_per_group()),
                    row % g.rows_per_bank(),
                    col,
                ),
                kind: if read { AccessKind::Read } else { AccessKind::Write },
                arrival: Time::ZERO + Span::from_ns(at),
                source: 0,
            })
            .collect();
        reqs.sort_by_key(|r| r.arrival);

        let mut now = Time::ZERO;
        let mut done: Vec<(u64, Time, Time, AccessKind)> = Vec::new();
        let mut pending = reqs.into_iter().peekable();
        let deadline = Time::from_us(4_000);
        let mut outstanding = 0usize;
        while (pending.peek().is_some() || outstanding > 0) && now < deadline {
            while let Some(r) = pending.peek() {
                if r.arrival <= now {
                    let r = pending.next().unwrap();
                    match mc.enqueue(r) {
                        Ok(()) => outstanding += 1,
                        Err(_r) => {
                            // Queue full: drop from this test's stream
                            // (back-pressure is exercised elsewhere).
                        }
                    }
                } else {
                    break;
                }
            }
            let next = mc.service(now);
            // The total-time contract: wakes are strictly in the future,
            // so the driver needs no anti-livelock guard.
            prop_assert!(next > now, "service wake {next} not after {now}");
            for c in mc.take_completed() {
                done.push((c.id, c.arrival, c.finished, c.kind));
                outstanding -= 1;
            }
            let next_arrival = pending.peek().map(|r| r.arrival).unwrap_or(Time::MAX);
            now = next.min(next_arrival);
        }
        prop_assert_eq!(outstanding, 0, "requests stuck at {}", now);

        // Exactly-once, and sane latencies.
        let mut ids: Vec<u64> = done.iter().map(|d| d.0).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), done.len(), "duplicate completions");
        let t = mc.device().timing();
        for &(id, arrival, finished, kind) in &done {
            prop_assert!(finished > arrival, "req {id} finished before arrival");
            // Reads cannot beat the read column latency; writes complete
            // at the (shorter) write-data end.
            let min_latency = match kind {
                AccessKind::Read => t.read_latency(),
                AccessKind::Write => t.t_cwl + t.t_burst,
            };
            prop_assert!(
                finished - arrival >= min_latency,
                "req {id} latency {} below column latency {}",
                finished - arrival,
                min_latency
            );
        }
    }

    /// The controller's service() always returns a strictly increasing
    /// wake time (no livelock), even while idle.
    #[test]
    fn service_always_advances(defense_sel in 0u8..6, steps in 1usize..50) {
        let mut mc = controller(defense_of(defense_sel), 3);
        let mut now = Time::ZERO;
        for _ in 0..steps {
            let next = mc.service(now);
            prop_assert!(next > now, "service must move time forward");
            now = next;
        }
    }
}

fn tiny_bank(i: u32) -> BankId {
    BankId::new(0, 0, i % 2, (i / 2) % 2)
}

fn tiny_device(prac: Option<PracConfig>) -> DramDevice {
    let mut cfg = DeviceConfig::paper_default();
    cfg.geometry = Geometry::tiny();
    cfg.prac = prac;
    DramDevice::new(cfg).unwrap()
}

/// Whether `cmd` is legal in the device's *current* row state (when
/// false, `earliest_legal` answers with an implied-prep lower bound).
fn state_legal(dev: &DramDevice, cmd: &Command) -> bool {
    match *cmd {
        Command::Activate { bank, .. } => dev.open_row(bank).is_none(),
        Command::Read { bank, .. } | Command::Write { bank, .. } => dev.open_row(bank).is_some(),
        Command::Refresh { rank, .. } => (0..4).all(|i| {
            let b = tiny_bank(i);
            b.rank != rank || dev.open_row(b).is_none()
        }),
        Command::Rfm { rank, scope, .. } => dev
            .rfm_banks(rank, scope)
            .iter()
            .all(|&f| dev.open_row(dev.geometry().bank_from_flat(0, f)).is_none()),
        Command::Precharge { .. } | Command::PrechargeAll { .. } => true,
    }
}

/// The probe commands checked after every step of the driver.
fn probes(step: u32) -> Vec<Command> {
    let bank = tiny_bank(step);
    vec![
        Command::Activate {
            bank,
            row: step % 64,
        },
        Command::Precharge { bank },
        Command::Read { bank, col: 0 },
        Command::Write { bank, col: 1 },
        Command::PrechargeAll {
            channel: 0,
            rank: 0,
        },
        Command::Refresh {
            channel: 0,
            rank: 0,
        },
        Command::Rfm {
            channel: 0,
            rank: 0,
            scope: RfmScope::AllBank,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `earliest_legal` is total, `>= now`, monotone in `now`, and
    /// sound: issuing before the returned instant always fails, and
    /// issuing *at* it succeeds exactly for state-legal commands
    /// (for transiently illegal ones the bound is about timing — the
    /// controller still owes the preparatory commands).
    #[test]
    fn earliest_legal_is_total_monotone_and_sound(
        ops in proptest::collection::vec((0u8..4, 0u32..4, 0u32..32), 1..80),
        with_prac in proptest::arbitrary::any::<bool>(),
    ) {
        let prac = if with_prac {
            let mut p = PracConfig::paper_default();
            p.nbo = 16;
            Some(p)
        } else {
            None
        };
        let mut dev = tiny_device(prac);
        let mut now = Time::ZERO;
        for (i, &(op, b, row)) in ops.iter().enumerate() {
            // Drive one legal command forward.
            let bank = tiny_bank(b);
            let cmd = match (op % 3, dev.open_row(bank)) {
                (0, None) => Command::Activate { bank, row },
                (0 | 1, Some(_)) => Command::Read { bank, col: row % 16 },
                (1, None) => Command::Activate { bank, row },
                (_, Some(_))  => Command::Precharge { bank },
                (_, None) if state_legal(&dev, &Command::Refresh { channel: 0, rank: 0 }) =>
                    Command::Refresh { channel: 0, rank: 0 },
                (_, None) => Command::Activate { bank, row },
            };
            let at = dev.earliest_legal(&cmd, now);
            prop_assert!(at >= now, "earliest_legal went backwards");
            dev.issue(&cmd, at).unwrap();
            now = at;

            // Probe every command class against the new state.
            for probe in probes(i as u32) {
                // Total: never panics, never errors — and the result is
                // clamped to `now`.
                let e0 = dev.earliest_legal(&probe, now);
                prop_assert!(e0 >= now);
                // Monotone in `now`.
                let later = now + Span::from_ns(500);
                let e1 = dev.earliest_legal(&probe, later);
                prop_assert!(e1 >= e0, "earliest_legal not monotone in now");
                prop_assert!(e1 >= later);
                // Sound: strictly before `e0` the command never issues.
                if e0 > now {
                    let mut probe_dev = dev.clone();
                    prop_assert!(
                        probe_dev.issue(&probe, e0 - Span::from_ps(1)).is_err(),
                        "issue before earliest_legal must fail"
                    );
                }
                // Agreement at the returned instant.
                let mut probe_dev = dev.clone();
                let ok = probe_dev.issue(&probe, e0).is_ok();
                prop_assert_eq!(
                    ok,
                    state_legal(&dev, &probe),
                    "issue at earliest_legal disagrees with state legality for {:?}",
                    probe
                );
            }
        }
    }
}
