//! Fig. 13 bench: one four-core mix under PRAC at NRH=1024.

use criterion::{criterion_group, criterion_main, Criterion};
use lh_bench::experiment::perf::run_performance;
use lh_bench::Scale;
use lh_defenses::DefenseKind;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13_performance");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(10));
    g.bench_function("prac_nrh1024_quick", |b| {
        b.iter(|| run_performance(&[DefenseKind::Prac], &[1024], Scale::Quick, 3))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
