//! # lh-serve — the resident experiment service
//!
//! `lh-experiments serve --addr host:port` turns the experiment harness
//! into a long-running service: one process owns a warm [`DiskCache`]
//! and a resident `lh-coord` worker fleet, and exposes a small
//! hand-rolled HTTP/1.1 API (no web framework — this build environment
//! is `std`-only, and the API needs six routes):
//!
//! | route | what |
//! |---|---|
//! | `POST /runs` | submit `{"experiment","scale","seed"}`; answers `{"id"}` |
//! | `GET /runs` | all submissions with status |
//! | `GET /runs/<id>` | one run's status plus a live fleet snapshot |
//! | `GET /runs/<id>/envelope` | the finished envelope — byte-identical to `--format json` |
//! | `GET /runs/<id>/stream` | chunked NDJSON tail: `started`/`unit`/`finished` events live, with periodic `fleet` telemetry |
//! | `GET /metrics` | Prometheus text format: registry totals, histograms, fleet telemetry |
//! | `GET /experiments`, `GET /healthz` | discovery and liveness |
//!
//! The load-bearing property is the **determinism boundary**: envelopes
//! served over HTTP are byte-identical to `lh-experiments <id> --format
//! json` at the same scale and seed — submission transport, worker
//! count, and cache temperature never leak into results. Everything
//! wall-clock shaped (fleet snapshots, `ts_ms` stream stamps, the
//! whole `/metrics` page) lives strictly in the volatile channel. See
//! `crates/serve/README.md` for the API walkthrough and failure
//! semantics.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod http;
pub mod prom;
pub mod server;

pub use server::{ServeOptions, Server};

// Re-exported so embedders need only this crate for a basic setup.
pub use lh_coord::{ProcessSpawner, SpawnWorker, ThreadSpawner};
pub use lh_harness::cache::DiskCache;
