//! Prometheus text-format rendering of the process registry and fleet
//! telemetry.
//!
//! `GET /metrics` is the volatile channel's front door: everything on
//! the page is process-lifetime accounting ([`lh_obs::Registry`]
//! totals, coordinator fleet telemetry) and may differ between two
//! servers that produced byte-identical envelopes. Names map `sim.*` /
//! `coord.*` dotted counters to `lh_`-prefixed underscore families
//! (`sim.cmd.act` → `lh_sim_cmd_act`); histograms render in the
//! standard cumulative-`le` form with bucket bounds taken from the
//! deterministic power-of-two layout ([`lh_obs::Hist::bucket_bound`]).

use lh_coord::FleetSnapshot;
use lh_obs::{Hist, Metrics};

/// `sim.cmd.act` → `lh_sim_cmd_act`.
fn family(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 3);
    out.push_str("lh_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

fn counter(out: &mut String, name: &str, value: u64) {
    out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
}

fn gauge(out: &mut String, name: &str, value: u64) {
    out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
}

fn histogram(out: &mut String, name: &str, hist: &Hist) {
    out.push_str(&format!("# TYPE {name} histogram\n"));
    let mut cumulative = 0u64;
    for (exp, n) in hist.buckets() {
        cumulative += n;
        let bound = Hist::bucket_bound(exp);
        if bound == u64::MAX {
            // Collapses into +Inf below.
            continue;
        }
        out.push_str(&format!("{name}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
    }
    out.push_str(&format!(
        "{name}_bucket{{le=\"+Inf\"}} {count}\n{name}_sum {sum}\n{name}_count {count}\n",
        count = hist.count(),
        sum = hist.sum(),
    ));
}

/// Renders the whole `/metrics` page: registry counter totals, registry
/// histograms, the absorbed-unit count, and the fleet snapshot.
pub fn render(totals: &Metrics, units_absorbed: u64, fleet: &FleetSnapshot) -> String {
    let mut out = String::new();

    counter(&mut out, "lh_units_absorbed", units_absorbed);
    for (name, value) in totals.iter() {
        counter(&mut out, &family(name), value);
    }
    for (name, hist) in totals.hists() {
        histogram(&mut out, &family(name), hist);
    }

    let alive = fleet.workers.iter().filter(|w| w.alive).count() as u64;
    gauge(&mut out, "lh_fleet_workers_alive", alive);
    counter(&mut out, "lh_fleet_workers_spawned", fleet.workers_spawned);
    counter(&mut out, "lh_fleet_workers_lost", fleet.workers_lost);
    counter(&mut out, "lh_fleet_units_requeued", fleet.units_requeued);
    counter(&mut out, "lh_fleet_respawns_used", fleet.respawns_used);
    counter(&mut out, "lh_fleet_heartbeats", fleet.heartbeats);

    if !fleet.workers.is_empty() {
        out.push_str("# TYPE lh_fleet_worker_units_done counter\n");
        for w in &fleet.workers {
            out.push_str(&format!(
                "lh_fleet_worker_units_done{{worker=\"{}\"}} {}\n",
                w.index, w.units_done
            ));
        }
        out.push_str("# TYPE lh_fleet_worker_up gauge\n");
        for w in &fleet.workers {
            out.push_str(&format!(
                "lh_fleet_worker_up{{worker=\"{}\"}} {}\n",
                w.index,
                u64::from(w.alive)
            ));
        }
        out.push_str("# TYPE lh_fleet_worker_beat_age_ms gauge\n");
        for w in &fleet.workers {
            if let Some(age) = w.beat_age_ms {
                out.push_str(&format!(
                    "lh_fleet_worker_beat_age_ms{{worker=\"{}\"}} {age}\n",
                    w.index
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lh_coord::WorkerTelemetry;

    #[test]
    fn renders_counters_histograms_and_fleet() {
        let mut totals = Metrics::new();
        totals.add("sim.cmd.act", 12);
        totals.add("sim.service_wakes", 7);
        let mut h = Hist::new();
        h.observe(0);
        h.observe(3); // exponent 2, bound 3
        h.observe(300); // exponent 9, bound 511
        totals.set_hist("sim.queue_wait", h);

        let fleet = FleetSnapshot {
            workers: vec![
                WorkerTelemetry {
                    index: 0,
                    pid: 10,
                    alive: true,
                    in_flight: None,
                    units_done: 4,
                    beat_age_ms: Some(120),
                },
                WorkerTelemetry {
                    index: 1,
                    pid: 11,
                    alive: false,
                    in_flight: None,
                    units_done: 1,
                    beat_age_ms: None,
                },
            ],
            workers_spawned: 2,
            workers_lost: 1,
            units_requeued: 1,
            respawns_used: 0,
            heartbeats: 9,
        };

        let page = render(&totals, 5, &fleet);
        assert!(page.contains("# TYPE lh_sim_cmd_act counter\nlh_sim_cmd_act 12\n"));
        assert!(page.contains("lh_units_absorbed 5\n"));
        assert!(page.contains("# TYPE lh_sim_queue_wait histogram\n"));
        assert!(page.contains("lh_sim_queue_wait_bucket{le=\"0\"} 1\n"));
        assert!(page.contains("lh_sim_queue_wait_bucket{le=\"3\"} 2\n"));
        assert!(page.contains("lh_sim_queue_wait_bucket{le=\"511\"} 3\n"));
        assert!(page.contains("lh_sim_queue_wait_bucket{le=\"+Inf\"} 3\n"));
        assert!(page.contains("lh_sim_queue_wait_sum 303\n"));
        assert!(page.contains("lh_sim_queue_wait_count 3\n"));
        assert!(page.contains("lh_fleet_workers_alive 1\n"));
        assert!(page.contains("lh_fleet_workers_lost 1\n"));
        assert!(page.contains("lh_fleet_heartbeats 9\n"));
        assert!(page.contains("lh_fleet_worker_units_done{worker=\"0\"} 4\n"));
        assert!(page.contains("lh_fleet_worker_up{worker=\"1\"} 0\n"));
        assert!(page.contains("lh_fleet_worker_beat_age_ms{worker=\"0\"} 120\n"));
        assert!(
            !page.contains("lh_fleet_worker_beat_age_ms{worker=\"1\"}"),
            "no beat yet, no sample: {page}"
        );
    }

    #[test]
    fn saturated_top_bucket_collapses_into_inf() {
        let mut totals = Metrics::new();
        let mut h = Hist::new();
        h.observe(u64::MAX); // exponent 64 — bound would be u64::MAX
        totals.set_hist("sim.queue_wait", h);
        let page = render(&totals, 0, &FleetSnapshot::default());
        assert!(
            !page.contains(&format!("le=\"{}\"", u64::MAX)),
            "the saturated bucket must render as +Inf only: {page}"
        );
        assert!(page.contains("lh_sim_queue_wait_bucket{le=\"+Inf\"} 1\n"));
    }
}
