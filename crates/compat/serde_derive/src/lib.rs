//! Offline stand-in for `serde_derive`.
//!
//! The derives expand to marker-trait impls only. No code in this
//! repository serializes through serde's data model (structured output
//! goes through `lh-harness`'s JSON module), so the derives only have to
//! make `#[derive(Serialize, Deserialize)]` compile.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name a derive was applied to.
///
/// Scans the item's tokens for the identifier following `struct` or
/// `enum`, skipping attributes and visibility.
fn type_name(input: &TokenStream) -> Option<String> {
    let mut saw_kw = false;
    for tt in input.clone() {
        if let TokenTree::Ident(id) = tt {
            let s = id.to_string();
            if saw_kw {
                return Some(s);
            }
            if s == "struct" || s == "enum" {
                saw_kw = true;
            }
        }
    }
    None
}

/// Emits `impl <Trait> for <Type> {}`, ignoring generics: every type in
/// this repository that derives the serde traits is non-generic.
fn marker_impl(input: TokenStream, trait_path: &str) -> TokenStream {
    match type_name(&input) {
        Some(name) => format!("impl {trait_path} for {name} {{}}")
            .parse()
            .unwrap(),
        None => TokenStream::new(),
    }
}

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Serialize")
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Deserialize<'static>")
}
