//! Noise-intensity mapping (§6.3, Eq. 2 of the paper).
//!
//! The noise generator sleeps `SleepDuration` between consecutive row
//! activations; intensity maps the swept range [0.2 µs, 2 µs] linearly
//! onto [100 %, 1 %].

/// The sweep endpoints of Eq. 2, in microseconds.
pub const MIN_SLEEP_US: f64 = 0.2;
/// See [`MIN_SLEEP_US`].
pub const MAX_SLEEP_US: f64 = 2.0;

/// Noise intensity (percent, 1–100) for a sleep duration in µs (Eq. 2).
///
/// # Panics
///
/// Panics if `sleep_us` is outside `[MIN_SLEEP_US, MAX_SLEEP_US]`.
pub fn intensity_of_sleep(sleep_us: f64) -> f64 {
    assert!(
        (MIN_SLEEP_US..=MAX_SLEEP_US).contains(&sleep_us),
        "sleep {sleep_us} µs outside the swept range"
    );
    (1.0 - (sleep_us - MIN_SLEEP_US) / (MAX_SLEEP_US - MIN_SLEEP_US)) * 99.0 + 1.0
}

/// Inverse of [`intensity_of_sleep`]: sleep duration (µs) for an intensity
/// in percent.
///
/// # Panics
///
/// Panics if `intensity` is outside `[1, 100]`.
pub fn sleep_of_intensity(intensity: f64) -> f64 {
    assert!(
        (1.0..=100.0).contains(&intensity),
        "intensity {intensity}% out of range"
    );
    MIN_SLEEP_US + (1.0 - (intensity - 1.0) / 99.0) * (MAX_SLEEP_US - MIN_SLEEP_US)
}

/// The noise-intensity sample points used for Figs. 4, 7 and 11
/// (1 %, 10 %, 20 %, ..., 100 %).
pub fn paper_sweep() -> Vec<f64> {
    let mut v = vec![1.0];
    v.extend((1..=10).map(|i| i as f64 * 10.0));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_match_eq2() {
        assert!((intensity_of_sleep(2.0) - 1.0).abs() < 1e-12);
        assert!((intensity_of_sleep(0.2) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn roundtrip() {
        for i in [1.0, 10.0, 42.0, 88.0, 100.0] {
            let s = sleep_of_intensity(i);
            assert!((intensity_of_sleep(s) - i).abs() < 1e-9, "{i}");
        }
    }

    #[test]
    fn intensity_decreases_with_sleep() {
        assert!(intensity_of_sleep(0.5) > intensity_of_sleep(1.5));
    }

    #[test]
    fn sweep_covers_1_to_100() {
        let s = paper_sweep();
        assert_eq!(s.len(), 11);
        assert_eq!(s[0], 1.0);
        assert_eq!(*s.last().unwrap(), 100.0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_sleep_panics() {
        let _ = intensity_of_sleep(3.0);
    }
}
