//! # lh-analysis — metrics for timing-channel research
//!
//! The quantitative vocabulary of the LeakyHammer paper:
//!
//! * [`capacity`] — channel capacity and binary entropy (Eq. 1),
//! * [`curves`] — BER-vs-noise and capacity-vs-`N_RH` sweep curves,
//! * [`message`] — test-message patterns, text↔bit and bit↔symbol codecs,
//! * [`noise`] — the noise-intensity mapping (Eq. 2),
//! * [`pareto`] — security-vs-cost curves for the mitigation sweep,
//! * [`speedup`] — weighted speedup for the Fig. 13 performance study,
//! * [`stats`] — summary statistics and histograms for reports.
//!
//! ## Example
//!
//! ```
//! use lh_analysis::capacity::ChannelResult;
//! use lh_analysis::message::bits_of_str;
//!
//! let sent = bits_of_str("MICRO");
//! let recv = sent.clone(); // perfect channel
//! let r = ChannelResult::from_bits(&sent, &recv, 40.0 / 40_000.0);
//! assert_eq!(r.capacity_kbps(), 40.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod capacity;
pub mod curves;
pub mod message;
pub mod noise;
pub mod pareto;
pub mod speedup;
pub mod stats;

pub use capacity::{binary_entropy, channel_capacity, ChannelResult};
pub use curves::{BerCurve, BerPoint, CapacityCurve, CapacityPoint};
pub use message::{bits_of_str, bits_to_symbols, str_of_bits, symbols_to_bits, MessagePattern};
pub use noise::{intensity_of_sleep, sleep_of_intensity};
pub use pareto::{ParetoCurve, ParetoPoint};
pub use speedup::{normalized_ws, weighted_speedup, AppPerf};
pub use stats::{geo_mean, mean, percentile, std_dev, Histogram};
