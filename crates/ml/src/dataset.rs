//! Datasets, splits and feature scaling.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A labeled dataset: dense feature rows and class labels `0..n_classes`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature rows.
    pub features: Vec<Vec<f64>>,
    /// Class label per row.
    pub labels: Vec<usize>,
}

impl Dataset {
    /// Creates a dataset.
    ///
    /// # Panics
    ///
    /// Panics if rows and labels differ in length or rows differ in width.
    pub fn new(features: Vec<Vec<f64>>, labels: Vec<usize>) -> Dataset {
        assert_eq!(features.len(), labels.len(), "one label per row");
        if let Some(w) = features.first().map(Vec::len) {
            assert!(features.iter().all(|r| r.len() == w), "ragged feature rows");
        }
        Dataset { features, labels }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of distinct classes (max label + 1).
    pub fn n_classes(&self) -> usize {
        self.labels.iter().max().map_or(0, |&m| m + 1)
    }

    /// Feature dimensionality.
    pub fn n_features(&self) -> usize {
        self.features.first().map_or(0, Vec::len)
    }

    /// Selects the rows at `idx` into a new dataset.
    pub fn subset(&self, idx: &[usize]) -> Dataset {
        Dataset {
            features: idx.iter().map(|&i| self.features[i].clone()).collect(),
            labels: idx.iter().map(|&i| self.labels[i]).collect(),
        }
    }

    /// Standardizes features in place and returns the fitted scaler.
    pub fn standardize(&mut self) -> Scaler {
        let scaler = Scaler::fit(&self.features);
        for row in &mut self.features {
            scaler.transform_row(row);
        }
        scaler
    }
}

/// Per-feature standardization (zero mean, unit variance).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Scaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Scaler {
    /// Fits means and standard deviations on `rows`.
    pub fn fit(rows: &[Vec<f64>]) -> Scaler {
        if rows.is_empty() {
            return Scaler::default();
        }
        let d = rows[0].len();
        let n = rows.len() as f64;
        let mut means = vec![0.0; d];
        for r in rows {
            for (m, &v) in means.iter_mut().zip(r) {
                *m += v / n;
            }
        }
        let mut stds = vec![0.0; d];
        for r in rows {
            for ((s, &m), &v) in stds.iter_mut().zip(&means).zip(r) {
                *s += (v - m).powi(2) / n;
            }
        }
        for s in &mut stds {
            *s = s.sqrt().max(1e-12);
        }
        Scaler { means, stds }
    }

    /// Standardizes a row in place.
    pub fn transform_row(&self, row: &mut [f64]) {
        for ((v, &m), &s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
            *v = (*v - m) / s;
        }
    }
}

/// Stratified `k`-fold cross-validation indices: each fold's test set has
/// (approximately) the same class proportions as the full dataset.
///
/// Returns `k` pairs `(train_indices, test_indices)`.
///
/// # Panics
///
/// Panics if `k < 2`.
pub fn stratified_kfold(labels: &[usize], k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "k-fold needs k >= 2");
    let mut rng = StdRng::seed_from_u64(seed);
    let n_classes = labels.iter().max().map_or(0, |&m| m + 1);
    // Shuffle within each class, then deal class members round-robin.
    let mut fold_of = vec![0usize; labels.len()];
    for c in 0..n_classes {
        let mut members: Vec<usize> = (0..labels.len()).filter(|&i| labels[i] == c).collect();
        members.shuffle(&mut rng);
        for (j, &i) in members.iter().enumerate() {
            fold_of[i] = j % k;
        }
    }
    (0..k)
        .map(|f| {
            let test: Vec<usize> = (0..labels.len()).filter(|&i| fold_of[i] == f).collect();
            let train: Vec<usize> = (0..labels.len()).filter(|&i| fold_of[i] != f).collect();
            (train, test)
        })
        .collect()
}

/// A shuffled train/test split with `test_frac` of the rows held out.
pub fn train_test_split(n: usize, test_frac: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut StdRng::seed_from_u64(seed));
    let n_test = ((n as f64) * test_frac).round() as usize;
    let test = idx[..n_test].to_vec();
    let train = idx[n_test..].to_vec();
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let features = (0..30).map(|i| vec![i as f64, (i * 2) as f64]).collect();
        let labels = (0..30).map(|i| i % 3).collect();
        Dataset::new(features, labels)
    }

    #[test]
    fn basic_shape() {
        let d = toy();
        assert_eq!(d.len(), 30);
        assert_eq!(d.n_classes(), 3);
        assert_eq!(d.n_features(), 2);
        let s = d.subset(&[0, 3, 6]);
        assert_eq!(s.labels, vec![0, 0, 0]);
    }

    #[test]
    fn standardize_zeroes_means() {
        let mut d = toy();
        d.standardize();
        let mean0: f64 = d.features.iter().map(|r| r[0]).sum::<f64>() / d.len() as f64;
        assert!(mean0.abs() < 1e-9);
        let var0: f64 = d.features.iter().map(|r| r[0] * r[0]).sum::<f64>() / d.len() as f64;
        assert!((var0 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn kfold_partitions_and_stratifies() {
        let d = toy();
        let folds = stratified_kfold(&d.labels, 10, 42);
        assert_eq!(folds.len(), 10);
        let mut seen = vec![0u32; d.len()];
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), d.len());
            for &i in test {
                seen[i] += 1;
            }
            // Stratification: 30 samples, 3 classes, k=10 → each test fold
            // holds exactly one sample per class.
            for c in 0..3 {
                let count = test.iter().filter(|&&i| d.labels[i] == c).count();
                assert_eq!(count, 1, "fold must hold one sample of class {c}");
            }
        }
        assert!(
            seen.iter().all(|&s| s == 1),
            "each sample tested exactly once"
        );
    }

    #[test]
    fn split_is_disjoint_and_complete() {
        let (train, test) = train_test_split(100, 0.25, 7);
        assert_eq!(test.len(), 25);
        assert_eq!(train.len(), 75);
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic]
    fn ragged_rows_rejected() {
        let _ = Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![0, 1]);
    }
}
