//! Multibit covert channels (§6.3): ternary and quaternary symbol
//! transmission over the PRAC back-off channel.
//!
//! The sender modulates its access intensity so the back-off arrives
//! after a symbol-specific number of receiver accesses; the receiver
//! decodes from its access count at the first back-off. Decoding bins are
//! learned in a calibration transmission of known symbols.

use serde::{Deserialize, Serialize};

use lh_analysis::{bits_of_str, bits_to_symbols, channel_capacity};
use lh_attacks::{
    ChannelLayout, CovertReceiver, CovertSender, LatencyClassifier, ReceiverConfig, SenderConfig,
};
use lh_defenses::DefenseConfig;
use lh_dram::{Span, Time};
use lh_sim::{SimConfig, SystemBuilder};

/// Outcome of a multibit transmission (one row of the §6.3 comparison).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MultibitOutcome {
    /// Symbol alphabet size (2, 3 or 4).
    pub base: u8,
    /// Raw bit rate in Kbps (`log2(base)` bits per 25 µs window).
    pub raw_kbps: f64,
    /// Symbol error probability.
    pub error_probability: f64,
    /// Channel capacity in Kbps (Eq. 1 applied to the raw bit rate).
    pub capacity_kbps: f64,
}

/// Per-symbol sender intensity table: `None` = idle, otherwise the
/// think-time (larger = lower intensity = later back-off).
fn intensity_table(base: u8, think: Span) -> Vec<Option<Span>> {
    match base {
        2 => vec![None, Some(think)],
        3 => vec![None, Some(think * 5), Some(think)],
        4 => vec![None, Some(think * 9), Some(think * 3), Some(think)],
        _ => panic!("supported bases: 2, 3, 4"),
    }
}

/// Transmits `symbols` and returns the receiver's per-window
/// (events, accesses-before-event) observations.
fn transmit(
    symbols: &[u8],
    base: u8,
    think: Span,
    seed: u64,
) -> Vec<lh_attacks::WindowObservation> {
    let window = Span::from_us(25);
    let sim = SimConfig::paper_default(DefenseConfig::prac(128));
    let cls = LatencyClassifier::from_timing(&sim.device.timing, think);
    let mut sys = SystemBuilder::from_config(sim)
        .seed(seed)
        .build()
        .expect("valid configuration");
    let layout = ChannelLayout::default_bank(sys.mapping());
    let tx = CovertSender::new(SenderConfig {
        rows: layout.sender_rows,
        window,
        start: Time::ZERO,
        think,
        detect: cls.backoff_threshold(),
        stop_after_detect: true,
        symbols: symbols.to_vec(),
        intensity: intensity_table(base, think),
    });
    let rx = CovertReceiver::new(ReceiverConfig {
        row_addr: layout.receiver_row,
        window,
        start: Time::ZERO,
        n_windows: symbols.len(),
        think,
        detect: cls.backoff_threshold(),
        detect_max: Span::MAX,
        sleep_after_detect: true,
        refresh_filter: None,
        calibrate: Span::ZERO,
    });
    sys.add_process(Box::new(tx), 1, Time::ZERO);
    let rx_id = sys.add_process(Box::new(rx), 1, Time::ZERO);
    sys.run_until(Time::ZERO + window * (symbols.len() as u64 + 1));
    sys.process_as::<CovertReceiver>(rx_id)
        .expect("receiver present")
        .observations()
        .to_vec()
}

/// Learns the decoding bins from a calibration transmission: each
/// non-zero symbol is sent `reps` times; bins are midpoints between the
/// per-symbol mean access counts.
pub fn calibrate_bins(base: u8, think: Span, reps: usize, seed: u64) -> Vec<u32> {
    let mut symbols = Vec::new();
    for _ in 0..reps {
        for s in 1..base {
            symbols.push(s);
        }
    }
    let obs = transmit(&symbols, base, think, seed);
    // Mean accesses-before-event per symbol.
    let mut means = Vec::new();
    for s in 1..base {
        let counts: Vec<f64> = symbols
            .iter()
            .zip(&obs)
            .filter(|(&sym, o)| sym == s && o.events > 0)
            .map(|(_, o)| o.accesses_before_event as f64)
            .collect();
        let mean = if counts.is_empty() {
            0.0
        } else {
            counts.iter().sum::<f64>() / counts.len() as f64
        };
        means.push(mean);
    }
    // Higher symbol → fewer accesses; means is indexed by symbol-1 and is
    // descending. Bins (ascending counts) are midpoints between adjacent
    // symbol means, from the highest symbol pair downwards.
    let mut bins = Vec::new();
    for w in means.windows(2) {
        bins.push(((w[0] + w[1]) / 2.0).round() as u32);
    }
    bins.sort_unstable();
    bins
}

/// Runs the §6.3 multibit experiment for `base` transmitting
/// `message_bytes` bytes (the paper uses 32-byte messages).
pub fn run_multibit(base: u8, message_bytes: usize, seed: u64) -> MultibitOutcome {
    let think = Span::from_ns(30);
    let window = Span::from_us(25);
    let text: String = "LeakyHammerMultibitPayload-0123456789abcdef"
        .chars()
        .cycle()
        .take(message_bytes)
        .collect();
    let bits = bits_of_str(&text);
    let symbols = bits_to_symbols(&bits, base.next_power_of_two().max(2));
    // For base 3 (not a power of two) re-map: use base-4 symbol stream
    // folded into {0,1,2} — the paper's 1.58 bits/symbol is approximated
    // by log2(3).
    let symbols: Vec<u8> = if base == 3 {
        symbols.iter().map(|&s| s % 3).collect()
    } else {
        symbols
    };

    let bins = if base > 2 {
        calibrate_bins(base, think, 6, seed ^ 0xCA11)
    } else {
        vec![]
    };
    let obs = transmit(&symbols, base, think, seed);
    let decoded: Vec<u8> = if base == 2 {
        obs.iter().map(|o| (o.events >= 1) as u8).collect()
    } else {
        // Reconstruct via the receiver's multibit decoder rules.
        obs.iter()
            .map(|o| {
                if o.events == 0 {
                    return 0u8;
                }
                let c = o.accesses_before_event;
                let mut sym = bins.len() as u8 + 1;
                for (i, &b) in bins.iter().enumerate() {
                    if c >= b {
                        sym = (bins.len() - i) as u8;
                    }
                }
                sym.min(base - 1)
            })
            .collect()
    };
    let errors = symbols.iter().zip(&decoded).filter(|(a, b)| a != b).count();
    let e = (errors as f64 / symbols.len() as f64).min(0.5);
    let bits_per_symbol = (base as f64).log2();
    let raw_bps = bits_per_symbol / window.as_secs();
    MultibitOutcome {
        base,
        raw_kbps: raw_bps / 1e3,
        error_probability: e,
        capacity_kbps: channel_capacity(raw_bps, e) / 1e3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_multibit_matches_the_plain_channel() {
        let out = run_multibit(2, 6, 11);
        assert!((out.raw_kbps - 40.0).abs() < 0.5, "raw {}", out.raw_kbps);
        assert!(out.error_probability < 0.1, "e {}", out.error_probability);
    }

    #[test]
    fn quaternary_doubles_raw_rate_with_more_errors() {
        let bin = run_multibit(2, 6, 12);
        let quad = run_multibit(4, 6, 12);
        assert!((quad.raw_kbps - 80.0).abs() < 1.0, "raw {}", quad.raw_kbps);
        assert!(
            quad.error_probability >= bin.error_probability,
            "quaternary e {} must be ≥ binary e {}",
            quad.error_probability,
            bin.error_probability
        );
    }

    #[test]
    fn calibration_orders_bins_ascending() {
        let bins = calibrate_bins(4, Span::from_ns(30), 4, 3);
        assert_eq!(bins.len(), 2);
        assert!(bins[0] <= bins[1], "{bins:?}");
        assert!(bins[1] > 0);
    }

    #[test]
    #[should_panic]
    fn unsupported_base_panics() {
        let _ = intensity_table(5, Span::from_ns(30));
    }
}
