//! Offline stand-in for `criterion` 0.5.
//!
//! Supports the group-based API this repository's benches use:
//! `criterion_group!` / `criterion_main!`, [`Criterion::benchmark_group`],
//! `sample_size` / `warm_up_time` / `measurement_time`,
//! [`BenchmarkGroup::bench_function`] and [`Bencher::iter`]. Each bench
//! reports mean / min / max wall-clock time per iteration. There is no
//! statistical analysis or HTML report — just enough to catch gross
//! timing regressions and keep `cargo bench` compiling.
//!
//! When `CRITERION_SUMMARY_FILE` is set, every finished bench also
//! appends one JSON line — `{"group","id","mean_ns","min_ns","max_ns",
//! "samples"}` — to that file, so CI can persist wall-clock summaries
//! as an artifact and print advisory trend diffs between runs.

use std::io::Write;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_owned(),
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
        }
    }
}

/// A named set of benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples to record per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; warm-up is one untimed sample.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Caps the total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark and prints its timing summary. `id` accepts
    /// both `&str` and `String`, like criterion's `IntoBenchmarkId`.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        let id = id.as_ref();
        let mut bencher = Bencher {
            samples: Vec::new(),
        };
        // One untimed warm-up sample.
        f(&mut bencher);
        bencher.samples.clear();
        let started = Instant::now();
        for _ in 0..self.sample_size {
            f(&mut bencher);
            if started.elapsed() > self.measurement_time {
                break;
            }
        }
        let n = bencher.samples.len().max(1);
        let total: Duration = bencher.samples.iter().sum();
        let mean = total / n as u32;
        let min = bencher.samples.iter().min().copied().unwrap_or_default();
        let max = bencher.samples.iter().max().copied().unwrap_or_default();
        println!(
            "{id:<40} mean {mean:>12.3?}   min {min:>12.3?}   max {max:>12.3?}   ({n} samples)"
        );
        self.append_summary(id, mean, min, max, n);
        self
    }

    /// Appends the bench's JSON summary line to the file named by
    /// `CRITERION_SUMMARY_FILE`, if set. Write errors are reported to
    /// stderr but never fail the bench: summaries are advisory.
    fn append_summary(&self, id: &str, mean: Duration, min: Duration, max: Duration, n: usize) {
        let Ok(path) = std::env::var("CRITERION_SUMMARY_FILE") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        let line = format!(
            "{{\"group\":\"{}\",\"id\":\"{}\",\"mean_ns\":{},\"min_ns\":{},\"max_ns\":{},\"samples\":{}}}\n",
            self.name.escape_default(),
            id.escape_default(),
            mean.as_nanos(),
            min.as_nanos(),
            max.as_nanos(),
            n
        );
        let written = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(line.as_bytes()));
        if let Err(e) = written {
            eprintln!("criterion summary: cannot write {path}: {e}");
        }
    }

    /// Ends the group (printing is already done incrementally).
    pub fn finish(self) {}
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one execution of `routine` as one sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a set of [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
