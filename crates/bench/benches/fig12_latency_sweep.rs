//! Fig. 12 bench: one point of the preventive-action latency sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use lh_bench::experiment::latency_sweep::run_latency_sweep;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_latency_sweep");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(5));
    g.bench_function("point_100ns", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            run_latency_sweep(&[100], 8, seed)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
