//! # lh-defenses — RowHammer defense policies
//!
//! The defenses analyzed and proposed by the LeakyHammer paper, split into
//! their device-side and controller-side halves:
//!
//! | Defense | Trigger | Preventive action | Where |
//! |---|---|---|---|
//! | PRAC | per-row counters ≥ `NBO` | ABO → 4×RFMab back-off | device (`lh-dram`) |
//! | PRFM | per-bank counters ≥ `TRFM` | RFMsb | controller ([`PrfmDefense`]) |
//! | FR-RFM | fixed wall-clock period | RFMab | controller ([`FrRfmDefense`]) |
//! | PRAC-RIAC | PRAC w/ random counter init | as PRAC | device |
//! | PRAC-Bank | PRAC w/ per-bank alert | single-bank back-off | device |
//! | PARA | per-ACT coin flip | neighbor refresh | controller ([`ParaDefense`]) |
//! | Graphene | Misra-Gries summary ≥ threshold | neighbor refresh | controller ([`GrapheneDefense`]) |
//! | Hydra | group + per-row counters | neighbor refresh | controller ([`HydraDefense`]) |
//! | CoMeT | count-min sketch ≥ threshold | neighbor refresh | controller ([`CometDefense`]) |
//! | MINT | reservoir sample per `tREFI` | in-REF refresh (hidden) | controller ([`MintDefense`]) |
//! | BlockHammer | rate filter blacklist | ACT throttling | controller ([`BlockHammerDefense`]) |
//!
//! Every controller-side defense is one concrete type behind the
//! [`Defense`] trait ([`build_defense`] is the factory), so the memory
//! controller schedules preventive work — reactive [`DefenseAction`]s
//! and time-driven [`Maintenance`] operations — without naming any
//! defense. Adding a defense touches this crate only.
//!
//! [`DefenseConfig::for_threshold`] provisions any of them for a RowHammer
//! threshold `N_RH`, using the scaling rules documented in `DESIGN.md`.
//! The [`taxonomy`] module encodes the paper's §12 qualitative analysis of
//! which defense classes introduce timing channels; the [`trackers`]
//! module provides concrete per-bank implementations of the §12 trigger
//! classes so the taxonomy can be validated experimentally.
//!
//! ## Example
//!
//! ```
//! use lh_defenses::{DefenseConfig, DefenseKind, taxonomy};
//! use lh_dram::DramTiming;
//!
//! let timing = DramTiming::ddr5_4800();
//! let frrfm = DefenseConfig::for_threshold(DefenseKind::FrRfm, 1024, &timing);
//! let risk = taxonomy::profile_of(frrfm.kind).unwrap().channel_risk();
//! assert_eq!(risk, taxonomy::ChannelRisk::None);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod defense;
pub mod taxonomy;
pub mod trackers;

pub use config::{
    scaled_nbo, scaled_trfm, DefenseConfig, DefenseKind, FrRfmConfig, ParaConfig, PrfmConfig,
};
pub use defense::{
    build_defense, AggressorTracker, BlockHammerDefense, CometDefense, Defense, DefenseAction,
    DefenseStats, DeviceSideDefense, FrRfmDefense, GrapheneDefense, HydraDefense, Maintenance,
    MintDefense, ParaDefense, PrfmDefense, TrackerDefense,
};
