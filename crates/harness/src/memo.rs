//! In-process memoization shared across the units of one run.
//!
//! Some intermediates are expensive to build and identical across many
//! units — the canonical example is a sweep's decoded workload trace,
//! rebuilt per cell before trace memoization landed. [`Memo`] is a
//! string-keyed, type-erased store handed to every unit through
//! `JobContext`: the first unit to ask builds the value, every later
//! unit (in the same process) gets the cached `Arc`.
//!
//! The memo deliberately lives *outside* the result-cache contract: it
//! never touches cache keys (`unit_key` addresses results by scale,
//! seed, version and fingerprint alone), and a fresh process — a
//! distributed worker, a rerun — simply rebuilds entries on demand.
//! Values must therefore be pure functions of their key, and keys must
//! encode every input that distinguishes the value.

use std::any::Any;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A shared, thread-safe build-once store. Cloning is cheap (it is an
/// `Arc` underneath) and clones see the same entries.
#[derive(Debug, Clone, Default)]
pub struct Memo {
    entries: Arc<Mutex<HashMap<String, Arc<dyn Any + Send + Sync>>>>,
}

impl Memo {
    /// An empty memo.
    pub fn new() -> Memo {
        Memo::default()
    }

    /// Returns the value under `key`, building it with `build` exactly
    /// once per process if absent. The map lock is held while `build`
    /// runs, so concurrent callers of the same key never duplicate the
    /// work — which also means `build` must not call back into the same
    /// memo (deadlock).
    ///
    /// # Panics
    ///
    /// Panics if `key` already holds a value of a different type.
    pub fn get_or_build<T, F>(&self, key: &str, build: F) -> Arc<T>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> Arc<T>,
    {
        let mut entries = self.entries.lock().expect("memo poisoned");
        let entry = entries
            .entry(key.to_owned())
            .or_insert_with(|| build() as Arc<dyn Any + Send + Sync>);
        Arc::clone(entry)
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("memo key '{key}' holds a different type"))
    }

    /// Number of memoized entries.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("memo poisoned").len()
    }

    /// Whether the memo holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn builds_exactly_once_per_key() {
        let memo = Memo::new();
        let builds = AtomicU32::new(0);
        for _ in 0..3 {
            let v = memo.get_or_build("k", || {
                builds.fetch_add(1, Ordering::SeqCst);
                Arc::new(41u64 + 1)
            });
            assert_eq!(*v, 42);
        }
        assert_eq!(builds.load(Ordering::SeqCst), 1);
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn clones_share_entries() {
        let memo = Memo::new();
        let clone = memo.clone();
        let _ = memo.get_or_build("x", || Arc::new(String::from("v")));
        let v = clone.get_or_build("x", || -> Arc<String> { panic!("must reuse") });
        assert_eq!(&*v, "v");
    }

    #[test]
    fn concurrent_same_key_builds_once() {
        let memo = Memo::new();
        let builds = Arc::new(AtomicU32::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let memo = memo.clone();
                let builds = Arc::clone(&builds);
                s.spawn(move || {
                    let v = memo.get_or_build("k", || {
                        builds.fetch_add(1, Ordering::SeqCst);
                        Arc::new(7u32)
                    });
                    assert_eq!(*v, 7);
                });
            }
        });
        assert_eq!(builds.load(Ordering::SeqCst), 1);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_mismatch_panics() {
        let memo = Memo::new();
        let _ = memo.get_or_build("k", || Arc::new(1u32));
        let _ = memo.get_or_build("k", || Arc::new(1u64));
    }
}
