//! Quantitative §12 taxonomy: realized covert-channel capacity against
//! every trigger-algorithm class.
//!
//! §12 of the paper argues *qualitatively* which RowHammer defense classes
//! introduce LeakyHammer channels: exact trackers yield a reliable
//! channel, approximate trackers a noisy one, random/time-based triggers
//! and overlapped-latency actions none. This experiment tests those
//! predictions *experimentally*: the same binary sender/receiver protocol
//! runs against one defense of each class — with the attack parameters an
//! adaptive attacker would pick per defense — and the measured capacity is
//! compared against [`lh_defenses::taxonomy::profile_of`]'s prediction.
//!
//! | Defense | Class (trigger, visibility) | Prediction |
//! |---|---|---|
//! | PRAC | exact, observable | full channel |
//! | Graphene / Hydra / CoMeT | approximate, observable | degraded |
//! | BlockHammer | approximate, observable (delay) | degraded |
//! | PARA | random, observable | degraded |
//! | FR-RFM | time-based, observable | none |
//! | MINT | random, overlapped | none |

use serde::{Deserialize, Serialize};

use lh_analysis::{ChannelResult, MessagePattern};
use lh_attacks::LatencyClassifier;
use lh_defenses::taxonomy::{profile_of, ChannelRisk};
use lh_defenses::{DefenseConfig, DefenseKind};
use lh_dram::{DramTiming, Span};
use lh_sim::SimConfig;

use crate::experiment::covert::{run_covert, ChannelKind, CovertOptions};
use crate::Scale;

/// The RowHammer threshold every taxonomy defense is provisioned for.
///
/// 256 puts the PRAC-family back-off threshold at its paper value region
/// (`scaled_nbo(256)` = 120 ≈ the assumed `NBO` = 128) so event cadences
/// are comparable across defenses.
pub const TAXONOMY_NRH: u32 = 256;

/// One taxonomy measurement.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TaxonomyPoint {
    /// The defense attacked.
    pub kind: DefenseKind,
    /// The §12 prediction for this defense (`None` for the no-defense
    /// control row, which measures the residual contention channel).
    pub predicted: Option<ChannelRisk>,
    /// Measured capacity with only the attack pair running (Kbps).
    pub quiet_kbps: f64,
    /// Measured error probability, quiet.
    pub quiet_error: f64,
    /// Measured capacity with the §6.3 noise microbenchmark at 40 %
    /// intensity co-running (Kbps) — approximate trackers share state
    /// with the noise and degrade more than exact trackers.
    pub noisy_kbps: f64,
    /// Measured error probability, noisy.
    pub noisy_error: f64,
}

impl TaxonomyPoint {
    /// Whether the measurement agrees with the §12 prediction, using the
    /// thresholds documented on [`run_taxonomy`]. Only the *quiet*
    /// condition counts: under heavy noise the generic detection band
    /// also picks up bank-contention latencies, a channel that exists
    /// without any defense (the control row) and is out of scope
    /// (footnote 9 of the paper).
    pub fn agrees(&self) -> bool {
        match self.predicted {
            None => true,
            Some(ChannelRisk::None) => self.quiet_kbps < 1.0,
            Some(ChannelRisk::Degraded) => self.quiet_kbps >= 0.1,
            Some(ChannelRisk::Full) => self.quiet_kbps >= 10.0,
        }
    }
}

/// Attack parameters an adaptive attacker picks for `kind`.
///
/// The observable event differs per defense class, so the receiver's
/// detection band does too:
///
/// * PRAC — the multi-RFM back-off (≥ the refresh band);
/// * victim-refresh trackers (Graphene/Hydra/CoMeT/PARA) — an in-bank
///   ACT+PRE pair per victim, which lands in the single-RFM band
///   (above a plain conflict, below a periodic refresh);
/// * FR-RFM / MINT — the attacker's best guess is the RFM band (there is
///   nothing defense-triggered to see, which is the point);
/// * BlockHammer — the throttle delay, orders of magnitude above any
///   DRAM event, with a correspondingly longer window.
fn options_for(kind: DefenseKind, bits: Vec<u8>, seed: u64) -> CovertOptions {
    let timing = DramTiming::ddr5_4800();
    let defense = DefenseConfig::for_threshold(kind, TAXONOMY_NRH, &timing);
    let base_kind = if kind == DefenseKind::Prac {
        ChannelKind::Prac
    } else {
        ChannelKind::Rfm
    };
    let mut opts = CovertOptions::new(base_kind, bits);
    let cls = LatencyClassifier::from_timing(&timing, opts.think);
    opts.sim = SimConfig::paper_default(defense);
    opts.seed = seed;
    match kind {
        DefenseKind::Prac => {
            // The paper's §6.3 configuration, untouched.
        }
        DefenseKind::Graphene | DefenseKind::Hydra | DefenseKind::Comet | DefenseKind::Para => {
            opts.window = Span::from_us(25);
            opts.detection_band = Some((cls.conflict_max, cls.rfm_max));
            opts.trecv = Some(1);
        }
        DefenseKind::FrRfm | DefenseKind::Mint => {
            opts.window = Span::from_us(25);
            opts.detection_band = Some((cls.conflict_max, cls.rfm_max));
            opts.trecv = Some(3);
        }
        DefenseKind::BlockHammer => {
            // The throttle delay is ~tens of µs: stretch the window so a
            // stalled probe still completes inside it, and detect by the
            // stall itself.
            opts.window = Span::from_us(250);
            opts.detection_band = Some((Span::from_us(5), Span::MAX));
            opts.trecv = Some(1);
        }
        DefenseKind::None => {
            // Control row: same attack parameters as the tracker kinds,
            // measuring the defenseless contention channel through the
            // same detection band.
            opts.window = Span::from_us(25);
            opts.detection_band = Some((cls.conflict_max, cls.rfm_max));
            opts.trecv = Some(3);
        }
        DefenseKind::Prfm | DefenseKind::PracRiac | DefenseKind::PracBank => {
            unreachable!("not part of the taxonomy set")
        }
    }
    opts
}

fn measure(
    kind: DefenseKind,
    bits_per_pattern: usize,
    noise: Option<f64>,
    seed: u64,
) -> ChannelResult {
    let mut results = Vec::new();
    for (i, pattern) in [MessagePattern::Checkered0, MessagePattern::Checkered1]
        .iter()
        .enumerate()
    {
        let mut opts = options_for(
            kind,
            pattern.bits(bits_per_pattern),
            seed ^ ((i as u64) << 9),
        );
        opts.noise_intensity = noise;
        results.push(run_covert(&opts).result);
    }
    ChannelResult::merge(results.iter())
}

/// Runs the taxonomy study: one covert-channel attempt per §12 defense
/// class, quiet and under 40 % noise, plus a *no-defense control* row
/// that measures the residual bank-contention channel through the same
/// detection band (whatever the noisy columns show beyond the control is
/// defense-induced; the rest is the footnote-9 contention channel).
///
/// Agreement thresholds (see [`TaxonomyPoint::agrees`]): a `None`-risk
/// defense must measure under 1 Kbps quiet; a `Full`-risk defense at
/// least 10 Kbps quiet; a `Degraded`-risk defense shows a
/// usable-but-noisy channel (≥ 0.1 Kbps).
///
/// ## Measured refinement of §12
///
/// BlockHammer persistently measures ~0 despite its `Degraded`
/// prediction: its preventive action is *huge* (a multi-µs ACT delay) but
/// its decision state spans a 16 ms epoch, so one blacklisting decision
/// shadows hundreds of transmission windows — the modulation bandwidth is
/// about one bit per epoch (~0.06 Kbps), which rounds to zero at
/// covert-channel timescales. The taxonomy's "approximate triggers only
/// add noise" is right about observability but misses this *temporal*
/// dimension; the report keeps the disagreement visible on purpose.
pub fn run_taxonomy(scale: Scale, seed: u64) -> Vec<TaxonomyPoint> {
    taxonomy_kinds()
        .into_iter()
        .map(|kind| taxonomy_point(kind, taxonomy_bits(kind, scale), seed))
        .collect()
}

/// The defense classes the measured taxonomy covers, control row first.
pub fn taxonomy_kinds() -> Vec<DefenseKind> {
    let mut kinds = vec![DefenseKind::None];
    kinds.extend(DefenseKind::taxonomy_set());
    kinds
}

/// Measures one defense class (quiet + 40 % noise); exposed so the
/// harness can run the classes in parallel. `bits_per_pattern` should
/// come from [`run_taxonomy`]'s per-kind budget (BlockHammer runs a
/// quarter of the bits because of its 10× window).
pub fn taxonomy_point(kind: DefenseKind, bits_per_pattern: usize, seed: u64) -> TaxonomyPoint {
    let quiet = measure(kind, bits_per_pattern, None, seed);
    let noisy = measure(kind, bits_per_pattern, Some(40.0), seed ^ 0xff);
    TaxonomyPoint {
        kind,
        predicted: profile_of(kind).map(|p| p.channel_risk()),
        quiet_kbps: quiet.capacity_kbps(),
        quiet_error: quiet.error_probability(),
        noisy_kbps: noisy.capacity_kbps(),
        noisy_error: noisy.error_probability(),
    }
}

/// The per-kind message budget [`run_taxonomy`] uses at `scale`.
pub fn taxonomy_bits(kind: DefenseKind, scale: Scale) -> usize {
    let b = scale.message_bits() / 4;
    if kind == DefenseKind::BlockHammer {
        (b / 4).max(8)
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_risk_defenses_have_no_channel() {
        for kind in [DefenseKind::FrRfm, DefenseKind::Mint] {
            let r = measure(kind, 12, None, 3);
            assert!(
                r.capacity_kbps() < 1.0,
                "{kind}: predicted None but measured {:.1} Kbps",
                r.capacity_kbps()
            );
        }
    }

    #[test]
    fn exact_tracker_has_a_full_channel() {
        let r = measure(DefenseKind::Prac, 16, None, 3);
        assert!(
            r.capacity_kbps() > 10.0,
            "PRAC predicted Full but measured {:.1} Kbps",
            r.capacity_kbps()
        );
    }

    #[test]
    fn approximate_trackers_leak_but_degrade() {
        for kind in [DefenseKind::Graphene, DefenseKind::Comet] {
            let quiet = measure(kind, 16, None, 5);
            assert!(
                quiet.capacity_kbps() > 0.1,
                "{kind}: the §12 channel must exist, measured {:.2} Kbps",
                quiet.capacity_kbps()
            );
        }
    }

    #[test]
    fn options_cover_every_taxonomy_kind() {
        for kind in DefenseKind::taxonomy_set() {
            let opts = options_for(kind, vec![1, 0], 1);
            assert_eq!(opts.sim.defense.kind, kind);
            assert!(opts.window >= Span::from_us(20));
        }
    }
}
