//! Reproducibility: identical seeds give bit-identical results across the
//! entire stack; different seeds actually change randomized components.

use leakyhammer::experiment::covert::{run_covert, ChannelKind, CovertOptions};
use lh_analysis::MessagePattern;
use lh_defenses::DefenseConfig;
use lh_dram::{BankId, DramAddr, Span, Time};
use lh_sim::{LoopProcess, SimConfig, System};

#[test]
fn covert_outcomes_are_reproducible() {
    let run = |seed: u64| {
        let mut opts = CovertOptions::new(ChannelKind::Prac, MessagePattern::Checkered0.bits(24));
        opts.noise_intensity = Some(60.0);
        opts.seed = seed;
        opts.sim.seed = seed;
        let out = run_covert(&opts);
        (out.decoded, out.per_window_events, out.backoffs)
    };
    assert_eq!(run(7), run(7), "same seed, same transmission");
}

#[test]
fn riac_randomization_depends_on_seed() {
    let backoffs = |seed: u64| {
        let mut cfg = SimConfig::paper_default(DefenseConfig::riac(64));
        cfg.seed = seed;
        let mut sys = System::new(cfg).unwrap();
        let bank = BankId::new(0, 0, 0, 0);
        let a = sys.mapping().encode(DramAddr::new(bank, 10, 0));
        let b = sys.mapping().encode(DramAddr::new(bank, 20, 0));
        sys.add_process(
            Box::new(LoopProcess::new(vec![a, b], 400, Span::from_ns(30))),
            1,
            Time::ZERO,
        );
        sys.run_until(Time::from_ms(1));
        // The exact alert times depend on the random counter inits, so
        // the per-row counter values after the run form a fingerprint.
        (
            sys.controller().stats().backoffs,
            sys.controller().device().counters().value(0, 10),
        )
    };
    assert_eq!(backoffs(1), backoffs(1), "deterministic per seed");
    let differs = (2..8).any(|s| backoffs(s) != backoffs(1));
    assert!(differs, "different seeds must shift RIAC behaviour");
}

#[test]
fn fingerprint_collection_is_reproducible() {
    use leakyhammer::experiment::fingerprint::{collect_one, CollectOptions};
    use leakyhammer::Scale;
    let opts = CollectOptions::for_scale(Scale::Quick, 5);
    let a = collect_one(2, 99, &opts);
    let b = collect_one(2, 99, &opts);
    assert_eq!(
        a, b,
        "same site + trace seed must reproduce the fingerprint"
    );
}
