//! Physical-address ↔ DRAM-location mapping.
//!
//! Real controllers hash physical address bits onto channel/rank/bank
//! coordinates; attackers reverse-engineer the mapping to colocate rows
//! (§5.2 of the paper cites DRAMA-style reverse engineering). The
//! simulator plays the role of the allocator, so attacks use
//! [`AddressMapping::encode`] to construct addresses that land in chosen
//! banks and rows — the in-simulation analogue of memory massaging.

use serde::{Deserialize, Serialize};

use lh_dram::{BankId, DramAddr, Geometry, LINE_BYTES};

/// Bit-field address mapping schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MappingScheme {
    /// `Row : Rank : BankGroup : Bank : Column : LineOffset` (MSB → LSB):
    /// consecutive cache lines walk a row, adjacent rows stay in one bank.
    RowBankCol,
    /// As [`MappingScheme::RowBankCol`], but the bank and bank-group bits
    /// are XOR-ed with the low row bits (a common controller hash that
    /// spreads conflicting rows over banks).
    XorBank,
}

/// A concrete mapping: a scheme bound to a geometry.
///
/// # Examples
///
/// ```
/// use lh_dram::{DramAddr, Geometry};
/// use lh_memctrl::{AddressMapping, MappingScheme};
///
/// let m = AddressMapping::new(MappingScheme::RowBankCol, Geometry::paper_default());
/// let addr = m.decode(0x1234_5678);
/// assert_eq!(m.encode(addr), 0x1234_5640); // line-aligned
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMapping {
    scheme: MappingScheme,
    geometry: Geometry,
}

fn log2(v: u32) -> u32 {
    debug_assert!(
        v.is_power_of_two(),
        "geometry dimensions must be powers of two"
    );
    v.trailing_zeros()
}

impl AddressMapping {
    /// Binds `scheme` to `geometry`.
    ///
    /// # Panics
    ///
    /// Panics if any geometry dimension is not a power of two (bit-field
    /// mappings require it).
    pub fn new(scheme: MappingScheme, geometry: Geometry) -> AddressMapping {
        assert!(
            geometry.cols_per_row().is_power_of_two()
                && geometry.banks_per_group().is_power_of_two()
                && geometry.bank_groups_per_rank().is_power_of_two()
                && geometry.ranks_per_channel().is_power_of_two()
                && geometry.rows_per_bank().is_power_of_two()
                && geometry.channels().is_power_of_two(),
            "bit-field mappings require power-of-two dimensions"
        );
        AddressMapping { scheme, geometry }
    }

    /// The bound geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// Decodes a physical address to a DRAM location.
    ///
    /// Addresses beyond the channel capacity wrap around.
    pub fn decode(&self, phys: u64) -> DramAddr {
        let g = &self.geometry;
        let mut a = phys / LINE_BYTES;
        let col = (a & (g.cols_per_row() as u64 - 1)) as u32;
        a /= g.cols_per_row() as u64;
        let mut bank = (a & (g.banks_per_group() as u64 - 1)) as u32;
        a /= g.banks_per_group() as u64;
        let mut bank_group = (a & (g.bank_groups_per_rank() as u64 - 1)) as u32;
        a /= g.bank_groups_per_rank() as u64;
        let rank = (a & (g.ranks_per_channel() as u64 - 1)) as u32;
        a /= g.ranks_per_channel() as u64;
        let row = (a % g.rows_per_bank() as u64) as u32;
        if self.scheme == MappingScheme::XorBank {
            bank ^= row & (g.banks_per_group() - 1);
            bank_group ^= (row >> log2(g.banks_per_group())) & (g.bank_groups_per_rank() - 1);
        }
        DramAddr::new(BankId::new(0, rank, bank_group, bank), row, col)
    }

    /// Encodes a DRAM location back to a (line-aligned) physical address.
    ///
    /// This is the exact inverse of [`AddressMapping::decode`], used by
    /// attack code to place data in chosen banks and rows.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the geometry.
    pub fn encode(&self, addr: DramAddr) -> u64 {
        let g = &self.geometry;
        assert!(g.contains(addr), "address {addr} outside geometry");
        let (mut bank, mut bank_group) = (addr.bank.bank, addr.bank.bank_group);
        if self.scheme == MappingScheme::XorBank {
            bank ^= addr.row & (g.banks_per_group() - 1);
            bank_group ^= (addr.row >> log2(g.banks_per_group())) & (g.bank_groups_per_rank() - 1);
        }
        let mut a = addr.row as u64;
        a = a * g.ranks_per_channel() as u64 + addr.bank.rank as u64;
        a = a * g.bank_groups_per_rank() as u64 + bank_group as u64;
        a = a * g.banks_per_group() as u64 + bank as u64;
        a = a * g.cols_per_row() as u64 + addr.col as u64;
        a * LINE_BYTES
    }
}

impl Default for AddressMapping {
    fn default() -> AddressMapping {
        AddressMapping::new(MappingScheme::RowBankCol, Geometry::paper_default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_both_schemes() {
        for scheme in [MappingScheme::RowBankCol, MappingScheme::XorBank] {
            let m = AddressMapping::new(scheme, Geometry::paper_default());
            for phys in [
                0u64,
                64,
                4096,
                1 << 20,
                (1 << 30) + 8 * 64,
                (1 << 35) + 12345 * 64,
            ] {
                let line = phys & !(LINE_BYTES - 1);
                let addr = m.decode(phys);
                assert!(m.geometry().contains(addr), "{scheme:?} {phys:#x}");
                assert_eq!(m.encode(addr), line, "{scheme:?} {phys:#x}");
            }
        }
    }

    #[test]
    fn consecutive_lines_walk_a_row() {
        let m = AddressMapping::default();
        let a0 = m.decode(0);
        let a1 = m.decode(64);
        assert_eq!(a0.bank, a1.bank);
        assert_eq!(a0.row, a1.row);
        assert_eq!(a1.col, a0.col + 1);
    }

    #[test]
    fn row_crossing_changes_bank_before_row() {
        // After one full row of lines, RowBankCol moves to the next bank.
        let m = AddressMapping::default();
        let g = *m.geometry();
        let row_bytes = g.row_bytes();
        let a = m.decode(row_bytes);
        assert_eq!(a.row, 0);
        assert_eq!(a.bank.bank, 1);
    }

    #[test]
    fn xor_scheme_spreads_same_bank_bits_across_rows() {
        let g = Geometry::paper_default();
        let plain = AddressMapping::new(MappingScheme::RowBankCol, g);
        let xor = AddressMapping::new(MappingScheme::XorBank, g);
        // Same "bank field" bits, successive rows: plain keeps one bank,
        // xor walks banks.
        let stride = g.row_bytes() * g.banks_per_channel() as u64; // one row step
        let plain_banks: Vec<u32> = (0..4).map(|i| plain.decode(i * stride).bank.bank).collect();
        let xor_banks: Vec<u32> = (0..4).map(|i| xor.decode(i * stride).bank.bank).collect();
        assert!(plain_banks.windows(2).all(|w| w[0] == w[1]));
        assert!(xor_banks.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn encode_decode_exhaustive_on_tiny() {
        let g = Geometry::tiny();
        for scheme in [MappingScheme::RowBankCol, MappingScheme::XorBank] {
            let m = AddressMapping::new(scheme, g);
            for phys in (0..g.channel_bytes()).step_by(64 * 37) {
                let addr = m.decode(phys);
                assert_eq!(m.encode(addr), phys & !(LINE_BYTES - 1));
            }
        }
    }

    #[test]
    #[should_panic]
    fn encode_rejects_out_of_range() {
        let m = AddressMapping::new(MappingScheme::RowBankCol, Geometry::tiny());
        let bad = DramAddr::new(BankId::new(0, 0, 0, 0), 1 << 20, 0);
        let _ = m.encode(bad);
    }
}
