//! DDR5 timing parameters.
//!
//! All parameters are [`Span`]s (integer picoseconds). The defaults model a
//! DDR5-4800-class part, with the RowHammer-defense-related windows taken
//! from the values the LeakyHammer paper quotes from JESD79-5c:
//! `tRFM` = 350 ns (per-RFM preventive-refresh window used by PRAC
//! back-offs), `tABO_ACT` = 180 ns (window of normal traffic after an
//! alert), and an alert propagation delay of ≈5 ns after `PRE`.

use serde::{Deserialize, Serialize};

use crate::error::DramError;
use crate::time::Span;

/// The complete set of timing constraints the device and controller obey.
///
/// # Examples
///
/// ```
/// use lh_dram::DramTiming;
///
/// let t = DramTiming::ddr5_4800();
/// assert_eq!(t.t_rc, t.t_ras + t.t_rp);
/// t.validate().unwrap();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramTiming {
    /// Clock period.
    pub t_ck: Span,
    /// ACT-to-RD/WR delay (row to column command).
    pub t_rcd: Span,
    /// PRE-to-ACT delay (row precharge).
    pub t_rp: Span,
    /// ACT-to-PRE minimum (row active time / full restore).
    pub t_ras: Span,
    /// ACT-to-ACT minimum, same bank (`t_ras + t_rp`).
    pub t_rc: Span,
    /// CAS (read) latency.
    pub t_cl: Span,
    /// CAS write latency.
    pub t_cwl: Span,
    /// Data-burst duration for one cache line.
    pub t_burst: Span,
    /// Column-to-column delay, same bank group.
    pub t_ccd_l: Span,
    /// Column-to-column delay, different bank group.
    pub t_ccd_s: Span,
    /// ACT-to-ACT delay, same bank group.
    pub t_rrd_l: Span,
    /// ACT-to-ACT delay, different bank group.
    pub t_rrd_s: Span,
    /// Four-activate window (rolling limit on ACTs per rank).
    pub t_faw: Span,
    /// Read-to-precharge delay.
    pub t_rtp: Span,
    /// Write recovery time (end of write burst to PRE).
    pub t_wr: Span,
    /// Write-to-read turnaround, same bank group.
    pub t_wtr_l: Span,
    /// Write-to-read turnaround, different bank group.
    pub t_wtr_s: Span,
    /// All-bank refresh cycle time.
    pub t_rfc: Span,
    /// Average periodic-refresh interval.
    pub t_refi: Span,
    /// Refresh window: every row refreshed once per `t_refw`.
    pub t_refw: Span,
    /// RFM cycle time: window granted to the device per RFM command.
    pub t_rfm: Span,
    /// Delay from `PRE` to the ABO (alert back-off) signal reaching the
    /// memory controller.
    pub t_abo_delay: Span,
    /// Window of normal traffic the controller may serve after observing
    /// the ABO signal, before the recovery RFMs must start.
    pub t_abo_act: Span,
    /// Command-bus occupancy per command (DDR5 commands are two cycles).
    pub t_cmd: Span,
}

impl DramTiming {
    /// DDR5-4800-class timings (16 Gb device; values in ns):
    ///
    /// | param | value | | param | value |
    /// |---|---|---|---|---|
    /// | tRCD | 16 | | tFAW | 13.33 |
    /// | tRP | 16 | | tRTP | 7.5 |
    /// | tRAS | 32 | | tWR | 30 |
    /// | tRC | 48 | | tRFC | 295 |
    /// | tCL | 16 | | tREFI | 3900 |
    /// | tBURST | 3.33 | | tREFW | 32 ms |
    /// | tCCD_L/S | 5 / 3.33 | | tRFM | 350 |
    /// | tRRD_L/S | 5 / 3.33 | | tABO_ACT | 180 |
    ///
    /// `tRFC` = 410 ns models a 32 Gb device; together with the
    /// always-postponed double refresh this reproduces the paper's
    /// ~1 µs refresh-delayed request latency (§6.2), the reference point
    /// the back-off detection threshold sits above.
    pub fn ddr5_4800() -> DramTiming {
        DramTiming {
            t_ck: Span::from_ps(416),
            t_rcd: Span::from_ns(16),
            t_rp: Span::from_ns(16),
            t_ras: Span::from_ns(32),
            t_rc: Span::from_ns(48),
            t_cl: Span::from_ns(16),
            t_cwl: Span::from_ns(14),
            t_burst: Span::from_ps(3_333),
            t_ccd_l: Span::from_ns(5),
            t_ccd_s: Span::from_ps(3_333),
            t_rrd_l: Span::from_ns(5),
            t_rrd_s: Span::from_ps(3_333),
            t_faw: Span::from_ps(13_333),
            t_rtp: Span::from_ps(7_500),
            t_wr: Span::from_ns(30),
            t_wtr_l: Span::from_ns(10),
            t_wtr_s: Span::from_ps(2_500),
            t_rfc: Span::from_ns(410),
            t_refi: Span::from_ns(3_900),
            t_refw: Span::from_ms(32),
            t_rfm: Span::from_ns(350),
            t_abo_delay: Span::from_ns(5),
            t_abo_act: Span::from_ns(180),
            t_cmd: Span::from_ps(832),
        }
    }

    /// Checks internal consistency of the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidTiming`] naming the violated relation if
    /// e.g. `t_rc < t_ras + t_rp` or any parameter that must be non-zero is
    /// zero.
    pub fn validate(&self) -> Result<(), DramError> {
        let nonzero: [(&str, Span); 8] = [
            ("t_ck", self.t_ck),
            ("t_rcd", self.t_rcd),
            ("t_rp", self.t_rp),
            ("t_ras", self.t_ras),
            ("t_rfc", self.t_rfc),
            ("t_refi", self.t_refi),
            ("t_refw", self.t_refw),
            ("t_rfm", self.t_rfm),
        ];
        for (name, v) in nonzero {
            if v.is_zero() {
                return Err(DramError::InvalidTiming {
                    relation: format!("{name} must be > 0"),
                });
            }
        }
        if self.t_rc < self.t_ras + self.t_rp {
            return Err(DramError::InvalidTiming {
                relation: "t_rc >= t_ras + t_rp".to_owned(),
            });
        }
        if self.t_refi >= self.t_refw {
            return Err(DramError::InvalidTiming {
                relation: "t_refi < t_refw".to_owned(),
            });
        }
        if self.t_ccd_s > self.t_ccd_l || self.t_rrd_s > self.t_rrd_l {
            return Err(DramError::InvalidTiming {
                relation: "short bank-group delays must not exceed long ones".to_owned(),
            });
        }
        Ok(())
    }

    /// Latency from issuing `RD` to the last data beat (tCL + tBURST).
    pub fn read_latency(&self) -> Span {
        self.t_cl + self.t_burst
    }

    /// Latency from issuing `WR` to the last data beat (tCWL + tBURST).
    pub fn write_latency(&self) -> Span {
        self.t_cwl + self.t_burst
    }

    /// The "back-off latency" of a PRAC recovery that issues `n` RFM
    /// commands back-to-back (the paper quotes 1400 ns for n = 4).
    pub fn backoff_latency(&self, n: u32) -> Span {
        self.t_rfm * n as u64
    }
}

impl Default for DramTiming {
    fn default() -> DramTiming {
        DramTiming::ddr5_4800()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr5_defaults_are_valid() {
        DramTiming::ddr5_4800().validate().unwrap();
    }

    #[test]
    fn paper_backoff_latency_is_1400ns_for_4_rfms() {
        let t = DramTiming::ddr5_4800();
        assert_eq!(t.backoff_latency(4), Span::from_ns(1400));
        assert_eq!(t.backoff_latency(1), Span::from_ns(350));
    }

    #[test]
    fn validate_rejects_inconsistent_trc() {
        let mut t = DramTiming::ddr5_4800();
        t.t_rc = Span::from_ns(10);
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_refresh() {
        let mut t = DramTiming::ddr5_4800();
        t.t_refi = Span::ZERO;
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_swapped_bank_group_delays() {
        let mut t = DramTiming::ddr5_4800();
        t.t_ccd_s = t.t_ccd_l + Span::from_ns(1);
        assert!(t.validate().is_err());
    }

    #[test]
    fn read_write_latencies() {
        let t = DramTiming::ddr5_4800();
        assert_eq!(t.read_latency(), t.t_cl + t.t_burst);
        assert_eq!(t.write_latency(), t.t_cwl + t.t_burst);
    }
}
