//! Per-defense scheduler wake budgets, gated by a recorded metrics
//! snapshot.
//!
//! This began life as a single FR-RFM regression test: with a dense
//! fixed-rate RFM schedule (FR-RFM provisioned for `N_RH` = 64 has a
//! period of ~1.26 µs), the pre-redesign controller degenerated into
//! picosecond-granularity re-arming whenever a wake deadline had passed
//! but the due command was still transiently illegal — one quick-scale
//! four-core mix over 150 µs of simulated time cost **100,578,972**
//! `service()` invocations (~75 s of release CPU). The total-time
//! scheduling redesign brought the same mix to **15,853** wakes while
//! issuing the identical command stream.
//!
//! The same pathology could regress in *any* defense's maintenance
//! schedule, so the test now runs the identical four-core mix under
//! every [`DefenseKind`] and pins each scheduler's exact
//! `sim.service_wakes` count — read through the `lh-obs` deterministic
//! metrics channel, not the raw stats structs, so the observability
//! pipeline itself is exercised against ground truth — to the recorded
//! snapshot in `crates/bench/snapshots/metrics/wake_budgets.quick.json`.
//!
//! Wake counts are a pure function of the simulated computation, so
//! exact equality is the right gate: any drift is either a deliberate
//! scheduler change (regenerate with `LH_UPDATE_SNAPSHOTS=1`) or a bug.

use lh_defenses::{DefenseConfig, DefenseKind};
use lh_dram::{DramTiming, Span, Time};
use lh_harness::Json;
use lh_memctrl::AddressMapping;
use lh_sim::SystemBuilder;
use lh_workloads::{four_core_mixes, SyntheticApp};

/// The pre-redesign FR-RFM wake count for this exact scenario (measured
/// at the commit that introduced the original regression test).
const BASELINE_WAKES: u64 = 100_578_972;

/// Deterministic spin cap: no defense's scheduler should come within an
/// order of magnitude of the old pathology on this 150 µs mix.
const MAX_WAKES: u64 = 1_000_000;

/// Committed wake-budget snapshot (repo-relative; the umbrella crate's
/// manifest dir is the repo root).
const SNAPSHOT: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/crates/bench/snapshots/metrics/wake_budgets.quick.json"
);

/// Runs the quick-scale four-core mix scenario under `kind` and returns
/// the deterministic metrics the simulation flushed into `lh-obs`,
/// alongside the controller's directly observed wake count.
fn run_mix(kind: DefenseKind) -> (lh_obs::Metrics, u64) {
    let mut direct_wakes = 0;
    let ((), metrics) = lh_obs::record(|| {
        let timing = DramTiming::ddr5_4800();
        let defense = DefenseConfig::for_threshold(kind, 64, &timing);
        let mut sys = SystemBuilder::new(defense)
            .seed(7)
            .disturb_tracking(false)
            .build()
            .expect("valid configuration");
        let mapping: AddressMapping = *sys.mapping();
        let span = Span::from_us(150); // Scale::Quick perf span
        let end = Time::ZERO + span;
        let mix = &four_core_mixes(2, 7)[0];
        for (i, profile) in mix.iter().enumerate() {
            let app = SyntheticApp::new(profile.clone(), mapping, 7 ^ (i as u64 * 31), end);
            let mlp = app.mlp();
            sys.add_process(Box::new(app), mlp, Time::ZERO);
        }
        sys.run_until(end + Span::from_us(5));
        direct_wakes = sys.controller().stats().service_calls;
        // Dropping the system inside the recording scope flushes its
        // counters into `metrics`.
    });
    (metrics, direct_wakes)
}

#[test]
fn per_defense_wake_budgets_match_recorded_snapshot() {
    let mut budgets = Json::object();
    for kind in DefenseKind::all() {
        let (metrics, direct_wakes) = run_mix(kind);
        let wakes = metrics.get("sim.service_wakes");
        // The obs channel must agree with the controller's own stats —
        // this pins the delta-flush plumbing to ground truth.
        assert_eq!(
            wakes,
            direct_wakes,
            "{}: recorded metrics disagree with CtrlStats::service_calls",
            kind.label()
        );
        assert!(
            wakes <= MAX_WAKES,
            "{}: scheduler woke {wakes} times (cap {MAX_WAKES}); \
             the 1-ps re-arm pathology is back",
            kind.label()
        );
        assert!(
            wakes * 10 <= BASELINE_WAKES,
            "{}: less than a 10x reduction over the pre-redesign FR-RFM baseline",
            kind.label()
        );

        if kind == DefenseKind::FrRfm {
            // The scheduling redesign must not change *what* the
            // controller does — only when it wakes. These counts are
            // the pre-redesign values, read back through the metrics
            // channel.
            assert_eq!(
                metrics.get("sim.cmd.rfm"),
                476,
                "fixed-rate RFM stream changed"
            );
            assert_eq!(metrics.get("sim.cmd.ref"), 76, "refresh schedule changed");
            assert_eq!(
                metrics.get("sim.cmd.rd"),
                5021,
                "served request stream changed"
            );
        }

        budgets.set(kind.label(), wakes);
    }

    if std::env::var("LH_UPDATE_SNAPSHOTS").as_deref() == Ok("1") {
        std::fs::create_dir_all(std::path::Path::new(SNAPSHOT).parent().unwrap())
            .expect("create snapshot dir");
        std::fs::write(SNAPSHOT, budgets.to_pretty() + "\n").expect("write snapshot");
        eprintln!("updated {SNAPSHOT}");
        return;
    }

    let recorded = std::fs::read_to_string(SNAPSHOT).unwrap_or_else(|e| {
        panic!(
            "missing wake-budget snapshot {SNAPSHOT} ({e}); regenerate with LH_UPDATE_SNAPSHOTS=1"
        )
    });
    let recorded = lh_harness::json::parse(&recorded).expect("snapshot parses");
    for kind in DefenseKind::all() {
        let want = recorded[kind.label()].as_u64().unwrap_or_else(|| {
            panic!(
                "{}: missing from wake-budget snapshot; regenerate with LH_UPDATE_SNAPSHOTS=1",
                kind.label()
            )
        });
        let got = budgets[kind.label()].as_u64().expect("just recorded");
        assert_eq!(
            got,
            want,
            "{}: scheduler wake count drifted from the recorded budget \
             ({want} recorded, {got} measured); if the scheduling change is \
             deliberate, regenerate with LH_UPDATE_SNAPSHOTS=1",
            kind.label()
        );
    }
}
