//! Memory requests and completions.

use serde::{Deserialize, Serialize};

use lh_dram::{DramAddr, Time};

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A demand load (the requester waits for the data).
    Read,
    /// A store / writeback (posted; the requester does not wait).
    Write,
}

/// A request entering the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemRequest {
    /// Unique id assigned by the issuer.
    pub id: u64,
    /// Decoded DRAM location.
    pub addr: DramAddr,
    /// Read or write.
    pub kind: AccessKind,
    /// When the request arrived at the controller.
    pub arrival: Time,
    /// Identifier of the issuing agent (core / process), for attribution.
    pub source: u32,
}

/// A finished request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Completion {
    /// The request id.
    pub id: u64,
    /// The issuing agent.
    pub source: u32,
    /// Read or write.
    pub kind: AccessKind,
    /// The request's DRAM location.
    pub addr: DramAddr,
    /// Arrival time at the controller.
    pub arrival: Time,
    /// When the data burst finished (read data available / write retired).
    pub finished: Time,
}

impl Completion {
    /// Queueing + service latency inside the memory system.
    pub fn latency(&self) -> lh_dram::Span {
        self.finished - self.arrival
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lh_dram::{BankId, Span};

    #[test]
    fn completion_latency() {
        let c = Completion {
            id: 1,
            source: 0,
            kind: AccessKind::Read,
            addr: DramAddr::new(BankId::new(0, 0, 0, 0), 1, 2),
            arrival: Time::from_ns(100),
            finished: Time::from_ns(164),
        };
        assert_eq!(c.latency(), Span::from_ns(64));
    }
}
