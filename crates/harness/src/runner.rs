//! The orchestrator: cache lookup → topological parallel unit
//! execution → ordered merge, with per-run statistics and per-unit
//! completion events.

use std::sync::Arc;
use std::time::Instant;

use crate::cache::{CacheKey, DiskCache};
use crate::job::{Job, JobContext};
use crate::json::Json;
use crate::metrics::{
    metrics_block, metrics_from_json, metrics_to_json, unwrap_entry_events, wrap_entry_events,
};
use crate::pool;
use crate::progress::{Progress, UnitOutcome};
use crate::seed::derive_seed;

/// Unit fingerprint of a job's merged (post-`finish`) result. Includes
/// the unit list digest so a changed decomposition invalidates the
/// merged entry even at an unchanged job version.
///
/// Public because every executor that shares the cache — the in-process
/// [`Runner`] and the `lh-coord` coordinator — must address merged
/// entries identically for warm paths to interoperate.
pub fn merged_fingerprint(units: &[String]) -> String {
    let mut h = crate::hash::Hasher::new();
    for u in units {
        h.field(u);
    }
    format!("merged:{}", h.digest())
}

/// The cache key of one unit (or, with [`merged_fingerprint`] as the
/// unit, of the merged result) of `job` under `ctx`.
///
/// The single source of truth for cache addressing: the [`Runner`], the
/// `lh-coord` coordinator's warm-path probe, and distributed workers'
/// private cache writes all construct keys through here, so entries
/// written by any executor replay under every other.
///
/// `events` is whether the entry carries a flight-event log; it is an
/// explicit parameter — never read from the process-global recording
/// switch — so an executor whose switch lags its assignment (e.g. a
/// worker process) cannot write an event-less entry under an
/// events-expected key. Event-bearing entries live under a distinct
/// fingerprint, so a plain run never replays (or misses on) a
/// recording run's entries and vice versa.
pub fn unit_key(job: &dyn Job, unit: &str, ctx: &JobContext, events: bool) -> CacheKey {
    let fingerprint = if events {
        format!("{}+events", job.fingerprint())
    } else {
        job.fingerprint()
    };
    CacheKey {
        experiment: job.id().to_owned(),
        unit: unit.to_owned(),
        scale: ctx.scale.as_str().to_owned(),
        seed: ctx.seed,
        job_version: job.version(),
        fingerprint,
    }
}

/// Probes the cache for every unit up front and prunes the dependency
/// edges of hits: a replayed unit consumes no inputs, so on a partially
/// warm cache it neither waits for its dependencies nor re-consumes
/// their outputs. Returns `(hits, effective deps)`.
///
/// Hits are returned as stored — the `{"metrics": ..., "result": ...}`
/// wrapper of [`crate::metrics::wrap_entry`] — so callers split them
/// with [`crate::metrics::unwrap_entry`].
///
/// The one warm-path semantic, shared by the [`Runner`] and the
/// `lh-coord` coordinator so the two executors can never drift in what
/// they replay or how they prune.
pub fn probe_unit_cache(
    job: &dyn Job,
    units: &[String],
    deps: &[Vec<usize>],
    cache: Option<&DiskCache>,
    ctx: &JobContext,
    events: bool,
) -> (Vec<Option<Json>>, Vec<Vec<usize>>) {
    let hits: Vec<Option<Json>> = units
        .iter()
        .map(|unit| cache.and_then(|c| c.get(&unit_key(job, unit, ctx, events))))
        .collect();
    let eff_deps = deps
        .iter()
        .enumerate()
        .map(|(i, d)| {
            if hits[i].is_some() {
                Vec::new()
            } else {
                d.clone()
            }
        })
        .collect();
    (hits, eff_deps)
}

/// One completed unit, reported to a [`UnitObserver`] the moment it
/// finishes — from a worker thread, in completion (not unit) order.
#[derive(Debug, Clone)]
pub struct UnitEvent {
    /// Experiment id.
    pub experiment: &'static str,
    /// The unit's label.
    pub unit: String,
    /// The unit's index within the job.
    pub index: usize,
    /// Whether the result was replayed from the cache.
    pub cached: bool,
    /// Wall-clock milliseconds spent executing (0 for cache hits).
    pub wall_ms: u128,
    /// Deterministic counters recorded while the unit ran (replayed
    /// from the cache entry for hits), as a sorted-key JSON object.
    pub metrics: Json,
    /// The unit's JSON result.
    pub result: Json,
}

/// Callback invoked as each unit completes. Called concurrently from
/// worker threads; implementations serialize their own output.
pub type UnitObserver = Arc<dyn Fn(&UnitEvent) + Send + Sync>;

/// Execution options for a [`Runner`].
#[derive(Clone, Default)]
pub struct RunnerOptions {
    /// Worker threads for unit execution (0 = autodetect).
    pub jobs: usize,
    /// Result cache; `None` disables caching entirely.
    pub cache: Option<DiskCache>,
    /// Emit progress lines on stderr.
    pub progress: bool,
    /// Streaming hook: called as each unit completes.
    pub observer: Option<UnitObserver>,
}

impl std::fmt::Debug for RunnerOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunnerOptions")
            .field("jobs", &self.jobs)
            .field("cache", &self.cache)
            .field("progress", &self.progress)
            .field("observer", &self.observer.as_ref().map(|_| "Fn"))
            .finish()
    }
}

/// Statistics of one experiment run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Units the job decomposed into.
    pub units_total: usize,
    /// Units served from the cache.
    pub units_cached: usize,
    /// Units executed in this run.
    pub units_executed: usize,
    /// Whether the merged result was served from the cache (in which
    /// case no units were even enumerated for execution).
    pub merged_cached: bool,
    /// Wall-clock milliseconds for the whole experiment.
    pub wall_ms: u128,
}

/// One experiment's merged result plus run statistics.
#[derive(Debug, Clone)]
pub struct ExperimentRun {
    /// Experiment id.
    pub id: &'static str,
    /// The merged (post-`finish`) result.
    pub merged: Json,
    /// The deterministic metrics block
    /// (`{"units": {label: counters}, "totals": counters}`, see
    /// [`metrics_block`]): per-unit counters in unit order plus their
    /// counter-wise sum. Byte-stable across `--jobs`, cache states and
    /// worker counts, unlike [`RunStats`].
    pub metrics: Json,
    /// The assembled flight-event log (`Some` only when recording was
    /// enabled): one experiment header line, then each unit's rendered
    /// log in unit order. Byte-identical across `--jobs`, worker
    /// counts and cache replay, like `metrics`.
    pub events: Option<String>,
    /// What it took.
    pub stats: RunStats,
}

/// Executes jobs according to [`RunnerOptions`].
#[derive(Debug, Default)]
pub struct Runner {
    options: RunnerOptions,
}

impl Runner {
    /// A runner with the given options.
    pub fn new(options: RunnerOptions) -> Runner {
        Runner { options }
    }

    /// The effective worker count.
    pub fn jobs(&self) -> usize {
        if self.options.jobs == 0 {
            pool::default_jobs()
        } else {
            self.options.jobs
        }
    }

    fn key(&self, job: &dyn Job, unit: &str, ctx: &JobContext, events: bool) -> CacheKey {
        unit_key(job, unit, ctx, events)
    }

    /// Runs one experiment end to end.
    ///
    /// Units execute topologically: a unit runs only once every unit
    /// in its [`Job::deps`] list has a result (cached or freshly
    /// computed), and receives those results in declaration order.
    /// Cache-replayed units consume no inputs, so their dependency
    /// edges are pruned before scheduling.
    ///
    /// # Errors
    ///
    /// Fails without executing anything if the job's dependency edges
    /// do not form a DAG (a cycle, an out-of-range or a self
    /// dependency). Cache write failures are reported on stderr, not
    /// fatal; a poisoned unit execution panics instead.
    pub fn run(&self, job: &dyn Job, ctx: &JobContext) -> Result<ExperimentRun, String> {
        let started = Instant::now();
        // Sampled once per run so keys, capture and assembly agree even
        // if the process-global switch is toggled concurrently.
        let events_on = lh_obs::flight::enabled();
        let units = job.units(ctx);
        let merged_key = self.key(job, &merged_fingerprint(&units), ctx, events_on);

        if let Some(cache) = &self.options.cache {
            if let Some(entry) = cache.get(&merged_key) {
                let (metrics, merged, events) = unwrap_entry_events(entry);
                let stats = RunStats {
                    units_total: units.len(),
                    units_cached: units.len(),
                    units_executed: 0,
                    merged_cached: true,
                    wall_ms: started.elapsed().as_millis(),
                };
                if self.options.progress {
                    crate::progress::note(format_args!(
                        "{}: merged result cached, nothing to do",
                        job.id()
                    ));
                }
                return Ok(ExperimentRun {
                    id: job.id(),
                    merged,
                    metrics,
                    events,
                    stats,
                });
            }
        }

        let deps: Vec<Vec<usize>> = (0..units.len()).map(|i| job.deps(i, ctx)).collect();
        pool::validate_dag(&deps).map_err(|e| format!("{}: invalid unit DAG: {e}", job.id()))?;
        let cache = self.options.cache.as_ref();

        let (hits, eff_deps) = probe_unit_cache(job, &units, &deps, cache, ctx, events_on);

        let progress = Progress::new(job.id(), units.len(), self.options.progress);
        let observer = self.options.observer.as_ref();
        let results: Vec<(Json, Json, bool, Option<String>)> =
            pool::run_dag(self.jobs(), &eff_deps, |i, dep_results| {
                let unit = &units[i];
                let unit_started = Instant::now();
                let (result, metrics, cached, events) = match &hits[i] {
                    Some(hit) => {
                        let (metrics, result, events) = unwrap_entry_events(hit.clone());
                        progress.unit_done(unit, UnitOutcome::Cached);
                        (result, metrics, true, events)
                    }
                    None => {
                        let dep_outputs: Vec<Json> = dep_results
                            .into_iter()
                            .map(|(json, _, _, _)| json)
                            .collect();
                        let _span = lh_obs::Span::enter("unit.run", "harness");
                        let ((result, recorded), flight) = lh_obs::flight::capture(|| {
                            lh_obs::record(|| {
                                job.run_unit(
                                    i,
                                    derive_seed(job.id(), i, ctx.seed),
                                    &dep_outputs,
                                    ctx,
                                )
                            })
                        });
                        let events = events_on.then(|| flight.render(unit, i));
                        let metrics = metrics_to_json(&recorded);
                        if let Some(c) = cache {
                            let entry =
                                wrap_entry_events(metrics.clone(), result.clone(), events.clone());
                            if let Err(e) = c.put(&self.key(job, unit, ctx, events_on), &entry) {
                                crate::progress::note(format_args!(
                                    "warning: cache write failed for {}/{unit}: {e}",
                                    job.id()
                                ));
                            }
                        }
                        progress
                            .unit_done(unit, UnitOutcome::Ran(unit_started.elapsed().as_millis()));
                        (result, metrics, false, events)
                    }
                };
                // Lifetime accounting: the process-global registry sums
                // every completed unit's counters (cached or fresh) for
                // dashboards; the deterministic channel never reads it.
                lh_obs::Registry::global().absorb(&metrics_from_json(&metrics));
                if let Some(observe) = observer {
                    observe(&UnitEvent {
                        experiment: job.id(),
                        unit: unit.clone(),
                        index: i,
                        cached,
                        wall_ms: if cached {
                            0
                        } else {
                            unit_started.elapsed().as_millis()
                        },
                        metrics: metrics.clone(),
                        result: result.clone(),
                    });
                }
                (result, metrics, cached, events)
            })
            .expect("deps validated above; pruning edges cannot introduce a cycle");

        let units_cached = results.iter().filter(|(_, _, cached, _)| *cached).count();
        let units_executed = results.len() - units_cached;
        let per_unit: Vec<Json> = results.iter().map(|(_, m, _, _)| m.clone()).collect();
        let metrics = metrics_block(&units, &per_unit);
        // Assemble the experiment event log in unit order — the same
        // order regardless of which units ran, replayed, or on which
        // thread they completed.
        let events = events_on.then(|| {
            let mut blob = lh_obs::flight::experiment_header(
                job.id(),
                ctx.scale.as_str(),
                ctx.seed,
                units.len(),
            );
            for (_, _, _, unit_events) in &results {
                if let Some(e) = unit_events {
                    blob.push_str(e);
                }
            }
            blob
        });
        let merged = job.finish(results.into_iter().map(|(r, _, _, _)| r).collect(), ctx);
        if let Some(c) = cache {
            let entry = wrap_entry_events(metrics.clone(), merged.clone(), events.clone());
            if let Err(e) = c.put(&merged_key, &entry) {
                crate::progress::note(format_args!(
                    "warning: cache write failed for {} merge: {e}",
                    job.id()
                ));
            }
        }
        progress.finished(units_cached, units_executed);

        Ok(ExperimentRun {
            id: job.id(),
            merged,
            metrics,
            events,
            stats: RunStats {
                units_total: units.len(),
                units_cached,
                units_executed,
                merged_cached: false,
                wall_ms: started.elapsed().as_millis(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::ScaleLevel;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A job whose unit results depend only on (index, seed), with an
    /// execution counter to observe cache skips.
    struct Counting {
        executions: AtomicUsize,
    }

    impl Job for Counting {
        fn id(&self) -> &'static str {
            "counting"
        }
        fn description(&self) -> &'static str {
            "cache/parallel test job"
        }
        fn units(&self, _ctx: &JobContext) -> Vec<String> {
            (0..12).map(|i| format!("unit:{i}")).collect()
        }
        fn run_unit(&self, unit: usize, seed: u64, _deps: &[Json], _ctx: &JobContext) -> Json {
            self.executions.fetch_add(1, Ordering::SeqCst);
            Json::object().with("unit", unit).with("seed", seed)
        }
        fn finish(&self, units: Vec<Json>, _ctx: &JobContext) -> Json {
            Json::object().with("points", Json::Array(units))
        }
        fn render_text(&self, merged: &Json, _ctx: &JobContext) -> String {
            merged.to_compact()
        }
    }

    /// A two-layer job: units 0..3 are "sources", unit 3 sums its three
    /// dependencies' values; every unit's result folds in the delivered
    /// dependency outputs so bit-identity covers the delivery path.
    struct Diamond {
        executions: AtomicUsize,
        version: u32,
    }

    impl Diamond {
        fn new(version: u32) -> Diamond {
            Diamond {
                executions: AtomicUsize::new(0),
                version,
            }
        }
    }

    impl Job for Diamond {
        fn id(&self) -> &'static str {
            "diamond"
        }
        fn description(&self) -> &'static str {
            "dependency test job"
        }
        fn units(&self, _ctx: &JobContext) -> Vec<String> {
            vec!["src:0".into(), "src:1".into(), "src:2".into(), "sum".into()]
        }
        fn deps(&self, unit: usize, _ctx: &JobContext) -> Vec<usize> {
            if unit == 3 {
                vec![0, 1, 2]
            } else {
                Vec::new()
            }
        }
        fn run_unit(&self, unit: usize, seed: u64, deps: &[Json], _ctx: &JobContext) -> Json {
            self.executions.fetch_add(1, Ordering::SeqCst);
            let dep_sum: u64 = deps.iter().filter_map(|d| d["value"].as_u64()).sum();
            Json::object()
                .with("value", (unit as u64 + 1) * (seed % 97))
                .with("deps_seen", deps.len())
                .with("dep_sum", dep_sum)
        }
        fn finish(&self, units: Vec<Json>, _ctx: &JobContext) -> Json {
            Json::object().with("points", Json::Array(units))
        }
        fn render_text(&self, merged: &Json, _ctx: &JobContext) -> String {
            merged.to_compact()
        }
        fn version(&self) -> u32 {
            self.version
        }
    }

    /// A job whose dependency edges form a cycle.
    struct Cyclic;

    impl Job for Cyclic {
        fn id(&self) -> &'static str {
            "cyclic"
        }
        fn description(&self) -> &'static str {
            "invalid DAG test job"
        }
        fn units(&self, _ctx: &JobContext) -> Vec<String> {
            vec!["a".into(), "b".into()]
        }
        fn deps(&self, unit: usize, _ctx: &JobContext) -> Vec<usize> {
            vec![1 - unit]
        }
        fn run_unit(&self, _unit: usize, _seed: u64, _deps: &[Json], _ctx: &JobContext) -> Json {
            unreachable!("cyclic jobs must be rejected before execution")
        }
        fn finish(&self, _units: Vec<Json>, _ctx: &JobContext) -> Json {
            unreachable!()
        }
        fn render_text(&self, _merged: &Json, _ctx: &JobContext) -> String {
            unreachable!()
        }
    }

    fn ctx() -> JobContext {
        JobContext::new(ScaleLevel::Quick, 7)
    }

    fn temp_cache(tag: &str) -> DiskCache {
        let dir = std::env::temp_dir().join(format!(
            "lh-harness-runner-test-{}-{tag}",
            std::process::id()
        ));
        let cache = DiskCache::new(dir);
        cache.clear().unwrap();
        cache
    }

    #[test]
    fn parallel_output_is_bit_identical_to_serial() {
        let job = Counting {
            executions: AtomicUsize::new(0),
        };
        let serial = Runner::new(RunnerOptions {
            jobs: 1,
            ..Default::default()
        })
        .run(&job, &ctx())
        .unwrap();
        for jobs in [2, 8] {
            let parallel = Runner::new(RunnerOptions {
                jobs,
                ..Default::default()
            })
            .run(&job, &ctx())
            .unwrap();
            assert_eq!(serial.merged, parallel.merged);
        }
    }

    #[test]
    fn dependent_units_get_outputs_and_stay_deterministic() {
        let serial = Runner::new(RunnerOptions {
            jobs: 1,
            ..Default::default()
        })
        .run(&Diamond::new(1), &ctx())
        .unwrap();
        let sum = &serial.merged["points"][3];
        assert_eq!(sum["deps_seen"].as_u64(), Some(3));
        let expected: u64 = (0..3)
            .filter_map(|i| serial.merged["points"][i]["value"].as_u64())
            .sum();
        assert_eq!(sum["dep_sum"].as_u64(), Some(expected));
        for jobs in [2, 8] {
            let parallel = Runner::new(RunnerOptions {
                jobs,
                ..Default::default()
            })
            .run(&Diamond::new(1), &ctx())
            .unwrap();
            assert_eq!(serial.merged, parallel.merged, "jobs={jobs}");
        }
    }

    #[test]
    fn dependency_outputs_are_delivered_from_the_cache_too() {
        let cache = temp_cache("dep-cache");
        let mk = || {
            Runner::new(RunnerOptions {
                jobs: 4,
                cache: Some(cache.clone()),
                ..Default::default()
            })
        };
        let cold_job = Diamond::new(1);
        let cold = mk().run(&cold_job, &ctx()).unwrap();
        assert_eq!(cold_job.executions.load(Ordering::SeqCst), 4);

        // Evict everything except the three source units: the merged
        // entry and the dependent are gone, so the dependent re-runs —
        // and must receive the cache-replayed source outputs.
        let keep: Vec<String> = ["src:0", "src:1", "src:2"]
            .iter()
            .map(|unit| {
                CacheKey {
                    experiment: "diamond".into(),
                    unit: (*unit).into(),
                    scale: "quick".into(),
                    seed: 7,
                    job_version: 1,
                    fingerprint: String::new(),
                }
                .digest()
            })
            .collect();
        for entry in std::fs::read_dir(cache.dir().join("diamond")).unwrap() {
            let path = entry.unwrap().path();
            let stem = path.file_stem().unwrap().to_str().unwrap().to_owned();
            if !keep.contains(&stem) {
                std::fs::remove_file(&path).unwrap();
            }
        }

        let warm_job = Diamond::new(1);
        let warm = mk().run(&warm_job, &ctx()).unwrap();
        assert_eq!(
            warm_job.executions.load(Ordering::SeqCst),
            1,
            "only the dependent re-runs"
        );
        assert_eq!(warm.stats.units_cached, 3);
        assert_eq!(
            warm.merged, cold.merged,
            "cache-delivered dependency outputs must reproduce the cold result"
        );
        cache.clear().unwrap();
    }

    #[test]
    fn cyclic_deps_are_rejected_with_a_clear_error() {
        let err = Runner::new(RunnerOptions::default())
            .run(&Cyclic, &ctx())
            .unwrap_err();
        assert!(
            err.contains("cyclic") && err.contains("cycle"),
            "error must name the job and the cycle: {err}"
        );
    }

    #[test]
    fn version_bump_invalidates_surgically() {
        let cache = temp_cache("surgical");
        let mk = |jobs| {
            Runner::new(RunnerOptions {
                jobs,
                cache: Some(cache.clone()),
                ..Default::default()
            })
        };

        // Warm both jobs.
        let counting = Counting {
            executions: AtomicUsize::new(0),
        };
        let diamond = Diamond::new(1);
        mk(4).run(&counting, &ctx()).unwrap();
        mk(4).run(&diamond, &ctx()).unwrap();
        assert_eq!(counting.executions.load(Ordering::SeqCst), 12);
        assert_eq!(diamond.executions.load(Ordering::SeqCst), 4);

        // Bump only the diamond job's version: its units re-run, the
        // counting job stays fully cached.
        let bumped = Diamond::new(2);
        let rerun = mk(4).run(&bumped, &ctx()).unwrap();
        assert_eq!(
            bumped.executions.load(Ordering::SeqCst),
            4,
            "bumped job must re-execute all its units"
        );
        assert_eq!(rerun.stats.units_executed, 4);

        let counting2 = Counting {
            executions: AtomicUsize::new(0),
        };
        let warm = mk(4).run(&counting2, &ctx()).unwrap();
        assert!(warm.stats.merged_cached, "other jobs must stay cached");
        assert_eq!(counting2.executions.load(Ordering::SeqCst), 0);
        cache.clear().unwrap();
    }

    #[test]
    fn observer_sees_every_unit_exactly_once() {
        use std::sync::Mutex;
        let seen: Arc<Mutex<Vec<(usize, bool)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let job = Counting {
            executions: AtomicUsize::new(0),
        };
        Runner::new(RunnerOptions {
            jobs: 4,
            observer: Some(Arc::new(move |e: &UnitEvent| {
                sink.lock().unwrap().push((e.index, e.cached));
            })),
            ..Default::default()
        })
        .run(&job, &ctx())
        .unwrap();
        let mut events = seen.lock().unwrap().clone();
        events.sort_unstable();
        assert_eq!(
            events,
            (0..12).map(|i| (i, false)).collect::<Vec<_>>(),
            "one event per unit, all executed"
        );
    }

    #[test]
    fn warm_cache_skips_execution_and_preserves_output() {
        let cache = temp_cache("warm-cache");
        let job = Counting {
            executions: AtomicUsize::new(0),
        };
        let mk = |jobs| {
            Runner::new(RunnerOptions {
                jobs,
                cache: Some(cache.clone()),
                progress: false,
                observer: None,
            })
        };
        let cold = mk(4).run(&job, &ctx()).unwrap();
        assert_eq!(job.executions.load(Ordering::SeqCst), 12);
        assert_eq!(cold.stats.units_executed, 12);
        assert!(!cold.stats.merged_cached);

        let warm = mk(4).run(&job, &ctx()).unwrap();
        assert_eq!(
            job.executions.load(Ordering::SeqCst),
            12,
            "warm run must not execute"
        );
        assert!(warm.stats.merged_cached);
        assert_eq!(warm.merged, cold.merged);

        // A different seed misses the cache.
        let other = mk(4).run(&job, &JobContext { seed: 8, ..ctx() }).unwrap();
        assert_eq!(job.executions.load(Ordering::SeqCst), 24);
        assert_ne!(other.merged, cold.merged);
        cache.clear().unwrap();
    }
}
