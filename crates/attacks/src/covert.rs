//! LeakyHammer covert channels (§6.3, §7.3 of the paper).
//!
//! The sender and receiver synchronize on the wall clock in fixed-length
//! transmission windows:
//!
//! * **PRAC channel** — the sender transmits a logic-1 by hammering its
//!   private rows until the shared activation counters reach `NBO` and the
//!   receiver observes a back-off latency; a logic-0 by staying idle. Both
//!   sides stop accessing once they detect the back-off to avoid wasting
//!   counter budget (window 25 µs in the paper).
//! * **RFM channel** — the sender's activations push the per-bank PRFM
//!   counter past `TRFM` several times per window; the receiver counts
//!   RFM-class latencies and compares against `Trecv` (window 20 µs,
//!   `Trecv` = 3).
//! * **Multibit extension** (§6.3) — the sender modulates its access
//!   intensity so the back-off arrives after a symbol-specific number of
//!   receiver accesses.
//!
//! The sender and receiver are [`Process`]es; decoding happens outside
//! the simulated processes from the receiver's per-window observations.
//! [`CovertReceiver::decode_binary`] is the receiver's raw thresholded
//! view; everything richer — multibit amplitude demodulation,
//! pulse-position decoding, preamble synchronization, channel codecs —
//! lives in the `lh-link` link layer, which consumes the
//! [`WindowObservation`] stream this module produces.

use core::any::Any;

use serde::{Deserialize, Serialize};

use lh_dram::{Span, Time};
use lh_sim::{MemAccess, Process, ProcessStep};

/// Per-window observations recorded by the receiver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowObservation {
    /// High-latency events detected (≥ the configured threshold).
    pub events: u32,
    /// Receiver accesses completed before the first event (or all of
    /// them, if no event occurred).
    pub accesses_before_event: u32,
    /// Total receiver accesses completed in the window.
    pub accesses: u32,
}

/// §10.1 periodic-refresh filter.
///
/// When the back-off latency overlaps the refresh band (1-RFM back-offs),
/// the receiver cannot separate the two by magnitude. The paper's
/// modified attack filters by *cadence* instead: periodic refreshes
/// arrive on a strict `tREFI` grid, so a candidate event whose distance
/// from an earlier candidate is a small multiple of the refresh interval
/// (within `tolerance`) is classified as a refresh and not counted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RefreshFilterConfig {
    /// The periodic-refresh interval (`tREFI`, per rank).
    pub period: Span,
    /// Cadence-match tolerance.
    pub tolerance: Span,
}

impl RefreshFilterConfig {
    /// A filter for the given timing's `tREFI` with a tolerance that
    /// absorbs scheduling slack but stays well under the interval.
    pub fn from_timing(t: &lh_dram::DramTiming) -> RefreshFilterConfig {
        RefreshFilterConfig {
            period: t.t_refi,
            tolerance: t.t_rfc / 2,
        }
    }
}

/// Refresh-phase predictor driving the §10.1 filter.
///
/// The first in-band candidate anchors the predicted refresh grid
/// (conservatively treated as a refresh); later candidates within
/// `tolerance` of the rolled-forward prediction re-anchor the grid and
/// are filtered, everything else counts as a defense event. A back-off at
/// a random phase is misfiltered with probability
/// `2 × tolerance / period` (≈ 5 % at the default tolerance).
#[derive(Debug, Clone, Copy, Default)]
struct RefreshPhase {
    /// Next predicted refresh completion.
    next: Option<Time>,
}

impl RefreshPhase {
    /// Classifies the candidate at `t`; `true` means "periodic refresh,
    /// filter it".
    fn is_refresh(&mut self, t: Time, cfg: &RefreshFilterConfig) -> bool {
        let Some(mut p) = self.next else {
            self.next = Some(t + cfg.period);
            return true;
        };
        // Roll the prediction forward past unobserved refreshes.
        while p + cfg.tolerance < t {
            p += cfg.period;
        }
        // Now p ≥ t − tolerance; a match additionally needs p ≤ t + tol.
        if p <= t + cfg.tolerance {
            // Re-anchor on the observation to absorb scheduling drift.
            self.next = Some(t + cfg.period);
            true
        } else {
            self.next = Some(p);
            false
        }
    }
}

/// Covert-channel receiver configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReceiverConfig {
    /// Physical address of the receiver's private row (`RowR`).
    pub row_addr: u64,
    /// Transmission-window length.
    pub window: Span,
    /// Transmission start (both sides agree on it).
    pub start: Time,
    /// Number of windows (= symbols) to receive.
    pub n_windows: usize,
    /// Loop overhead per iteration.
    pub think: Span,
    /// Lower latency bound for counting an event.
    pub detect: Span,
    /// Upper latency bound for counting an event (exclusive). The RFM
    /// channel uses the RFM band's upper edge so periodic refreshes
    /// (~2×tRFC, above the band) are not miscounted; the PRAC channel
    /// uses `Span::MAX` since nothing is slower than a back-off.
    pub detect_max: Span,
    /// Stop accessing for the rest of a window once an event is seen
    /// (PRAC channel behaviour; the RFM channel keeps counting).
    pub sleep_after_detect: bool,
    /// §10.1 cadence-based refresh filtering (used when back-off and
    /// refresh latencies overlap and magnitude cannot separate them).
    pub refresh_filter: Option<RefreshFilterConfig>,
    /// Calibration lead-in: the receiver starts probing this long before
    /// `start`, feeding the refresh filter's phase predictor without
    /// recording observations — so the grid is locked before the first
    /// transmitted bit and a genuine event in window 0 is not mistaken
    /// for the anchor refresh.
    pub calibrate: Span,
}

/// The covert-channel receiver process.
#[derive(Debug, Clone)]
pub struct CovertReceiver {
    cfg: ReceiverConfig,
    obs: Vec<WindowObservation>,
    last: Option<Time>,
    detected_window: Option<usize>,
    /// Refresh-grid predictor for the §10.1 filter.
    ref_phase: RefreshPhase,
    /// Candidates the filter discarded as periodic refreshes.
    filtered_events: u32,
}

impl CovertReceiver {
    /// Creates a receiver.
    pub fn new(cfg: ReceiverConfig) -> CovertReceiver {
        CovertReceiver {
            obs: vec![WindowObservation::default(); cfg.n_windows],
            cfg,
            last: None,
            detected_window: None,
            ref_phase: RefreshPhase::default(),
            filtered_events: 0,
        }
    }

    /// Candidates discarded as periodic refreshes by the §10.1 filter.
    pub fn filtered_events(&self) -> u32 {
        self.filtered_events
    }

    /// The per-window observations (valid after the run).
    pub fn observations(&self) -> &[WindowObservation] {
        &self.obs
    }

    /// Binary decoding: bit = 1 iff at least `trecv` events were observed
    /// in the window.
    pub fn decode_binary(&self, trecv: u32) -> Vec<u8> {
        self.obs.iter().map(|o| (o.events >= trecv) as u8).collect()
    }

    fn window_of(&self, t: Time) -> Option<usize> {
        if t < self.cfg.start {
            return None;
        }
        let w = ((t - self.cfg.start) / self.cfg.window) as usize;
        (w < self.cfg.n_windows).then_some(w)
    }

    fn window_end(&self, w: usize) -> Time {
        self.cfg.start + self.cfg.window * (w as u64 + 1)
    }
}

impl Process for CovertReceiver {
    fn step(&mut self, now: Time) -> ProcessStep {
        let probe_from = if self.cfg.start - Time::ZERO >= self.cfg.calibrate {
            self.cfg.start - self.cfg.calibrate
        } else {
            Time::ZERO
        };
        if now < probe_from {
            self.last = None;
            return ProcessStep::SleepUntil(probe_from);
        }
        // Attribute the just-finished access to the window it *started*
        // in. The refresh filter sees every in-band candidate — including
        // calibration samples taken before the first window — so its grid
        // is locked by the time transmission begins.
        if let Some(last) = self.last.take() {
            let latency = now - last;
            let mut in_band = latency >= self.cfg.detect && latency < self.cfg.detect_max;
            if in_band {
                if let Some(filter) = self.cfg.refresh_filter {
                    if self.ref_phase.is_refresh(now, &filter) {
                        self.filtered_events += 1;
                        in_band = false;
                    }
                }
            }
            if let Some(w) = self.window_of(last) {
                let o = &mut self.obs[w];
                o.accesses += 1;
                if in_band {
                    if o.events == 0 {
                        o.accesses_before_event = o.accesses - 1;
                    }
                    o.events += 1;
                    if self.cfg.sleep_after_detect {
                        self.detected_window = Some(w);
                    }
                } else if o.events == 0 {
                    o.accesses_before_event = o.accesses;
                }
            }
        }
        if now < self.cfg.start {
            // Calibration probing continues at full rate.
            self.last = Some(now);
            return ProcessStep::Access(MemAccess::flushed_load(self.cfg.row_addr, self.cfg.think));
        }
        let Some(w) = self.window_of(now) else {
            return ProcessStep::Halt;
        };
        if self.detected_window == Some(w) {
            // Sleep out the rest of this window (PRAC channel).
            return ProcessStep::SleepUntil(self.window_end(w));
        }
        self.last = Some(now);
        ProcessStep::Access(MemAccess::flushed_load(self.cfg.row_addr, self.cfg.think))
    }

    fn label(&self) -> String {
        format!("covert-rx[{} windows]", self.cfg.n_windows)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Covert-channel sender configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SenderConfig {
    /// The sender's two private rows (`RowS1`, `RowS2`), accessed
    /// alternately to force row activations.
    pub rows: [u64; 2],
    /// Transmission-window length (must match the receiver).
    pub window: Span,
    /// Transmission start (must match the receiver).
    pub start: Time,
    /// Base loop overhead per iteration at full intensity.
    pub think: Span,
    /// Latency at which the sender itself recognizes a back-off and
    /// (if `stop_after_detect`) sleeps until the window ends.
    pub detect: Span,
    /// Stop hammering after detecting the preventive action (PRAC
    /// channel); the RFM channel hammers the whole window.
    pub stop_after_detect: bool,
    /// The symbol sequence to transmit (for binary channels these are the
    /// message bits).
    pub symbols: Vec<u8>,
    /// Per-symbol think time; `None` encodes an idle window (symbol 0).
    /// `intensity[s]` is used for symbol `s`.
    pub intensity: Vec<Option<Span>>,
}

impl SenderConfig {
    /// A binary sender: symbol 0 = idle, symbol 1 = hammer at `think`.
    pub fn binary(
        rows: [u64; 2],
        window: Span,
        start: Time,
        think: Span,
        detect: Span,
        stop_after_detect: bool,
        bits: Vec<u8>,
    ) -> SenderConfig {
        SenderConfig {
            rows,
            window,
            start,
            think,
            detect,
            stop_after_detect,
            symbols: bits,
            intensity: vec![None, Some(think)],
        }
    }
}

/// The covert-channel sender process.
#[derive(Debug, Clone)]
pub struct CovertSender {
    cfg: SenderConfig,
    i: usize,
    last: Option<Time>,
    detected_window: Option<usize>,
}

impl CovertSender {
    /// Creates a sender.
    ///
    /// # Panics
    ///
    /// Panics if a symbol has no entry in the intensity table.
    pub fn new(cfg: SenderConfig) -> CovertSender {
        assert!(
            cfg.symbols
                .iter()
                .all(|&s| (s as usize) < cfg.intensity.len()),
            "every symbol needs an intensity entry"
        );
        CovertSender {
            cfg,
            i: 0,
            last: None,
            detected_window: None,
        }
    }

    fn window_of(&self, t: Time) -> Option<usize> {
        if t < self.cfg.start {
            return None;
        }
        let w = ((t - self.cfg.start) / self.cfg.window) as usize;
        (w < self.cfg.symbols.len()).then_some(w)
    }

    fn window_end(&self, w: usize) -> Time {
        self.cfg.start + self.cfg.window * (w as u64 + 1)
    }
}

impl Process for CovertSender {
    fn step(&mut self, now: Time) -> ProcessStep {
        if now < self.cfg.start {
            return ProcessStep::SleepUntil(self.cfg.start);
        }
        // Sender-side back-off detection.
        if let Some(last) = self.last.take() {
            if now - last >= self.cfg.detect && self.cfg.stop_after_detect {
                if let Some(w) = self.window_of(last) {
                    self.detected_window = Some(w);
                }
            }
        }
        let Some(w) = self.window_of(now) else {
            return ProcessStep::Halt;
        };
        let symbol = self.cfg.symbols[w];
        let Some(think) = self.cfg.intensity[symbol as usize] else {
            // Idle symbol: sleep out the window.
            return ProcessStep::SleepUntil(self.window_end(w));
        };
        if self.detected_window == Some(w) {
            return ProcessStep::SleepUntil(self.window_end(w));
        }
        let addr = self.cfg.rows[self.i % 2];
        self.i += 1;
        self.last = Some(now);
        ProcessStep::Access(MemAccess::flushed_load(addr, think))
    }

    fn label(&self) -> String {
        format!("covert-tx[{} symbols]", self.cfg.symbols.len())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rx_cfg(n: usize) -> ReceiverConfig {
        ReceiverConfig {
            row_addr: 0x1000,
            window: Span::from_us(25),
            start: Time::from_us(10),
            n_windows: n,
            think: Span::from_ns(30),
            detect: Span::from_ns(1_000),
            detect_max: Span::MAX,
            sleep_after_detect: true,
            refresh_filter: None,
            calibrate: Span::ZERO,
        }
    }

    #[test]
    fn receiver_band_excludes_latencies_above_detect_max() {
        let mut cfg = rx_cfg(1);
        cfg.sleep_after_detect = false;
        cfg.detect = Span::from_ns(300);
        cfg.detect_max = Span::from_ns(600);
        let mut rx = CovertReceiver::new(cfg);
        let mut t = Time::from_us(10);
        let _ = rx.step(t);
        t += Span::from_ns(450); // in band
        let _ = rx.step(t);
        t += Span::from_ns(900); // refresh-class: above band
        let _ = rx.step(t);
        assert_eq!(rx.observations()[0].events, 1);
    }

    #[test]
    fn receiver_waits_for_start() {
        let mut rx = CovertReceiver::new(rx_cfg(2));
        assert_eq!(
            rx.step(Time::ZERO),
            ProcessStep::SleepUntil(Time::from_us(10))
        );
    }

    #[test]
    fn receiver_attributes_event_to_start_window() {
        let mut rx = CovertReceiver::new(rx_cfg(2));
        let _ = rx.step(Time::from_us(10)); // first access issued
                                            // Completion 1.5 us later: above threshold → event in window 0.
        let _ = rx.step(Time::from_us(10) + Span::from_ns(1_500));
        assert_eq!(rx.observations()[0].events, 1);
        assert_eq!(rx.observations()[0].accesses_before_event, 0);
        assert_eq!(rx.decode_binary(1), vec![1, 0]);
    }

    #[test]
    fn receiver_sleeps_out_window_after_detect() {
        let mut rx = CovertReceiver::new(rx_cfg(2));
        let _ = rx.step(Time::from_us(10));
        let step = rx.step(Time::from_us(10) + Span::from_ns(1_500));
        // Detected in window 0 → sleeps until its end (start + 25 us).
        assert_eq!(step, ProcessStep::SleepUntil(Time::from_us(35)));
    }

    #[test]
    fn receiver_counts_multiple_events_when_not_sleeping() {
        let mut cfg = rx_cfg(1);
        cfg.sleep_after_detect = false;
        cfg.detect = Span::from_ns(300);
        let mut rx = CovertReceiver::new(cfg);
        let mut t = Time::from_us(10);
        let _ = rx.step(t);
        for _ in 0..4 {
            t += Span::from_ns(400); // four RFM-ish latencies
            let step = rx.step(t);
            assert!(matches!(step, ProcessStep::Access(_)));
        }
        assert_eq!(rx.observations()[0].events, 4);
        assert_eq!(rx.decode_binary(3), vec![1]);
    }

    #[test]
    fn receiver_halts_after_all_windows() {
        let mut rx = CovertReceiver::new(rx_cfg(1));
        let _ = rx.step(Time::from_us(10));
        let step = rx.step(Time::from_us(40)); // past start + 25 us
        assert_eq!(step, ProcessStep::Halt);
    }

    #[test]
    fn sender_idles_on_zero_and_hammers_on_one() {
        let cfg = SenderConfig::binary(
            [0x2000, 0x4000],
            Span::from_us(25),
            Time::from_us(10),
            Span::from_ns(30),
            Span::from_ns(1_000),
            true,
            vec![0, 1],
        );
        let mut tx = CovertSender::new(cfg);
        // Window 0: bit 0 → sleeps until window end.
        assert_eq!(
            tx.step(Time::from_us(10)),
            ProcessStep::SleepUntil(Time::from_us(35))
        );
        // Window 1: bit 1 → alternating accesses.
        match tx.step(Time::from_us(35)) {
            ProcessStep::Access(a) => assert_eq!(a.addr, 0x2000),
            other => panic!("expected access, got {other:?}"),
        }
        match tx.step(Time::from_us(35) + Span::from_ns(150)) {
            ProcessStep::Access(a) => assert_eq!(a.addr, 0x4000),
            other => panic!("expected access, got {other:?}"),
        }
    }

    #[test]
    fn sender_stops_after_detecting_backoff() {
        let cfg = SenderConfig::binary(
            [0x2000, 0x4000],
            Span::from_us(25),
            Time::ZERO,
            Span::from_ns(30),
            Span::from_ns(1_000),
            true,
            vec![1],
        );
        let mut tx = CovertSender::new(cfg);
        let _ = tx.step(Time::ZERO);
        // The next step comes 1.5 us later: sender saw the back-off.
        let step = tx.step(Time::ZERO + Span::from_ns(1_500));
        assert_eq!(step, ProcessStep::SleepUntil(Time::from_us(25)));
    }

    #[test]
    fn refresh_phase_filters_the_grid_and_passes_offgrid_events() {
        let cfg = RefreshFilterConfig {
            period: Span::from_us(4),
            tolerance: Span::from_ns(200),
        };
        let mut phase = RefreshPhase::default();
        // First candidate anchors the grid (conservatively a refresh).
        assert!(phase.is_refresh(Time::from_us(10), &cfg));
        // On-grid candidates (±tolerance) filter.
        assert!(phase.is_refresh(Time::from_us(14), &cfg));
        assert!(phase.is_refresh(Time::from_us(18) + Span::from_ns(150), &cfg));
        // An off-grid candidate (a back-off) passes.
        assert!(!phase.is_refresh(Time::from_us(20), &cfg));
        // The grid survives the interleaved event.
        assert!(phase.is_refresh(Time::from_us(22) + Span::from_ns(200), &cfg));
    }

    #[test]
    fn refresh_phase_rolls_over_long_unobserved_gaps() {
        let cfg = RefreshFilterConfig {
            period: Span::from_us(4),
            tolerance: Span::from_ns(200),
        };
        let mut phase = RefreshPhase::default();
        assert!(phase.is_refresh(Time::from_us(10), &cfg));
        // 12 periods later (the receiver slept): still on-grid.
        assert!(phase.is_refresh(Time::from_us(58), &cfg));
        // Half a period off: an event.
        assert!(!phase.is_refresh(Time::from_us(64), &cfg));
    }

    #[test]
    fn receiver_with_filter_drops_cadenced_events_and_counts_the_rest() {
        let mut cfg = rx_cfg(1);
        cfg.window = Span::from_us(40);
        cfg.start = Time::ZERO;
        cfg.sleep_after_detect = false;
        cfg.detect = Span::from_ns(300);
        cfg.detect_max = Span::MAX;
        cfg.refresh_filter = Some(RefreshFilterConfig {
            period: Span::from_us(4),
            tolerance: Span::from_ns(200),
        });
        let mut rx = CovertReceiver::new(cfg);
        let mut t = Time::ZERO;
        let access_until = |rx: &mut CovertReceiver, t: &mut Time, target: Time| {
            // Fast accesses (60 ns) until `target`, then one slow one.
            while *t + Span::from_ns(60) < target {
                let _ = rx.step(*t);
                *t += Span::from_ns(60);
            }
            let _ = rx.step(*t);
            *t = target + Span::from_ns(500); // slow completion, in band
            let _ = rx.step(*t);
        };
        // Slow events at 4, 8, 12 µs (the refresh grid) and one at 14 µs.
        access_until(&mut rx, &mut t, Time::from_us(4));
        access_until(&mut rx, &mut t, Time::from_us(8));
        access_until(&mut rx, &mut t, Time::from_us(12));
        access_until(&mut rx, &mut t, Time::from_us(14));
        assert_eq!(rx.filtered_events(), 3, "grid events filtered");
        assert_eq!(rx.observations()[0].events, 1, "off-grid event counted");
    }

    #[test]
    #[should_panic]
    fn sender_rejects_symbol_without_intensity() {
        let cfg = SenderConfig {
            rows: [0, 64],
            window: Span::from_us(25),
            start: Time::ZERO,
            think: Span::from_ns(30),
            detect: Span::from_ns(1_000),
            stop_after_detect: true,
            symbols: vec![3],
            intensity: vec![None, Some(Span::from_ns(30))],
        };
        let _ = CovertSender::new(cfg);
    }
}
