//! # lh-attacks — the LeakyHammer attack programs
//!
//! Implementations of every attack the paper builds:
//!
//! * [`LatencyClassifier`] — the Fig. 2 latency bands (hit / conflict /
//!   RFM / refresh / back-off) an attacker uses to decode events;
//! * [`CovertSender`] / [`CovertReceiver`] — the window-synchronized
//!   covert channels over PRAC back-offs (§6.3) and PRFM RFMs (§7.3),
//!   including the multibit (ternary/quaternary) sender intensity
//!   tables; demodulation beyond the binary threshold lives in the
//!   `lh-link` link layer;
//! * [`NoiseProcess`] — the §6.3 noise-generator microbenchmark (Eq. 2);
//! * [`FingerprintProbe`] / [`Fingerprint`] — the §8 website
//!   fingerprinting routine (Listing 2) and its feature extraction;
//! * [`CounterLeakAttacker`] — the §9.1 activation-counter value leak;
//! * [`DramaSender`] / [`DramaReceiver`] — the DRAMA row-buffer baseline
//!   LeakyHammer is compared against in §9 and Table 3;
//! * [`ChannelLayout`] — row/bank placement helpers (memory massaging).
//!
//! ## Example: a 3-bit PRAC covert transmission
//!
//! ```
//! use lh_attacks::{ChannelLayout, CovertReceiver, CovertSender, LatencyClassifier,
//!                  ReceiverConfig, SenderConfig};
//! use lh_defenses::DefenseConfig;
//! use lh_dram::{Span, Time};
//! use lh_sim::SystemBuilder;
//!
//! let mut sys = SystemBuilder::new(DefenseConfig::prac(128)).build().unwrap();
//! let layout = ChannelLayout::default_bank(sys.mapping());
//! let cls = LatencyClassifier::from_timing(&lh_dram::DramTiming::ddr5_4800(), Span::from_ns(30));
//! let bits = vec![1, 0, 1];
//! let window = Span::from_us(25);
//! let tx = CovertSender::new(SenderConfig::binary(
//!     layout.sender_rows, window, Time::ZERO, Span::from_ns(30),
//!     cls.backoff_threshold(), true, bits.clone(),
//! ));
//! let rx = CovertReceiver::new(ReceiverConfig {
//!     row_addr: layout.receiver_row, window, start: Time::ZERO, n_windows: bits.len(),
//!     think: Span::from_ns(30), detect: cls.backoff_threshold(), detect_max: Span::MAX,
//!     sleep_after_detect: true, refresh_filter: None, calibrate: Span::ZERO,
//! });
//! sys.add_process(Box::new(tx), 1, Time::ZERO);
//! let rx_id = sys.add_process(Box::new(rx), 1, Time::ZERO);
//! sys.run_until(Time::ZERO + window * 4);
//! let decoded = sys.process_as::<CovertReceiver>(rx_id).unwrap().decode_binary(1);
//! assert_eq!(decoded, bits);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod classify;
mod counter_leak;
mod covert;
mod drama;
mod fingerprint;
mod layout;
mod noisegen;

pub use classify::{LatencyClass, LatencyClassifier};
pub use counter_leak::{CounterLeakAttacker, CounterLeakResult, CounterLeakVictim};
pub use covert::{
    CovertReceiver, CovertSender, ReceiverConfig, RefreshFilterConfig, SenderConfig,
    WindowObservation,
};
pub use drama::{DramaConfig, DramaReceiver, DramaSender};
pub use fingerprint::{Fingerprint, FingerprintProbe};
pub use layout::ChannelLayout;
pub use noisegen::NoiseProcess;

#[cfg(test)]
mod tests {
    use super::*;
    use lh_analysis::message::bits_of_str;
    use lh_defenses::DefenseConfig;
    use lh_dram::{DramTiming, Span, Time};
    use lh_sim::{SimConfig, SystemBuilder};

    const THINK: Span = Span::from_ns(30);

    fn classifier() -> LatencyClassifier {
        LatencyClassifier::from_timing(&DramTiming::ddr5_4800(), THINK)
    }

    /// Sets up a system and the standard sender/receiver pair; returns the
    /// decoded bits.
    fn run_channel(
        defense: DefenseConfig,
        bits: &[u8],
        window: Span,
        detect: Span,
        detect_max: Span,
        trecv: u32,
        sleep_after_detect: bool,
    ) -> Vec<u8> {
        let mut sys = SystemBuilder::new(defense).build().unwrap();
        let layout = ChannelLayout::default_bank(sys.mapping());
        let tx = CovertSender::new(SenderConfig::binary(
            layout.sender_rows,
            window,
            Time::ZERO,
            THINK,
            classifier().backoff_threshold(),
            sleep_after_detect,
            bits.to_vec(),
        ));
        let rx = CovertReceiver::new(ReceiverConfig {
            row_addr: layout.receiver_row,
            window,
            start: Time::ZERO,
            n_windows: bits.len(),
            think: THINK,
            detect,
            detect_max,
            sleep_after_detect,
            refresh_filter: None,
            calibrate: Span::ZERO,
        });
        sys.add_process(Box::new(tx), 1, Time::ZERO);
        let rx_id = sys.add_process(Box::new(rx), 1, Time::ZERO);
        sys.run_until(Time::ZERO + window * (bits.len() as u64 + 1));
        sys.process_as::<CovertReceiver>(rx_id)
            .unwrap()
            .decode_binary(trecv)
    }

    #[test]
    fn prac_channel_transmits_micro_error_free() {
        let bits = bits_of_str("MICRO");
        let decoded = run_channel(
            DefenseConfig::prac(128),
            &bits,
            Span::from_us(25),
            classifier().backoff_threshold(),
            Span::MAX,
            1,
            true,
        );
        assert_eq!(
            decoded, bits,
            "PRAC covert channel must decode MICRO exactly"
        );
    }

    #[test]
    fn rfm_channel_transmits_micro_error_free() {
        let bits = bits_of_str("MICRO");
        let cls = classifier();
        let decoded = run_channel(
            DefenseConfig::prfm(40),
            &bits,
            Span::from_us(20),
            cls.rfm_threshold(),
            cls.rfm_max,
            3,
            false,
        );
        assert_eq!(
            decoded, bits,
            "RFM covert channel must decode MICRO exactly"
        );
    }

    #[test]
    fn no_defense_means_no_channel() {
        // Without a RowHammer defense the receiver sees no back-off-class
        // events, so everything decodes to zero.
        let bits = bits_of_str("M");
        let decoded = run_channel(
            DefenseConfig::none(),
            &bits,
            Span::from_us(25),
            classifier().backoff_threshold(),
            Span::MAX,
            1,
            true,
        );
        assert_eq!(decoded, vec![0; 8]);
    }

    #[test]
    fn fr_rfm_closes_the_channel() {
        // Under FR-RFM, preventive actions happen on a fixed schedule:
        // 1) the PRAC-style decoder sees no back-off-class events at all,
        // and 2) the RFM-style decoder sees ≥Trecv events in *every*
        // window regardless of the transmitted bit — every window decodes
        // to the same symbol, i.e. zero information. (The residual
        // possibility of *missing* events under contention is the memory
        // contention channel the paper scopes out in footnote 9.)
        let t_rc = DramTiming::ddr5_4800().t_rc;
        let cls = classifier();
        let bits = bits_of_str("MICRO");
        let prac_style = run_channel(
            DefenseConfig::fr_rfm(64, t_rc),
            &bits,
            Span::from_us(25),
            cls.backoff_threshold(),
            Span::MAX,
            1,
            true,
        );
        assert_eq!(
            prac_style,
            vec![0; 40],
            "FR-RFM must produce no back-off events"
        );
        // 2) The RFM-band decoder's output carries (essentially) zero
        // information: error probability ≈ 0.5, i.e. the §11.4 claim that
        // FR-RFM reduces channel capacity by 100 %. (Whatever correlation
        // remains rides on row-buffer contention, which exists without
        // any defense — the DRAMA scope, excluded by footnote 9.)
        let rfm_style = run_channel(
            DefenseConfig::fr_rfm(64, t_rc),
            &bits,
            Span::from_us(25),
            cls.rfm_threshold(),
            cls.rfm_max,
            3,
            false,
        );
        let seconds = (Span::from_us(25) * 40).as_secs();
        let r = lh_analysis::ChannelResult::from_bits(&bits, &rfm_style, seconds);
        assert!(
            r.capacity() < 0.1 * r.raw_bit_rate,
            "FR-RFM must collapse capacity: e={:.2}, capacity {:.1} bps of {:.1} raw",
            r.error_probability(),
            r.capacity(),
            r.raw_bit_rate
        );
    }

    #[test]
    fn counter_leak_recovers_victim_activation_count() {
        let mut cfg = SimConfig::paper_default(DefenseConfig::prac(128));
        cfg.defense.prac.as_mut().unwrap().nbo = 128;
        let mut sys = SystemBuilder::from_config(cfg).build().unwrap();
        let layout = ChannelLayout::default_bank(sys.mapping());
        let secret = 60u32;
        // Victim activates the shared row `secret` times, finishing well
        // before the attacker starts at 40 us.
        let victim =
            CounterLeakVictim::new(layout.sender_rows[0], layout.sender_rows[1], secret, THINK);
        let attacker = CounterLeakAttacker::new(
            layout.sender_rows[0],
            layout.receiver_row,
            THINK,
            classifier().backoff_threshold(),
            Time::from_us(40),
        );
        sys.add_process(Box::new(victim), 1, Time::ZERO);
        let aid = sys.add_process(Box::new(attacker), 1, Time::ZERO);
        sys.run_until(Time::from_us(200));
        let result = sys
            .process_as::<CounterLeakAttacker>(aid)
            .unwrap()
            .result()
            .expect("attacker must observe a back-off");
        let estimate = result.estimate_victim(128);
        let err = estimate.abs_diff(secret);
        assert!(
            err <= 8,
            "estimated {estimate} vs secret {secret} (attacker did {} acts)",
            result.own_activations
        );
    }

    #[test]
    fn drama_baseline_works_without_any_defense() {
        let mut sys = SystemBuilder::new(DefenseConfig::none()).build().unwrap();
        let layout = ChannelLayout::default_bank(sys.mapping());
        let bits = bits_of_str("OK");
        let window = Span::from_us(4);
        let cls = classifier();
        let tx = DramaSender::new(
            layout.sender_rows[0],
            window,
            Time::ZERO,
            THINK,
            bits.clone(),
        );
        let rx = DramaReceiver::new(DramaConfig {
            row_addr: layout.receiver_row,
            window,
            start: Time::ZERO,
            n_windows: bits.len(),
            think: THINK,
            conflict_threshold: cls.hit_max,
        });
        sys.add_process(Box::new(tx), 1, Time::ZERO);
        let rx_id = sys.add_process(Box::new(rx), 1, Time::ZERO);
        sys.run_until(Time::ZERO + window * (bits.len() as u64 + 1));
        let decoded = sys.process_as::<DramaReceiver>(rx_id).unwrap().decode(0.3);
        assert_eq!(decoded, bits, "DRAMA row-buffer channel must work");
    }

    #[test]
    fn fingerprint_probe_avoids_triggering_backoffs() {
        // The probe alone (T = NBO-1 accesses per row, mostly row hits)
        // must not cause back-offs.
        let mut sys = SystemBuilder::new(DefenseConfig::prac(128))
            .build()
            .unwrap();
        let layout = ChannelLayout::default_bank(sys.mapping());
        let probe = FingerprintProbe::new(
            vec![layout.receiver_row, layout.noise_rows[0]],
            127,
            THINK,
            Time::from_us(300),
        );
        sys.add_process(Box::new(probe), 1, Time::ZERO);
        sys.run_until(Time::from_us(350));
        assert_eq!(
            sys.controller().stats().backoffs,
            0,
            "the probe must stay below the back-off threshold"
        );
    }

    #[test]
    fn fingerprint_probe_observes_other_processes_backoffs() {
        let mut sys = SystemBuilder::new(DefenseConfig::prac(128))
            .build()
            .unwrap();
        let layout = ChannelLayout::default_bank(sys.mapping());
        // A hammering "victim" in another bank triggers back-offs...
        let victim_rows = {
            let m = sys.mapping();
            let a = m.decode(layout.other_bank_row);
            [
                layout.other_bank_row,
                m.encode(lh_dram::DramAddr::new(a.bank, a.row + 7, 0)),
            ]
        };
        let hammer = NoiseProcess::new(victim_rows.to_vec(), Span::from_ns(30), Time::from_us(300));
        // ...the probe observes them from its own bank (channel-wide
        // blocking).
        let probe =
            FingerprintProbe::new(vec![layout.receiver_row], 127, THINK, Time::from_us(300));
        sys.add_process(Box::new(hammer), 1, Time::ZERO);
        let pid = sys.add_process(Box::new(probe), 1, Time::ZERO);
        sys.run_until(Time::from_us(350));
        assert!(
            sys.controller().stats().backoffs > 0,
            "victim must trigger back-offs"
        );
        let trace = sys.process_as::<FingerprintProbe>(pid).unwrap().trace();
        let fp = Fingerprint::from_trace(trace, &classifier(), Time::ZERO, Span::from_us(300));
        assert!(
            !fp.events.is_empty(),
            "the probe must observe the victim's back-offs cross-bank"
        );
    }
}
