//! Live progress reporting on stderr.
//!
//! Progress lines never touch stdout, so structured output stays
//! byte-deterministic no matter how reporting interleaves with work.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Writes one line to stderr, ignoring errors: progress must never
/// kill a run because the consumer closed the pipe (`... 2>&1 | head`).
pub(crate) fn note(line: std::fmt::Arguments<'_>) {
    use std::io::Write;
    let _ = writeln!(std::io::stderr(), "{line}");
}

/// How one unit was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitOutcome {
    /// Served from the result cache.
    Cached,
    /// Executed now, taking the given number of milliseconds.
    Ran(u128),
}

/// Counts completed units of one experiment and emits progress lines.
#[derive(Debug)]
pub struct Progress {
    experiment: &'static str,
    total: usize,
    done: AtomicUsize,
    enabled: bool,
    started: Instant,
}

impl Progress {
    /// A reporter for `total` units of `experiment`; silent when
    /// `enabled` is false.
    pub fn new(experiment: &'static str, total: usize, enabled: bool) -> Progress {
        Progress {
            experiment,
            total,
            done: AtomicUsize::new(0),
            enabled,
            started: Instant::now(),
        }
    }

    /// Records one completed unit.
    pub fn unit_done(&self, label: &str, outcome: UnitOutcome) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if !self.enabled {
            return;
        }
        let width = self.total.to_string().len();
        match outcome {
            UnitOutcome::Cached => note(format_args!(
                "[{done:>width$}/{}] {} {label} (cached)",
                self.total, self.experiment
            )),
            UnitOutcome::Ran(ms) => note(format_args!(
                "[{done:>width$}/{}] {} {label} ({ms} ms)",
                self.total, self.experiment
            )),
        }
    }

    /// Emits the experiment's closing line.
    pub fn finished(&self, cached_units: usize, executed_units: usize) {
        if !self.enabled {
            return;
        }
        note(format_args!(
            "{}: {} unit(s) done in {} ms ({cached_units} cached, {executed_units} executed)",
            self.experiment,
            self.total,
            self.started.elapsed().as_millis()
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_thread_safe() {
        let p = Progress::new("fig4", 100, false);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..25 {
                        p.unit_done("pt", UnitOutcome::Ran(1));
                    }
                });
            }
        });
        assert_eq!(p.done.load(Ordering::Relaxed), 100);
        p.finished(0, 100);
    }
}
