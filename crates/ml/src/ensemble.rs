//! Ensemble models: random forest, gradient boosting and AdaBoost.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::tree::{DecisionTree, RegressionTree, TreeConfig};
use crate::Classifier;

/// Random forest: bagged CART trees with per-split feature subsampling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForest {
    n_trees: usize,
    max_depth: usize,
    seed: u64,
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl RandomForest {
    /// Creates a forest of `n_trees` trees of depth `max_depth`.
    pub fn new(n_trees: usize, max_depth: usize, seed: u64) -> RandomForest {
        RandomForest {
            n_trees,
            max_depth,
            seed,
            trees: Vec::new(),
            n_classes: 0,
        }
    }
}

impl Default for RandomForest {
    fn default() -> RandomForest {
        RandomForest::new(30, 10, 17)
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize], n_classes: usize) {
        self.n_classes = n_classes;
        self.trees.clear();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mtry = (x[0].len() as f64).sqrt().ceil() as usize;
        for t in 0..self.n_trees {
            // Bootstrap sample.
            let bx_idx: Vec<usize> = (0..x.len()).map(|_| rng.gen_range(0..x.len())).collect();
            let bx: Vec<Vec<f64>> = bx_idx.iter().map(|&i| x[i].clone()).collect();
            let by: Vec<usize> = bx_idx.iter().map(|&i| y[i]).collect();
            let mut tree = DecisionTree::new(TreeConfig {
                max_depth: self.max_depth,
                min_samples_split: 2,
                feature_subset: Some(mtry),
                seed: self.seed ^ (t as u64).wrapping_mul(0x9e37_79b9),
            });
            tree.fit(&bx, &by, n_classes);
            self.trees.push(tree);
        }
    }

    fn predict(&self, row: &[f64]) -> usize {
        let mut votes = vec![0u32; self.n_classes.max(1)];
        for t in &self.trees {
            votes[t.predict(row)] += 1;
        }
        argmax_u32(&votes)
    }

    fn name(&self) -> &'static str {
        "Random Forest"
    }
}

/// Gradient boosting: one-vs-rest logistic boosting with shallow
/// regression trees fitting the residuals.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GradientBoosting {
    rounds: usize,
    depth: usize,
    learning_rate: f64,
    seed: u64,
    /// Per class: the boosted stage trees.
    stages: Vec<Vec<RegressionTree>>,
    n_classes: usize,
}

impl GradientBoosting {
    /// Creates a booster with `rounds` stages of depth-`depth` trees.
    pub fn new(rounds: usize, depth: usize, learning_rate: f64, seed: u64) -> GradientBoosting {
        GradientBoosting {
            rounds,
            depth,
            learning_rate,
            seed,
            stages: Vec::new(),
            n_classes: 0,
        }
    }

    fn score(&self, row: &[f64], class: usize) -> f64 {
        self.stages[class]
            .iter()
            .map(|t| self.learning_rate * t.predict(row))
            .sum()
    }
}

impl Default for GradientBoosting {
    fn default() -> GradientBoosting {
        GradientBoosting::new(25, 3, 0.4, 23)
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl Classifier for GradientBoosting {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize], n_classes: usize) {
        self.n_classes = n_classes;
        self.stages = vec![Vec::new(); n_classes];
        for class in 0..n_classes {
            let targets: Vec<f64> = y
                .iter()
                .map(|&l| if l == class { 1.0 } else { 0.0 })
                .collect();
            let mut scores = vec![0.0f64; x.len()];
            for round in 0..self.rounds {
                let residuals: Vec<f64> = scores
                    .iter()
                    .zip(&targets)
                    .map(|(&s, &t)| t - sigmoid(s))
                    .collect();
                let mut tree = RegressionTree::new(TreeConfig {
                    max_depth: self.depth,
                    min_samples_split: 4,
                    feature_subset: None,
                    seed: self.seed ^ ((class * 1000 + round) as u64),
                });
                tree.fit(x, &residuals);
                for (s, row) in scores.iter_mut().zip(x) {
                    *s += self.learning_rate * tree.predict(row);
                }
                self.stages[class].push(tree);
            }
        }
    }

    fn predict(&self, row: &[f64]) -> usize {
        let scores: Vec<f64> = (0..self.n_classes).map(|c| self.score(row, c)).collect();
        argmax_f64(&scores)
    }

    fn name(&self) -> &'static str {
        "Gradient Boosting"
    }
}

/// AdaBoost (SAMME) over shallow decision trees.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaBoost {
    rounds: usize,
    base_depth: usize,
    stumps: Vec<(f64, DecisionTree)>,
    n_classes: usize,
}

impl AdaBoost {
    /// Creates a booster with `rounds` base learners of depth
    /// `base_depth` (1 = classic stumps; 2 suits multiclass SAMME).
    pub fn new(rounds: usize, base_depth: usize) -> AdaBoost {
        AdaBoost {
            rounds,
            base_depth: base_depth.max(1),
            stumps: Vec::new(),
            n_classes: 0,
        }
    }
}

impl Default for AdaBoost {
    fn default() -> AdaBoost {
        AdaBoost::new(80, 2)
    }
}

impl Classifier for AdaBoost {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize], n_classes: usize) {
        self.n_classes = n_classes;
        self.stumps.clear();
        let n = x.len();
        let mut w = vec![1.0 / n as f64; n];
        for _ in 0..self.rounds {
            let mut stump = DecisionTree::new(TreeConfig {
                max_depth: self.base_depth,
                ..TreeConfig::default()
            });
            stump.fit_weighted(x, y, &w, n_classes);
            let err: f64 = x
                .iter()
                .zip(y)
                .zip(&w)
                .filter(|((row, &label), _)| stump.predict(row) != label)
                .map(|(_, &wi)| wi)
                .sum();
            let err = err.clamp(1e-10, 1.0);
            if err >= 1.0 - 1.0 / n_classes as f64 {
                break; // worse than chance: stop boosting
            }
            // SAMME multiclass weight.
            let alpha = ((1.0 - err) / err).ln() + (n_classes as f64 - 1.0).ln();
            for ((row, &label), wi) in x.iter().zip(y).zip(&mut w) {
                if stump.predict(row) != label {
                    *wi *= alpha.exp();
                }
            }
            let total: f64 = w.iter().sum();
            w.iter_mut().for_each(|wi| *wi /= total);
            self.stumps.push((alpha, stump));
            if err < 1e-9 {
                break;
            }
        }
    }

    fn predict(&self, row: &[f64]) -> usize {
        let mut scores = vec![0.0f64; self.n_classes.max(1)];
        for (alpha, stump) in &self.stumps {
            scores[stump.predict(row)] += alpha;
        }
        argmax_f64(&scores)
    }

    fn name(&self) -> &'static str {
        "AdaBoost"
    }
}

pub(crate) fn argmax_f64(xs: &[f64]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite scores"))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

pub(crate) fn argmax_u32(xs: &[u32]) -> usize {
    xs.iter()
        .enumerate()
        .max_by_key(|&(i, v)| (*v, core::cmp::Reverse(i)))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use crate::testdata::blobs;

    fn train_acc(model: &mut dyn Classifier, classes: usize) -> f64 {
        let (x, y) = blobs(classes, 50, 4, 3);
        model.fit(&x, &y, classes);
        let pred: Vec<usize> = x.iter().map(|r| model.predict(r)).collect();
        accuracy(&y, &pred)
    }

    #[test]
    fn forest_fits_blobs() {
        let acc = train_acc(&mut RandomForest::default(), 4);
        assert!(acc > 0.95, "forest accuracy {acc}");
    }

    #[test]
    fn boosting_fits_blobs() {
        let acc = train_acc(&mut GradientBoosting::default(), 3);
        assert!(acc > 0.9, "gboost accuracy {acc}");
    }

    #[test]
    fn adaboost_fits_blobs() {
        let acc = train_acc(&mut AdaBoost::default(), 3);
        assert!(acc > 0.8, "adaboost accuracy {acc}");
    }

    #[test]
    fn forest_generalizes_better_than_chance() {
        let (x, y) = blobs(4, 60, 4, 3);
        let (xt, yt) = blobs(4, 20, 4, 99); // fresh draw, same centers
        let mut f = RandomForest::default();
        f.fit(&x, &y, 4);
        let pred: Vec<usize> = xt.iter().map(|r| f.predict(r)).collect();
        let acc = accuracy(&yt, &pred);
        assert!(acc > 0.7, "test accuracy {acc}");
    }

    #[test]
    fn argmax_helpers() {
        assert_eq!(argmax_f64(&[0.1, 0.9, 0.5]), 1);
        assert_eq!(argmax_u32(&[3, 3, 2]), 0, "ties break to the lower index");
    }
}
