//! `lh-experiments` — regenerate any figure or table of the paper on
//! the `lh-harness` runner: units scheduled as a dependency DAG across
//! cores, cached across reruns, with text/JSON/CSV output and an
//! NDJSON streaming mode (`--stream`) that emits each unit's result
//! the moment it completes.
//!
//! ```text
//! lh-experiments <id|all|list> [options]
//!
//! options:
//!   --scale quick|default|paper   experiment scale (default: default)
//!   --seed N                      master seed (default: 1)
//!   --jobs N                      worker threads (default: all cores)
//!   --no-cache                    disable the on-disk result cache
//!   --cache-dir PATH              cache location (default: .lh-cache)
//!   --format text|json|csv        output format (default: text)
//!   --stream                      stream NDJSON events to stdout as units finish
//!   --quiet                       suppress progress lines on stderr
//!   --help                        this message
//! ```

use lh_harness::{DiskCache, JobContext, OutputFormat, Runner, RunnerOptions, ScaleLevel};

const USAGE: &str = "\
usage: lh-experiments <id|all|list> [options]

commands:
  <id>       run one experiment (see `lh-experiments list`)
  all        run every experiment
  list       list experiment ids and descriptions

options:
  --scale quick|default|paper   experiment scale (default: default)
  --seed N                      master seed (default: 1)
  --jobs N                      worker threads (default: all cores)
  --no-cache                    disable the on-disk result cache
  --cache-dir PATH              cache location (default: .lh-cache)
  --format text|json|csv        output format (default: text)
  --stream                      stream NDJSON events to stdout as units finish
  --quiet                       suppress progress lines on stderr
  --help                        this message
";

#[derive(Debug)]
struct Args {
    id: String,
    scale: ScaleLevel,
    seed: u64,
    jobs: usize,
    cache: bool,
    cache_dir: String,
    format: Option<OutputFormat>,
    stream: bool,
    quiet: bool,
}

impl Default for Args {
    fn default() -> Args {
        Args {
            id: "list".to_owned(),
            scale: ScaleLevel::Default,
            seed: 1,
            jobs: 0,
            cache: true,
            cache_dir: ".lh-cache".to_owned(),
            format: None,
            stream: false,
            quiet: false,
        }
    }
}

/// Exit codes: 0 success, 1 runtime failure, 2 usage error.
fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = argv.iter();
    let mut saw_command = false;

    fn value<'a>(flag: &str, it: &mut core::slice::Iter<'a, String>) -> Result<&'a String, String> {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    }

    while let Some(a) = it.next() {
        match a.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--scale" => args.scale = value("--scale", &mut it)?.parse()?,
            "--seed" => {
                args.seed = value("--seed", &mut it)?
                    .parse()
                    .map_err(|_| "--seed needs an unsigned integer".to_owned())?;
            }
            "--jobs" | "-j" => {
                args.jobs = value("--jobs", &mut it)?
                    .parse()
                    .map_err(|_| "--jobs needs a positive integer".to_owned())?;
                if args.jobs == 0 {
                    return Err("--jobs must be at least 1".to_owned());
                }
            }
            "--no-cache" => args.cache = false,
            "--cache-dir" => args.cache_dir = value("--cache-dir", &mut it)?.clone(),
            "--format" => args.format = Some(value("--format", &mut it)?.parse()?),
            "--stream" => args.stream = true,
            "--quiet" | "-q" => args.quiet = true,
            flag if flag.starts_with('-') => {
                return Err(format!("unknown option '{flag}'"));
            }
            id if !saw_command => {
                args.id = id.to_owned();
                saw_command = true;
            }
            extra => return Err(format!("unexpected argument '{extra}'")),
        }
    }
    if args.stream && args.format.is_some() {
        return Err(
            "--stream and --format are mutually exclusive (streaming always emits NDJSON)"
                .to_owned(),
        );
    }
    Ok(args)
}

/// Writes to stdout. A closed downstream pipe (`lh-experiments list |
/// head`) is a normal way for a consumer to stop reading, so it exits
/// quietly; any other write error (disk full, I/O fault) is reported
/// and fails the run — a truncated report must not look successful.
fn emit(text: &str) {
    use std::io::Write;
    if let Err(e) = std::io::stdout().write_all(text.as_bytes()) {
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
        eprintln!("error: writing output failed: {e}");
        std::process::exit(1);
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) if msg.is_empty() => {
            emit(USAGE);
            return;
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };

    let registry = leakyhammer::registry();
    if args.id == "list" {
        emit("available experiments:\n");
        for job in registry.jobs() {
            emit(&format!("  {:<12} {}\n", job.id(), job.description()));
        }
        return;
    }

    let ids: Vec<&str> = if args.id == "all" {
        registry.ids()
    } else if registry.get(&args.id).is_some() {
        vec![registry.get(&args.id).expect("checked").id()]
    } else {
        eprintln!(
            "error: unknown experiment '{}'; run `lh-experiments list`",
            args.id
        );
        std::process::exit(2);
    };

    // In stream mode every unit result goes to stdout as one NDJSON
    // line the moment it completes — completion order, not unit order;
    // the closing `finished` event carries the deterministic envelope.
    let observer: Option<lh_harness::UnitObserver> = args.stream.then(|| {
        std::sync::Arc::new(|event: &lh_harness::UnitEvent| {
            emit(&lh_harness::sink::stream_unit(event));
        }) as lh_harness::UnitObserver
    });
    let runner = Runner::new(RunnerOptions {
        jobs: args.jobs,
        cache: args.cache.then(|| DiskCache::new(&args.cache_dir)),
        progress: !args.quiet,
        observer,
    });
    let ctx = JobContext {
        scale: args.scale,
        seed: args.seed,
    };

    for id in ids {
        let job = registry.get(id).expect("id comes from the registry");
        if args.stream {
            emit(&lh_harness::sink::stream_started(
                job,
                job.units(&ctx).len(),
                &ctx,
            ));
        }
        match runner.run(job, &ctx) {
            Ok(run) => {
                if args.stream {
                    emit(&lh_harness::sink::stream_finished(job, &run, &ctx));
                } else {
                    let format = args.format.unwrap_or_default();
                    emit(&lh_harness::sink::render(job, &run, &ctx, format));
                }
            }
            Err(msg) => {
                eprintln!("error: {id}: {msg}");
                std::process::exit(1);
            }
        }
    }
}
