//! # lh-memctrl — memory controller for the LeakyHammer reproduction
//!
//! A per-channel DDR5 memory controller implementing the system of Table 1
//! of the paper:
//!
//! * 64-entry read/write queues with back-pressure,
//! * FR-FCFS scheduling with a column cap of 16,
//! * open-page policy with write-drain hysteresis,
//! * per-rank periodic refresh with one-interval postponing and
//!   back-to-back catch-up (paper footnote 3),
//! * the PRAC alert-back-off (ABO) recovery protocol,
//! * PRFM same-bank RFMs, FR-RFM fixed-rate RFMs, PARA/tracker neighbor
//!   refreshes and BlockHammer throttles via the defense-agnostic
//!   [`lh_defenses::Defense`] trait,
//! * physical-address ↔ DRAM-coordinate mapping ([`AddressMapping`]) with
//!   an exact inverse used by attack code to colocate rows.
//!
//! ## Example
//!
//! ```
//! use lh_defenses::DefenseConfig;
//! use lh_dram::{DeviceConfig, Geometry, Time};
//! use lh_memctrl::{
//!     AccessKind, AddressMapping, CtrlConfig, MappingScheme, MemRequest, MemoryController,
//! };
//!
//! # fn main() -> Result<(), lh_dram::DramError> {
//! let mut dev = DeviceConfig::paper_default();
//! dev.geometry = Geometry::tiny();
//! let mapping = AddressMapping::new(MappingScheme::RowBankCol, dev.geometry);
//! let mut mc = MemoryController::new(
//!     CtrlConfig::paper_default(),
//!     dev,
//!     DefenseConfig::prac(128),
//!     42,
//! )?;
//! let addr = mapping.decode(0x8000);
//! mc.enqueue(MemRequest { id: 0, addr, kind: AccessKind::Read, arrival: Time::ZERO, source: 0 })
//!     .unwrap();
//! let mut now = Time::ZERO;
//! let done = loop {
//!     now = mc.service(now);
//!     let done = mc.take_completed();
//!     if !done.is_empty() {
//!         break done;
//!     }
//! };
//! assert_eq!(done[0].id, 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod controller;
mod mapping;
mod request;

pub use controller::{CtrlConfig, CtrlScratch, CtrlStats, MemoryController, RowPolicy};
pub use mapping::{AddressMapping, MappingScheme};
pub use request::{AccessKind, Completion, MemRequest};

#[cfg(test)]
mod tests {
    use super::*;
    use lh_defenses::{DefenseConfig, DefenseKind};
    use lh_dram::{BankId, DeviceConfig, DramAddr, Geometry, Span, Time};

    fn make(defense: DefenseConfig) -> MemoryController {
        let mut dev = DeviceConfig::paper_default();
        dev.geometry = Geometry::tiny();
        MemoryController::new(CtrlConfig::paper_default(), dev, defense, 7).unwrap()
    }

    fn req(id: u64, bank: BankId, row: u32, col: u32, at: Time) -> MemRequest {
        MemRequest {
            id,
            addr: DramAddr::new(bank, row, col),
            kind: AccessKind::Read,
            arrival: at,
            source: 0,
        }
    }

    /// Drives the controller until `t_end`, feeding `arrivals` (sorted by
    /// time) and collecting completions.
    fn drive(
        mc: &mut MemoryController,
        mut arrivals: Vec<MemRequest>,
        t_end: Time,
    ) -> Vec<Completion> {
        arrivals.sort_by_key(|r| r.arrival);
        let mut pending: std::collections::VecDeque<_> = arrivals.into();
        let mut done = Vec::new();
        let mut now = Time::ZERO;
        while now < t_end {
            while pending.front().is_some_and(|r| r.arrival <= now) {
                let mut r = pending.pop_front().unwrap();
                r.arrival = now;
                mc.enqueue(r).expect("queue full in test driver");
            }
            // Wakes are strictly future (the total-time contract), and
            // any still-pending arrival is strictly future too (due ones
            // were drained above), so no anti-livelock guard is needed.
            let mut next = mc.service(now);
            done.extend(mc.take_completed());
            if let Some(r) = pending.front() {
                next = next.min(r.arrival);
            }
            now = next;
        }
        done
    }

    fn bank0() -> BankId {
        BankId::new(0, 0, 0, 0)
    }

    #[test]
    fn closed_bank_read_latency_is_act_plus_cas() {
        let mut mc = make(DefenseConfig::none());
        let t = *mc.device().timing();
        let done = drive(
            &mut mc,
            vec![req(1, bank0(), 5, 0, Time::ZERO)],
            Time::from_us(2),
        );
        assert_eq!(done.len(), 1);
        let lat = done[0].latency();
        let ideal = t.t_rcd + t.read_latency();
        assert!(lat >= ideal, "latency {lat} below ideal {ideal}");
        assert!(lat <= ideal + Span::from_ns(5), "latency {lat} too high");
    }

    #[test]
    fn row_hit_is_faster_than_conflict() {
        let mut mc = make(DefenseConfig::none());
        // First request opens row 5; second hits it; third conflicts.
        let reqs = vec![
            req(1, bank0(), 5, 0, Time::ZERO),
            req(2, bank0(), 5, 1, Time::from_ns(200)),
            req(3, bank0(), 9, 0, Time::from_ns(400)),
        ];
        let done = drive(&mut mc, reqs, Time::from_us(3));
        assert_eq!(done.len(), 3);
        let hit = done.iter().find(|c| c.id == 2).unwrap().latency();
        let conflict = done.iter().find(|c| c.id == 3).unwrap().latency();
        assert!(
            conflict > hit + Span::from_ns(20),
            "conflict {conflict} should exceed hit {hit} by ~tRP+tRCD"
        );
    }

    #[test]
    fn frfcfs_prefers_row_hits_up_to_column_cap() {
        let mut mc = make(DefenseConfig::none());
        // Open row 1, then enqueue one conflict (row 2, oldest) followed
        // by many hits (row 1) at the same instant. Row-hit-first serves
        // hits ahead of the older conflict, but the column cap of 16 bounds
        // the streak, after which the oldest request (the conflict) wins.
        let mut reqs = vec![req(0, bank0(), 1, 0, Time::ZERO)];
        reqs.push(req(100, bank0(), 2, 0, Time::from_ns(100)));
        for i in 0..30 {
            reqs.push(req(1 + i, bank0(), 1, (i + 1) as u32, Time::from_ns(100)));
        }
        let done = drive(&mut mc, reqs, Time::from_us(4));
        let pos_conflict = done.iter().position(|c| c.id == 100).unwrap();
        assert!(
            pos_conflict > 4,
            "younger hits must be served first (row-hit-first)"
        );
        assert!(
            pos_conflict <= 18,
            "column cap must bound the hit streak; conflict at {pos_conflict}"
        );
    }

    #[test]
    fn periodic_refresh_happens_roughly_every_trefi() {
        let mut mc = make(DefenseConfig::none());
        drive(&mut mc, vec![], Time::from_us(40));
        let t_refi_us = mc.device().timing().t_refi.as_us();
        let expected = (40.0 / t_refi_us) as u64; // per rank
        let ranks = mc.device().geometry().ranks_per_channel() as u64;
        let refs = mc.stats().refreshes;
        let want = expected * ranks;
        assert!(
            refs >= want.saturating_sub(ranks) && refs <= want + ranks,
            "refreshes {refs} not close to {want}"
        );
    }

    #[test]
    fn busy_rank_postpones_then_catches_up() {
        let mut mc = make(DefenseConfig::none());
        // Saturate the bank with hits around the first tREFI boundary.
        let mut reqs = Vec::new();
        for i in 0..120u64 {
            reqs.push(req(
                i,
                bank0(),
                1,
                (i % 128) as u32,
                Time::from_ns(3_700 + i * 5),
            ));
        }
        drive(&mut mc, reqs, Time::from_us(12));
        assert!(
            mc.stats().refreshes_postponed >= 1,
            "expected at least one postpone"
        );
        assert!(mc.stats().refreshes >= 2);
    }

    #[test]
    fn prac_backoff_delays_requests_by_over_a_microsecond() {
        let mut prac = DefenseConfig::prac(64);
        prac.prac.as_mut().unwrap().nbo = 64;
        let mut mc = make(prac);
        // Alternate two rows in one bank: every access is a conflict, the
        // activation counters climb to NBO and trigger a back-off.
        let mut reqs = Vec::new();
        for i in 0..200u64 {
            let row = if i % 2 == 0 { 10 } else { 20 };
            reqs.push(req(i, bank0(), row, 0, Time::from_ns(i * 120)));
        }
        let done = drive(&mut mc, reqs, Time::from_us(60));
        assert!(
            mc.stats().backoffs >= 1,
            "hammering must trigger a back-off"
        );
        // A request arriving just as the recovery begins absorbs (almost)
        // the full 4-RFM back-off latency of 1400 ns.
        let max_lat = done.iter().map(|c| c.latency()).max().unwrap();
        assert!(
            max_lat >= Span::from_ns(1_200),
            "some request must absorb most of the 1400 ns back-off, max was {max_lat}"
        );
    }

    #[test]
    fn prfm_issues_rfm_every_trfm_activations() {
        let mut mc = make(DefenseConfig::prfm(10));
        // 60 conflicting accesses → 60 ACTs to one bank → ~6 RFMs.
        let mut reqs = Vec::new();
        for i in 0..60u64 {
            let row = if i % 2 == 0 { 10 } else { 20 };
            reqs.push(req(i, bank0(), row, 0, Time::from_ns(i * 150)));
        }
        drive(&mut mc, reqs, Time::from_us(40));
        let rfms = mc.stats().rfms;
        assert!((5..=7).contains(&rfms), "expected ~6 RFMs, got {rfms}");
    }

    #[test]
    fn fr_rfm_fires_on_schedule_with_zero_jitter_when_idle() {
        let t_rc = lh_dram::DramTiming::ddr5_4800().t_rc;
        let mut mc = make(DefenseConfig::fr_rfm(20, t_rc));
        drive(&mut mc, vec![], Time::from_us(20));
        let period = t_rc * 20;
        let expected = (Time::from_us(20) - Time::ZERO) / period;
        let got = mc.stats().rfms;
        let ranks = mc.device().geometry().ranks_per_channel() as u64;
        assert!(
            got + 2 * ranks >= expected * ranks && got <= expected * ranks,
            "expected ~{} fixed-rate RFMs, got {got}",
            expected * ranks
        );
        assert_eq!(
            mc.stats().fr_rfm_jitter_max,
            Span::ZERO,
            "idle FR-RFM must be exact"
        );
    }

    #[test]
    fn fr_rfm_schedule_is_independent_of_traffic() {
        let t_rc = lh_dram::DramTiming::ddr5_4800().t_rc;
        let horizon = Time::from_us(30);
        // Idle system.
        let mut idle = make(DefenseConfig::fr_rfm(20, t_rc));
        drive(&mut idle, vec![], horizon);
        // Hammering system.
        let mut busy = make(DefenseConfig::fr_rfm(20, t_rc));
        let mut reqs = Vec::new();
        for i in 0..250u64 {
            let row = if i % 2 == 0 { 10 } else { 20 };
            reqs.push(req(i, bank0(), row, 0, Time::from_ns(i * 100)));
        }
        drive(&mut busy, reqs, horizon);
        // Same RFM count (the fixed-rate deadlines are traffic-blind).
        assert_eq!(idle.stats().rfms, busy.stats().rfms);
        assert!(
            busy.stats().fr_rfm_jitter_max <= Span::from_ns(50),
            "jitter {} too large",
            busy.stats().fr_rfm_jitter_max
        );
    }

    #[test]
    fn prac_keeps_disturbance_below_nrh_under_hammering() {
        let nrh = 128u64;
        let mut cfg = DefenseConfig::for_threshold(
            DefenseKind::Prac,
            nrh as u32,
            &lh_dram::DramTiming::ddr5_4800(),
        );
        cfg.prac.as_mut().unwrap().cooldown = Span::from_ns(100);
        let mut mc = make(cfg);
        // Adversarial double-sided pattern around row 15.
        let mut reqs = Vec::new();
        for i in 0..3000u64 {
            let row = if i % 2 == 0 { 14 } else { 16 };
            reqs.push(req(i, bank0(), row, 0, Time::from_ns(i * 100)));
        }
        drive(&mut mc, reqs, Time::from_us(400));
        let max = mc.device().disturb().max_ever();
        assert!(mc.stats().backoffs > 5, "defense must have fired");
        assert!(max < nrh, "victim pressure {max} reached NRH {nrh}");
    }

    #[test]
    fn no_defense_lets_disturbance_exceed_threshold() {
        let mut mc = make(DefenseConfig::none());
        let mut reqs = Vec::new();
        for i in 0..600u64 {
            let row = if i % 2 == 0 { 14 } else { 16 };
            reqs.push(req(i, bank0(), row, 0, Time::from_ns(i * 100)));
        }
        drive(&mut mc, reqs, Time::from_us(80));
        assert!(
            mc.device().disturb().max_ever() >= 256,
            "unmitigated hammering must accumulate pressure"
        );
    }

    #[test]
    fn writes_drain_and_complete() {
        let mut mc = make(DefenseConfig::none());
        let mut reqs = Vec::new();
        for i in 0..50u64 {
            reqs.push(MemRequest {
                id: i,
                addr: DramAddr::new(bank0(), (i % 4) as u32, (i % 16) as u32),
                kind: AccessKind::Write,
                arrival: Time::from_ns(i * 10),
                source: 1,
            });
        }
        let done = drive(&mut mc, reqs, Time::from_us(20));
        assert_eq!(done.len(), 50);
        assert_eq!(mc.stats().writes_served, 50);
    }

    #[test]
    fn queue_full_exerts_backpressure() {
        let mut mc = make(DefenseConfig::none());
        for i in 0..64u64 {
            mc.enqueue(req(i, bank0(), i as u32, 0, Time::ZERO))
                .unwrap();
        }
        let err = mc.enqueue(req(99, bank0(), 1, 0, Time::ZERO));
        assert!(err.is_err());
        assert_eq!(mc.stats().rejections, 1);
        // After service makes progress, a slot frees up.
        let mut now = Time::ZERO;
        while mc.read_queue_len() >= 64 {
            now = mc.service(now);
            mc.take_completed();
        }
        assert!(mc.enqueue(req(99, bank0(), 1, 0, now)).is_ok());
    }

    #[test]
    fn closed_page_policy_precharges_idle_rows() {
        let mut dev = DeviceConfig::paper_default();
        dev.geometry = Geometry::tiny();
        let cfg = CtrlConfig {
            row_policy: RowPolicy::Closed,
            ..CtrlConfig::paper_default()
        };
        let mut mc = MemoryController::new(cfg, dev, DefenseConfig::none(), 7).unwrap();
        let done = drive(
            &mut mc,
            vec![
                req(1, bank0(), 5, 0, Time::ZERO),
                req(2, bank0(), 5, 1, Time::from_us(1)),
            ],
            Time::from_us(4),
        );
        assert_eq!(done.len(), 2);
        // The row was closed between the two accesses: the second is a
        // full ACT+RD again, not a hit.
        let second = done.iter().find(|c| c.id == 2).unwrap().latency();
        let t = mc.device().timing();
        assert!(
            second >= t.t_rcd + t.read_latency(),
            "closed page forces re-ACT"
        );
        assert!(
            mc.device().open_row(bank0()).is_none(),
            "row closed after service"
        );
        // Every access became an activation.
        assert_eq!(mc.device().stats().activates, 2);
    }

    #[test]
    fn closed_page_makes_activation_counters_climb_faster() {
        // §9: a strictly closed-row policy *accelerates* PRAC counters
        // (every access is an activation), so LeakyHammer still works.
        let count_backoffs = |policy: RowPolicy| {
            let mut dev = DeviceConfig::paper_default();
            dev.geometry = Geometry::tiny();
            let cfg = CtrlConfig {
                row_policy: policy,
                ..CtrlConfig::paper_default()
            };
            let mut prac = DefenseConfig::prac(64);
            prac.prac.as_mut().unwrap().nbo = 64;
            let mut mc = MemoryController::new(cfg, dev, prac, 7).unwrap();
            // A *single-row* access stream: under open-page these are row
            // hits (no activations); under closed-page each one activates.
            let reqs: Vec<MemRequest> = (0..400u64)
                .map(|i| req(i, bank0(), 7, (i % 128) as u32, Time::from_ns(i * 150)))
                .collect();
            drive(&mut mc, reqs, Time::from_us(80));
            mc.stats().backoffs
        };
        assert_eq!(count_backoffs(RowPolicy::Open), 0, "hits do not hammer");
        assert!(
            count_backoffs(RowPolicy::Closed) >= 4,
            "closed-page turns the same stream into a hammer"
        );
    }

    #[test]
    fn para_refreshes_neighbors_probabilistically() {
        let mut mc = make(DefenseConfig::para(0.5));
        let mut reqs = Vec::new();
        for i in 0..100u64 {
            let row = if i % 2 == 0 { 10 } else { 20 };
            reqs.push(req(i, bank0(), row, 0, Time::from_ns(i * 200)));
        }
        drive(&mut mc, reqs, Time::from_us(60));
        assert!(
            mc.stats().para_victim_acts > 20,
            "PARA must activate victims, got {}",
            mc.stats().para_victim_acts
        );
    }

    #[test]
    fn bank_level_prac_blocks_only_the_offending_bank() {
        let mut cfg = DefenseConfig::prac_bank(32);
        cfg.prac.as_mut().unwrap().nbo = 32;
        let mut mc = make(cfg);
        let other = BankId::new(0, 0, 1, 0);
        let mut reqs = Vec::new();
        // Hammer bank0 while probing `other` with hits.
        for i in 0..300u64 {
            let row = if i % 2 == 0 { 10 } else { 20 };
            reqs.push(req(i, bank0(), row, 0, Time::from_ns(i * 120)));
        }
        for i in 0..300u64 {
            reqs.push(req(
                10_000 + i,
                other,
                1,
                (i % 128) as u32,
                Time::from_ns(i * 120),
            ));
        }
        let done = drive(&mut mc, reqs, Time::from_us(80));
        assert!(mc.stats().backoffs >= 1);
        let t = mc.device().timing();
        // Probe requests in the other bank never absorb a full back-off.
        let max_other = done
            .iter()
            .filter(|c| c.id >= 10_000)
            .map(|c| c.latency())
            .max()
            .unwrap();
        assert!(
            max_other < t.backoff_latency(4),
            "bank-level back-off leaked across banks: {max_other}"
        );
    }
}
