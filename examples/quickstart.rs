//! Quickstart: observe RowHammer-defense-induced latency from "userspace".
//!
//! Builds the paper's Table-1 system with PRAC (`NBO` = 128), runs the
//! Listing-1 measurement routine — a flush+load loop alternating two rows
//! of one bank — and prints the latency bands it observed: row-buffer
//! conflicts, periodic refreshes, and PRAC back-offs (the Fig. 2 picture).
//!
//! Run with: `cargo run --release --example quickstart`

use leakyhammer::experiment::latency_trace::run_latency_trace;
use leakyhammer::report;
use lh_defenses::DefenseConfig;
use lh_dram::Span;

fn main() {
    println!("LeakyHammer quickstart: measuring PRAC back-offs from a user process\n");

    let out = run_latency_trace(DefenseConfig::prac(128), 512, Span::from_ns(30));
    print!("{}", report::latency_trace_report(&out));

    // A tiny ASCII rendition of Fig. 2: one character per request.
    println!("\nrequest latency classes (h=hit c=conflict r=RFM R=refresh B=BACK-OFF):");
    let line: String = out
        .samples
        .iter()
        .take(512)
        .map(|s| match out.classifier.classify(s.latency) {
            lh_attacks::LatencyClass::Hit => 'h',
            lh_attacks::LatencyClass::Conflict => 'c',
            lh_attacks::LatencyClass::Rfm => 'r',
            lh_attacks::LatencyClass::Refresh => 'R',
            lh_attacks::LatencyClass::BackOff => 'B',
        })
        .collect();
    for chunk in line.as_bytes().chunks(80) {
        println!("  {}", String::from_utf8_lossy(chunk));
    }
    println!(
        "\nEvery 'B' is a PRAC back-off: ~255 conflicting requests push a row's \
         activation counter to NBO=128 and the DRAM chip asserts ABO."
    );
}
