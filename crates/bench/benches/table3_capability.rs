//! Table 3 bench: the capability matrix plus a DRAMA baseline round trip.

use criterion::{criterion_group, criterion_main, Criterion};
use lh_bench::report::table3_report;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_capability");
    g.sample_size(20);
    g.bench_function("matrix_render", |b| b.iter(table3_report));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
