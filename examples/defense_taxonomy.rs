//! §12: does *your* RowHammer defense leak? The trigger-algorithm
//! taxonomy, tested experimentally.
//!
//! One covert-channel attempt runs against a representative of every
//! defense class — exact tracking (PRAC), approximate tracking (Graphene,
//! Hydra, CoMeT), rate throttling (BlockHammer), random triggering
//! (PARA), time-based triggering (FR-RFM) and overlapped-latency
//! mitigation (MINT) — and the realized capacity is compared with the
//! taxonomy's qualitative prediction.
//!
//! Run with: `cargo run --release --example defense_taxonomy`
//! (takes a few minutes; the BlockHammer windows are long)

use leakyhammer::experiment::taxonomy::{run_taxonomy, TAXONOMY_NRH};
use leakyhammer::{report, Scale};

fn main() {
    println!(
        "LeakyHammer sec. 12: covert-channel capacity against every defense class\n\
         (all defenses provisioned for NRH = {TAXONOMY_NRH}; 'noisy' adds the sec. 6.3\n\
         noise microbenchmark at 40% intensity)\n"
    );

    let points = run_taxonomy(Scale::Quick, 1);
    print!("{}", report::taxonomy_measured_report(&points));

    println!();
    for p in &points {
        if !p.agrees() {
            println!(
                "NOTE: {} measured {:.1} Kbps, outside its predicted {:?} envelope.",
                p.kind, p.quiet_kbps, p.predicted
            );
            if p.kind == lh_defenses::DefenseKind::BlockHammer {
                println!(
                    "      (BlockHammer's blacklist spans a 16 ms epoch: one decision\n\
                     \u{20}     shadows hundreds of windows, capping modulation at ~1\n\
                     \u{20}     bit/epoch - a measured temporal refinement of sec. 12.)"
                );
            }
        }
    }
    println!(
        "Exact observable triggers give the attacker a reliable channel; approximate\n\
         trackers only add noise; fixed-rate and in-REF (overlapped) preventive\n\
         actions give the receiver nothing that depends on the sender."
    );
}
