//! Multiprogrammed-performance metrics for the Fig. 13 evaluation.

use serde::{Deserialize, Serialize};

/// Per-application measurement of one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppPerf {
    /// Instructions retired.
    pub instructions: u64,
    /// Wall time of the measurement in seconds.
    pub seconds: f64,
}

impl AppPerf {
    /// Instructions per second (the frequency-independent IPC proxy).
    pub fn ips(&self) -> f64 {
        if self.seconds > 0.0 {
            self.instructions as f64 / self.seconds
        } else {
            0.0
        }
    }
}

/// Weighted speedup: `Σ_i IPC_i^shared / IPC_i^alone` (§11.4).
///
/// # Panics
///
/// Panics if the slices differ in length or an `alone` rate is zero.
pub fn weighted_speedup(shared: &[AppPerf], alone: &[AppPerf]) -> f64 {
    assert_eq!(shared.len(), alone.len(), "per-app runs must align");
    shared
        .iter()
        .zip(alone)
        .map(|(s, a)| {
            let a_ips = a.ips();
            assert!(a_ips > 0.0, "alone IPC must be positive");
            s.ips() / a_ips
        })
        .sum()
}

/// Normalized weighted speedup of a defended system relative to the
/// undefended baseline (the y-axis of Fig. 13).
pub fn normalized_ws(defended_ws: f64, baseline_ws: f64) -> f64 {
    assert!(
        baseline_ws > 0.0,
        "baseline weighted speedup must be positive"
    );
    defended_ws / baseline_ws
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perf(instr: u64, secs: f64) -> AppPerf {
        AppPerf {
            instructions: instr,
            seconds: secs,
        }
    }

    #[test]
    fn identical_runs_give_ws_equal_to_core_count() {
        let shared = vec![perf(1000, 1.0); 4];
        let alone = vec![perf(1000, 1.0); 4];
        assert!((weighted_speedup(&shared, &alone) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn slowdown_reduces_ws() {
        let shared = vec![perf(500, 1.0), perf(1000, 1.0)];
        let alone = vec![perf(1000, 1.0), perf(1000, 1.0)];
        assert!((weighted_speedup(&shared, &alone) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn normalization() {
        assert!((normalized_ws(3.0, 4.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_alone_ipc_panics() {
        let _ = weighted_speedup(&[perf(1, 1.0)], &[perf(0, 1.0)]);
    }
}
