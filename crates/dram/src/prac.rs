//! Device-side PRAC (Per Row Activation Counting) state.
//!
//! PRAC is the in-DRAM half of the defense framework introduced by
//! JESD79-5c and analyzed in §6 of the LeakyHammer paper: the device counts
//! activations per row (while the row is being closed), and when a counter
//! reaches the back-off threshold `NBO` it asserts the alert-back-off (ABO)
//! signal ≈5 ns after the `PRE`. The memory controller then serves normal
//! traffic for `tABO_ACT` and issues a configurable number of RFM commands
//! back-to-back, during which the device refreshes the victims of the
//! highest-counted rows. A cool-down window follows before ABO may be
//! asserted again.

use serde::{Deserialize, Serialize};

use crate::counters::CounterInit;
use crate::geometry::BankId;
use crate::time::{Span, Time};

/// Which banks a PRAC back-off blocks.
///
/// Standard PRAC has a single ALERT_n pin, so a back-off blocks the whole
/// channel; Bank-Level PRAC (§11.3 of the paper) assumes per-bank alert
/// signalling so only the offending bank is blocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlertScope {
    /// The back-off recovery blocks every bank of the channel (standard
    /// PRAC; `RFMab` recovery on the asserting rank).
    Channel,
    /// The back-off recovery blocks only the asserting bank
    /// (Bank-Level PRAC).
    Bank,
}

/// Configuration of the device-side PRAC mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PracConfig {
    /// Back-off threshold `NBO`: the device asserts ABO when a row's
    /// activation count reaches this value. The paper assumes 128.
    pub nbo: u32,
    /// Blocking scope of a back-off.
    pub scope: AlertScope,
    /// Number of RFM commands the controller issues per back-off
    /// (1, 2 or 4 per JESD79-5c; the paper assumes 4).
    pub rfms_per_backoff: u32,
    /// Counter initialization policy; [`CounterInit::Uniform`] yields the
    /// RIAC countermeasure.
    pub counter_init: CounterInit,
    /// Cool-down window after a recovery completes, during which ABO is
    /// not re-asserted.
    pub cooldown: Span,
}

impl PracConfig {
    /// The paper's default PRAC configuration: `NBO` = 128, channel-scope
    /// back-offs, 4 RFMs per back-off, zero-initialized counters, 180 ns
    /// cool-down.
    pub fn paper_default() -> PracConfig {
        PracConfig {
            nbo: 128,
            scope: AlertScope::Channel,
            rfms_per_backoff: 4,
            counter_init: CounterInit::Zero,
            cooldown: Span::from_ns(180),
        }
    }

    /// PRAC with the RIAC countermeasure: counters (re)initialize to
    /// uniform random values in `0..nbo`.
    pub fn riac(nbo: u32) -> PracConfig {
        PracConfig {
            nbo,
            counter_init: CounterInit::Uniform { max: nbo },
            ..PracConfig::paper_default()
        }
    }

    /// Bank-Level PRAC (per-bank alert signalling).
    pub fn bank_level(nbo: u32) -> PracConfig {
        PracConfig {
            nbo,
            scope: AlertScope::Bank,
            ..PracConfig::paper_default()
        }
    }
}

impl Default for PracConfig {
    fn default() -> PracConfig {
        PracConfig::paper_default()
    }
}

/// An asserted ABO (alert back-off) signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Alert {
    /// The bank whose row crossed `NBO` (informational; standard PRAC
    /// blocks the whole channel regardless).
    pub bank: BankId,
    /// When the signal reaches the memory controller (≈5 ns after `PRE`).
    pub asserted_at: Time,
}

/// Runtime state of the PRAC mechanism.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PracState {
    config: PracConfig,
    cooldown_until: Time,
    alert_in_flight: bool,
}

impl PracState {
    /// Creates PRAC state from a configuration.
    pub fn new(config: PracConfig) -> PracState {
        PracState {
            config,
            cooldown_until: Time::ZERO,
            alert_in_flight: false,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &PracConfig {
        &self.config
    }

    /// Whether an alert has been asserted and its recovery has not yet
    /// completed.
    pub fn alert_in_flight(&self) -> bool {
        self.alert_in_flight
    }

    /// Until when ABO assertion is suppressed by the cool-down window.
    pub fn cooldown_until(&self) -> Time {
        self.cooldown_until
    }

    /// Called when a row is closed with activation count `count` at `now`
    /// (with `abo_delay` the PRE→controller signal latency). Returns the
    /// alert if the device asserts ABO.
    pub fn on_row_closed(
        &mut self,
        bank: BankId,
        count: u32,
        now: Time,
        abo_delay: Span,
    ) -> Option<Alert> {
        if count >= self.config.nbo && !self.alert_in_flight && now >= self.cooldown_until {
            self.alert_in_flight = true;
            Some(Alert {
                bank,
                asserted_at: now + abo_delay,
            })
        } else {
            None
        }
    }

    /// Called by the controller once the back-off recovery (all RFMs) has
    /// completed; starts the cool-down window.
    pub fn recovery_complete(&mut self, now: Time) {
        self.alert_in_flight = false;
        self.cooldown_until = now + self.config.cooldown;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> BankId {
        BankId::new(0, 0, 0, 0)
    }

    #[test]
    fn alert_fires_at_threshold_with_delay() {
        let mut s = PracState::new(PracConfig::paper_default());
        let d = Span::from_ns(5);
        assert!(s.on_row_closed(bank(), 127, Time::from_ns(10), d).is_none());
        let alert = s.on_row_closed(bank(), 128, Time::from_ns(20), d).unwrap();
        assert_eq!(alert.asserted_at, Time::from_ns(25));
        assert!(s.alert_in_flight());
    }

    #[test]
    fn no_second_alert_while_in_flight() {
        let mut s = PracState::new(PracConfig::paper_default());
        let d = Span::from_ns(5);
        assert!(s.on_row_closed(bank(), 200, Time::from_ns(1), d).is_some());
        assert!(s.on_row_closed(bank(), 300, Time::from_ns(2), d).is_none());
    }

    #[test]
    fn cooldown_suppresses_alerts() {
        let mut s = PracState::new(PracConfig::paper_default());
        let d = Span::from_ns(5);
        assert!(s.on_row_closed(bank(), 128, Time::from_ns(1), d).is_some());
        s.recovery_complete(Time::from_ns(1500));
        // Within cool-down (180 ns): suppressed.
        assert!(s
            .on_row_closed(bank(), 500, Time::from_ns(1600), d)
            .is_none());
        // After cool-down: fires again.
        assert!(s
            .on_row_closed(bank(), 500, Time::from_ns(1700), d)
            .is_some());
    }

    #[test]
    fn riac_config_uses_uniform_init() {
        let c = PracConfig::riac(64);
        assert_eq!(c.nbo, 64);
        assert_eq!(c.counter_init, CounterInit::Uniform { max: 64 });
    }

    #[test]
    fn bank_level_config_scopes_to_bank() {
        let c = PracConfig::bank_level(128);
        assert_eq!(c.scope, AlertScope::Bank);
    }
}
