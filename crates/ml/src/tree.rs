//! CART decision trees: weighted classification (gini) and regression
//! (variance reduction). These are the base learners for the random
//! forest, gradient boosting and AdaBoost models.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::Classifier;

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        /// Class index (classification) or mean value (regression, stored
        /// in `value`).
        class: usize,
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// Shared tree-growing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum depth (1 = a stump).
    pub max_depth: usize,
    /// Do not split nodes with fewer (weighted-equivalent) samples.
    pub min_samples_split: usize,
    /// Features considered per split; `None` = all, `Some(k)` = a random
    /// subset of `k` (random-forest style).
    pub feature_subset: Option<usize>,
    /// RNG seed for feature subsetting.
    pub seed: u64,
}

impl Default for TreeConfig {
    fn default() -> TreeConfig {
        TreeConfig {
            max_depth: 12,
            min_samples_split: 2,
            feature_subset: None,
            seed: 0,
        }
    }
}

/// A weighted CART classification tree (gini impurity).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTree {
    config: TreeConfig,
    nodes: Vec<Node>,
    n_classes: usize,
}

impl DecisionTree {
    /// Creates an untrained tree.
    pub fn new(config: TreeConfig) -> DecisionTree {
        DecisionTree {
            config,
            nodes: Vec::new(),
            n_classes: 0,
        }
    }

    /// A depth-1 stump (AdaBoost base learner).
    pub fn stump() -> DecisionTree {
        DecisionTree::new(TreeConfig {
            max_depth: 1,
            ..TreeConfig::default()
        })
    }

    /// Fits with per-sample weights.
    pub fn fit_weighted(&mut self, x: &[Vec<f64>], y: &[usize], w: &[f64], n_classes: usize) {
        assert_eq!(x.len(), y.len());
        assert_eq!(x.len(), w.len());
        self.n_classes = n_classes;
        self.nodes.clear();
        let idx: Vec<usize> = (0..x.len()).collect();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        self.grow(x, y, w, idx, 0, &mut rng);
    }

    fn leaf(&mut self, y: &[usize], w: &[f64], idx: &[usize]) -> usize {
        let mut mass = vec![0.0; self.n_classes];
        for &i in idx {
            mass[y[i]] += w[i];
        }
        let class = mass
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("weights are finite"))
            .map(|(c, _)| c)
            .unwrap_or(0);
        self.nodes.push(Node::Leaf {
            class,
            value: class as f64,
        });
        self.nodes.len() - 1
    }

    fn grow(
        &mut self,
        x: &[Vec<f64>],
        y: &[usize],
        w: &[f64],
        idx: Vec<usize>,
        depth: usize,
        rng: &mut StdRng,
    ) -> usize {
        let first = y[idx[0]];
        let pure = idx.iter().all(|&i| y[i] == first);
        if pure || depth >= self.config.max_depth || idx.len() < self.config.min_samples_split {
            return self.leaf(y, w, &idx);
        }
        let Some((feature, threshold)) =
            best_split(x, &idx, rng, self.config.feature_subset, |lhs, rhs| {
                gini_gain(y, w, lhs, rhs, self.n_classes)
            })
        else {
            return self.leaf(y, w, &idx);
        };
        let (lhs, rhs): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| x[i][feature] <= threshold);
        if lhs.is_empty() || rhs.is_empty() {
            return self.leaf(y, w, &idx);
        }
        let placeholder = self.nodes.len();
        self.nodes.push(Node::Leaf {
            class: 0,
            value: 0.0,
        });
        let left = self.grow(x, y, w, lhs, depth + 1, rng);
        let right = self.grow(x, y, w, rhs, depth + 1, rng);
        self.nodes[placeholder] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        placeholder
    }

    fn predict_node(&self, row: &[f64]) -> &Node {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                n @ Node::Leaf { .. } => return n,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

impl Classifier for DecisionTree {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize], n_classes: usize) {
        let w = vec![1.0; x.len()];
        self.fit_weighted(x, y, &w, n_classes);
    }

    fn predict(&self, row: &[f64]) -> usize {
        match self.predict_node(row) {
            Node::Leaf { class, .. } => *class,
            Node::Split { .. } => unreachable!(),
        }
    }

    fn name(&self) -> &'static str {
        "Decision Tree"
    }
}

/// A regression tree (mean-squared-error splits) for gradient boosting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegressionTree {
    config: TreeConfig,
    nodes: Vec<Node>,
}

impl RegressionTree {
    /// Creates an untrained regression tree.
    pub fn new(config: TreeConfig) -> RegressionTree {
        RegressionTree {
            config,
            nodes: Vec::new(),
        }
    }

    /// Fits targets `t`.
    pub fn fit(&mut self, x: &[Vec<f64>], t: &[f64]) {
        assert_eq!(x.len(), t.len());
        self.nodes.clear();
        let idx: Vec<usize> = (0..x.len()).collect();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        self.grow(x, t, idx, 0, &mut rng);
    }

    fn leaf(&mut self, t: &[f64], idx: &[usize]) -> usize {
        let mean = idx.iter().map(|&i| t[i]).sum::<f64>() / idx.len() as f64;
        self.nodes.push(Node::Leaf {
            class: 0,
            value: mean,
        });
        self.nodes.len() - 1
    }

    fn grow(
        &mut self,
        x: &[Vec<f64>],
        t: &[f64],
        idx: Vec<usize>,
        depth: usize,
        rng: &mut StdRng,
    ) -> usize {
        if depth >= self.config.max_depth || idx.len() < self.config.min_samples_split {
            return self.leaf(t, &idx);
        }
        let Some((feature, threshold)) =
            best_split(x, &idx, rng, self.config.feature_subset, |lhs, rhs| {
                variance_gain(t, lhs, rhs)
            })
        else {
            return self.leaf(t, &idx);
        };
        let (lhs, rhs): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| x[i][feature] <= threshold);
        if lhs.is_empty() || rhs.is_empty() {
            return self.leaf(t, &idx);
        }
        let placeholder = self.nodes.len();
        self.nodes.push(Node::Leaf {
            class: 0,
            value: 0.0,
        });
        let left = self.grow(x, t, lhs, depth + 1, rng);
        let right = self.grow(x, t, rhs, depth + 1, rng);
        self.nodes[placeholder] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        placeholder
    }

    /// Predicts the target for one row.
    pub fn predict(&self, row: &[f64]) -> f64 {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Leaf { value, .. } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// Finds the `(feature, threshold)` with the highest `gain(lhs, rhs)`
/// over candidate thresholds (midpoints of sorted distinct values).
fn best_split<G: Fn(&[usize], &[usize]) -> f64>(
    x: &[Vec<f64>],
    idx: &[usize],
    rng: &mut StdRng,
    feature_subset: Option<usize>,
    gain: G,
) -> Option<(usize, f64)> {
    let n_features = x[0].len();
    let mut features: Vec<usize> = (0..n_features).collect();
    if let Some(k) = feature_subset {
        features.shuffle(rng);
        features.truncate(k.clamp(1, n_features));
    }
    let mut best: Option<(f64, usize, f64)> = None;
    for &f in &features {
        let mut vals: Vec<f64> = idx.iter().map(|&i| x[i][f]).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
        vals.dedup();
        if vals.len() < 2 {
            continue;
        }
        // Cap candidate thresholds to bound tree-building cost.
        let step = (vals.len() / 32).max(1);
        for pair in vals.windows(2).step_by(step) {
            let threshold = (pair[0] + pair[1]) / 2.0;
            let (lhs, rhs): (Vec<usize>, Vec<usize>) =
                idx.iter().partition(|&&i| x[i][f] <= threshold);
            if lhs.is_empty() || rhs.is_empty() {
                continue;
            }
            let g = gain(&lhs, &rhs);
            if best.is_none_or(|(bg, _, _)| g > bg) {
                best = Some((g, f, threshold));
            }
        }
    }
    best.filter(|&(g, _, _)| g > 1e-12).map(|(_, f, t)| (f, t))
}

fn gini(y: &[usize], w: &[f64], idx: &[usize], n_classes: usize) -> (f64, f64) {
    let mut mass = vec![0.0; n_classes];
    let mut total = 0.0;
    for &i in idx {
        mass[y[i]] += w[i];
        total += w[i];
    }
    if total == 0.0 {
        return (0.0, 0.0);
    }
    let g = 1.0 - mass.iter().map(|m| (m / total).powi(2)).sum::<f64>();
    (g, total)
}

fn gini_gain(y: &[usize], w: &[f64], lhs: &[usize], rhs: &[usize], n_classes: usize) -> f64 {
    let (gl, wl) = gini(y, w, lhs, n_classes);
    let (gr, wr) = gini(y, w, rhs, n_classes);
    let total = wl + wr;
    let all: Vec<usize> = lhs.iter().chain(rhs).copied().collect();
    let (g0, _) = gini(y, w, &all, n_classes);
    g0 - (wl / total) * gl - (wr / total) * gr
}

fn variance_gain(t: &[f64], lhs: &[usize], rhs: &[usize]) -> f64 {
    fn sse(t: &[f64], idx: &[usize]) -> f64 {
        let mean = idx.iter().map(|&i| t[i]).sum::<f64>() / idx.len() as f64;
        idx.iter().map(|&i| (t[i] - mean).powi(2)).sum()
    }
    let all: Vec<usize> = lhs.iter().chain(rhs).copied().collect();
    sse(t, &all) - sse(t, lhs) - sse(t, rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata::blobs;

    #[test]
    fn tree_separates_blobs() {
        let (x, y) = blobs(3, 60, 4, 11);
        let mut t = DecisionTree::new(TreeConfig::default());
        t.fit(&x, &y, 3);
        let acc = crate::metrics::accuracy(&y, &x.iter().map(|r| t.predict(r)).collect::<Vec<_>>());
        assert!(acc > 0.95, "train accuracy {acc}");
    }

    #[test]
    fn stump_has_at_most_three_nodes() {
        let (x, y) = blobs(2, 40, 2, 5);
        let mut s = DecisionTree::stump();
        s.fit(&x, &y, 2);
        assert!(s.node_count() <= 3, "{} nodes", s.node_count());
    }

    #[test]
    fn weighted_fit_follows_the_heavy_samples() {
        // Two classes at the same x; weights decide the leaf label.
        let x = vec![vec![0.0], vec![0.0], vec![0.0]];
        let y = vec![0, 1, 1];
        let mut t = DecisionTree::stump();
        t.fit_weighted(&x, &y, &[10.0, 1.0, 1.0], 2);
        assert_eq!(t.predict(&[0.0]), 0, "heavy class-0 sample must win");
        t.fit_weighted(&x, &y, &[1.0, 10.0, 10.0], 2);
        assert_eq!(t.predict(&[0.0]), 1);
    }

    #[test]
    fn regression_tree_fits_a_step_function() {
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let t: Vec<f64> = (0..100).map(|i| if i < 50 { 1.0 } else { 5.0 }).collect();
        let mut r = RegressionTree::new(TreeConfig {
            max_depth: 2,
            ..TreeConfig::default()
        });
        r.fit(&x, &t);
        assert!((r.predict(&[10.0]) - 1.0).abs() < 0.2);
        assert!((r.predict(&[90.0]) - 5.0).abs() < 0.2);
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![1, 1, 1];
        let mut t = DecisionTree::new(TreeConfig::default());
        t.fit(&x, &y, 2);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict(&[99.0]), 1);
    }
}
