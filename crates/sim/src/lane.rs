//! The lane-batched simulator engine: N parameter lanes advanced in one
//! pass over a shared wake heap.
//!
//! A *lane* is one complete [`System`] — its own controller, defense
//! (plus mitigation stack and [`lh_defenses::DefenseStats`]), caches and
//! processes — representing one cell of a parameter sweep (one
//! (defense, `N_RH`, mitigation) point). Lanes never interact: the
//! engine exists purely so N cells that replay the same trace advance
//! together, paying trace generation once and touching the same trace
//! region while it is cache-warm, instead of N full sequential passes.
//!
//! ## Wake-heap contract
//!
//! The batch keeps one min-heap keyed `(wake_time, lane_index)`, where
//! `wake_time` is the lane's next queued event ([`System::next_event_at`]).
//! Each [`LaneBatch::run`] iteration pops the minimum and advances that
//! lane through every event inside one scheduling slice — from its wake
//! instant to `wake + SLICE` ([`System::advance_to`]) — then re-inserts
//! it at its next event. The slice sets scheduling *granularity* only:
//! lanes share no mutable state, so each lane's event sequence is a
//! pure function of its own configuration and the slice width cannot
//! perturb any lane's results — it exists so a lane runs cache-hot for
//! thousands of events instead of being evicted after each one. Ties at
//! equal wake times resolve to the lowest lane index — a fixed,
//! documented order. A lane whose next event falls past its horizon is
//! advanced to the horizon exactly — byte-identical to a solo
//! `run_until(horizon)` — and finalized.
//!
//! ## Per-lane observability
//!
//! At finalization each lane's counters are captured under a private
//! `lh_obs` scope ([`lh_obs::record`] around [`System::flush_obs`]), so
//! `sim.service_wakes` / `sim.cmd.*` stay per-cell exact. The caller
//! re-attributes a lane's [`Metrics`] wherever it wants — typically via
//! [`lh_obs::emit`] inside the harness's per-unit scope. The eventual
//! drop-flush emits only zero deltas and never double-counts.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use lh_dram::{DramError, Span, Time};
use lh_obs::Metrics;

use crate::system::{System, SystemBuilder};

/// Scheduling slice: how far past its popped wake instant a lane is
/// advanced before returning to the heap. Pure locality knob — lane
/// results are independent of its value (see the module docs); 20 µs is
/// tens of thousands of DRAM events — comfortably past the point where
/// the lane's working set is warm — while still interleaving cross-lane
/// progress a few times per sweep cell.
const SLICE: Span = Span::from_us(20);

/// One sweep cell inside a [`LaneBatch`].
#[derive(Debug)]
struct Lane {
    sys: System,
    /// Simulation horizon: the lane ends with `now == until` exactly.
    until: Time,
    /// Whether the lane has been advanced to its horizon and flushed.
    done: bool,
    /// Counters captured at finalization (empty until then).
    metrics: Metrics,
}

/// A batch of independent simulation lanes advanced over one shared
/// wake heap. See the module docs for the contract.
///
/// # Examples
///
/// ```
/// use lh_defenses::DefenseConfig;
/// use lh_dram::Time;
/// use lh_sim::{LaneBatch, SystemBuilder};
///
/// let mut batch = LaneBatch::new();
/// let until = Time::from_us(30);
/// for nrh in [1024, 64] {
///     let builder = SystemBuilder::new(DefenseConfig::prac(nrh)).seed(7);
///     batch.push_lane(builder, until).unwrap();
/// }
/// batch.run();
/// assert!(batch.metrics(0).get("sim.service_wakes") > 0);
/// ```
#[derive(Debug, Default)]
pub struct LaneBatch {
    lanes: Vec<Lane>,
}

impl LaneBatch {
    /// An empty batch.
    pub fn new() -> LaneBatch {
        LaneBatch::default()
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// Whether the batch has no lanes.
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Builds `builder` into a new lane that will run until `until`;
    /// returns its index. The lane is forced onto the batched service
    /// path (identical decisions, cached row state) — that is the
    /// engine's reason to exist.
    ///
    /// # Errors
    ///
    /// Propagates device/controller construction errors.
    pub fn push_lane(&mut self, builder: SystemBuilder, until: Time) -> Result<usize, DramError> {
        let sys = builder.batched_service(true).build()?;
        self.lanes.push(Lane {
            sys,
            until,
            done: false,
            metrics: Metrics::new(),
        });
        Ok(self.lanes.len() - 1)
    }

    /// The lane's system (process results, controller stats, traces).
    pub fn lane(&self, i: usize) -> &System {
        &self.lanes[i].sys
    }

    /// Mutable access to a lane's system — to add processes before
    /// [`LaneBatch::run`].
    pub fn lane_mut(&mut self, i: usize) -> &mut System {
        &mut self.lanes[i].sys
    }

    /// The lane's counters, captured when the lane finished (empty
    /// before [`LaneBatch::run`]).
    pub fn metrics(&self, i: usize) -> &Metrics {
        &self.lanes[i].metrics
    }

    /// Advances every unfinished lane to its horizon over the shared
    /// wake heap.
    pub fn run(&mut self) {
        let _span = lh_obs::Span::enter("sim.lane_batch", "sim");
        let mut heap: BinaryHeap<Reverse<(Time, usize)>> = BinaryHeap::new();
        for i in 0..self.lanes.len() {
            if !self.lanes[i].done {
                self.seed_or_finalize(i, &mut heap);
            }
        }
        while let Some(Reverse((wake, i))) = heap.pop() {
            let target = (wake + SLICE).min(self.lanes[i].until);
            self.lanes[i].sys.advance_to(target);
            self.seed_or_finalize(i, &mut heap);
        }
    }

    /// Pushes lane `i`'s next wake onto the heap, or — when its next
    /// event falls past the horizon — advances it to the horizon and
    /// captures its counters.
    fn seed_or_finalize(&mut self, i: usize, heap: &mut BinaryHeap<Reverse<(Time, usize)>>) {
        let lane = &mut self.lanes[i];
        match lane.sys.next_event_at() {
            Some(at) if at <= lane.until => heap.push(Reverse((at, i))),
            _ => {
                lane.sys.advance_to(lane.until);
                let ((), metrics) = lh_obs::record(|| lane.sys.flush_obs());
                lane.metrics = metrics;
                lane.done = true;
            }
        }
    }
}
