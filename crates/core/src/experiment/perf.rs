//! The Fig. 13 performance study: weighted speedup of PRAC, PRFM,
//! PRAC-RIAC, FR-RFM and PRAC-Bank over RowHammer thresholds
//! 1024 → 64, normalized to a system with no mitigation.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use lh_analysis::{mean, normalized_ws, weighted_speedup, AppPerf};
use lh_defenses::{DefenseConfig, DefenseKind};
use lh_dram::{Span, Time};
use lh_memctrl::AddressMapping;
use lh_sim::{LaneBatch, ProcId, SimConfig, SystemBuilder};
use lh_workloads::{four_core_mixes, SharedTrace, TraceReplay};

use crate::Scale;

/// The paper's swept RowHammer thresholds.
pub const NRH_SWEEP: [u32; 5] = [1024, 512, 256, 128, 64];

/// One (defense, NRH) cell of Fig. 13.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PerfPoint {
    /// The defense.
    pub defense: DefenseKind,
    /// RowHammer threshold.
    pub nrh: u32,
    /// Mean normalized weighted speedup over the workload mixes
    /// (1.0 = no overhead).
    pub normalized_ws: f64,
}

/// The Fig. 13 dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfStudy {
    /// All measured cells.
    pub points: Vec<PerfPoint>,
    /// Number of four-core mixes averaged.
    pub mixes: usize,
}

impl PerfStudy {
    /// The normalized WS of one cell.
    pub fn cell(&self, defense: DefenseKind, nrh: u32) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.defense == defense && p.nrh == nrh)
            .map(|p| p.normalized_ws)
    }
}

/// Decodes the shared access trace of one four-core mix: profile `i`
/// replays on the stream seeded `sim_seed ^ (i * 31)` — the exact
/// per-app seed derivation every simulation of this mix uses, so one
/// decode serves the alone runs, the no-defense mix and every
/// `(defense, nrh)` cell.
///
/// `counted` selects [`SharedTrace::decode`] (one `sim.trace.decodes`
/// tick, for the path that owns the trace) versus
/// [`SharedTrace::decode_uncounted`] (for memo-fallback re-decodes
/// whose per-unit counter attribution must not depend on which process
/// got the memo hit — the pinned envelope snapshots carry no decode
/// counter, and must stay byte-identical across execution modes).
pub fn decode_mix_trace(
    mix_index: usize,
    mixes_seed: u64,
    sim_seed: u64,
    scale: Scale,
    counted: bool,
) -> Arc<SharedTrace> {
    let mixes = four_core_mixes(scale.mixes(), mixes_seed);
    let profiles = mixes[mix_index].to_vec();
    let cfg = SimConfig::paper_default(DefenseConfig::none());
    let mapping = AddressMapping::new(cfg.mapping, cfg.device.geometry);
    let seeds: Vec<u64> = (0..profiles.len())
        .map(|i| sim_seed ^ (i as u64 * 31))
        .collect();
    if counted {
        SharedTrace::decode(profiles, mapping, &seeds)
    } else {
        SharedTrace::decode_uncounted(profiles, mapping, &seeds)
    }
}

/// A lane builder for one performance simulation. Performance runs do
/// not need disturb ground truth; skipping it speeds the sweep up
/// considerably.
fn perf_lane(defense: DefenseConfig, seed: u64) -> SystemBuilder {
    SystemBuilder::new(defense)
        .seed(seed)
        .disturb_tracking(false)
}

/// Adds replays of `cores` (trace core indices) to lane `lane`, each
/// halting at `end`; returns their pids.
fn add_replays(
    batch: &mut LaneBatch,
    lane: usize,
    trace: &Arc<SharedTrace>,
    cores: &[usize],
    end: Time,
) -> Vec<ProcId> {
    cores
        .iter()
        .map(|&core| {
            let replay = TraceReplay::new(Arc::clone(trace), core, end);
            let mlp = replay.mlp();
            batch
                .lane_mut(lane)
                .add_process(Box::new(replay), mlp, Time::ZERO)
        })
        .collect()
}

/// Runs the batch, re-emits each lane's captured counters into the
/// ambient obs scope (so a unit's counters are identical to having run
/// its lanes solo), and collects per-lane per-app performance.
fn run_and_collect(
    batch: &mut LaneBatch,
    lane_pids: &[Vec<ProcId>],
    span: Span,
) -> Vec<Vec<AppPerf>> {
    batch.run();
    for i in 0..batch.len() {
        lh_obs::emit(batch.metrics(i));
    }
    lane_pids
        .iter()
        .enumerate()
        .map(|(lane, pids)| {
            pids.iter()
                .map(|&pid| {
                    let replay = batch
                        .lane(lane)
                        .process_as::<TraceReplay>(pid)
                        .expect("replay present");
                    AppPerf {
                        instructions: replay.instructions(),
                        seconds: span.as_secs(),
                    }
                })
                .collect()
        })
        .collect()
}

/// One mix's defense-independent intermediates, shared by every
/// `(defense, nrh)` cell of that mix: the alone-run baselines and the
/// no-defense weighted speedup everything is normalized to.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MixBaseline {
    /// Per-app alone (no defense, no co-runners) performance.
    pub alone: Vec<AppPerf>,
    /// Weighted speedup of the shared no-defense run.
    pub base_ws: f64,
}

/// Runs one mix's baseline simulations on a shared decoded `trace`:
/// each app alone (no defense, no co-runners) plus the mix under no
/// defense — five lanes of one [`LaneBatch`], advanced in a single pass.
pub fn run_perf_baseline_on(trace: &Arc<SharedTrace>, sim_seed: u64, scale: Scale) -> MixBaseline {
    let span = Span::from_us(scale.perf_span_us());
    let end = Time::ZERO + span;
    let horizon = end + Span::from_us(5);
    let mut batch = LaneBatch::new();
    let mut lane_pids = Vec::new();
    for core in 0..trace.cores() {
        let lane = batch
            .push_lane(perf_lane(DefenseConfig::none(), sim_seed), horizon)
            .expect("valid configuration");
        lane_pids.push(add_replays(&mut batch, lane, trace, &[core], end));
    }
    let all: Vec<usize> = (0..trace.cores()).collect();
    let lane = batch
        .push_lane(perf_lane(DefenseConfig::none(), sim_seed), horizon)
        .expect("valid configuration");
    lane_pids.push(add_replays(&mut batch, lane, trace, &all, end));
    let mut perf = run_and_collect(&mut batch, &lane_pids, span);
    let shared = perf.pop().expect("mix lane present");
    let alone: Vec<AppPerf> = perf.into_iter().map(|solo| solo[0]).collect();
    let base_ws = weighted_speedup(&shared, &alone);
    MixBaseline { alone, base_ws }
}

/// Runs a batch of `(defense, nrh)` cells of one mix on a shared
/// decoded `trace` — one lane per cell, one pass — against a
/// precomputed [`MixBaseline`]. `sim_seed` must equal the baseline's:
/// the alone and defended runs of a mix share one simulation seed.
pub fn run_perf_cells_on(
    trace: &Arc<SharedTrace>,
    sim_seed: u64,
    cells: &[(DefenseKind, u32)],
    baseline: &MixBaseline,
    scale: Scale,
) -> Vec<PerfPoint> {
    let span = Span::from_us(scale.perf_span_us());
    let end = Time::ZERO + span;
    let horizon = end + Span::from_us(5);
    let timing = lh_dram::DramTiming::ddr5_4800();
    let all: Vec<usize> = (0..trace.cores()).collect();
    let mut batch = LaneBatch::new();
    let mut lane_pids = Vec::new();
    for &(defense, nrh) in cells {
        let cfg = DefenseConfig::for_threshold(defense, nrh, &timing);
        let lane = batch
            .push_lane(perf_lane(cfg, sim_seed), horizon)
            .expect("valid configuration");
        lane_pids.push(add_replays(&mut batch, lane, trace, &all, end));
    }
    let perf = run_and_collect(&mut batch, &lane_pids, span);
    cells
        .iter()
        .zip(perf)
        .map(|(&(defense, nrh), shared)| {
            let ws = weighted_speedup(&shared, &baseline.alone);
            PerfPoint {
                defense,
                nrh,
                normalized_ws: normalized_ws(ws, baseline.base_ws),
            }
        })
        .collect()
}

/// Runs one mix's baseline simulations, decoding the trace itself.
///
/// The mix list is derived from `mixes_seed` (the study's master seed,
/// identical across shards) while the simulations run on `sim_seed`, so
/// the harness can give every mix an independently derived seed and
/// shard the study across cores bit-identically. Callers that hold a
/// memoized trace use [`run_perf_baseline_on`] directly.
pub fn run_perf_baseline(
    mix_index: usize,
    mixes_seed: u64,
    sim_seed: u64,
    scale: Scale,
) -> MixBaseline {
    let trace = decode_mix_trace(mix_index, mixes_seed, sim_seed, scale, true);
    run_perf_baseline_on(&trace, sim_seed, scale)
}

/// Runs one `(mix, defense, nrh)` cell against a precomputed
/// [`MixBaseline`], decoding the trace itself. `sim_seed` must equal
/// the baseline's. Callers that hold a memoized trace use
/// [`run_perf_cells_on`] directly.
pub fn run_perf_cell(
    mix_index: usize,
    mixes_seed: u64,
    sim_seed: u64,
    defense: DefenseKind,
    nrh: u32,
    baseline: &MixBaseline,
    scale: Scale,
) -> PerfPoint {
    let trace = decode_mix_trace(mix_index, mixes_seed, sim_seed, scale, false);
    run_perf_cells_on(&trace, sim_seed, &[(defense, nrh)], baseline, scale)
        .pop()
        .expect("one cell in, one point out")
}

/// One mix's contribution to Fig. 13: normalized weighted speedup per
/// `(defense, nrh)` cell, in `defenses` × `nrh_values` order — the
/// baseline plus every cell, composed from [`run_perf_baseline_on`] and
/// [`run_perf_cells_on`] over one decoded trace, so a sharded
/// (per-cell) run can never drift from the serial study.
pub fn run_perf_mix(
    mix_index: usize,
    mixes_seed: u64,
    sim_seed: u64,
    defenses: &[DefenseKind],
    nrh_values: &[u32],
    scale: Scale,
) -> Vec<PerfPoint> {
    let trace = decode_mix_trace(mix_index, mixes_seed, sim_seed, scale, true);
    let baseline = run_perf_baseline_on(&trace, sim_seed, scale);
    let cells: Vec<(DefenseKind, u32)> = defenses
        .iter()
        .flat_map(|&d| nrh_values.iter().map(move |&n| (d, n)))
        .collect();
    run_perf_cells_on(&trace, sim_seed, &cells, &baseline, scale)
}

/// Averages per-mix cell values (from [`run_perf_mix`], all with the
/// same `defenses` × `nrh_values` layout) into the Fig. 13 study.
pub fn merge_perf_mixes(per_mix: &[Vec<PerfPoint>]) -> PerfStudy {
    let mixes = per_mix.len();
    let cells = per_mix.first().map_or(0, Vec::len);
    let points = (0..cells)
        .map(|c| {
            let values: Vec<f64> = per_mix.iter().map(|m| m[c].normalized_ws).collect();
            PerfPoint {
                normalized_ws: mean(&values),
                ..per_mix[0][c]
            }
        })
        .collect();
    PerfStudy { points, mixes }
}

/// Runs the study over `defenses` × `nrh_values`.
pub fn run_performance(
    defenses: &[DefenseKind],
    nrh_values: &[u32],
    scale: Scale,
    seed: u64,
) -> PerfStudy {
    let per_mix: Vec<Vec<PerfPoint>> = (0..scale.mixes())
        .map(|m| {
            run_perf_mix(
                m,
                seed,
                seed ^ (m as u64) << 16,
                defenses,
                nrh_values,
                scale,
            )
        })
        .collect();
    merge_perf_mixes(&per_mix)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defenses_cost_little_at_high_nrh_and_a_lot_at_low_nrh() {
        let study = run_performance(
            &[DefenseKind::Prac, DefenseKind::FrRfm],
            &[1024, 64],
            Scale::Quick,
            3,
        );
        let prac_high = study.cell(DefenseKind::Prac, 1024).unwrap();
        let frrfm_high = study.cell(DefenseKind::FrRfm, 1024).unwrap();
        let frrfm_low = study.cell(DefenseKind::FrRfm, 64).unwrap();
        // At NRH=1024 both defenses are cheap (>80 % of baseline).
        assert!(prac_high > 0.8, "PRAC@1024 {prac_high}");
        assert!(frrfm_high > 0.75, "FR-RFM@1024 {frrfm_high}");
        // At NRH=64 FR-RFM collapses (paper: ~0.06× baseline).
        assert!(frrfm_low < 0.5, "FR-RFM@64 {frrfm_low}");
        assert!(frrfm_low < frrfm_high, "overhead must grow as NRH shrinks");
    }

    #[test]
    fn riac_beats_fr_rfm_at_very_low_nrh() {
        let study = run_performance(
            &[DefenseKind::PracRiac, DefenseKind::FrRfm],
            &[64],
            Scale::Quick,
            5,
        );
        let riac = study.cell(DefenseKind::PracRiac, 64).unwrap();
        let frrfm = study.cell(DefenseKind::FrRfm, 64).unwrap();
        assert!(
            riac > frrfm,
            "§11.4: RIAC ({riac}) must outperform FR-RFM ({frrfm}) at NRH=64"
        );
    }

    #[test]
    fn prac_bank_tracks_prac() {
        let study = run_performance(
            &[DefenseKind::Prac, DefenseKind::PracBank],
            &[256],
            Scale::Quick,
            7,
        );
        let prac = study.cell(DefenseKind::Prac, 256).unwrap();
        let bank = study.cell(DefenseKind::PracBank, 256).unwrap();
        // §11.4: PRAC-Bank performs within a few percent of PRAC.
        assert!(
            (prac - bank).abs() < 0.08,
            "PRAC {prac} vs PRAC-Bank {bank} must be close"
        );
    }
}
