//! Window-stream synchronization: preamble detection + drift correction.
//!
//! The paper's sender and receiver agree on the wall clock out of band;
//! a real link cannot. [`PreambleSync`] removes that assumption: the
//! sender prepends a known on/off pattern, and the receiver — which may
//! have started observing windows early or late, with a slightly
//! mismatched window clock — searches (offset, drift) space for the
//! alignment that best correlates with the preamble, then maps payload
//! windows through it.

use serde::{Deserialize, Serialize};

use lh_attacks::WindowObservation;

use crate::modem::Calibration;

/// The alignment a synchronizer recovered.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Alignment {
    /// Observation index where the preamble starts.
    pub offset: usize,
    /// Relative window-clock drift: payload window `i` lands at
    /// observation `offset + round((preamble_len + i) × (1 + drift))`.
    pub drift: f64,
    /// Preamble windows that matched at this alignment.
    pub matches: usize,
    /// Preamble length the score is out of.
    pub out_of: usize,
}

impl Alignment {
    /// Whether the preamble was found convincingly (strictly better
    /// than a coin-flip over the pattern).
    pub fn locked(&self) -> bool {
        self.matches * 2 > self.out_of
    }
}

/// Preamble-correlating synchronizer with a drift-candidate grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PreambleSync {
    /// On/off preamble pattern the sender transmits first (1 = the
    /// modulator's highest-intensity symbol, 0 = idle).
    pub pattern: Vec<u8>,
    /// Inclusive upper bound of the start-offset search, in windows.
    pub max_offset: usize,
    /// Candidate per-window drift rates. `[0.0]` disables drift
    /// correction; a symmetric grid around zero corrects clock skew up
    /// to the grid's edge.
    pub drift_grid: Vec<f64>,
}

impl PreambleSync {
    /// The default synchronizer: a length-7 Barker sequence — the
    /// binary pattern with minimal off-peak autocorrelation, so partial
    /// overlaps score poorly — searched over `max_offset` windows, no
    /// drift correction.
    pub fn barker7(max_offset: usize) -> PreambleSync {
        PreambleSync {
            pattern: vec![1, 1, 1, 0, 0, 1, 0],
            max_offset,
            drift_grid: vec![0.0],
        }
    }

    /// Adds a symmetric drift grid of `steps` points per side, `step`
    /// apart (e.g. `with_drift(2, 0.01)` → ±1 %, ±2 %).
    pub fn with_drift(mut self, steps: usize, step: f64) -> PreambleSync {
        let mut grid = vec![0.0];
        for i in 1..=steps {
            grid.push(step * i as f64);
            grid.push(-step * i as f64);
        }
        self.drift_grid = grid;
        self
    }

    /// Index of window `w` of the *transmission* (preamble window 0 is
    /// `w = 0`) under `offset`/`drift`.
    fn index(&self, offset: usize, drift: f64, w: usize) -> usize {
        offset + (w as f64 * (1.0 + drift)).round().max(0.0) as usize
    }

    /// Searches (offset, drift) space for the best preamble alignment.
    ///
    /// Scoring thresholds each observation into on/off via
    /// `cal.trecv` and counts pattern agreements; ties prefer zero
    /// drift, then the earliest offset, so the result is deterministic.
    pub fn align(&self, obs: &[WindowObservation], cal: &Calibration) -> Alignment {
        let on: Vec<u8> = obs.iter().map(|o| (o.events >= cal.trecv) as u8).collect();
        let mut best = Alignment {
            offset: 0,
            drift: 0.0,
            matches: 0,
            out_of: self.pattern.len(),
        };
        let mut best_key = (0usize, f64::INFINITY, usize::MAX);
        for offset in 0..=self.max_offset {
            for &drift in &self.drift_grid {
                let matches = self
                    .pattern
                    .iter()
                    .enumerate()
                    .filter(|&(w, &p)| on.get(self.index(offset, drift, w)) == Some(&p))
                    .count();
                // Higher match count wins; then smaller |drift|; then
                // smaller offset. The key orders "better" as greater.
                let key = (matches, -drift.abs(), usize::MAX - offset);
                if key.0 > best_key.0
                    || (key.0 == best_key.0 && key.1 > best_key.1)
                    || (key.0 == best_key.0 && key.1 == best_key.1 && key.2 > best_key.2)
                {
                    best_key = key;
                    best = Alignment {
                        offset,
                        drift,
                        matches,
                        out_of: self.pattern.len(),
                    };
                }
            }
        }
        best
    }

    /// Extracts the `n` payload windows following the preamble under
    /// `alignment`. Out-of-range windows yield empty observations (the
    /// receiver stopped watching — those windows decode as silence).
    pub fn extract_payload(
        &self,
        obs: &[WindowObservation],
        alignment: &Alignment,
        n: usize,
    ) -> Vec<WindowObservation> {
        (0..n)
            .map(|i| {
                let w = self.pattern.len() + i;
                obs.get(self.index(alignment.offset, alignment.drift, w))
                    .copied()
                    .unwrap_or_default()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn on_obs() -> WindowObservation {
        WindowObservation {
            events: 3,
            accesses_before_event: 5,
            accesses: 40,
        }
    }

    fn off_obs() -> WindowObservation {
        WindowObservation {
            events: 0,
            accesses_before_event: 40,
            accesses: 40,
        }
    }

    /// Builds an observation stream: `lead` idle windows, then the
    /// pattern, then `payload` on/off windows.
    fn stream(lead: usize, sync: &PreambleSync, payload: &[u8]) -> Vec<WindowObservation> {
        let mut v = vec![off_obs(); lead];
        for &p in &sync.pattern {
            v.push(if p == 1 { on_obs() } else { off_obs() });
        }
        for &p in payload {
            v.push(if p == 1 { on_obs() } else { off_obs() });
        }
        v
    }

    #[test]
    fn finds_the_preamble_at_any_lead() {
        let sync = PreambleSync::barker7(10);
        for lead in [0usize, 1, 4, 9] {
            let obs = stream(lead, &sync, &[1, 0, 1]);
            let a = sync.align(&obs, &Calibration::nominal(1));
            assert_eq!(a.offset, lead, "lead {lead}");
            assert_eq!(a.matches, 7);
            assert!(a.locked());
            let payload = sync.extract_payload(&obs, &a, 3);
            assert_eq!(payload[0].events, 3);
            assert_eq!(payload[1].events, 0);
            assert_eq!(payload[2].events, 3);
        }
    }

    #[test]
    fn tolerates_a_corrupted_preamble_window() {
        let sync = PreambleSync::barker7(6);
        let mut obs = stream(3, &sync, &[1, 1, 0]);
        obs[4] = off_obs(); // second preamble window loses its events
        let a = sync.align(&obs, &Calibration::nominal(1));
        assert_eq!(a.offset, 3);
        assert_eq!(a.matches, 6);
        assert!(a.locked());
    }

    #[test]
    fn unlocked_when_the_channel_is_silent() {
        let sync = PreambleSync::barker7(4);
        let obs = vec![off_obs(); 20];
        let a = sync.align(&obs, &Calibration::nominal(1));
        // Best "alignment" only matches the pattern's zero windows.
        assert_eq!(a.matches, 3);
        assert!(!a.locked());
    }

    #[test]
    fn drift_correction_recovers_a_stretched_clock() {
        // Receiver windows run 25% short: transmission window w lands at
        // observation round(w * 1.25) (every 4th sender window spans two
        // receiver windows; sampling at the stretched grid is exact for
        // this synthetic stream).
        let sync = PreambleSync::barker7(4).with_drift(1, 0.25);
        let tx: Vec<u8> = sync
            .pattern
            .iter()
            .copied()
            .chain([1, 0, 0, 1, 1, 0, 1])
            .collect();
        let lead = 2;
        let total = lead + (tx.len() as f64 * 1.25).ceil() as usize + 2;
        let mut obs = vec![off_obs(); total];
        for (w, &sym) in tx.iter().enumerate() {
            let idx = lead + (w as f64 * 1.25).round() as usize;
            obs[idx] = if sym == 1 { on_obs() } else { off_obs() };
        }
        let a = sync.align(&obs, &Calibration::nominal(1));
        assert_eq!(a.offset, lead);
        assert!((a.drift - 0.25).abs() < 1e-12, "drift {}", a.drift);
        let payload = sync.extract_payload(&obs, &a, 7);
        let decoded: Vec<u8> = payload.iter().map(|o| (o.events >= 1) as u8).collect();
        assert_eq!(decoded, vec![1, 0, 0, 1, 1, 0, 1]);
    }

    #[test]
    fn zero_drift_preferred_on_ties() {
        let sync = PreambleSync::barker7(2).with_drift(2, 0.01);
        let obs = stream(0, &sync, &[1]);
        let a = sync.align(&obs, &Calibration::nominal(1));
        assert_eq!(a.drift, 0.0);
        assert_eq!(a.offset, 0);
    }
}
