//! Latency traces: the raw material of every LeakyHammer attack.
//!
//! A [`LatencyTrace`] is the sequence of per-iteration latencies a
//! measurement loop observes — the in-simulation equivalent of the
//! memorygram of §8 of the paper.

use serde::{Deserialize, Serialize};

use lh_dram::{Span, Time};

/// One measured loop iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencySample {
    /// Timestamp at the *end* of the iteration (`m5_rpns()` analogue).
    pub at: Time,
    /// Duration of the iteration.
    pub latency: Span,
}

/// A sequence of latency samples with analysis helpers.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyTrace {
    samples: Vec<LatencySample>,
}

impl LatencyTrace {
    /// An empty trace.
    pub fn new() -> LatencyTrace {
        LatencyTrace::default()
    }

    /// Appends a sample.
    pub fn push(&mut self, at: Time, latency: Span) {
        self.samples.push(LatencySample { at, latency });
    }

    /// The samples in chronological order.
    pub fn samples(&self) -> &[LatencySample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean latency in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.latency.as_ns()).sum::<f64>() / self.samples.len() as f64
    }

    /// Maximum latency.
    pub fn max(&self) -> Span {
        self.samples
            .iter()
            .map(|s| s.latency)
            .max()
            .unwrap_or(Span::ZERO)
    }

    /// Samples with latency at or above `threshold`.
    pub fn above(&self, threshold: Span) -> impl Iterator<Item = &LatencySample> {
        self.samples.iter().filter(move |s| s.latency >= threshold)
    }

    /// Count of samples with latency at or above `threshold`.
    pub fn count_above(&self, threshold: Span) -> usize {
        self.above(threshold).count()
    }

    /// Samples whose latency falls within `[lo, hi)`.
    pub fn within(&self, lo: Span, hi: Span) -> impl Iterator<Item = &LatencySample> {
        self.samples
            .iter()
            .filter(move |s| s.latency >= lo && s.latency < hi)
    }

    /// Samples restricted to the time window `[from, to)`.
    pub fn window(&self, from: Time, to: Time) -> impl Iterator<Item = &LatencySample> {
        self.samples
            .iter()
            .filter(move |s| s.at >= from && s.at < to)
    }

    /// Mean latency of samples at or above `threshold` (ns), or `None`.
    pub fn mean_above_ns(&self, threshold: Span) -> Option<f64> {
        let above: Vec<f64> = self.above(threshold).map(|s| s.latency.as_ns()).collect();
        if above.is_empty() {
            None
        } else {
            Some(above.iter().sum::<f64>() / above.len() as f64)
        }
    }
}

impl FromIterator<LatencySample> for LatencyTrace {
    fn from_iter<I: IntoIterator<Item = LatencySample>>(iter: I) -> LatencyTrace {
        LatencyTrace {
            samples: iter.into_iter().collect(),
        }
    }
}

impl Extend<LatencySample> for LatencyTrace {
    fn extend<I: IntoIterator<Item = LatencySample>>(&mut self, iter: I) {
        self.samples.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> LatencyTrace {
        let mut t = LatencyTrace::new();
        for (i, ns) in [100u64, 150, 1500, 120, 700, 1600].iter().enumerate() {
            t.push(Time::from_ns(i as u64 * 1000), Span::from_ns(*ns));
        }
        t
    }

    #[test]
    fn thresholding() {
        let t = trace();
        assert_eq!(t.count_above(Span::from_ns(1000)), 2);
        assert_eq!(t.count_above(Span::from_ns(500)), 3);
        assert_eq!(t.within(Span::from_ns(500), Span::from_ns(1000)).count(), 1);
    }

    #[test]
    fn windowing() {
        let t = trace();
        let n = t.window(Time::from_ns(1000), Time::from_ns(4000)).count();
        assert_eq!(n, 3);
    }

    #[test]
    fn stats() {
        let t = trace();
        assert_eq!(t.max(), Span::from_ns(1600));
        assert!((t.mean_ns() - 695.0).abs() < 1e-9);
        let above = t.mean_above_ns(Span::from_ns(1000)).unwrap();
        assert!((above - 1550.0).abs() < 1e-9);
        assert_eq!(LatencyTrace::new().mean_above_ns(Span::from_ns(1)), None);
    }

    #[test]
    fn collect_and_extend() {
        let t = trace();
        let copied: LatencyTrace = t.samples().iter().copied().collect();
        assert_eq!(copied, t);
        let mut e = LatencyTrace::new();
        e.extend(t.samples().iter().copied());
        assert_eq!(e.len(), 6);
    }
}
