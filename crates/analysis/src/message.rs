//! Message encodings used by the covert-channel experiments.

use serde::{Deserialize, Serialize};

/// The test-message patterns of §6.3 / §7.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MessagePattern {
    /// All logic-1 bits.
    AllOnes,
    /// All logic-0 bits.
    AllZeros,
    /// `0101...01`.
    Checkered0,
    /// `1010...10`.
    Checkered1,
}

impl MessagePattern {
    /// The four patterns the paper transmits.
    pub fn paper_set() -> [MessagePattern; 4] {
        [
            MessagePattern::AllOnes,
            MessagePattern::AllZeros,
            MessagePattern::Checkered0,
            MessagePattern::Checkered1,
        ]
    }

    /// Generates `n` bits of this pattern.
    pub fn bits(&self, n: usize) -> Vec<u8> {
        (0..n)
            .map(|i| match self {
                MessagePattern::AllOnes => 1,
                MessagePattern::AllZeros => 0,
                MessagePattern::Checkered0 => (i % 2) as u8,
                MessagePattern::Checkered1 => ((i + 1) % 2) as u8,
            })
            .collect()
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            MessagePattern::AllOnes => "all-1s",
            MessagePattern::AllZeros => "all-0s",
            MessagePattern::Checkered0 => "checkered-0",
            MessagePattern::Checkered1 => "checkered-1",
        }
    }
}

/// Encodes ASCII text as MSB-first bits ("MICRO" → 40 bits, as in the
/// paper's Figs. 3 and 6).
pub fn bits_of_str(s: &str) -> Vec<u8> {
    s.bytes()
        .flat_map(|b| (0..8).rev().map(move |i| (b >> i) & 1))
        .collect()
}

/// Decodes MSB-first bits back to ASCII text (inverse of
/// [`bits_of_str`]). Trailing partial bytes are dropped.
pub fn str_of_bits(bits: &[u8]) -> String {
    bits.chunks_exact(8)
        .map(|chunk| chunk.iter().fold(0u8, |acc, &b| (acc << 1) | (b & 1)) as char)
        .collect()
}

/// Converts bits to base-`base` symbols for multibit transmission
/// (§6.3): each symbol carries `log2(base)` bits; the bit string is
/// consumed MSB-first in groups of `bits_per_symbol`.
pub fn bits_to_symbols(bits: &[u8], base: u8) -> Vec<u8> {
    assert!(
        base.is_power_of_two() && base >= 2,
        "base must be a power of two ≥ 2"
    );
    let k = base.trailing_zeros() as usize;
    bits.chunks(k)
        .map(|chunk| {
            let mut v = 0u8;
            for &b in chunk {
                v = (v << 1) | (b & 1);
            }
            // Pad the final partial chunk with zeros on the right.
            v << (k - chunk.len())
        })
        .collect()
}

/// Inverse of [`bits_to_symbols`], producing exactly `n_bits` bits.
pub fn symbols_to_bits(symbols: &[u8], base: u8, n_bits: usize) -> Vec<u8> {
    assert!(base.is_power_of_two() && base >= 2);
    let k = base.trailing_zeros() as usize;
    let mut bits = Vec::with_capacity(symbols.len() * k);
    for &s in symbols {
        for i in (0..k).rev() {
            bits.push((s >> i) & 1);
        }
    }
    bits.truncate(n_bits);
    bits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_is_40_bits() {
        let bits = bits_of_str("MICRO");
        assert_eq!(bits.len(), 40);
        assert_eq!(str_of_bits(&bits), "MICRO");
        // 'M' = 0x4D = 0100_1101.
        assert_eq!(&bits[..8], &[0, 1, 0, 0, 1, 1, 0, 1]);
    }

    #[test]
    fn patterns_have_expected_shape() {
        assert_eq!(MessagePattern::AllOnes.bits(4), vec![1, 1, 1, 1]);
        assert_eq!(MessagePattern::AllZeros.bits(4), vec![0, 0, 0, 0]);
        assert_eq!(MessagePattern::Checkered0.bits(4), vec![0, 1, 0, 1]);
        assert_eq!(MessagePattern::Checkered1.bits(4), vec![1, 0, 1, 0]);
        assert_eq!(MessagePattern::paper_set().len(), 4);
    }

    #[test]
    fn symbol_roundtrip_quaternary() {
        let bits = bits_of_str("Hi");
        let syms = bits_to_symbols(&bits, 4);
        assert_eq!(syms.len(), 8);
        assert!(syms.iter().all(|&s| s < 4));
        assert_eq!(symbols_to_bits(&syms, 4, bits.len()), bits);
    }

    #[test]
    fn symbol_roundtrip_with_padding() {
        let bits = vec![1, 0, 1]; // not a multiple of 2
        let syms = bits_to_symbols(&bits, 4);
        assert_eq!(syms, vec![0b10, 0b10]); // last chunk padded
        assert_eq!(symbols_to_bits(&syms, 4, 3), bits);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_base_panics() {
        let _ = bits_to_symbols(&[1, 0], 3);
    }
}
