//! `lh-experiments watch`: a terminal dashboard for the NDJSON event
//! stream.
//!
//! Consumes the `started`/`unit`/`finished`/`fleet` lines that
//! `--stream` (or `lh-experiments serve`'s `/runs/<id>/stream`
//! endpoint) emits — one multiplexed feed no matter how many workers
//! produced the events — and renders per-experiment unit progress
//! bars, live wake/command rates derived from the volatile `ts_ms`
//! stamps, a worker-health column from `fleet` telemetry events, and a
//! final whole-run summary. Lines it cannot parse are counted,
//! reported on stderr, and skipped: a viewer must never kill the
//! pipeline feeding it.

use std::io::{self, BufRead, Write};

use lh_harness::json::{parse, Json};

/// Whole-stream totals, rendered as the closing summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WatchSummary {
    /// `finished` events seen.
    pub experiments: usize,
    /// Units across all finished experiments.
    pub units: usize,
    /// Cache-replayed units across all finished experiments.
    pub cached: usize,
    /// Executed units across all finished experiments.
    pub executed: usize,
    /// Summed per-experiment wall milliseconds.
    pub wall_ms: u64,
    /// Summed `sim.service_wakes` across unit events' metrics blocks.
    pub sim_wakes: u64,
    /// Summed `sim.cmd.*` counters across unit events' metrics blocks.
    pub sim_cmds: u64,
    /// `fleet` telemetry events seen.
    pub fleet_events: usize,
    /// Wall-clock span between the first and last `ts_ms`-stamped
    /// lines; 0 when the stream carries no timestamps (pre-v3 feeds).
    pub span_ms: u64,
    /// Lines that were not valid stream events, including unit lines
    /// whose `metrics` field is present but not an object.
    pub malformed: usize,
}

/// Per-experiment progress while its units stream in.
struct Tally {
    experiment: String,
    total: usize,
    done: usize,
}

/// A ten-cell progress bar, e.g. `[####------]`.
fn bar(done: usize, total: usize) -> String {
    const CELLS: usize = 10;
    let filled = (done * CELLS).checked_div(total).unwrap_or(0);
    format!("[{}{}]", "#".repeat(filled), "-".repeat(CELLS - filled))
}

/// Tracks the wall-clock window of `ts_ms`-stamped lines so the
/// dashboard can turn cumulative counters into live rates.
#[derive(Default)]
struct Clock {
    first_ms: Option<u64>,
    last_ms: u64,
}

impl Clock {
    fn observe(&mut self, event: &Json) {
        if let Some(ts) = event["ts_ms"].as_u64() {
            self.first_ms.get_or_insert(ts);
            self.last_ms = self.last_ms.max(ts);
        }
    }

    fn span_ms(&self) -> u64 {
        self.first_ms
            .map_or(0, |first| self.last_ms.saturating_sub(first))
    }

    /// `count` events over the observed window as a per-second rate,
    /// rendered compactly (`532/s`, `1.2k/s`); `None` when the window
    /// is too narrow to divide meaningfully.
    fn rate(&self, count: u64) -> Option<String> {
        let span = self.span_ms();
        if span == 0 || count == 0 {
            return None;
        }
        let per_sec = (count as f64) * 1000.0 / (span as f64);
        Some(if per_sec >= 10_000.0 {
            format!("{:.0}k/s", per_sec / 1000.0)
        } else if per_sec >= 1000.0 {
            format!("{:.1}k/s", per_sec / 1000.0)
        } else {
            format!("{per_sec:.0}/s")
        })
    }
}

/// Renders one `fleet` telemetry event as a worker-health line.
fn render_fleet(out: &mut impl Write, fleet: &Json) -> io::Result<()> {
    let workers = fleet["workers"].as_array();
    let alive = workers
        .iter()
        .filter(|w| w["alive"].as_bool() == Some(true))
        .count();
    let mut cols = String::new();
    for w in workers {
        let index = w["index"].as_u64().unwrap_or(0);
        let state = match (w["alive"].as_bool(), w["busy"].as_str()) {
            (Some(true), Some(busy)) => busy.to_owned(),
            (Some(true), None) => "idle".to_owned(),
            _ => "dead".to_owned(),
        };
        let done = w["units_done"].as_u64().unwrap_or(0);
        cols.push_str(&format!(" | w{index} {state} ({done} done)"));
    }
    writeln!(
        out,
        "fleet: {alive}/{} worker(s) alive — {} lost, {} requeued, {} respawn(s){cols}",
        workers.len(),
        fleet["lost"].as_u64().unwrap_or(0),
        fleet["requeued"].as_u64().unwrap_or(0),
        fleet["respawns_used"].as_u64().unwrap_or(0),
    )
}

/// Renders the event stream from `input` onto `out` line by line,
/// returning the totals after the stream ends.
///
/// # Errors
///
/// Propagates write failures on `out` and read failures on `input`
/// (except the consumer closing the pipe, which callers treat as a
/// normal end of watching).
pub fn watch(input: impl BufRead, mut out: impl Write) -> io::Result<WatchSummary> {
    let mut summary = WatchSummary::default();
    let mut tallies: Vec<Tally> = Vec::new();
    let mut clock = Clock::default();

    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let Ok(event) = parse(&line) else {
            summary.malformed += 1;
            eprintln!("watch: ignoring unparseable line");
            continue;
        };
        clock.observe(&event);
        match event["event"].as_str() {
            Some("started") => {
                let experiment = event["experiment"].as_str().unwrap_or("?").to_owned();
                let total = event["units"].as_u64().unwrap_or(0) as usize;
                writeln!(
                    out,
                    "{experiment}: started — {total} unit(s) at scale {}, seed {}",
                    event["scale"].as_str().unwrap_or("?"),
                    event["seed"].as_u64().unwrap_or(0),
                )?;
                tallies.retain(|t| t.experiment != experiment);
                tallies.push(Tally {
                    experiment,
                    total,
                    done: 0,
                });
            }
            Some("unit") => {
                // The metrics block is optional (pre-v2 streams omit
                // it) but when present it must be an object; a mangled
                // one is counted like any other malformed line without
                // suppressing the unit's progress render.
                match &event["metrics"] {
                    Json::Object(fields) => {
                        summary.sim_wakes +=
                            event["metrics"]["sim.service_wakes"].as_u64().unwrap_or(0);
                        summary.sim_cmds += fields
                            .iter()
                            .filter(|(k, _)| k.starts_with("sim.cmd."))
                            .filter_map(|(_, v)| v.as_u64())
                            .sum::<u64>();
                    }
                    Json::Null => {}
                    _ => {
                        summary.malformed += 1;
                        eprintln!("watch: ignoring non-object metrics block on a unit line");
                    }
                }
                let experiment = event["experiment"].as_str().unwrap_or("?");
                let (done, total) = match tallies.iter_mut().find(|t| t.experiment == experiment) {
                    Some(t) => {
                        t.done += 1;
                        (t.done, t.total)
                    }
                    None => (0, 0), // unit without a started line; still render it
                };
                let width = total.to_string().len();
                let outcome = if event["cached"].as_bool() == Some(true) {
                    "cached".to_owned()
                } else {
                    format!("{} ms", event["ms"].as_u64().unwrap_or(0))
                };
                let progress = if total > 0 {
                    format!(" {}", bar(done, total))
                } else {
                    String::new()
                };
                let rates = match (clock.rate(summary.sim_wakes), clock.rate(summary.sim_cmds)) {
                    (Some(w), Some(c)) => format!(" {w} wakes, {c} cmds"),
                    (Some(w), None) => format!(" {w} wakes"),
                    _ => String::new(),
                };
                writeln!(
                    out,
                    "{experiment}: [{done:>width$}/{total}] {} ({outcome}){progress}{rates}",
                    event["unit"].as_str().unwrap_or("?"),
                )?;
            }
            Some("fleet") => {
                summary.fleet_events += 1;
                render_fleet(&mut out, &event["fleet"])?;
            }
            Some("finished") => {
                let experiment = event["experiment"].as_str().unwrap_or("?");
                let units = event["units"].as_u64().unwrap_or(0);
                let cached = event["cached_units"].as_u64().unwrap_or(0);
                let executed = event["executed_units"].as_u64().unwrap_or(0);
                let wall_ms = event["wall_ms"].as_u64().unwrap_or(0);
                writeln!(
                    out,
                    "{experiment}: finished — {units} unit(s) in {wall_ms} ms \
                     ({cached} cached, {executed} executed)",
                )?;
                summary.experiments += 1;
                summary.units += units as usize;
                summary.cached += cached as usize;
                summary.executed += executed as usize;
                summary.wall_ms += wall_ms;
                tallies.retain(|t| t.experiment != experiment);
            }
            _ => {
                summary.malformed += 1;
                eprintln!("watch: ignoring unknown event line");
            }
        }
    }

    summary.span_ms = clock.span_ms();
    writeln!(
        out,
        "watch: {} experiment(s), {} unit(s) — {} cached, {} executed in {} ms{}{}{}",
        summary.experiments,
        summary.units,
        summary.cached,
        summary.executed,
        summary.wall_ms,
        if summary.sim_wakes > 0 {
            format!(", {} sim wake(s)", summary.sim_wakes)
        } else {
            String::new()
        },
        match clock.rate(summary.sim_wakes) {
            Some(rate) => format!(" ({rate})"),
            None => String::new(),
        },
        if summary.malformed > 0 {
            format!(" ({} malformed line(s) ignored)", summary.malformed)
        } else {
            String::new()
        },
    )?;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_watch(stream: &str) -> (WatchSummary, String) {
        let mut out = Vec::new();
        let summary = watch(stream.as_bytes(), &mut out).unwrap();
        (summary, String::from_utf8(out).unwrap())
    }

    #[test]
    fn renders_progress_and_summary_for_interleaved_experiments() {
        // Two experiments' unit events interleaved, as a multi-worker
        // merged stream produces them.
        let stream = concat!(
            r#"{"event":"started","experiment":"fig4","scale":"quick","seed":11,"units":2}"#,
            "\n",
            r#"{"event":"started","experiment":"fig6","scale":"quick","seed":11,"units":1}"#,
            "\n",
            r#"{"event":"unit","experiment":"fig6","unit":"bits:8","index":0,"cached":false,"ms":7,"result":{}}"#,
            "\n",
            r#"{"event":"unit","experiment":"fig4","unit":"noise:0","index":0,"cached":true,"ms":0,"result":{}}"#,
            "\n",
            r#"{"event":"unit","experiment":"fig4","unit":"noise:1","index":1,"cached":false,"ms":12,"result":{}}"#,
            "\n",
            r#"{"event":"finished","experiment":"fig6","units":1,"cached_units":0,"executed_units":1,"wall_ms":9,"envelope":{}}"#,
            "\n",
            r#"{"event":"finished","experiment":"fig4","units":2,"cached_units":1,"executed_units":1,"wall_ms":20,"envelope":{}}"#,
            "\n",
        );
        let (summary, out) = run_watch(stream);
        assert_eq!(
            summary,
            WatchSummary {
                experiments: 2,
                units: 3,
                cached: 1,
                executed: 2,
                wall_ms: 29,
                sim_wakes: 0,
                sim_cmds: 0,
                fleet_events: 0,
                span_ms: 0,
                malformed: 0,
            }
        );
        assert!(out.contains("fig4: started — 2 unit(s)"), "{out}");
        assert!(out.contains("fig4: [1/2] noise:0 (cached)"), "{out}");
        assert!(out.contains("fig4: [2/2] noise:1 (12 ms)"), "{out}");
        assert!(out.contains("fig6: [1/1] bits:8 (7 ms)"), "{out}");
        assert!(
            out.contains("watch: 2 experiment(s), 3 unit(s) — 1 cached, 2 executed in 29 ms"),
            "{out}"
        );
    }

    #[test]
    fn unit_lines_grow_progress_bars_and_timestamped_rates() {
        let stream = concat!(
            r#"{"event":"started","ts_ms":1000,"experiment":"fig2","scale":"quick","seed":11,"units":4}"#,
            "\n",
            r#"{"event":"unit","ts_ms":1500,"experiment":"fig2","unit":"d:0","index":0,"cached":false,"ms":5,"metrics":{"sim.service_wakes":100,"sim.cmd.act":40,"sim.cmd.ref":10},"result":{}}"#,
            "\n",
            r#"{"event":"unit","ts_ms":2000,"experiment":"fig2","unit":"d:1","index":1,"cached":false,"ms":5,"metrics":{"sim.service_wakes":100},"result":{}}"#,
            "\n",
        );
        let (summary, out) = run_watch(stream);
        assert_eq!(summary.sim_wakes, 200);
        assert_eq!(summary.sim_cmds, 50);
        assert_eq!(summary.span_ms, 1000);
        assert!(out.contains("fig2: [1/4] d:0 (5 ms) [##--------]"), "{out}");
        // After the second unit: 200 wakes over a 1s window.
        assert!(out.contains("[#####-----] 200/s wakes"), "{out}");
        assert!(out.contains("50/s cmds"), "{out}");
        assert!(out.contains("(200/s)"), "closing rate: {out}");
    }

    #[test]
    fn fleet_events_render_the_worker_health_column() {
        let stream = concat!(
            r#"{"event":"fleet","ts_ms":1,"fleet":{"workers":[{"index":0,"pid":9,"alive":true,"units_done":3,"busy":"fig2/d:4","beat_age_ms":12},{"index":1,"pid":10,"alive":false,"units_done":1,"busy":null,"beat_age_ms":null}],"spawned":2,"lost":1,"requeued":1,"respawns_used":0,"heartbeats":5}}"#,
            "\n",
        );
        let (summary, out) = run_watch(stream);
        assert_eq!(summary.fleet_events, 1);
        assert_eq!(summary.malformed, 0);
        assert!(
            out.contains("fleet: 1/2 worker(s) alive — 1 lost, 1 requeued, 0 respawn(s)"),
            "{out}"
        );
        assert!(out.contains("w0 fig2/d:4 (3 done)"), "{out}");
        assert!(out.contains("w1 dead (1 done)"), "{out}");
    }

    #[test]
    fn malformed_metric_blocks_are_counted_not_fatal() {
        let stream = concat!(
            // Well-formed metrics: tallied into sim_wakes.
            r#"{"event":"unit","experiment":"fig2","unit":"d:0","index":0,"cached":false,"ms":5,"metrics":{"sim.service_wakes":30},"result":{}}"#,
            "\n",
            // Metrics present but not an object: malformed, unit still renders.
            r#"{"event":"unit","experiment":"fig2","unit":"d:1","index":1,"cached":false,"ms":5,"metrics":"garbage","result":{}}"#,
            "\n",
            // No metrics at all (pre-v2 stream): neither malformed nor tallied.
            r#"{"event":"unit","experiment":"fig2","unit":"d:2","index":2,"cached":true,"ms":0,"result":{}}"#,
            "\n",
            r#"{"event":"finished","experiment":"fig2","units":3,"cached_units":1,"executed_units":2,"wall_ms":10}"#,
            "\n",
        );
        let (summary, out) = run_watch(stream);
        assert_eq!(summary.malformed, 1);
        assert_eq!(summary.sim_wakes, 30);
        assert_eq!(summary.experiments, 1);
        assert!(
            out.contains("d:1"),
            "malformed metrics must not drop the unit: {out}"
        );
        assert!(out.contains("30 sim wake(s)"), "{out}");
        assert!(out.contains("1 malformed line(s) ignored"), "{out}");
    }

    #[test]
    fn malformed_lines_are_counted_not_fatal() {
        let stream = concat!(
            "{not json\n",
            r#"{"event":"teleport"}"#,
            "\n",
            r#"{"event":"finished","experiment":"fig2","units":1,"cached_units":0,"executed_units":1,"wall_ms":3}"#,
            "\n",
        );
        let (summary, out) = run_watch(stream);
        assert_eq!(summary.malformed, 2);
        assert_eq!(summary.experiments, 1);
        assert!(out.contains("2 malformed line(s) ignored"), "{out}");
    }
}
