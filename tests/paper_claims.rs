//! Integration tests: the paper's headline claims, end-to-end through the
//! whole stack (DRAM device → controller → defenses → system → attacks →
//! metrics).

use leakyhammer::experiment::covert::{run_covert, ChannelKind, CovertOptions};
use leakyhammer::experiment::latency_trace::run_latency_trace;
use lh_analysis::message::bits_of_str;
use lh_defenses::DefenseConfig;
use lh_dram::Span;

/// §6.3 / Fig. 3: the PRAC covert channel transmits "MICRO" at ~40 Kbps
/// raw with zero errors in a quiet system.
#[test]
fn claim_prac_channel_40kbps() {
    let opts = CovertOptions::new(ChannelKind::Prac, bits_of_str("MICRO"));
    let out = run_covert(&opts);
    assert_eq!(out.decoded, opts.bits);
    assert!(
        (out.result.raw_kbps() - 40.0).abs() < 1.0,
        "raw {}",
        out.result.raw_kbps()
    );
    assert!(out.result.capacity_kbps() > 38.0);
}

/// §7.3 / Fig. 6: the RFM covert channel transmits "MICRO" at ~50 Kbps
/// raw — faster than PRAC, as the paper observes (48.7 vs 39.0).
#[test]
fn claim_rfm_channel_is_faster_than_prac() {
    let prac = run_covert(&CovertOptions::new(ChannelKind::Prac, bits_of_str("MICRO")));
    let rfm = run_covert(&CovertOptions::new(ChannelKind::Rfm, bits_of_str("MICRO")));
    assert_eq!(rfm.result.bit_errors, 0);
    assert!(
        rfm.result.raw_kbps() > prac.result.raw_kbps(),
        "RFM {} Kbps must beat PRAC {} Kbps",
        rfm.result.raw_kbps(),
        prac.result.raw_kbps()
    );
}

/// §6.2: a userspace process can distinguish back-offs from refreshes; the
/// back-off is roughly 2× the refresh latency and appears every ~255
/// conflicting requests at NBO = 128.
#[test]
fn claim_backoffs_are_userspace_observable() {
    let out = run_latency_trace(DefenseConfig::prac(128), 600, Span::from_ns(30));
    let ratio = out.backoff_over_refresh().expect("both bands observed");
    assert!(
        (1.3..2.8).contains(&ratio),
        "back-off/refresh ratio {ratio} (paper: 1.9)"
    );
    let rpb = out.requests_per_backoff.expect("back-offs observed");
    assert!(
        (180.0..340.0).contains(&rpb),
        "requests/back-off {rpb} (paper: ~255)"
    );
}

/// §7.2: under PRFM the RFM-class event appears every ~41.8 accesses at
/// TRFM = 40.
#[test]
fn claim_rfm_period_matches_trfm() {
    let out = run_latency_trace(DefenseConfig::prfm(40), 500, Span::from_ns(30));
    let rpr = out.requests_per_rfm.expect("RFM events observed");
    assert!(
        (34.0..56.0).contains(&rpr),
        "requests/RFM {rpr} (paper: 41.8)"
    );
}

/// §4: the channel only exists *because of* the defense — an undefended
/// system shows no back-off-class events at all.
#[test]
fn claim_channel_is_defense_induced() {
    let mut opts = CovertOptions::new(ChannelKind::Prac, bits_of_str("HI"));
    opts.sim.defense = DefenseConfig::none();
    let out = run_covert(&opts);
    assert!(
        out.decoded.iter().all(|&b| b == 0),
        "no defense, no channel"
    );
    assert_eq!(out.backoffs, 0);
}
