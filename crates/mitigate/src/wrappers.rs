//! The countermeasure wrappers: [`Defense`] implementations that
//! delegate to an inner defense and reshape only its observable
//! surface.
//!
//! Every wrapper honors the full `Defense` contract the controller
//! relies on (see `crates/defenses/README.md` and the crate README):
//!
//! * `next_maintenance` stays a pure peek — re-timing wrappers derive
//!   the presented deadline as a *pure function* of the inner deadline,
//!   so repeated peeks agree and the deadline only moves forward when
//!   `take_maintenance` advances the inner schedule;
//! * `take_maintenance` surrenders an operation exactly when `now` has
//!   reached the *presented* deadline — which is never earlier than the
//!   inner one, so the inner take below it cannot fail;
//! * on-time/deferred classification happens against the presented
//!   schedule (the one the controller actually aims for), overriding
//!   the inner defense's own classification in the reported stats.

use std::any::Any;
use std::collections::HashMap;

use lh_defenses::{
    build_defense, Defense, DefenseAction, DefenseConfig, DefenseStats, Maintenance,
};
use lh_dram::{BankId, Geometry, RfmScope, Span, Time};
use lh_obs::flight::{self, EventBuffer, FlightEvent};

use crate::config::{MitigationConfig, MitigationKind};

/// SplitMix64 finalizer: the stateless hash behind every seeded
/// mitigation decision. Statelessness (rather than a sequential RNG)
/// is what keeps re-timing decisions a pure function of the schedule,
/// so peeks are stable no matter how often the controller polls.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Pure delegation: the control arm. A `PassThrough` stack must be
/// command-stream and envelope byte-identical to the bare defense —
/// pinned by `tests/mitigate_transparency.rs` at the workspace root.
#[derive(Debug)]
pub struct PassThrough {
    inner: Box<dyn Defense>,
}

impl PassThrough {
    /// Wraps `inner` without changing anything.
    pub fn new(inner: Box<dyn Defense>) -> PassThrough {
        PassThrough { inner }
    }
}

impl Defense for PassThrough {
    fn kind(&self) -> lh_defenses::DefenseKind {
        self.inner.kind()
    }

    fn on_activate(&mut self, bank: BankId, row: u32, now: Time) -> &[DefenseAction] {
        self.inner.on_activate(bank, row, now)
    }

    fn next_maintenance(&self, rank: u32) -> Option<Maintenance> {
        self.inner.next_maintenance(rank)
    }

    fn next_deadline(&self, rank: u32, now: Time) -> Option<Time> {
        self.inner.next_deadline(rank, now)
    }

    fn take_maintenance(&mut self, rank: u32, now: Time) -> Option<Maintenance> {
        self.inner.take_maintenance(rank, now)
    }

    fn maintenance_period(&self) -> Option<Span> {
        self.inner.maintenance_period()
    }

    fn on_periodic_refresh(&mut self, rank: u32) -> Vec<(BankId, u32)> {
        self.inner.on_periodic_refresh(rank)
    }

    fn stats(&self) -> &DefenseStats {
        self.inner.stats()
    }

    fn drain_flight(&mut self, sink: &mut EventBuffer) {
        self.inner.drain_flight(sink);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Seeded randomization of scheduled-maintenance timing: every inner
/// deadline is presented to the controller slipped forward by
/// `hash(seed, rank, deadline) mod (max + 1)` picoseconds.
///
/// The slip is a pure function of the inner deadline, so peeks are
/// stable; it is non-negative, so the inner operation is always due by
/// the time the presented deadline arrives; and it is clamped to the
/// inner maintenance period, so the presented schedule stays monotone.
#[derive(Debug)]
pub struct MaintenanceJitter {
    inner: Box<dyn Defense>,
    max: Span,
    seed: u64,
    actions: Vec<DefenseAction>,
    stats: DefenseStats,
    flight: EventBuffer,
}

impl MaintenanceJitter {
    /// Wraps `inner`, slipping each deadline forward by up to `max`.
    pub fn new(inner: Box<dyn Defense>, max: Span, seed: u64) -> MaintenanceJitter {
        // Clamp so consecutive presented deadlines cannot reorder.
        let max = match inner.maintenance_period() {
            Some(period) => max.min(period),
            None => max,
        };
        let stats = *inner.stats();
        MaintenanceJitter {
            inner,
            max,
            seed,
            actions: Vec::new(),
            stats,
            flight: EventBuffer::new(),
        }
    }

    /// The slip applied to the inner deadline `due` on `rank`.
    fn slip(&self, rank: u32, due: Time) -> Span {
        let h = mix(self.seed ^ due.as_ps().rotate_left(17) ^ (u64::from(rank) << 56));
        Span::from_ps(h % (self.max.as_ps() + 1))
    }

    /// The presented (jittered) deadline for an inner operation.
    fn present(&self, m: Maintenance) -> Maintenance {
        Maintenance {
            due: m.due + self.slip(m.rank, m.due),
            ..m
        }
    }

    fn refresh_stats(&mut self) {
        let (on_time, deferred) = (
            self.stats.maintenance_on_time,
            self.stats.maintenance_deferred,
        );
        self.stats = *self.inner.stats();
        self.stats.maintenance_on_time = on_time;
        self.stats.maintenance_deferred = deferred;
    }
}

impl Defense for MaintenanceJitter {
    fn kind(&self) -> lh_defenses::DefenseKind {
        self.inner.kind()
    }

    fn on_activate(&mut self, bank: BankId, row: u32, now: Time) -> &[DefenseAction] {
        let actions = self.inner.on_activate(bank, row, now).to_vec();
        self.actions = actions;
        self.refresh_stats();
        &self.actions
    }

    fn next_maintenance(&self, rank: u32) -> Option<Maintenance> {
        self.inner.next_maintenance(rank).map(|m| self.present(m))
    }

    fn take_maintenance(&mut self, rank: u32, now: Time) -> Option<Maintenance> {
        let presented = self.next_maintenance(rank)?;
        if now < presented.due {
            return None;
        }
        let inner = self
            .inner
            .take_maintenance(rank, now)
            .expect("inner deadline precedes the jittered one");
        if now == presented.due {
            self.stats.maintenance_on_time += 1;
        } else {
            self.stats.maintenance_deferred += 1;
        }
        if flight::active() {
            self.flight.push(FlightEvent::Mitigation {
                t_ns: now.as_ps() / 1_000,
                wrapper: "jitter",
                action: "slip",
                rank,
                amount_ns: presented.due.saturating_since(inner.due).as_ps() / 1_000,
            });
        }
        self.refresh_stats();
        Some(presented)
    }

    fn maintenance_period(&self) -> Option<Span> {
        // Worst-case spacing between presented deadlines: the REF
        // fitting heuristic must plan for the densest case.
        self.inner
            .maintenance_period()
            .map(|p| p.saturating_sub(self.max))
    }

    fn on_periodic_refresh(&mut self, rank: u32) -> Vec<(BankId, u32)> {
        let victims = self.inner.on_periodic_refresh(rank);
        self.refresh_stats();
        victims
    }

    fn stats(&self) -> &DefenseStats {
        &self.stats
    }

    fn drain_flight(&mut self, sink: &mut EventBuffer) {
        sink.absorb(&mut self.flight);
        self.inner.drain_flight(sink);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Coalesce scheduled maintenance into batches released at quantized
/// instants: every inner deadline is deferred to the next multiple of
/// the quantum, so release times carry only the quantizer's clock.
/// Operations from several ranks whose deadlines fall in the same
/// quantum release back-to-back at its boundary.
#[derive(Debug)]
pub struct DeferredBatch {
    inner: Box<dyn Defense>,
    quantum: Span,
    actions: Vec<DefenseAction>,
    stats: DefenseStats,
    flight: EventBuffer,
}

impl DeferredBatch {
    /// Wraps `inner`, quantizing deadlines up to multiples of
    /// `quantum`.
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero.
    pub fn new(inner: Box<dyn Defense>, quantum: Span) -> DeferredBatch {
        assert!(!quantum.is_zero(), "batch quantum must be non-zero");
        let stats = *inner.stats();
        DeferredBatch {
            inner,
            quantum,
            actions: Vec::new(),
            stats,
            flight: EventBuffer::new(),
        }
    }

    /// `due` rounded up to the next quantum boundary.
    fn quantize(&self, due: Time) -> Time {
        let q = self.quantum.as_ps();
        Time::from_ps(due.as_ps().div_ceil(q) * q)
    }

    fn refresh_stats(&mut self) {
        let (on_time, deferred) = (
            self.stats.maintenance_on_time,
            self.stats.maintenance_deferred,
        );
        self.stats = *self.inner.stats();
        self.stats.maintenance_on_time = on_time;
        self.stats.maintenance_deferred = deferred;
    }
}

impl Defense for DeferredBatch {
    fn kind(&self) -> lh_defenses::DefenseKind {
        self.inner.kind()
    }

    fn on_activate(&mut self, bank: BankId, row: u32, now: Time) -> &[DefenseAction] {
        let actions = self.inner.on_activate(bank, row, now).to_vec();
        self.actions = actions;
        self.refresh_stats();
        &self.actions
    }

    fn next_maintenance(&self, rank: u32) -> Option<Maintenance> {
        self.inner.next_maintenance(rank).map(|m| Maintenance {
            due: self.quantize(m.due),
            ..m
        })
    }

    fn take_maintenance(&mut self, rank: u32, now: Time) -> Option<Maintenance> {
        let presented = self.next_maintenance(rank)?;
        if now < presented.due {
            return None;
        }
        let inner = self
            .inner
            .take_maintenance(rank, now)
            .expect("inner deadline precedes the quantized one");
        if now == presented.due {
            self.stats.maintenance_on_time += 1;
        } else {
            self.stats.maintenance_deferred += 1;
        }
        if flight::active() {
            self.flight.push(FlightEvent::Mitigation {
                t_ns: now.as_ps() / 1_000,
                wrapper: "batch",
                action: "defer",
                rank,
                amount_ns: presented.due.saturating_since(inner.due).as_ps() / 1_000,
            });
        }
        self.refresh_stats();
        Some(presented)
    }

    fn maintenance_period(&self) -> Option<Span> {
        // Two deadlines one inner period apart can quantize to
        // boundaries as close as floor(period / quantum) quanta (zero
        // when the quantum exceeds the period: a batch releases
        // back-to-back).
        self.inner.maintenance_period().map(|p| {
            let q = self.quantum.as_ps();
            Span::from_ps(p.as_ps() / q * q)
        })
    }

    fn on_periodic_refresh(&mut self, rank: u32) -> Vec<(BankId, u32)> {
        let victims = self.inner.on_periodic_refresh(rank);
        self.refresh_stats();
        victims
    }

    fn stats(&self) -> &DefenseStats {
        &self.stats
    }

    fn drain_flight(&mut self, sink: &mut EventBuffer) {
        sink.absorb(&mut self.flight);
        self.inner.drain_flight(sink);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Inject dummy maintenance at a fixed rate and absorb the inner
/// defense's RFM-shaped output, so the RFM stream the attacker observes
/// is pattern-independent.
///
/// * Reactive `IssueRfm` actions the inner defense requests are
///   filtered out of `on_activate`'s answer (the fixed-rate all-bank
///   stream covers the preventive work they asked for).
/// * The wrapper publishes its own fixed-period all-bank schedule
///   through `next_maintenance`; inner *scheduled* operations that
///   come due are silently drained when the wrapper's own operation is
///   taken.
/// * Non-RFM actions (neighbor refreshes, throttles) pass through
///   untouched: their observables are not RFM-shaped, and dropping
///   them would weaken the inner defense's RowHammer guarantee.
#[derive(Debug)]
pub struct ConstantRateShaper {
    inner: Box<dyn Defense>,
    period: Span,
    due: Vec<Time>,
    emitted: u64,
    absorbed: u64,
    actions: Vec<DefenseAction>,
    stats: DefenseStats,
    flight: EventBuffer,
}

impl ConstantRateShaper {
    /// Wraps `inner` with a fixed-period dummy all-bank RFM stream.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(inner: Box<dyn Defense>, period: Span, geometry: &Geometry) -> ConstantRateShaper {
        assert!(!period.is_zero(), "shaper period must be non-zero");
        let stats = *inner.stats();
        ConstantRateShaper {
            inner,
            period,
            due: vec![Time::ZERO + period; geometry.ranks_per_channel() as usize],
            emitted: 0,
            absorbed: 0,
            actions: Vec::new(),
            stats,
            flight: EventBuffer::new(),
        }
    }

    /// Reactive RFMs absorbed into the shaped stream so far.
    pub fn absorbed(&self) -> u64 {
        self.absorbed
    }

    fn refresh_stats(&mut self) {
        let (on_time, deferred) = (
            self.stats.maintenance_on_time,
            self.stats.maintenance_deferred,
        );
        self.stats = *self.inner.stats();
        self.stats.maintenance_on_time = on_time;
        self.stats.maintenance_deferred = deferred;
        // The dummy stream is fixed-rate maintenance; account it where
        // FR-RFM accounts its own RFMs.
        self.stats.fr_rfm_rfms += self.emitted;
    }
}

impl Defense for ConstantRateShaper {
    fn kind(&self) -> lh_defenses::DefenseKind {
        self.inner.kind()
    }

    fn on_activate(&mut self, bank: BankId, row: u32, now: Time) -> &[DefenseAction] {
        let mut actions = self.inner.on_activate(bank, row, now).to_vec();
        let record = flight::active();
        actions.retain(|a| {
            let reactive_rfm = matches!(a, DefenseAction::IssueRfm { .. });
            if reactive_rfm {
                self.absorbed += 1;
                if record {
                    self.flight.push(FlightEvent::Mitigation {
                        t_ns: now.as_ps() / 1_000,
                        wrapper: "shaper",
                        action: "absorb",
                        rank: bank.rank,
                        amount_ns: 0,
                    });
                }
            }
            !reactive_rfm
        });
        self.actions = actions;
        self.refresh_stats();
        &self.actions
    }

    fn next_maintenance(&self, rank: u32) -> Option<Maintenance> {
        Some(Maintenance {
            rank,
            scope: RfmScope::AllBank,
            due: self.due[rank as usize],
        })
    }

    fn take_maintenance(&mut self, rank: u32, now: Time) -> Option<Maintenance> {
        let due = self.due[rank as usize];
        if now < due {
            return None;
        }
        self.due[rank as usize] = due + self.period;
        self.emitted += 1;
        // Inner scheduled operations that came due are covered by this
        // all-bank RFM; drain them so the inner schedule keeps moving.
        let mut covered = 0u64;
        while self.inner.take_maintenance(rank, now).is_some() {
            covered += 1;
        }
        if flight::active() && covered == 0 {
            // No inner operation was due: the emitted RFM is pure chaff
            // keeping the observable rate constant.
            self.flight.push(FlightEvent::Mitigation {
                t_ns: now.as_ps() / 1_000,
                wrapper: "shaper",
                action: "dummy-rfm",
                rank,
                amount_ns: 0,
            });
        }
        if now == due {
            self.stats.maintenance_on_time += 1;
        } else {
            self.stats.maintenance_deferred += 1;
        }
        self.refresh_stats();
        Some(Maintenance {
            rank,
            scope: RfmScope::AllBank,
            due,
        })
    }

    fn maintenance_period(&self) -> Option<Span> {
        Some(self.period)
    }

    fn on_periodic_refresh(&mut self, rank: u32) -> Vec<(BankId, u32)> {
        let victims = self.inner.on_periodic_refresh(rank);
        self.refresh_stats();
        victims
    }

    fn stats(&self) -> &DefenseStats {
        &self.stats
    }

    fn drain_flight(&mut self, sink: &mut EventBuffer) {
        sink.absorb(&mut self.flight);
        self.inner.drain_flight(sink);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Per-(bank, row) activation budget per epoch: a row activated more
/// than `budget` times within one epoch is throttled to the epoch
/// boundary, capping the trigger pressure any single aggressor can
/// generate. Epochs are aligned to time zero.
///
/// The ledger is keyed by (bank, row) and consulted only point-wise
/// (never iterated), so the wrapper stays deterministic.
#[derive(Debug)]
pub struct IsolationQuota {
    inner: Box<dyn Defense>,
    budget: u32,
    epoch: Span,
    /// Per (bank, row): (epoch index, activations inside it).
    ledger: HashMap<(BankId, u32), (u64, u32)>,
    throttled: u64,
    actions: Vec<DefenseAction>,
    stats: DefenseStats,
    flight: EventBuffer,
}

impl IsolationQuota {
    /// Wraps `inner` with the budget/epoch quota.
    ///
    /// # Panics
    ///
    /// Panics if `epoch` is zero.
    pub fn new(inner: Box<dyn Defense>, budget: u32, epoch: Span) -> IsolationQuota {
        assert!(!epoch.is_zero(), "quota epoch must be non-zero");
        let stats = *inner.stats();
        IsolationQuota {
            inner,
            budget,
            epoch,
            ledger: HashMap::new(),
            throttled: 0,
            actions: Vec::new(),
            stats,
            flight: EventBuffer::new(),
        }
    }

    fn refresh_stats(&mut self) {
        self.stats = *self.inner.stats();
        self.stats.throttles += self.throttled;
    }
}

impl Defense for IsolationQuota {
    fn kind(&self) -> lh_defenses::DefenseKind {
        self.inner.kind()
    }

    fn on_activate(&mut self, bank: BankId, row: u32, now: Time) -> &[DefenseAction] {
        let epoch_ps = self.epoch.as_ps();
        let idx = now.as_ps() / epoch_ps;
        let entry = self.ledger.entry((bank, row)).or_insert((idx, 0));
        if entry.0 != idx {
            *entry = (idx, 0);
        }
        entry.1 += 1;
        let over_budget = entry.1 > self.budget;
        let mut actions = self.inner.on_activate(bank, row, now).to_vec();
        if over_budget {
            self.throttled += 1;
            let until = Time::from_ps((idx + 1) * epoch_ps);
            actions.push(DefenseAction::ThrottleRow { bank, row, until });
            if flight::active() {
                self.flight.push(FlightEvent::Mitigation {
                    t_ns: now.as_ps() / 1_000,
                    wrapper: "quota",
                    action: "throttle",
                    rank: bank.rank,
                    amount_ns: until.saturating_since(now).as_ps() / 1_000,
                });
            }
        }
        self.actions = actions;
        self.refresh_stats();
        &self.actions
    }

    fn next_maintenance(&self, rank: u32) -> Option<Maintenance> {
        self.inner.next_maintenance(rank)
    }

    fn next_deadline(&self, rank: u32, now: Time) -> Option<Time> {
        self.inner.next_deadline(rank, now)
    }

    fn take_maintenance(&mut self, rank: u32, now: Time) -> Option<Maintenance> {
        let taken = self.inner.take_maintenance(rank, now);
        self.refresh_stats();
        taken
    }

    fn maintenance_period(&self) -> Option<Span> {
        self.inner.maintenance_period()
    }

    fn on_periodic_refresh(&mut self, rank: u32) -> Vec<(BankId, u32)> {
        let victims = self.inner.on_periodic_refresh(rank);
        self.refresh_stats();
        victims
    }

    fn stats(&self) -> &DefenseStats {
        &self.stats
    }

    fn drain_flight(&mut self, sink: &mut EventBuffer) {
        sink.absorb(&mut self.flight);
        self.inner.drain_flight(sink);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Wraps `inner` in the configured mitigation — the factory mirroring
/// [`build_defense`]. Adding a mitigation means implementing the
/// wrapper and extending this match; the controller never changes.
///
/// # Panics
///
/// Panics if the configuration lacks the parameters its kind implies
/// (the same contract `build_defense` applies to defense configs).
pub fn build_mitigation(
    config: &MitigationConfig,
    geometry: &Geometry,
    seed: u64,
    inner: Box<dyn Defense>,
) -> Box<dyn Defense> {
    match config.kind {
        MitigationKind::PassThrough => Box::new(PassThrough::new(inner)),
        MitigationKind::MaintenanceJitter => {
            let j = config.jitter.expect("jitter kind implies config");
            Box::new(MaintenanceJitter::new(inner, j.max, seed))
        }
        MitigationKind::DeferredBatch => {
            let b = config.batch.expect("batch kind implies config");
            Box::new(DeferredBatch::new(inner, b.quantum))
        }
        MitigationKind::ConstantRateShaper => {
            let s = config.shaper.expect("shaper kind implies config");
            Box::new(ConstantRateShaper::new(inner, s.period, geometry))
        }
        MitigationKind::IsolationQuota => {
            let q = config.quota.expect("quota kind implies config");
            Box::new(IsolationQuota::new(inner, q.budget, q.epoch))
        }
    }
}

/// Applies a mitigation stack over `inner`, innermost layer first — an
/// empty stack returns `inner` unchanged, so an unmitigated system is
/// bit-identical to one built before this crate existed. Each layer
/// derives its own seed from `seed` and its stack position.
pub fn apply_mitigations(
    configs: &[MitigationConfig],
    geometry: &Geometry,
    seed: u64,
    inner: Box<dyn Defense>,
) -> Box<dyn Defense> {
    configs.iter().enumerate().fold(inner, |engine, (i, cfg)| {
        build_mitigation(cfg, geometry, mix(seed ^ ((i as u64) << 32)), engine)
    })
}

/// Builds the defense and its mitigation stack in one call — the shape
/// the memory controller uses.
pub fn build_mitigated_defense(
    defense: &DefenseConfig,
    mitigations: &[MitigationConfig],
    geometry: &Geometry,
    defense_seed: u64,
    mitigation_seed: u64,
) -> Box<dyn Defense> {
    let inner = build_defense(defense, geometry, defense_seed);
    apply_mitigations(mitigations, geometry, mitigation_seed, inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lh_defenses::{DefenseKind, FrRfmDefense, PrfmDefense};
    use proptest::prelude::*;

    fn frrfm(period_ns: u64) -> Box<dyn Defense> {
        Box::new(FrRfmDefense::new(
            Span::from_ns(period_ns),
            &Geometry::paper_default(),
        ))
    }

    /// Drives `engine` with takes issued exactly at each presented
    /// deadline and returns the first `n` presented due instants.
    fn take_schedule(engine: &mut dyn Defense, n: usize) -> Vec<Time> {
        (0..n)
            .map(|_| {
                let due = engine.next_maintenance(0).expect("scheduled defense").due;
                let taken = engine.take_maintenance(0, due).expect("due reached");
                assert_eq!(taken.due, due, "take must surrender the peeked operation");
                due
            })
            .collect()
    }

    #[test]
    fn empty_stack_returns_the_inner_defense_unwrapped() {
        let g = Geometry::paper_default();
        let engine = apply_mitigations(&[], &g, 7, frrfm(1000));
        assert!(
            engine.as_any().is::<FrRfmDefense>(),
            "an empty stack must not add a wrapper layer"
        );
    }

    #[test]
    fn pass_through_matches_the_bare_defense() {
        let g = Geometry::paper_default();
        let mut bare = frrfm(1000);
        let mut wrapped =
            apply_mitigations(&[MitigationConfig::pass_through()], &g, 7, frrfm(1000));
        assert_eq!(wrapped.kind(), DefenseKind::FrRfm);
        assert_eq!(
            take_schedule(bare.as_mut(), 16),
            take_schedule(wrapped.as_mut(), 16)
        );
        assert_eq!(bare.stats(), wrapped.stats());
        assert_eq!(bare.maintenance_period(), wrapped.maintenance_period());
    }

    #[test]
    fn jitter_peeks_are_stable_and_never_early() {
        let g = Geometry::paper_default();
        let stack = [MitigationConfig::jitter(Span::from_ns(400))];
        let mut engine = apply_mitigations(&stack, &g, 9, frrfm(1000));
        let peek1 = engine.next_maintenance(0).unwrap().due;
        let peek2 = engine.next_maintenance(0).unwrap().due;
        assert_eq!(peek1, peek2, "peeking must not perturb the schedule");
        assert!(
            peek1 >= Time::ZERO + Span::from_ns(1000),
            "jitter only slips forward"
        );
        let schedule = take_schedule(engine.as_mut(), 32);
        for pair in schedule.windows(2) {
            assert!(pair[0] <= pair[1], "jittered schedule must stay monotone");
        }
        // With max = 400 ns of slip on a 1 µs period, some deadline in
        // 32 periods moves off the bare grid.
        assert!(
            schedule.iter().any(|t| t.as_ps() % 1_000_000 != 0),
            "a non-degenerate jitter config must actually move deadlines"
        );
    }

    #[test]
    fn jitter_classifies_against_the_presented_schedule() {
        let g = Geometry::paper_default();
        let stack = [MitigationConfig::jitter(Span::from_ns(400))];
        let mut engine = apply_mitigations(&stack, &g, 9, frrfm(1000));
        let due = engine.next_maintenance(0).unwrap().due;
        engine.take_maintenance(0, due).unwrap();
        let due = engine.next_maintenance(0).unwrap().due;
        engine.take_maintenance(0, due + Span::from_ns(5)).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.maintenance_on_time, 1);
        assert_eq!(stats.maintenance_deferred, 1);
        // The inner FR-RFM counter still reports the work performed.
        assert_eq!(stats.fr_rfm_rfms, 2);
    }

    #[test]
    fn batch_quantizes_deadlines_up() {
        let g = Geometry::paper_default();
        // 700 ns inner period, 1 µs quantum: releases happen only on
        // microsecond boundaries, and two inner operations (at 1400 and
        // 2100 ns) share none / the 2 µs and 3 µs boundaries.
        let stack = [MitigationConfig::batch(Span::from_us(1))];
        let mut engine = apply_mitigations(&stack, &g, 7, frrfm(700));
        let schedule = take_schedule(engine.as_mut(), 8);
        for due in &schedule {
            assert_eq!(due.as_ps() % 1_000_000, 0, "{due:?} off the quantum grid");
        }
        for pair in schedule.windows(2) {
            assert!(pair[0] <= pair[1]);
        }
    }

    #[test]
    fn shaper_absorbs_reactive_rfms_and_emits_fixed_rate() {
        let g = Geometry::paper_default();
        let inner = Box::new(PrfmDefense::new(4, &g));
        let mut shaper = ConstantRateShaper::new(inner, Span::from_us(1), &g);
        let bank = BankId::new(0, 0, 0, 0);
        // 8 activations on one bank: bare PRFM would emit 2 RFMs.
        for i in 0..8 {
            let actions = shaper.on_activate(bank, 3, Time::from_ps(1000 * i));
            assert!(
                !actions
                    .iter()
                    .any(|a| matches!(a, DefenseAction::IssueRfm { .. })),
                "reactive RFMs must be absorbed into the shaped stream"
            );
        }
        assert_eq!(shaper.absorbed(), 2);
        // The observable stream is the wrapper's own fixed-rate
        // schedule, present even with zero traffic.
        let first = shaper.next_maintenance(0).unwrap();
        assert_eq!(first.due, Time::ZERO + Span::from_us(1));
        assert_eq!(first.scope, RfmScope::AllBank);
        shaper.take_maintenance(0, first.due).unwrap();
        assert_eq!(
            shaper.next_maintenance(0).unwrap().due,
            Time::ZERO + Span::from_us(2)
        );
        // The dummy stream is accounted as fixed-rate maintenance; the
        // inner defense's trigger counter is preserved alongside.
        assert_eq!(shaper.stats().fr_rfm_rfms, 1);
        assert_eq!(shaper.stats().prfm_rfms, 2);
    }

    #[test]
    fn quota_throttles_only_over_budget_rows() {
        let g = Geometry::paper_default();
        let inner = build_defense(&DefenseConfig::none(), &g, 7);
        let mut quota = IsolationQuota::new(inner, 3, Span::from_us(1));
        let bank = BankId::new(0, 0, 0, 0);
        let t = |ns| Time::ZERO + Span::from_ns(ns);
        for i in 0..3 {
            assert!(quota.on_activate(bank, 5, t(10 * (i + 1))).is_empty());
        }
        // Fourth activation in the same epoch crosses the budget.
        let actions = quota.on_activate(bank, 5, t(40)).to_vec();
        assert_eq!(
            actions,
            vec![DefenseAction::ThrottleRow {
                bank,
                row: 5,
                until: t(1000),
            }]
        );
        // A different row in the same bank has its own ledger…
        assert!(quota.on_activate(bank, 6, t(50)).is_empty());
        // …and the next epoch resets the offender's budget.
        assert!(quota.on_activate(bank, 5, t(1200)).is_empty());
        assert_eq!(quota.stats().throttles, 1);
    }

    #[test]
    fn stacks_compose_in_order() {
        let g = Geometry::paper_default();
        let stack = [
            MitigationConfig::jitter(Span::from_ns(400)),
            MitigationConfig::batch(Span::from_us(1)),
        ];
        // Outermost layer is the last entry: the controller sees the
        // batcher, whose deadlines sit on the quantum grid even though
        // the layer beneath jitters them.
        let mut engine = apply_mitigations(&stack, &g, 11, frrfm(1000));
        for due in take_schedule(engine.as_mut(), 8) {
            assert_eq!(due.as_ps() % 1_000_000, 0, "{due:?} off the quantum grid");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Satellite invariant: `MaintenanceJitter` is deterministic
        /// under a fixed seed — same seed ⇒ same presented schedule —
        /// and stays within its configured slip bound.
        #[test]
        fn jitter_same_seed_same_schedule(
            seed in any::<u64>(),
            period_ns in 500u64..5000,
            max_ns in 0u64..2000,
            steps in 1usize..24,
        ) {
            let g = Geometry::paper_default();
            let stack = [MitigationConfig::jitter(Span::from_ns(max_ns))];
            let mut a = apply_mitigations(&stack, &g, seed, frrfm(period_ns));
            let mut b = apply_mitigations(&stack, &g, seed, frrfm(period_ns));
            let sa = take_schedule(a.as_mut(), steps);
            let sb = take_schedule(b.as_mut(), steps);
            prop_assert_eq!(&sa, &sb, "same seed must reproduce the schedule");
            let max = Span::from_ns(max_ns.min(period_ns));
            for (i, due) in sa.iter().enumerate() {
                let bare = Time::ZERO + Span::from_ns(period_ns) * (i as u64 + 1);
                prop_assert!(*due >= bare, "slip must be non-negative");
                prop_assert!(*due <= bare + max, "slip must respect the clamped bound");
            }
        }
    }
}
