//! Qualitative taxonomy of RowHammer defenses (§12 of the paper).
//!
//! A RowHammer-defense-based timing channel exists when an attacker can
//! both (i) *observe* a preventive action's latency and (ii) *trigger* one
//! intentionally. This module encodes the paper's classification of
//! preventive-action visibility and trigger algorithms, and derives the
//! resulting channel risk — the programmatic form of the paper's §12
//! discussion and the basis of the Table 3 capability matrix.

use serde::{Deserialize, Serialize};

use crate::config::DefenseKind;

/// How a defense's trigger algorithm decides to act (§12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TriggerClass {
    /// Perfect per-resource tracking (PRAC, PRFM counters): an attacker
    /// can trigger preventive actions deterministically.
    Exact,
    /// Fewer trackers than resources (Graphene, Hydra, ...): shared
    /// trackers add noise but the channel remains.
    Approximate,
    /// Stateless random triggering (PARA): the attacker cannot reliably
    /// trigger or observe actions.
    Random,
    /// Actions happen on a fixed wall-clock schedule (FR-RFM): the trigger
    /// carries no information about traffic.
    TimeBased,
}

/// Whether a preventive action's latency is observable (§12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActionVisibility {
    /// The action blocks DRAM and is visible as extra latency
    /// (preventive refresh, row migration, throttling).
    Observable,
    /// The action hides behind periodic refresh ("borrowed time" designs
    /// such as MINT/PrIDE); nothing extra to observe.
    Overlapped,
}

/// Resulting timing-channel exposure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ChannelRisk {
    /// No defense-induced timing channel.
    None,
    /// A noisy channel exists (reduced capacity).
    Degraded,
    /// A reliable, deterministic channel exists.
    Full,
}

/// The (visibility, trigger) profile of a defense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DefenseProfile {
    /// Trigger algorithm class.
    pub trigger: TriggerClass,
    /// Preventive-action visibility.
    pub visibility: ActionVisibility,
}

impl DefenseProfile {
    /// The timing-channel risk implied by this profile, per §12: a channel
    /// requires an observable action *and* a trigger the attacker can
    /// steer; randomness degrades rather than fully removes it only when
    /// paired with exact observability of individual actions.
    pub fn channel_risk(&self) -> ChannelRisk {
        match (self.visibility, self.trigger) {
            (ActionVisibility::Overlapped, _) => ChannelRisk::None,
            (_, TriggerClass::TimeBased) => ChannelRisk::None,
            (_, TriggerClass::Exact) => ChannelRisk::Full,
            (_, TriggerClass::Approximate) => ChannelRisk::Degraded,
            (_, TriggerClass::Random) => ChannelRisk::Degraded,
        }
    }
}

/// The profile of each defense modeled in this repository.
pub fn profile_of(kind: DefenseKind) -> Option<DefenseProfile> {
    match kind {
        DefenseKind::None => None,
        DefenseKind::Prac | DefenseKind::Prfm | DefenseKind::PracBank => Some(DefenseProfile {
            trigger: TriggerClass::Exact,
            visibility: ActionVisibility::Observable,
        }),
        // RIAC keeps exact counters but randomizes their phase, which the
        // paper classifies as capacity reduction, not elimination.
        DefenseKind::PracRiac => Some(DefenseProfile {
            trigger: TriggerClass::Random,
            visibility: ActionVisibility::Observable,
        }),
        DefenseKind::FrRfm => Some(DefenseProfile {
            trigger: TriggerClass::TimeBased,
            visibility: ActionVisibility::Observable,
        }),
        DefenseKind::Para => Some(DefenseProfile {
            trigger: TriggerClass::Random,
            visibility: ActionVisibility::Observable,
        }),
        // §12's approximate trigger algorithms: shared trackers add noise
        // (other processes advance or steal the attacker's tracker state)
        // but a channel remains. BlockHammer's preventive action is a
        // *delay*, still observable latency.
        DefenseKind::Graphene
        | DefenseKind::Hydra
        | DefenseKind::Comet
        | DefenseKind::BlockHammer => Some(DefenseProfile {
            trigger: TriggerClass::Approximate,
            visibility: ActionVisibility::Observable,
        }),
        // MINT refreshes inside the periodic REF window: random trigger
        // *and* overlapped latency — nothing to observe.
        DefenseKind::Mint => Some(DefenseProfile {
            trigger: TriggerClass::Random,
            visibility: ActionVisibility::Overlapped,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_observable_defenses_have_full_channels() {
        for kind in [DefenseKind::Prac, DefenseKind::Prfm, DefenseKind::PracBank] {
            let p = profile_of(kind).unwrap();
            assert_eq!(p.channel_risk(), ChannelRisk::Full, "{kind}");
        }
    }

    #[test]
    fn fr_rfm_eliminates_the_channel() {
        let p = profile_of(DefenseKind::FrRfm).unwrap();
        assert_eq!(p.channel_risk(), ChannelRisk::None);
    }

    #[test]
    fn riac_and_para_only_degrade() {
        for kind in [DefenseKind::PracRiac, DefenseKind::Para] {
            let p = profile_of(kind).unwrap();
            assert_eq!(p.channel_risk(), ChannelRisk::Degraded, "{kind}");
        }
    }

    #[test]
    fn overlapped_actions_have_no_channel_regardless_of_trigger() {
        for trigger in [
            TriggerClass::Exact,
            TriggerClass::Approximate,
            TriggerClass::Random,
            TriggerClass::TimeBased,
        ] {
            let p = DefenseProfile {
                trigger,
                visibility: ActionVisibility::Overlapped,
            };
            assert_eq!(p.channel_risk(), ChannelRisk::None);
        }
    }

    #[test]
    fn risk_ordering_is_none_lt_degraded_lt_full() {
        assert!(ChannelRisk::None < ChannelRisk::Degraded);
        assert!(ChannelRisk::Degraded < ChannelRisk::Full);
    }

    #[test]
    fn no_defense_no_profile() {
        assert!(profile_of(DefenseKind::None).is_none());
    }
}
