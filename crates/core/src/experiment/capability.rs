//! Table 3 (information leaked by LeakyHammer vs DRAMA per colocation
//! granularity) and the §12 defense-taxonomy table, as data.

use serde::{Deserialize, Serialize};

use lh_defenses::taxonomy::{profile_of, ChannelRisk};
use lh_defenses::DefenseKind;

/// Colocation granularity between attacker and victim data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Colocation {
    /// Same channel / bank group only.
    ChannelOrBankGroup,
    /// Same DRAM bank.
    Bank,
    /// Same DRAM row.
    Row,
}

/// What an attack leaks at a given colocation granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Leak {
    /// Nothing observable.
    Nothing,
    /// That the victim triggered a preventive action (i.e. exhibited a
    /// specific memory access pattern).
    PreventiveAction,
    /// How many times the victim activated rows in the shared bank.
    BankActivationCount,
    /// How many times the victim activated the shared row.
    RowActivationCount,
    /// Whether the victim accessed a conflicting (or the same) row.
    RowBufferState,
}

/// The attacks compared in Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackName {
    /// LeakyHammer over PRAC back-offs.
    LeakyHammerPrac,
    /// LeakyHammer over RFM commands.
    LeakyHammerRfm,
    /// DRAMA row-buffer attacks (prior work).
    Drama,
}

impl AttackName {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            AttackName::LeakyHammerPrac => "LeakyHammer-PRAC",
            AttackName::LeakyHammerRfm => "LeakyHammer-RFM",
            AttackName::Drama => "DRAMA",
        }
    }
}

/// The Table 3 capability matrix.
pub fn capability_matrix() -> Vec<(AttackName, [(Colocation, Leak); 3])> {
    use AttackName::*;
    use Colocation::*;
    use Leak::*;
    vec![
        (
            LeakyHammerPrac,
            [
                (ChannelOrBankGroup, PreventiveAction),
                (Bank, PreventiveAction),
                (Row, RowActivationCount),
            ],
        ),
        (
            LeakyHammerRfm,
            [
                (ChannelOrBankGroup, PreventiveAction),
                (Bank, BankActivationCount),
                (Row, BankActivationCount),
            ],
        ),
        (
            Drama,
            [
                (ChannelOrBankGroup, Nothing),
                (Bank, RowBufferState),
                (Row, RowBufferState),
            ],
        ),
    ]
}

/// What one attack leaks at one granularity.
pub fn leak_of(attack: AttackName, colocation: Colocation) -> Leak {
    capability_matrix()
        .into_iter()
        .find(|(a, _)| *a == attack)
        .and_then(|(_, cells)| {
            cells
                .iter()
                .find(|(c, _)| *c == colocation)
                .map(|&(_, l)| l)
        })
        .expect("matrix covers all attacks and granularities")
}

/// One row of the §12 qualitative defense analysis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaxonomyRow {
    /// The defense.
    pub defense: DefenseKind,
    /// Its timing-channel risk per the §12 classification.
    pub risk: Option<ChannelRisk>,
}

/// The §12 taxonomy table over every modeled defense.
pub fn taxonomy_table() -> Vec<TaxonomyRow> {
    [
        DefenseKind::Prac,
        DefenseKind::Prfm,
        DefenseKind::PracRiac,
        DefenseKind::PracBank,
        DefenseKind::FrRfm,
        DefenseKind::Para,
        DefenseKind::Graphene,
        DefenseKind::Hydra,
        DefenseKind::Comet,
        DefenseKind::Mint,
        DefenseKind::BlockHammer,
        DefenseKind::None,
    ]
    .into_iter()
    .map(|d| TaxonomyRow {
        defense: d,
        risk: profile_of(d).map(|p| p.channel_risk()),
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_leakyhammer_leaks_at_channel_granularity() {
        // Table 3's key claim: at channel/bank-group colocation DRAMA
        // leaks nothing while both LeakyHammer variants leak the access
        // pattern.
        assert_eq!(
            leak_of(AttackName::Drama, Colocation::ChannelOrBankGroup),
            Leak::Nothing
        );
        assert_eq!(
            leak_of(AttackName::LeakyHammerPrac, Colocation::ChannelOrBankGroup),
            Leak::PreventiveAction
        );
        assert_eq!(
            leak_of(AttackName::LeakyHammerRfm, Colocation::ChannelOrBankGroup),
            Leak::PreventiveAction
        );
    }

    #[test]
    fn row_colocation_leaks_counter_values() {
        assert_eq!(
            leak_of(AttackName::LeakyHammerPrac, Colocation::Row),
            Leak::RowActivationCount
        );
        assert_eq!(
            leak_of(AttackName::LeakyHammerRfm, Colocation::Bank),
            Leak::BankActivationCount
        );
    }

    #[test]
    fn taxonomy_matches_section_12() {
        let table = taxonomy_table();
        let risk = |d: DefenseKind| table.iter().find(|r| r.defense == d).and_then(|r| r.risk);
        assert_eq!(risk(DefenseKind::Prac), Some(ChannelRisk::Full));
        assert_eq!(risk(DefenseKind::FrRfm), Some(ChannelRisk::None));
        assert_eq!(risk(DefenseKind::PracRiac), Some(ChannelRisk::Degraded));
        assert_eq!(risk(DefenseKind::Para), Some(ChannelRisk::Degraded));
        assert_eq!(risk(DefenseKind::None), None);
    }
}
