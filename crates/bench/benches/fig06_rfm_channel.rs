//! Fig. 6 bench: the 40-bit "MICRO" transmission over the RFM channel.

use criterion::{criterion_group, criterion_main, Criterion};
use lh_analysis::message::bits_of_str;
use lh_bench::experiment::covert::{run_covert, ChannelKind, CovertOptions};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig06_rfm_channel");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(5));
    g.bench_function("micro_40bits", |b| {
        b.iter(|| {
            let out = run_covert(&CovertOptions::new(ChannelKind::Rfm, bits_of_str("MICRO")));
            assert_eq!(out.result.bit_errors, 0);
            out
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
