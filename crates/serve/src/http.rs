//! A deliberately tiny HTTP/1.1 implementation — just enough protocol
//! for the serve API, built on `std` alone.
//!
//! One request per connection (`Connection: close` on every response):
//! the API's requests are short and infrequent, so connection reuse
//! buys nothing and dropping it keeps the state machine out of the
//! code. Responses are either fixed-length (`Content-Length`) or
//! chunked ([`ChunkedWriter`], for the NDJSON run stream whose length
//! is unknowable up front).
//!
//! Limits are enforced while *reading*, before any allocation is
//! committed: an oversized request line, header block, or body is
//! rejected with `413`/`431` semantics at the parse layer (the server
//! maps parse errors to a `400`), so a misbehaving client cannot make
//! the service balloon.

use std::io::{self, BufRead, BufReader, Read, Write};

/// Longest accepted request line (method + path + version).
const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Longest accepted header block.
const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Largest accepted request body (job submissions are tiny).
const MAX_BODY_BYTES: usize = 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Request target as sent, e.g. `/runs/3/stream`.
    pub path: String,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Reads one line terminated by `\n`, enforcing `limit`, stripping the
/// terminator (and a preceding `\r`).
fn read_line(reader: &mut impl BufRead, limit: usize) -> io::Result<String> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte)? {
            0 => break,
            _ => {
                if byte[0] == b'\n' {
                    break;
                }
                if line.len() >= limit {
                    return Err(bad("line too long"));
                }
                line.push(byte[0]);
            }
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| bad("non-UTF-8 request line"))
}

/// Reads and parses one request from `stream`.
///
/// # Errors
///
/// Transport faults, plus `InvalidData` for anything malformed or over
/// the size limits — the caller answers those with a `400`.
pub fn read_request(stream: impl Read) -> io::Result<Request> {
    let mut reader = BufReader::new(stream);
    let request_line = read_line(&mut reader, MAX_REQUEST_LINE)?;
    let mut parts = request_line.split_ascii_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_owned(), p.to_owned(), v),
        _ => return Err(bad(format!("malformed request line {request_line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad(format!("unsupported protocol {version:?}")));
    }

    let mut content_length = 0usize;
    let mut header_bytes = 0usize;
    loop {
        let line = read_line(&mut reader, MAX_HEADER_BYTES)?;
        if line.is_empty() {
            break;
        }
        header_bytes += line.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(bad("header block too large"));
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad(format!("bad Content-Length {value:?}")))?;
                if content_length > MAX_BODY_BYTES {
                    return Err(bad("request body too large"));
                }
            }
        }
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request { method, path, body })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        500 => "Internal Server Error",
        _ => "Status",
    }
}

/// Writes one fixed-length response and flushes.
///
/// # Errors
///
/// Write faults on `stream` (the peer hanging up mid-response is
/// normal connection churn; callers ignore it).
pub fn respond(
    mut stream: impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len(),
    )?;
    stream.write_all(body)?;
    stream.flush()
}

/// A `Transfer-Encoding: chunked` response body writer, for streams
/// whose length is unknown when the headers go out (the NDJSON run
/// tail). Each [`ChunkedWriter::chunk`] is flushed immediately so
/// followers see lines live; [`ChunkedWriter::finish`] writes the
/// terminating zero-chunk.
#[derive(Debug)]
pub struct ChunkedWriter<W: Write> {
    stream: W,
}

impl<W: Write> ChunkedWriter<W> {
    /// Starts a chunked `200` response with the given content type.
    ///
    /// # Errors
    ///
    /// Write faults on `stream`.
    pub fn start(mut stream: W, content_type: &str) -> io::Result<ChunkedWriter<W>> {
        write!(
            stream,
            "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
        )?;
        stream.flush()?;
        Ok(ChunkedWriter { stream })
    }

    /// Writes one chunk and flushes it to the peer.
    ///
    /// # Errors
    ///
    /// Write faults on the underlying stream (a follower hanging up is
    /// the normal way a stream ends).
    pub fn chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(()); // an empty chunk would terminate the body
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminates the chunked body.
    ///
    /// # Errors
    ///
    /// Write faults on the underlying stream.
    pub fn finish(mut self) -> io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /runs HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let req = read_request(&raw[..]).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/runs");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn parses_a_get_without_body() {
        let raw = b"GET /metrics HTTP/1.0\r\n\r\n";
        let req = read_request(&raw[..]).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_garbage_and_oversize() {
        assert!(read_request(&b"NOT-HTTP\r\n\r\n"[..]).is_err());
        assert!(read_request(&b"GET / SPDY/9\r\n\r\n"[..]).is_err());
        let huge = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX);
        assert!(read_request(huge.as_bytes()).is_err());
    }

    #[test]
    fn respond_writes_a_complete_response() {
        let mut out = Vec::new();
        respond(&mut out, 404, "text/plain", b"gone\n").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"), "{text}");
        assert!(text.contains("Content-Length: 5\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\ngone\n"), "{text}");
    }

    #[test]
    fn chunked_writer_frames_and_terminates() {
        let mut out = Vec::new();
        let mut w = ChunkedWriter::start(&mut out, "application/x-ndjson").unwrap();
        w.chunk(b"{\"a\":1}\n").unwrap();
        w.chunk(b"").unwrap(); // ignored, must not terminate
        w.chunk(b"{\"b\":2}\n").unwrap();
        w.finish().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked"), "{text}");
        assert!(text.contains("8\r\n{\"a\":1}\n\r\n"), "{text}");
        assert!(text.ends_with("0\r\n\r\n"), "{text}");
    }
}
