//! The coordinator↔worker message vocabulary.
//!
//! Every message is one JSON object — one NDJSON line on the wire —
//! with a `type` discriminator. The vocabulary is deliberately tiny:
//! the coordinator only ever *assigns* units and *shuts down* workers;
//! a worker only ever announces itself, completes a unit, or reports
//! that a unit's execution failed. Everything else (worker death, a
//! torn line from a killed process, a closed pipe) is expressed by the
//! transport, not by messages.
//!
//! Assignments carry the unit's dependency results inline, so a worker
//! never needs the coordinator's cache — it can run on another host
//! with nothing but this byte stream.

use lh_harness::json::{parse, Json};

/// Wire protocol version, carried in [`FromWorker::Ready`]. Bump on any
/// incompatible message change; the coordinator refuses mismatched
/// workers instead of mis-parsing them.
///
/// v2: [`FromWorker::Done`] carries the unit's deterministic `metrics`
/// object alongside its result.
///
/// v3: workers may send periodic [`FromWorker::Heartbeat`] messages
/// between replies, so the coordinator's fleet telemetry (and the
/// serve dashboard behind it) can tell a long-running unit from a hung
/// worker. Heartbeats are volatile liveness data — they never touch
/// unit results or metrics.
///
/// v4: [`ToWorker::Assign`] carries the flight-recorder switches
/// (`events`, `events_cap`) and [`FromWorker::Done`] returns the unit's
/// rendered event log, so `--events-out` logs stay byte-identical
/// between in-process and distributed execution.
pub const PROTOCOL_VERSION: u64 = 4;

/// Messages the coordinator sends to a worker.
#[derive(Debug, Clone, PartialEq)]
pub enum ToWorker {
    /// Run one unit. `deps` holds the results of the unit's
    /// [`lh_harness::Job::deps`] list in declaration order.
    Assign {
        /// Experiment id (the worker resolves it in its own registry).
        experiment: String,
        /// Unit index within the experiment.
        unit: usize,
        /// Scale identifier (`quick`/`default`/`paper`).
        scale: String,
        /// Master seed; the worker derives the unit seed itself, so
        /// placement cannot change any unit's randomness.
        seed: u64,
        /// Whether to capture a flight-event log for this unit. Carried
        /// per assignment (not ambient worker state) so the worker's
        /// cache writes land under the events-aware key the
        /// coordinator probes.
        events: bool,
        /// Capture-ring capacity when `events` is set (events per
        /// unit); part of the assignment because the ring bound shapes
        /// the log bytes.
        events_cap: u64,
        /// Dependency results, in `Job::deps` declaration order.
        deps: Vec<Json>,
    },
    /// Finish the current protocol loop and exit cleanly.
    Shutdown,
}

/// Messages a worker sends to the coordinator.
#[derive(Debug, Clone, PartialEq)]
pub enum FromWorker {
    /// Handshake, sent once before any other message.
    Ready {
        /// The worker's [`PROTOCOL_VERSION`].
        protocol: u64,
        /// OS process id (0 for in-process workers); diagnostics only.
        pid: u64,
    },
    /// One assigned unit completed successfully.
    Done {
        /// Experiment id echoed from the assignment.
        experiment: String,
        /// Unit index echoed from the assignment.
        unit: usize,
        /// Wall-clock milliseconds spent executing.
        wall_ms: u64,
        /// Deterministic counters recorded while the unit ran, as a
        /// sorted-key JSON object. Unlike `wall_ms` these are part of
        /// the unit's *result* identity: they ride cache entries and
        /// envelopes, so they must not depend on placement or timing.
        metrics: Json,
        /// The unit's JSON result.
        result: Json,
        /// The unit's rendered flight-event log, present exactly when
        /// the assignment set `events`. Deterministic like `metrics`.
        events: Option<String>,
    },
    /// Periodic liveness beacon (protocol v3). Sent from a timer thread
    /// between protocol replies; carries how many assignments this
    /// worker has completed so far. Never acknowledged, never ordered
    /// with respect to anything — pure telemetry.
    Heartbeat {
        /// Assignments completed by this worker so far.
        units_done: u64,
    },
    /// One assigned unit failed deterministically (its `run_unit`
    /// panicked, or the assignment named an unknown experiment/unit).
    /// Fatal to the run: re-running the unit elsewhere would fail the
    /// same way, so the coordinator must not requeue it.
    Failed {
        /// Experiment id echoed from the assignment.
        experiment: String,
        /// Unit index echoed from the assignment.
        unit: usize,
        /// Human-readable cause.
        error: String,
    },
}

impl ToWorker {
    /// Serializes to the wire JSON object.
    pub fn to_json(&self) -> Json {
        match self {
            ToWorker::Assign {
                experiment,
                unit,
                scale,
                seed,
                events,
                events_cap,
                deps,
            } => Json::object()
                .with("type", "assign")
                .with("experiment", experiment.as_str())
                .with("unit", *unit)
                .with("scale", scale.as_str())
                .with("seed", *seed)
                .with("events", *events)
                .with("events_cap", *events_cap)
                .with("deps", Json::Array(deps.clone())),
            ToWorker::Shutdown => Json::object().with("type", "shutdown"),
        }
    }

    /// Parses a wire JSON object.
    ///
    /// # Errors
    ///
    /// Unknown `type` values and missing or mistyped fields.
    pub fn from_json(msg: &Json) -> Result<ToWorker, String> {
        match msg["type"].as_str() {
            Some("assign") => Ok(ToWorker::Assign {
                experiment: str_field(msg, "experiment")?,
                unit: usize_field(msg, "unit")?,
                scale: str_field(msg, "scale")?,
                seed: u64_field(msg, "seed")?,
                events: msg["events"].as_bool().unwrap_or(false),
                events_cap: msg["events_cap"]
                    .as_u64()
                    .unwrap_or(lh_obs::flight::DEFAULT_CAP as u64),
                deps: match &msg["deps"] {
                    Json::Array(items) => items.clone(),
                    other => return Err(format!("assign.deps must be an array, got {other}")),
                },
            }),
            Some("shutdown") => Ok(ToWorker::Shutdown),
            other => Err(format!("unknown coordinator message type {other:?}")),
        }
    }
}

impl FromWorker {
    /// The handshake for this process.
    pub fn ready() -> FromWorker {
        FromWorker::Ready {
            protocol: PROTOCOL_VERSION,
            pid: u64::from(std::process::id()),
        }
    }

    /// Serializes to the wire JSON object.
    pub fn to_json(&self) -> Json {
        match self {
            FromWorker::Ready { protocol, pid } => Json::object()
                .with("type", "ready")
                .with("protocol", *protocol)
                .with("pid", *pid),
            FromWorker::Done {
                experiment,
                unit,
                wall_ms,
                metrics,
                result,
                events,
            } => {
                let msg = Json::object()
                    .with("type", "done")
                    .with("experiment", experiment.as_str())
                    .with("unit", *unit)
                    .with("ms", *wall_ms)
                    .with("metrics", metrics.clone())
                    .with("result", result.clone());
                match events {
                    Some(blob) => msg.with("events", blob.as_str()),
                    None => msg,
                }
            }
            FromWorker::Heartbeat { units_done } => Json::object()
                .with("type", "heartbeat")
                .with("units_done", *units_done),
            FromWorker::Failed {
                experiment,
                unit,
                error,
            } => Json::object()
                .with("type", "failed")
                .with("experiment", experiment.as_str())
                .with("unit", *unit)
                .with("error", error.as_str()),
        }
    }

    /// Parses a wire JSON object.
    ///
    /// # Errors
    ///
    /// Unknown `type` values and missing or mistyped fields.
    pub fn from_json(msg: &Json) -> Result<FromWorker, String> {
        match msg["type"].as_str() {
            Some("ready") => Ok(FromWorker::Ready {
                protocol: u64_field(msg, "protocol")?,
                pid: u64_field(msg, "pid")?,
            }),
            Some("done") => Ok(FromWorker::Done {
                experiment: str_field(msg, "experiment")?,
                unit: usize_field(msg, "unit")?,
                wall_ms: u64_field(msg, "ms")?,
                metrics: msg["metrics"].clone(),
                result: msg["result"].clone(),
                events: msg["events"].as_str().map(str::to_owned),
            }),
            Some("heartbeat") => Ok(FromWorker::Heartbeat {
                units_done: u64_field(msg, "units_done")?,
            }),
            Some("failed") => Ok(FromWorker::Failed {
                experiment: str_field(msg, "experiment")?,
                unit: usize_field(msg, "unit")?,
                error: str_field(msg, "error")?,
            }),
            other => Err(format!("unknown worker message type {other:?}")),
        }
    }
}

/// Parses one NDJSON line into its JSON object form.
///
/// # Errors
///
/// JSON syntax errors, with the offending line excerpt.
pub fn parse_line(line: &str) -> Result<Json, String> {
    parse(line.trim_end()).map_err(|e| {
        let excerpt: String = line.chars().take(80).collect();
        format!("bad protocol line {excerpt:?}: {e}")
    })
}

fn str_field(msg: &Json, key: &str) -> Result<String, String> {
    msg[key]
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| format!("missing or non-string field '{key}' in {msg}"))
}

fn u64_field(msg: &Json, key: &str) -> Result<u64, String> {
    msg[key]
        .as_u64()
        .ok_or_else(|| format!("missing or non-integer field '{key}' in {msg}"))
}

fn usize_field(msg: &Json, key: &str) -> Result<usize, String> {
    u64_field(msg, key).and_then(|v| {
        usize::try_from(v).map_err(|_| format!("field '{key}' out of range in {msg}"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_round_trips_with_payloads() {
        let msg = ToWorker::Assign {
            experiment: "fig13".into(),
            unit: 7,
            scale: "quick".into(),
            seed: u64::MAX,
            events: true,
            events_cap: 4096,
            deps: vec![Json::object().with("ipc", 1.25), Json::Null],
        };
        let line = msg.to_json().to_compact();
        assert!(!line.contains('\n'), "one NDJSON line");
        assert_eq!(ToWorker::from_json(&parse_line(&line).unwrap()), Ok(msg));
    }

    #[test]
    fn worker_messages_round_trip() {
        for msg in [
            FromWorker::ready(),
            FromWorker::Done {
                experiment: "fig6".into(),
                unit: 3,
                wall_ms: 12,
                metrics: Json::object().with("sim.service_wakes", 42u64),
                result: Json::object().with("capacity", 39.5),
                events: None,
            },
            FromWorker::Done {
                experiment: "fig6".into(),
                unit: 4,
                wall_ms: 12,
                metrics: Json::object(),
                result: Json::Null,
                events: Some("{\"kind\":\"unit\",\"unit\":\"u\"}\n".into()),
            },
            FromWorker::Heartbeat { units_done: 9 },
            FromWorker::Failed {
                experiment: "fig6".into(),
                unit: 3,
                error: "panicked at 'boom'".into(),
            },
        ] {
            let line = msg.to_json().to_compact();
            assert_eq!(
                FromWorker::from_json(&parse_line(&line).unwrap()),
                Ok(msg.clone()),
                "{line}"
            );
        }
    }

    #[test]
    fn malformed_messages_are_rejected_with_context() {
        assert!(parse_line("{truncated").is_err());
        let err = ToWorker::from_json(&Json::object().with("type", "launch")).unwrap_err();
        assert!(err.contains("launch"), "{err}");
        let err = ToWorker::from_json(
            &Json::object()
                .with("type", "assign")
                .with("experiment", "fig6"),
        )
        .unwrap_err();
        assert!(err.contains("unit"), "{err}");
        let err = FromWorker::from_json(&Json::object().with("type", "done")).unwrap_err();
        assert!(err.contains("experiment"), "{err}");
    }
}
