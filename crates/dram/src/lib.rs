//! # lh-dram — cycle-level DDR5 DRAM device model
//!
//! This crate is the lowest layer of the LeakyHammer reproduction: a
//! command-accurate model of a DDR5 channel, including
//!
//! * the hierarchical organization (ranks, bank groups, banks, rows) and
//!   all relevant timing constraints ([`DramTiming`]),
//! * per-row activation counters ([`RowCounters`]) with pluggable
//!   (re)initialization — the RIAC countermeasure is
//!   [`CounterInit::Uniform`],
//! * the PRAC alert-back-off mechanism ([`PracConfig`], [`Alert`]),
//! * RFM commands at all-bank, same-bank and single-bank scope
//!   ([`RfmScope`]), and
//! * ground-truth read-disturb bookkeeping ([`DisturbTracker`]) used by the
//!   security tests.
//!
//! The memory controller (crate `lh-memctrl`) drives a [`DramDevice`]
//! through [`DramDevice::earliest_legal`] / [`DramDevice::issue`]; the
//! legality query is *total* (transiently illegal commands get the
//! instant they become issuable instead of an error), while `issue`
//! rejects protocol or timing violations with a [`DramError`].
//!
//! ## Example
//!
//! ```
//! use lh_dram::{BankId, Command, DeviceConfig, DramDevice, Time};
//!
//! # fn main() -> Result<(), lh_dram::DramError> {
//! let mut dev = DramDevice::new(DeviceConfig::paper_default())?;
//! let bank = BankId::new(0, 0, 0, 0);
//!
//! // Open a row, read a column, close the row.
//! for cmd in [
//!     Command::Activate { bank, row: 42 },
//!     Command::Read { bank, col: 0 },
//!     Command::Precharge { bank },
//! ] {
//!     let at = dev.earliest_legal(&cmd, Time::ZERO);
//!     dev.issue(&cmd, at)?;
//! }
//! assert_eq!(dev.counters().value(0, 42), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bank;
mod command;
mod counters;
mod device;
mod disturb;
mod error;
mod geometry;
mod prac;
mod rank;
mod stats;
mod time;
mod timing;

pub use bank::Bank;
pub use command::{Command, RfmScope};
pub use counters::{CounterInit, RowCounters};
pub use device::{DeviceConfig, DramDevice, IssueOutcome};
pub use disturb::DisturbTracker;
pub use error::DramError;
pub use geometry::{BankId, DramAddr, Geometry, LINE_BYTES};
pub use prac::{Alert, AlertScope, PracConfig, PracState};
pub use rank::RankState;
pub use stats::DeviceStats;
pub use time::{Span, Time};
pub use timing::DramTiming;
