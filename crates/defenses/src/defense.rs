//! The [`Defense`] trait — the uniform controller↔defense scheduling
//! contract.
//!
//! The memory controller owns one `Box<dyn Defense>` per channel and
//! talks to it through four calls, none of which name a concrete
//! defense:
//!
//! * [`Defense::on_activate`] — notify the defense of an `ACT`; it
//!   answers with the preventive [`DefenseAction`]s the controller must
//!   schedule (reactive half of the contract);
//! * [`Defense::next_maintenance`] / [`Defense::next_deadline`] — peek
//!   the next *scheduled* maintenance operation on a rank (proactive
//!   half; only time-driven defenses such as FR-RFM have one);
//! * [`Defense::take_maintenance`] — consume a due maintenance operation
//!   once the controller is about to issue it;
//! * [`Defense::on_periodic_refresh`] — piggyback preventive refreshes
//!   inside an already-blocking REF window (MINT's overlapped-latency
//!   design).
//!
//! Adding a defense means implementing this trait and extending
//! [`build_defense`]; the controller never changes. See
//! `crates/defenses/README.md` for the full contract (deadline
//! stability, `take_maintenance` idempotency rules).

use std::any::Any;
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use lh_dram::{BankId, Geometry, RfmScope, Span, Time};

use crate::config::{DefenseConfig, DefenseKind};
use crate::trackers::{BlockHammerBank, CometBank, GrapheneBank, HydraBank, MintBank, MintConfig};

/// A preventive action the controller must perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DefenseAction {
    /// Issue an RFM command on `rank` with the given scope.
    IssueRfm {
        /// Target rank.
        rank: u32,
        /// Blocking scope.
        scope: RfmScope,
    },
    /// Refresh the neighbors of `(bank, row)` (PARA, Graphene, Hydra,
    /// CoMeT): the controller performs it as activate+precharge of the
    /// victim rows.
    RefreshNeighbors {
        /// Aggressor bank.
        bank: BankId,
        /// Aggressor row whose neighbors must be refreshed.
        row: u32,
    },
    /// Delay further activations of `(bank, row)` until `until`
    /// (BlockHammer's throttle — its observable preventive action).
    ThrottleRow {
        /// Throttled bank.
        bank: BankId,
        /// Throttled row.
        row: u32,
        /// Earliest time the row may be activated again.
        until: Time,
    },
}

/// A scheduled maintenance operation owed to the device.
///
/// Today every scheduled maintenance is an RFM (FR-RFM's fixed-rate
/// all-bank stream); the struct still carries the scope so a future
/// defense can schedule narrower operations without touching the
/// controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Maintenance {
    /// Target rank.
    pub rank: u32,
    /// RFM blocking scope.
    pub scope: RfmScope,
    /// The instant the operation is scheduled for. The controller aims
    /// to issue exactly at `due` — for FR-RFM, zero jitter *is* the
    /// security property (§11.1) — and [`Defense::take_maintenance`]
    /// only surrenders the operation once `now >= due`.
    pub due: Time,
}

/// Counters kept by every defense.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DefenseStats {
    /// RFMs requested by PRFM counters.
    pub prfm_rfms: u64,
    /// RFMs requested by the FR-RFM timer.
    pub fr_rfm_rfms: u64,
    /// Neighbor refreshes requested by PARA.
    pub para_refreshes: u64,
    /// Neighbor refreshes requested by the approximate trackers
    /// (Graphene/Hydra/CoMeT).
    pub tracker_refreshes: u64,
    /// Throttle decisions made by BlockHammer.
    pub throttles: u64,
    /// Aggressors preventively refreshed inside periodic REFs (MINT).
    pub mint_refreshes: u64,
    /// Scheduled maintenance operations taken exactly at their deadline
    /// (the controller quiesced in time).
    pub maintenance_on_time: u64,
    /// Scheduled maintenance operations taken *after* their deadline —
    /// scheduling pressure: the rank could not be quiesced by `due`, so
    /// the operation slipped. Under FR-RFM this is the observable jitter
    /// the covert-channel experiments report.
    pub maintenance_deferred: u64,
}

impl DefenseStats {
    /// Accumulates another run's counters into this one (experiment
    /// adapters merging per-pattern outcomes).
    pub fn absorb(&mut self, other: &DefenseStats) {
        self.prfm_rfms += other.prfm_rfms;
        self.fr_rfm_rfms += other.fr_rfm_rfms;
        self.para_refreshes += other.para_refreshes;
        self.tracker_refreshes += other.tracker_refreshes;
        self.throttles += other.throttles;
        self.mint_refreshes += other.mint_refreshes;
        self.maintenance_on_time += other.maintenance_on_time;
        self.maintenance_deferred += other.maintenance_deferred;
    }
}

/// The uniform controller↔defense scheduling contract.
///
/// # Contract
///
/// * `next_maintenance(rank)` is a pure peek: it may be called any
///   number of times and never changes the schedule. The returned `due`
///   instant only moves **forward**, and only as a result of
///   `take_maintenance` — never because of traffic (that independence is
///   FR-RFM's whole point).
/// * `take_maintenance(rank, now)` consumes: it returns `Some` exactly
///   when a maintenance operation is due (`now >= due`) and advances the
///   schedule past it. Callers must issue the operation they took.
///   Calling again at the same `now` returns `None` unless a *second*
///   operation is already due (degenerately dense schedules). Peeking
///   via `take_maintenance` is a contract violation.
/// * `on_activate` is invoked for **every** ACT the controller issues,
///   in simulation-time order; the returned slice is only valid until
///   the next call.
pub trait Defense: fmt::Debug {
    /// Which defense this is.
    fn kind(&self) -> DefenseKind;

    /// Notifies the defense of an `ACT` to `(bank, row)` at `now`;
    /// returns the preventive actions the controller must schedule
    /// (possibly none). The slice is valid until the next call.
    fn on_activate(&mut self, bank: BankId, row: u32, now: Time) -> &[DefenseAction];

    /// Peeks the next scheduled maintenance operation on `rank`, or
    /// `None` when this defense schedules none. Pure; see the trait
    /// contract for deadline-stability rules.
    fn next_maintenance(&self, rank: u32) -> Option<Maintenance>;

    /// The next maintenance deadline on `rank`: the instant the
    /// controller must have the rank quiesced by. `now` is advisory (a
    /// defense whose deadline depends on elapsed time may use it);
    /// to-date implementations ignore it.
    fn next_deadline(&self, rank: u32, now: Time) -> Option<Time> {
        let _ = now;
        self.next_maintenance(rank).map(|m| m.due)
    }

    /// Consumes the maintenance operation due on `rank` (`now >= due`),
    /// advancing the schedule by one period; `None` when nothing is due
    /// yet. Classifies the take as on-time or deferred in
    /// [`DefenseStats`].
    fn take_maintenance(&mut self, rank: u32, now: Time) -> Option<Maintenance>;

    /// Minimum spacing between two scheduled maintenance operations on
    /// one rank, or `None` when the defense schedules none. The
    /// controller uses this to decide whether a REF can fit between two
    /// maintenance windows.
    fn maintenance_period(&self) -> Option<Span> {
        None
    }

    /// Notifies the defense that a periodic REF is being issued on
    /// `rank`; returns the aggressor rows whose victims the device
    /// should refresh *inside* the REF window (MINT's overlapped-latency
    /// mitigation — zero extra blocking time, hence nothing for a
    /// LeakyHammer receiver to observe).
    fn on_periodic_refresh(&mut self, rank: u32) -> Vec<(BankId, u32)> {
        let _ = rank;
        Vec::new()
    }

    /// Counters.
    fn stats(&self) -> &DefenseStats;

    /// Drains any flight-recorder events this defense (or a wrapper
    /// around it) buffered since the last drain into `sink`, drop
    /// accounting included. The simulator calls this at obs-flush time
    /// so events land in the per-unit capture scope with the right
    /// segment tag; defenses with nothing to report (the default) do
    /// nothing. Implementations wrapping an inner defense must drain
    /// the inner one too.
    fn drain_flight(&mut self, sink: &mut lh_obs::flight::EventBuffer) {
        let _ = sink;
    }

    /// Downcast support for tests and instrumentation.
    fn as_any(&self) -> &dyn Any;
}

/// Builds the defense for a channel of shape `geometry`.
///
/// Every defense kind of [`DefenseConfig`] maps to one concrete type;
/// the PRAC family (plain, RIAC, bank-level) is entirely device-side
/// and needs no controller-side trigger state, so it maps to
/// [`DeviceSideDefense`].
pub fn build_defense(config: &DefenseConfig, geometry: &Geometry, seed: u64) -> Box<dyn Defense> {
    match config.kind {
        DefenseKind::None | DefenseKind::Prac | DefenseKind::PracRiac | DefenseKind::PracBank => {
            Box::new(DeviceSideDefense::new(config.kind))
        }
        DefenseKind::Prfm => Box::new(PrfmDefense::new(
            config.prfm.expect("PRFM kind implies config").trfm,
            geometry,
        )),
        DefenseKind::FrRfm => Box::new(FrRfmDefense::new(
            config.fr_rfm.expect("FR-RFM kind implies config").period,
            geometry,
        )),
        DefenseKind::Para => Box::new(ParaDefense::new(
            config.para.expect("PARA kind implies config").probability,
            seed,
        )),
        DefenseKind::Graphene => {
            let g = config.graphene.expect("Graphene kind implies config");
            Box::new(TrackerDefense::new(
                DefenseKind::Graphene,
                geometry,
                |_bank| GrapheneBank::new(g),
            ))
        }
        DefenseKind::Hydra => {
            let h = config.hydra.expect("Hydra kind implies config");
            Box::new(TrackerDefense::new(DefenseKind::Hydra, geometry, |_bank| {
                HydraBank::new(h)
            }))
        }
        DefenseKind::Comet => {
            let c = config.comet.expect("CoMeT kind implies config");
            Box::new(TrackerDefense::new(DefenseKind::Comet, geometry, |bank| {
                // Per-bank hash families: a row index must not collide
                // identically in every bank.
                let mut cfg = c;
                cfg.seed = c.seed ^ ((bank as u64) << 48);
                CometBank::new(cfg)
            }))
        }
        DefenseKind::Mint => Box::new(MintDefense::new(
            config.mint.expect("MINT kind implies config").seed,
            geometry,
        )),
        DefenseKind::BlockHammer => {
            let bh = config.blockhammer.expect("BlockHammer kind implies config");
            Box::new(BlockHammerDefense::new(bh, geometry))
        }
    }
}

/// Defenses that live entirely in the device (`None` and the PRAC
/// family): the DRAM chip asserts ABO on its own and the controller only
/// runs the recovery protocol, so there is no controller-side trigger
/// state at all.
#[derive(Debug, Clone)]
pub struct DeviceSideDefense {
    kind: DefenseKind,
    stats: DefenseStats,
}

impl DeviceSideDefense {
    /// Creates the (stateless) controller-side half of a device-side
    /// defense.
    pub fn new(kind: DefenseKind) -> DeviceSideDefense {
        DeviceSideDefense {
            kind,
            stats: DefenseStats::default(),
        }
    }
}

impl Defense for DeviceSideDefense {
    fn kind(&self) -> DefenseKind {
        self.kind
    }

    fn on_activate(&mut self, _bank: BankId, _row: u32, _now: Time) -> &[DefenseAction] {
        &[]
    }

    fn next_maintenance(&self, _rank: u32) -> Option<Maintenance> {
        None
    }

    fn take_maintenance(&mut self, _rank: u32, _now: Time) -> Option<Maintenance> {
        None
    }

    fn stats(&self) -> &DefenseStats {
        &self.stats
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// PRFM: per-bank activation counters that request a same-bank RFM when
/// a bank crosses `TRFM` (§7).
#[derive(Debug, Clone)]
pub struct PrfmDefense {
    trfm: u32,
    geometry: Geometry,
    counters: Vec<u32>,
    actions: Vec<DefenseAction>,
    stats: DefenseStats,
}

impl PrfmDefense {
    /// Creates PRFM trigger state for a channel of shape `geometry`.
    pub fn new(trfm: u32, geometry: &Geometry) -> PrfmDefense {
        PrfmDefense {
            trfm,
            geometry: *geometry,
            counters: vec![0; geometry.banks_per_channel() as usize],
            actions: Vec::new(),
            stats: DefenseStats::default(),
        }
    }

    /// Current activation counter of a bank (tests, instrumentation).
    pub fn counter(&self, bank: BankId) -> u32 {
        self.counters[self.geometry.flat_bank(bank)]
    }
}

impl Defense for PrfmDefense {
    fn kind(&self) -> DefenseKind {
        DefenseKind::Prfm
    }

    fn on_activate(&mut self, bank: BankId, _row: u32, _now: Time) -> &[DefenseAction] {
        self.actions.clear();
        let flat = self.geometry.flat_bank(bank);
        self.counters[flat] += 1;
        if self.counters[flat] >= self.trfm {
            self.counters[flat] -= self.trfm;
            self.stats.prfm_rfms += 1;
            self.actions.push(DefenseAction::IssueRfm {
                rank: bank.rank,
                scope: RfmScope::SameBank { bank: bank.bank },
            });
        }
        &self.actions
    }

    fn next_maintenance(&self, _rank: u32) -> Option<Maintenance> {
        None
    }

    fn take_maintenance(&mut self, _rank: u32, _now: Time) -> Option<Maintenance> {
        None
    }

    fn stats(&self) -> &DefenseStats {
        &self.stats
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// FR-RFM: a per-rank timer that schedules an all-bank RFM at a fixed
/// period, *independent* of traffic — the key to its security (§11.1).
#[derive(Debug, Clone)]
pub struct FrRfmDefense {
    period: Span,
    due: Vec<Time>,
    stats: DefenseStats,
}

impl FrRfmDefense {
    /// Creates the fixed-rate schedule: first RFM one period in.
    pub fn new(period: Span, geometry: &Geometry) -> FrRfmDefense {
        FrRfmDefense {
            period,
            due: vec![Time::ZERO + period; geometry.ranks_per_channel() as usize],
            stats: DefenseStats::default(),
        }
    }
}

impl Defense for FrRfmDefense {
    fn kind(&self) -> DefenseKind {
        DefenseKind::FrRfm
    }

    fn on_activate(&mut self, _bank: BankId, _row: u32, _now: Time) -> &[DefenseAction] {
        &[]
    }

    fn next_maintenance(&self, rank: u32) -> Option<Maintenance> {
        Some(Maintenance {
            rank,
            scope: RfmScope::AllBank,
            due: self.due[rank as usize],
        })
    }

    fn take_maintenance(&mut self, rank: u32, now: Time) -> Option<Maintenance> {
        let due = self.due[rank as usize];
        if now < due {
            return None;
        }
        self.due[rank as usize] = due + self.period;
        self.stats.fr_rfm_rfms += 1;
        if now == due {
            self.stats.maintenance_on_time += 1;
        } else {
            self.stats.maintenance_deferred += 1;
        }
        Some(Maintenance {
            rank,
            scope: RfmScope::AllBank,
            due,
        })
    }

    fn maintenance_period(&self) -> Option<Span> {
        Some(self.period)
    }

    fn stats(&self) -> &DefenseStats {
        &self.stats
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// PARA: refresh a neighbor with fixed probability on every activation
/// (Kim et al., ISCA'14).
#[derive(Debug)]
pub struct ParaDefense {
    probability: f64,
    rng: StdRng,
    actions: Vec<DefenseAction>,
    stats: DefenseStats,
}

impl ParaDefense {
    /// Creates the coin-flip trigger with the engine's seed convention.
    pub fn new(probability: f64, seed: u64) -> ParaDefense {
        ParaDefense {
            probability,
            rng: StdRng::seed_from_u64(seed),
            actions: Vec::new(),
            stats: DefenseStats::default(),
        }
    }
}

impl Defense for ParaDefense {
    fn kind(&self) -> DefenseKind {
        DefenseKind::Para
    }

    fn on_activate(&mut self, bank: BankId, row: u32, _now: Time) -> &[DefenseAction] {
        self.actions.clear();
        if self.rng.gen_bool(self.probability.clamp(0.0, 1.0)) {
            self.stats.para_refreshes += 1;
            self.actions
                .push(DefenseAction::RefreshNeighbors { bank, row });
        }
        &self.actions
    }

    fn next_maintenance(&self, _rank: u32) -> Option<Maintenance> {
        None
    }

    fn take_maintenance(&mut self, _rank: u32, _now: Time) -> Option<Maintenance> {
        None
    }

    fn stats(&self) -> &DefenseStats {
        &self.stats
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// A per-bank aggressor tracker (the §12 approximate trigger classes).
pub trait AggressorTracker: fmt::Debug {
    /// Records an activation of `row` at `now`; returns an aggressor row
    /// whose neighbors must be refreshed when the estimate crosses the
    /// threshold.
    fn track_activate(&mut self, row: u32, now: Time) -> Option<u32>;
}

impl AggressorTracker for GrapheneBank {
    fn track_activate(&mut self, row: u32, now: Time) -> Option<u32> {
        self.on_activate(row, now)
    }
}

impl AggressorTracker for HydraBank {
    fn track_activate(&mut self, row: u32, now: Time) -> Option<u32> {
        self.on_activate(row, now)
    }
}

impl AggressorTracker for CometBank {
    fn track_activate(&mut self, row: u32, now: Time) -> Option<u32> {
        self.on_activate(row, now)
    }
}

/// Graphene / Hydra / CoMeT: one approximate tracker per bank that
/// requests a neighbor refresh when its estimate crosses the threshold
/// (§12).
#[derive(Debug, Clone)]
pub struct TrackerDefense<T: AggressorTracker> {
    kind: DefenseKind,
    geometry: Geometry,
    banks: Vec<T>,
    actions: Vec<DefenseAction>,
    stats: DefenseStats,
}

/// Graphene behind the [`Defense`] contract.
pub type GrapheneDefense = TrackerDefense<GrapheneBank>;
/// Hydra behind the [`Defense`] contract.
pub type HydraDefense = TrackerDefense<HydraBank>;
/// CoMeT behind the [`Defense`] contract.
pub type CometDefense = TrackerDefense<CometBank>;

impl<T: AggressorTracker> TrackerDefense<T> {
    /// Creates one tracker per bank via `make` (passed the flat bank
    /// index so sketch hash families can differ per bank).
    pub fn new(
        kind: DefenseKind,
        geometry: &Geometry,
        make: impl FnMut(usize) -> T,
    ) -> TrackerDefense<T> {
        let banks = (0..geometry.banks_per_channel() as usize)
            .map(make)
            .collect();
        TrackerDefense {
            kind,
            geometry: *geometry,
            banks,
            actions: Vec::new(),
            stats: DefenseStats::default(),
        }
    }

    /// The tracker of `bank` (tests, instrumentation).
    pub fn bank(&self, bank: BankId) -> &T {
        &self.banks[self.geometry.flat_bank(bank)]
    }
}

impl<T: AggressorTracker + 'static> Defense for TrackerDefense<T> {
    fn kind(&self) -> DefenseKind {
        self.kind
    }

    fn on_activate(&mut self, bank: BankId, row: u32, now: Time) -> &[DefenseAction] {
        self.actions.clear();
        let flat = self.geometry.flat_bank(bank);
        if let Some(aggressor) = self.banks[flat].track_activate(row, now) {
            self.stats.tracker_refreshes += 1;
            self.actions.push(DefenseAction::RefreshNeighbors {
                bank,
                row: aggressor,
            });
        }
        &self.actions
    }

    fn next_maintenance(&self, _rank: u32) -> Option<Maintenance> {
        None
    }

    fn take_maintenance(&mut self, _rank: u32, _now: Time) -> Option<Maintenance> {
        None
    }

    fn stats(&self) -> &DefenseStats {
        &self.stats
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// MINT: a per-bank reservoir sampler whose chosen aggressor is
/// refreshed inside the next periodic REF (§12, overlapped latency).
#[derive(Debug, Clone)]
pub struct MintDefense {
    geometry: Geometry,
    banks: Vec<MintBank>,
    stats: DefenseStats,
}

impl MintDefense {
    /// Creates one reservoir per bank with the engine's per-bank seed
    /// convention.
    pub fn new(seed: u64, geometry: &Geometry) -> MintDefense {
        let banks = (0..geometry.banks_per_channel() as usize)
            .map(|b| {
                MintBank::new(MintConfig {
                    seed: seed ^ ((b as u64 + 1) << 32),
                })
            })
            .collect();
        MintDefense {
            geometry: *geometry,
            banks,
            stats: DefenseStats::default(),
        }
    }
}

impl Defense for MintDefense {
    fn kind(&self) -> DefenseKind {
        DefenseKind::Mint
    }

    fn on_activate(&mut self, bank: BankId, row: u32, _now: Time) -> &[DefenseAction] {
        let flat = self.geometry.flat_bank(bank);
        self.banks[flat].on_activate(row);
        &[]
    }

    fn next_maintenance(&self, _rank: u32) -> Option<Maintenance> {
        None
    }

    fn take_maintenance(&mut self, _rank: u32, _now: Time) -> Option<Maintenance> {
        None
    }

    fn on_periodic_refresh(&mut self, rank: u32) -> Vec<(BankId, u32)> {
        let mut refreshed = Vec::new();
        for flat in 0..self.banks.len() {
            let bank = self.geometry.bank_from_flat(0, flat);
            if bank.rank != rank {
                continue;
            }
            if let Some(row) = self.banks[flat].take_sample() {
                self.stats.mint_refreshes += 1;
                refreshed.push((bank, row));
            }
        }
        refreshed
    }

    fn stats(&self) -> &DefenseStats {
        &self.stats
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// BlockHammer: a per-bank rate filter that *throttles* blacklisted rows
/// instead of refreshing victims (§12).
#[derive(Debug, Clone)]
pub struct BlockHammerDefense {
    geometry: Geometry,
    banks: Vec<BlockHammerBank>,
    actions: Vec<DefenseAction>,
    stats: DefenseStats,
}

impl BlockHammerDefense {
    /// Creates one rate filter per bank with the engine's per-bank seed
    /// convention.
    pub fn new(cfg: crate::trackers::BlockHammerConfig, geometry: &Geometry) -> BlockHammerDefense {
        let banks = (0..geometry.banks_per_channel() as usize)
            .map(|b| {
                let mut c = cfg;
                c.seed = cfg.seed ^ ((b as u64) << 40);
                BlockHammerBank::new(c)
            })
            .collect();
        BlockHammerDefense {
            geometry: *geometry,
            banks,
            actions: Vec::new(),
            stats: DefenseStats::default(),
        }
    }

    /// The rate filter of `bank` (tests, instrumentation).
    pub fn bank(&self, bank: BankId) -> &BlockHammerBank {
        &self.banks[self.geometry.flat_bank(bank)]
    }
}

impl Defense for BlockHammerDefense {
    fn kind(&self) -> DefenseKind {
        DefenseKind::BlockHammer
    }

    fn on_activate(&mut self, bank: BankId, row: u32, now: Time) -> &[DefenseAction] {
        self.actions.clear();
        let flat = self.geometry.flat_bank(bank);
        if let Some(until) = self.banks[flat].on_activate(row, now) {
            self.stats.throttles += 1;
            self.actions
                .push(DefenseAction::ThrottleRow { bank, row, until });
        }
        &self.actions
    }

    fn next_maintenance(&self, _rank: u32) -> Option<Maintenance> {
        None
    }

    fn take_maintenance(&mut self, _rank: u32, _now: Time) -> Option<Maintenance> {
        None
    }

    fn stats(&self) -> &DefenseStats {
        &self.stats
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lh_dram::DramTiming;

    fn bank(bg: u32, b: u32) -> BankId {
        BankId::new(0, 0, bg, b)
    }

    fn build(cfg: &DefenseConfig, seed: u64) -> Box<dyn Defense> {
        build_defense(cfg, &Geometry::tiny(), seed)
    }

    #[test]
    fn prfm_counts_per_bank_independently() {
        let mut eng = build(&DefenseConfig::prfm(3), 0);
        // Two different banks interleaved: no single bank reaches 3.
        for _ in 0..2 {
            assert!(eng.on_activate(bank(0, 0), 1, Time::ZERO).is_empty());
            assert!(eng.on_activate(bank(1, 1), 1, Time::ZERO).is_empty());
        }
        // Third ACT to bank (0,0) fires.
        let a = eng.on_activate(bank(0, 0), 1, Time::ZERO).to_vec();
        assert_eq!(
            a,
            vec![DefenseAction::IssueRfm {
                rank: 0,
                scope: RfmScope::SameBank { bank: 0 }
            }]
        );
        let prfm = eng.as_any().downcast_ref::<PrfmDefense>().unwrap();
        assert_eq!(prfm.counter(bank(0, 0)), 0);
        assert_eq!(prfm.counter(bank(1, 1)), 2);
        assert_eq!(eng.stats().prfm_rfms, 1);
    }

    #[test]
    fn prfm_counter_keeps_remainder() {
        let mut eng = build(&DefenseConfig::prfm(2), 0);
        for i in 0..10 {
            let fired = !eng.on_activate(bank(0, 0), 1, Time::ZERO).is_empty();
            assert_eq!(fired, i % 2 == 1, "fires on every second ACT");
        }
    }

    #[test]
    fn fr_rfm_deadline_advances_independently_of_traffic() {
        let t = DramTiming::ddr5_4800();
        let cfg = DefenseConfig::fr_rfm(4, t.t_rc);
        let period = cfg.fr_rfm.unwrap().period;
        let mut eng = build(&cfg, 0);
        let d0 = eng.next_deadline(0, Time::ZERO).unwrap();
        assert_eq!(d0, Time::ZERO + period);
        // Activations do not move the deadline.
        for _ in 0..100 {
            assert!(eng.on_activate(bank(0, 0), 1, Time::ZERO).is_empty());
        }
        assert_eq!(eng.next_deadline(0, Time::ZERO).unwrap(), d0);
        // Not due yet: take refuses to surrender the operation.
        assert_eq!(eng.take_maintenance(0, d0 - Span::from_ps(1)), None);
        // Due: take returns it and advances the schedule by one period.
        let m = eng.take_maintenance(0, d0).unwrap();
        assert_eq!(m.due, d0);
        assert_eq!(m.scope, RfmScope::AllBank);
        assert_eq!(eng.next_deadline(0, d0).unwrap(), d0 + period);
        assert_eq!(eng.stats().fr_rfm_rfms, 1);
        assert_eq!(eng.stats().maintenance_on_time, 1);
        assert_eq!(eng.stats().maintenance_deferred, 0);
        // Taking late counts as deferred (scheduling pressure).
        let late = d0 + period + Span::from_ns(3);
        let m2 = eng.take_maintenance(0, late).unwrap();
        assert_eq!(m2.due, d0 + period);
        assert_eq!(eng.stats().maintenance_deferred, 1);
        // Idempotency: nothing further is due at the same instant.
        assert_eq!(eng.take_maintenance(0, late), None);
    }

    #[test]
    fn fr_rfm_reports_its_period() {
        let t = DramTiming::ddr5_4800();
        let cfg = DefenseConfig::fr_rfm(4, t.t_rc);
        let eng = build(&cfg, 0);
        assert_eq!(eng.maintenance_period(), Some(cfg.fr_rfm.unwrap().period));
        assert_eq!(
            build(&DefenseConfig::prac(128), 0).maintenance_period(),
            None
        );
    }

    #[test]
    fn para_fires_probabilistically() {
        let mut eng = build(&DefenseConfig::para(0.25), 42);
        let mut fired = 0;
        for _ in 0..10_000 {
            fired += eng.on_activate(bank(0, 0), 7, Time::ZERO).len();
        }
        let rate = fired as f64 / 10_000.0;
        assert!((0.2..0.3).contains(&rate), "observed PARA rate {rate}");
        assert_eq!(eng.stats().para_refreshes as usize, fired);
    }

    #[test]
    fn none_and_prac_request_nothing_from_the_controller() {
        for cfg in [DefenseConfig::none(), DefenseConfig::prac(128)] {
            let mut eng = build(&cfg, 0);
            for _ in 0..500 {
                assert!(eng.on_activate(bank(0, 0), 1, Time::ZERO).is_empty());
            }
            assert!(eng.next_deadline(0, Time::ZERO).is_none());
            assert!(eng.take_maintenance(0, Time::from_ms(100)).is_none());
        }
    }

    #[test]
    fn graphene_requests_neighbor_refresh_at_threshold() {
        let t = DramTiming::ddr5_4800();
        let mut cfg = DefenseConfig::graphene(64, &t);
        let threshold = cfg.graphene.unwrap().threshold;
        cfg.graphene.as_mut().unwrap().entries = 8;
        let mut eng = build(&cfg, 0);
        let mut fired = Vec::new();
        for _ in 0..threshold {
            fired.extend(eng.on_activate(bank(0, 0), 42, Time::ZERO).iter().copied());
        }
        assert_eq!(
            fired,
            vec![DefenseAction::RefreshNeighbors {
                bank: bank(0, 0),
                row: 42
            }]
        );
        assert_eq!(eng.stats().tracker_refreshes, 1);
    }

    #[test]
    fn tracker_state_is_per_bank() {
        let t = DramTiming::ddr5_4800();
        let mut cfg = DefenseConfig::graphene(64, &t);
        let threshold = cfg.graphene.unwrap().threshold;
        cfg.graphene.as_mut().unwrap().entries = 8;
        let mut eng = build(&cfg, 0);
        // Alternate banks: neither bank's tracker reaches the threshold
        // even after `threshold` total activations of row 42.
        let mut fired = 0;
        for i in 0..threshold {
            fired += eng.on_activate(bank(0, i % 2), 42, Time::ZERO).len();
        }
        assert_eq!(fired, 0);
    }

    #[test]
    fn hydra_and_comet_fire_eventually_under_hammering() {
        let t = DramTiming::ddr5_4800();
        for cfg in [
            DefenseConfig::hydra(64, &t),
            DefenseConfig::comet(64, &t, 9),
        ] {
            let kind = cfg.kind;
            let mut eng = build(&cfg, 0);
            let mut fired = 0;
            for _ in 0..256 {
                fired += eng.on_activate(bank(0, 0), 7, Time::ZERO).len();
            }
            assert!(fired >= 1, "{kind} never fired under 256 single-row ACTs");
        }
    }

    #[test]
    fn blockhammer_throttles_hammered_row_only() {
        let t = DramTiming::ddr5_4800();
        let cfg = DefenseConfig::blockhammer(64, &t, 5);
        let mut eng = build(&cfg, 0);
        let mut throttles = Vec::new();
        for _ in 0..64 {
            throttles.extend(eng.on_activate(bank(0, 0), 3, Time::ZERO).iter().copied());
        }
        assert!(!throttles.is_empty(), "hammered row must be throttled");
        assert!(throttles
            .iter()
            .all(|a| matches!(a, DefenseAction::ThrottleRow { row: 3, .. })));
        // A cold row on the same bank is not throttled.
        assert!(eng.on_activate(bank(0, 0), 999, Time::ZERO).is_empty());
        assert_eq!(eng.stats().throttles, throttles.len() as u64);
    }

    #[test]
    fn mint_samples_one_aggressor_per_bank_per_ref() {
        let mut eng = build(&DefenseConfig::mint(11), 0);
        // ACTs never produce inline actions (overlapped latency).
        for _ in 0..100 {
            assert!(eng.on_activate(bank(0, 0), 5, Time::ZERO).is_empty());
        }
        for _ in 0..100 {
            assert!(eng.on_activate(bank(1, 1), 6, Time::ZERO).is_empty());
        }
        let refreshed = eng.on_periodic_refresh(0);
        assert_eq!(refreshed.len(), 2, "one sample per active bank");
        assert!(refreshed.contains(&(bank(0, 0), 5)));
        assert!(refreshed.contains(&(bank(1, 1), 6)));
        assert_eq!(eng.stats().mint_refreshes, 2);
        // The interval restarted: nothing to refresh now.
        assert!(eng.on_periodic_refresh(0).is_empty());
    }

    #[test]
    fn mint_refresh_only_covers_the_refreshed_rank() {
        let g = Geometry::tiny();
        let mut eng = build(&DefenseConfig::mint(11), 0);
        if g.ranks_per_channel() < 2 {
            // tiny geometry has one rank; sampling on rank 0 must still
            // return nothing for an out-of-range rank.
            eng.on_activate(bank(0, 0), 5, Time::ZERO);
            assert!(eng.on_periodic_refresh(7).is_empty());
        }
    }

    #[test]
    fn every_kind_builds_its_own_type() {
        let t = DramTiming::ddr5_4800();
        for kind in DefenseKind::taxonomy_set() {
            let cfg = DefenseConfig::for_threshold(kind, 256, &t);
            let def = build(&cfg, 1);
            assert_eq!(def.kind(), kind, "factory must preserve the kind");
        }
    }
}
