//! Rank-level constraints: tFAW, tRRD and rank-wide blocking.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::time::Time;
use crate::timing::DramTiming;

/// Rank-level timing state: the rolling four-activate window (tFAW),
/// activate-to-activate spacing (tRRD_L/S) and rank-wide blocking caused by
/// refresh or all-bank RFM.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RankState {
    /// Issue times of the most recent activates (at most 4 retained).
    recent_acts: VecDeque<Time>,
    /// Time and bank group of the most recent activate.
    last_act: Option<(Time, u32)>,
    /// Until when the whole rank is blocked (REF / RFMab).
    blocked_until: Time,
}

impl RankState {
    /// A fresh, unblocked rank.
    pub fn new() -> RankState {
        RankState::default()
    }

    /// Until when the whole rank is blocked.
    pub fn blocked_until(&self) -> Time {
        self.blocked_until
    }

    /// Earliest time an `ACT` to `bank_group` may be issued under
    /// rank-level constraints.
    pub fn earliest_act(&self, bank_group: u32, t: &DramTiming) -> Time {
        let mut earliest = self.blocked_until;
        if self.recent_acts.len() == 4 {
            earliest = earliest.max(self.recent_acts[0] + t.t_faw);
        }
        if let Some((last, bg)) = self.last_act {
            let rrd = if bg == bank_group {
                t.t_rrd_l
            } else {
                t.t_rrd_s
            };
            earliest = earliest.max(last + rrd);
        }
        earliest
    }

    /// Earliest time any non-ACT command may be issued (rank blocking only).
    pub fn earliest_any(&self) -> Time {
        self.blocked_until
    }

    /// Records an `ACT` issued at `now` to `bank_group`.
    pub fn apply_act(&mut self, now: Time, bank_group: u32) {
        if self.recent_acts.len() == 4 {
            self.recent_acts.pop_front();
        }
        self.recent_acts.push_back(now);
        self.last_act = Some((now, bank_group));
    }

    /// Blocks the entire rank until `until` (REF or all-bank RFM).
    pub fn block_until(&mut self, until: Time) {
        self.blocked_until = self.blocked_until.max(until);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Span;

    fn timing() -> DramTiming {
        DramTiming::ddr5_4800()
    }

    #[test]
    fn trrd_applies_between_activates() {
        let t = timing();
        let mut r = RankState::new();
        r.apply_act(Time::ZERO, 0);
        // Same bank group: long delay.
        assert_eq!(r.earliest_act(0, &t), Time::ZERO + t.t_rrd_l);
        // Different bank group: short delay.
        assert_eq!(r.earliest_act(1, &t), Time::ZERO + t.t_rrd_s);
    }

    #[test]
    fn tfaw_limits_burst_of_activates() {
        let t = timing();
        let mut r = RankState::new();
        let mut now = Time::ZERO;
        for bg in 0..4 {
            now = r.earliest_act(bg, &t).max(now);
            r.apply_act(now, bg);
        }
        // The fifth activate must wait for the first to leave the window.
        let fifth = r.earliest_act(4, &t);
        assert!(fifth >= Time::ZERO + t.t_faw, "fifth ACT at {fifth} < tFAW");
    }

    #[test]
    fn window_slides_after_four_acts() {
        let t = timing();
        let mut r = RankState::new();
        for i in 0..8u64 {
            r.apply_act(Time::from_ns(100 * i), (i % 4) as u32);
        }
        // Only the last four activates matter for tFAW.
        let earliest = r.earliest_act(0, &t);
        assert!(earliest >= Time::from_ns(400) + t.t_faw);
    }

    #[test]
    fn blocking_gates_everything() {
        let t = timing();
        let mut r = RankState::new();
        r.block_until(Time::from_us(1));
        assert_eq!(r.earliest_any(), Time::from_us(1));
        assert!(r.earliest_act(0, &t) >= Time::from_us(1));
        // Blocking never moves backwards.
        r.block_until(Time::from_ns(10));
        assert_eq!(r.blocked_until(), Time::from_us(1));
    }

    #[test]
    fn no_constraint_when_idle() {
        let t = timing();
        let r = RankState::new();
        assert_eq!(r.earliest_act(0, &t), Time::ZERO);
        let _ = Span::ZERO;
    }
}
