//! Countermeasure evaluation (§11.4): how much channel capacity each
//! countermeasure removes relative to plain PRAC.
//!
//! The paper reports FR-RFM eliminating the channel (100 % reduction)
//! and RIAC reducing it by ≈86 % on average. Since the `lh-mitigate`
//! wrappers landed, the study runs *arms* rather than bare defenses:
//! each arm deploys a defense plus a (possibly empty) countermeasure
//! wrapper stack, flowing through the same
//! [`SimConfig::mitigations`](lh_sim::SimConfig) plumbing the
//! `mitsweep` Pareto matrix uses — the figure path and the sweep share
//! one mitigation implementation.

use serde::{Deserialize, Serialize};

use lh_analysis::{ChannelResult, MessagePattern};
use lh_defenses::{DefenseConfig, DefenseKind};
use lh_dram::DramTiming;
use lh_mitigate::{MitigationConfig, MitigationKind};

use crate::experiment::covert::{run_covert, ChannelKind, CovertOptions};
use crate::Scale;

/// One arm of the §11.4 study: a deployed defense plus the
/// countermeasure wrappers stacked over it (empty = the bare defense).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MitigationArm {
    /// Report label (`"PRAC"`, `"PRAC+shaper"`, …).
    pub label: String,
    /// The underlying defense engine.
    pub defense: DefenseConfig,
    /// Wrapper stack deployed over it, innermost first.
    pub mitigations: Vec<MitigationConfig>,
}

impl MitigationArm {
    /// A bare-defense arm, labeled with the defense's paper name.
    pub fn bare(defense: DefenseConfig) -> MitigationArm {
        MitigationArm {
            label: defense.kind.label().to_owned(),
            defense,
            mitigations: Vec::new(),
        }
    }

    /// A wrapped arm: `defense` with a single wrapper provisioned for
    /// its `N_RH`, labeled `"{defense}+{wrapper}"`.
    pub fn wrapped(defense: DefenseConfig, kind: MitigationKind, nrh: u32) -> MitigationArm {
        let t = DramTiming::ddr5_4800();
        let cfg = MitigationConfig::for_threshold(kind, nrh, &t);
        MitigationArm {
            label: format!("{}+{}", defense.kind.label(), cfg.label()),
            defense,
            mitigations: vec![cfg],
        }
    }
}

/// Capacity measurement of the PRAC-style attack under one arm.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MitigationPoint {
    /// Which arm the attack ran against.
    pub label: String,
    /// The arm's underlying defense kind.
    pub defense: DefenseKind,
    /// Error probability.
    pub error_probability: f64,
    /// Capacity in Kbps.
    pub capacity_kbps: f64,
    /// Capacity reduction vs plain PRAC (percent).
    pub reduction_pct: f64,
}

/// The §11.4 capacity-reduction study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MitigationStudy {
    /// PRAC baseline, then each countermeasure arm.
    pub points: Vec<MitigationPoint>,
}

/// Error probability and capacity of the PRAC-style attack against one
/// arm; exposed so the harness can evaluate the countermeasures in
/// parallel (the baseline-relative reductions are computed from the
/// per-arm capacities afterwards).
pub fn attack_capacity(arm: &MitigationArm, bits_per_pattern: usize, seed: u64) -> (f64, f64) {
    let mut results = Vec::new();
    for (i, pattern) in MessagePattern::paper_set().iter().enumerate() {
        let mut opts = CovertOptions::new(ChannelKind::Prac, pattern.bits(bits_per_pattern));
        opts.sim.defense = arm.defense.clone();
        opts.sim.mitigations = arm.mitigations.clone();
        opts.seed = seed ^ ((i as u64) << 3);
        results.push(run_covert(&opts).result);
    }
    let merged = ChannelResult::merge(results.iter());
    (merged.error_probability(), merged.capacity_kbps())
}

/// The §11.4 arms, in report order: the paper's three defense
/// configurations (PRAC baseline, FR-RFM, PRAC-RIAC) bare, then the
/// strongest wrapper arms over the PRAC baseline — the constant-rate
/// shaper and the isolation quota, the two mitigations the `mitsweep`
/// Pareto frontier keeps.
pub fn mitigation_arms() -> Vec<MitigationArm> {
    let t = DramTiming::ddr5_4800();
    vec![
        MitigationArm::bare(DefenseConfig::prac(128)),
        MitigationArm::bare(DefenseConfig::fr_rfm(64, t.t_rc)),
        MitigationArm::bare(DefenseConfig::riac(128)),
        MitigationArm::wrapped(
            DefenseConfig::prac(128),
            MitigationKind::ConstantRateShaper,
            128,
        ),
        MitigationArm::wrapped(
            DefenseConfig::prac(128),
            MitigationKind::IsolationQuota,
            128,
        ),
    ]
}

/// Runs the study over every arm of [`mitigation_arms`].
pub fn run_mitigation_study(scale: Scale, seed: u64) -> MitigationStudy {
    let bits = scale.message_bits() / 4;
    let mut points = Vec::new();
    let mut baseline = 0.0;
    for arm in mitigation_arms() {
        let (e, cap) = attack_capacity(&arm, bits, seed);
        if arm.label == "PRAC" {
            baseline = cap;
        }
        let reduction = if baseline > 0.0 {
            ((baseline - cap) / baseline * 100.0).max(0.0)
        } else {
            0.0
        };
        points.push(MitigationPoint {
            label: arm.label,
            defense: arm.defense.kind,
            error_probability: e,
            capacity_kbps: cap,
            reduction_pct: reduction,
        });
    }
    MitigationStudy { points }
}

impl MitigationStudy {
    /// The capacity reduction (percent) of the first arm with the given
    /// underlying defense (the bare arms precede the wrapped ones).
    pub fn reduction_of(&self, kind: DefenseKind) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.defense == kind)
            .map(|p| p.reduction_pct)
    }

    /// The capacity reduction (percent) of the arm with this label.
    pub fn reduction_of_arm(&self, label: &str) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.label == label)
            .map(|p| p.reduction_pct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fr_rfm_eliminates_and_riac_degrades() {
        let study = run_mitigation_study(Scale::Quick, 13);
        let prac = study.points.iter().find(|p| p.label == "PRAC").unwrap();
        assert!(
            prac.capacity_kbps > 20.0,
            "baseline capacity {}",
            prac.capacity_kbps
        );
        let frrfm = study.reduction_of(DefenseKind::FrRfm).unwrap();
        assert!(
            frrfm > 95.0,
            "FR-RFM must (nearly) eliminate the channel, reduction {frrfm}%"
        );
        let riac = study.reduction_of(DefenseKind::PracRiac).unwrap();
        assert!(
            riac > 20.0,
            "RIAC must reduce capacity substantially, reduction {riac}%"
        );
        assert!(
            riac < frrfm + 1.0,
            "RIAC reduces less than FR-RFM eliminates ({riac}% vs {frrfm}%)"
        );
    }

    #[test]
    fn arms_share_the_sweep_mitigation_plumbing() {
        let arms = mitigation_arms();
        assert_eq!(arms[0].label, "PRAC");
        assert!(arms[0].mitigations.is_empty(), "the baseline is bare");
        let labels: Vec<&str> = arms.iter().map(|a| a.label.as_str()).collect();
        assert!(labels.contains(&"PRAC+shaper"));
        assert!(labels.contains(&"PRAC+quota"));
        for arm in &arms[3..] {
            assert_eq!(
                arm.mitigations.len(),
                1,
                "{} is a single wrapper",
                arm.label
            );
        }
    }

    #[test]
    fn wrapper_arms_do_not_widen_the_channel() {
        // The wrapped arms ride the same run_covert path; the shaper's
        // constant RFM stream must cost the PRAC channel capacity, and
        // no wrapper may make the channel *faster* than bare PRAC.
        let study = run_mitigation_study(Scale::Quick, 13);
        let baseline = study.points[0].capacity_kbps;
        let shaper = study.reduction_of_arm("PRAC+shaper").unwrap();
        assert!(
            shaper > 20.0,
            "the shaper must cost the PRAC channel real capacity, got {shaper}%"
        );
        for p in &study.points {
            assert!(
                p.capacity_kbps <= baseline + 1e-9,
                "{} widened the channel ({} > {baseline} Kbps)",
                p.label,
                p.capacity_kbps
            );
        }
    }
}
