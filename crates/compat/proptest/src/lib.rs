//! Offline stand-in for `proptest` 1.x.
//!
//! Implements the subset of proptest this repository's property tests
//! use: the [`proptest!`] macro, `prop_assert*!` / [`prop_assume!`],
//! [`test_runner::ProptestConfig`], [`strategy::Strategy`] with
//! `.prop_map`, [`arbitrary::any`], integer/float range strategies,
//! [`collection::vec`], tuple strategies, and a generator for simple
//! character-class regexes (`"[ -~]{1,32}"`-style).
//!
//! Unlike real proptest there is no shrinking: a failing case panics
//! with the sampled inputs' debug representation. Sampling is fully
//! deterministic — the RNG is seeded from the test's module path and
//! name — so failures reproduce across runs.

pub mod test_runner {
    //! Test-case configuration, RNG, and error plumbing.

    /// Mirror of `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is resampled.
        Reject,
        /// An assertion failed; the test panics with this message.
        Fail(String),
    }

    /// Deterministic SplitMix64 stream used to sample strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from an arbitrary label (test name).
        pub fn deterministic(label: &str) -> TestRng {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in label.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next word of the stream.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform draw from the unit interval [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    ///
    /// Stand-in for `proptest::strategy::Strategy`; generation is a
    /// plain `sample` call (no value tree, no shrinking).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Always returns a clone of one value (`proptest::strategy::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A / 0);
    impl_tuple_strategy!(A / 0, B / 1);
    impl_tuple_strategy!(A / 0, B / 1, C / 2);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);
}

pub mod num {
    //! Range strategies for the primitive numeric types.

    use core::ops::{Range, RangeInclusive};

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    lo + (hi - lo) * rng.unit_f64() as $t
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);
}

pub mod arbitrary {
    //! `any::<T>()` and the [`Arbitrary`] trait behind it.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite values only, spanning a wide magnitude band.
            let mag = rng.unit_f64() * 2.0 - 1.0;
            let exp = (rng.below(61) as i32) - 30;
            mag * (2.0f64).powi(exp)
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use core::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: vectors of `element` with length in
    /// `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod string {
    //! String strategies from simple regexes.
    //!
    //! `&str` is a strategy (as in real proptest); the supported syntax
    //! is a sequence of atoms — literal characters, `.`, or character
    //! classes `[a-z 0-9]` — each with an optional `{n}`, `{m,n}`, `?`,
    //! `+` or `*` repetition (the unbounded forms are capped at 32).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[derive(Debug, Clone)]
    struct Atom {
        /// Candidate characters, as inclusive ranges.
        ranges: Vec<(char, char)>,
        min: usize,
        max: usize,
    }

    fn parse(pattern: &str) -> Vec<Atom> {
        let mut chars = pattern.chars().peekable();
        let mut atoms = Vec::new();
        while let Some(c) = chars.next() {
            let ranges = match c {
                '[' => {
                    let mut ranges = Vec::new();
                    loop {
                        let lo = chars.next().expect("unterminated character class");
                        if lo == ']' {
                            break;
                        }
                        if chars.peek() == Some(&'-') {
                            chars.next();
                            let hi = chars.next().expect("unterminated range");
                            ranges.push((lo, hi));
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    ranges
                }
                '.' => vec![(' ', '~')],
                '\\' => {
                    let esc = chars.next().expect("dangling escape");
                    vec![(esc, esc)]
                }
                lit => vec![(lit, lit)],
            };
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for d in chars.by_ref() {
                        if d == '}' {
                            break;
                        }
                        spec.push(d);
                    }
                    match spec.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse().expect("bad repetition"),
                            n.trim().parse().expect("bad repetition"),
                        ),
                        None => {
                            let n = spec.trim().parse().expect("bad repetition");
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('+') => {
                    chars.next();
                    (1, 32)
                }
                Some('*') => {
                    chars.next();
                    (0, 32)
                }
                _ => (1, 1),
            };
            atoms.push(Atom { ranges, min, max });
        }
        atoms
    }

    impl Strategy for &str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for atom in parse(self) {
                let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
                for _ in 0..n {
                    let total: u64 = atom
                        .ranges
                        .iter()
                        .map(|&(lo, hi)| hi as u64 - lo as u64 + 1)
                        .sum();
                    let mut pick = rng.below(total);
                    for &(lo, hi) in &atom.ranges {
                        let span = hi as u64 - lo as u64 + 1;
                        if pick < span {
                            out.push(char::from_u32(lo as u32 + pick as u32).unwrap());
                            break;
                        }
                        pick -= span;
                    }
                }
            }
            out
        }
    }
}

pub mod prelude {
    //! Single-import convenience, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares deterministic property tests.
///
/// Supports the standard form: an optional
/// `#![proptest_config(expr)]` header followed by `#[test] fn`
/// items whose parameters are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut accepted = 0u32;
            let mut attempts = 0u32;
            while accepted < cfg.cases {
                attempts += 1;
                assert!(
                    attempts <= cfg.cases.saturating_mul(20).max(1000),
                    "proptest: too many rejected cases in {}",
                    stringify!($name),
                );
                let ($($arg,)+) = (
                    $($crate::strategy::Strategy::sample(&($strat), &mut rng),)+
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => continue,
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case failed: {}", msg)
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)+);
    }};
}

/// Rejects the current case, causing a resample.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        $crate::prop_assume!($cond)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_strategy_matches_pattern() {
        let mut rng = crate::test_runner::TestRng::deterministic("string");
        for _ in 0..200 {
            let s = Strategy::sample(&"[ -~]{1,32}", &mut rng);
            assert!((1..=32).contains(&s.len()));
            assert!(s.bytes().all(|b| (b' '..=b'~').contains(&b)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0.25f64..=0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..=0.75).contains(&y));
        }

        #[test]
        fn vectors_and_tuples_sample(
            v in crate::collection::vec((0u8..4, any::<bool>()), 1..9),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            for (n, _) in v {
                prop_assert!(n < 4);
            }
        }

        #[test]
        fn assume_rejects(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n % 2, 1);
        }

        #[test]
        fn prop_map_applies(s in (1usize..5).prop_map(|n| "x".repeat(n))) {
            prop_assert!((1..5).contains(&s.len()));
        }
    }
}
