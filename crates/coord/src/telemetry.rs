//! Volatile fleet telemetry: the coordinator's live view of its
//! workers, shared with dashboards through a cloneable handle.
//!
//! Everything here is wall-clock shaped — heartbeat ages, in-flight
//! unit labels, death counts — and therefore lives strictly outside
//! the deterministic metrics channel: snapshots feed `GET /metrics`,
//! the `fleet` stream events and the `watch` worker-health column, but
//! never envelopes or cache entries. The coordinator updates the inner
//! state as protocol events arrive; any number of reader threads (the
//! serve HTTP handlers, stream followers) snapshot it concurrently
//! while [`Coordinator::run`](crate::Coordinator::run) blocks.
//!
//! The same lifetime counters are mirrored into
//! [`lh_obs::Registry::global`] under `coord.*` names so the
//! Prometheus endpoint exposes them next to the simulator totals.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use lh_harness::json::Json;

/// `coord.*` lifetime counter names mirrored into the global registry.
pub mod counters {
    /// Workers launched, including replacements.
    pub const WORKERS_SPAWNED: &str = "coord.workers_spawned";
    /// Workers that died or misbehaved and were discarded.
    pub const WORKERS_LOST: &str = "coord.workers_lost";
    /// In-flight units returned to the queue by worker deaths.
    pub const UNITS_REQUEUED: &str = "coord.units_requeued";
    /// Respawn-budget draws (replacements beyond the initial fleet).
    pub const RESPAWNS_USED: &str = "coord.respawns_used";
    /// Heartbeat messages received from workers.
    pub const HEARTBEATS: &str = "coord.heartbeats";
}

/// One worker's live state, as of a [`FleetTelemetry::snapshot`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerTelemetry {
    /// Slot index (stable across the worker's lifetime).
    pub index: usize,
    /// OS process id from the `ready` handshake (0 for threads).
    pub pid: u64,
    /// Whether the coordinator still considers the worker usable.
    pub alive: bool,
    /// The `experiment/unit-label` currently executing, if any.
    pub in_flight: Option<String>,
    /// Units this worker has completed.
    pub units_done: u64,
    /// Milliseconds since the worker was last heard from (any
    /// message counts as a beat). `None` before the handshake.
    pub beat_age_ms: Option<u64>,
}

#[derive(Debug, Default)]
struct WorkerInner {
    pid: u64,
    alive: bool,
    in_flight: Option<String>,
    units_done: u64,
    last_beat: Option<Instant>,
}

#[derive(Debug, Default)]
struct FleetInner {
    workers: Vec<WorkerInner>,
    spawned: u64,
    lost: u64,
    requeued: u64,
    respawns_used: u64,
    heartbeats: u64,
}

/// A point-in-time copy of the fleet state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetSnapshot {
    /// Per-worker state, in slot order (dead slots included — their
    /// terminal state is part of the failure story).
    pub workers: Vec<WorkerTelemetry>,
    /// Workers launched, including replacements.
    pub workers_spawned: u64,
    /// Workers discarded after dying or misbehaving.
    pub workers_lost: u64,
    /// In-flight units requeued by worker deaths.
    pub units_requeued: u64,
    /// Respawn-budget draws so far.
    pub respawns_used: u64,
    /// Heartbeat messages received.
    pub heartbeats: u64,
}

impl FleetSnapshot {
    /// The snapshot as a JSON object — the `fleet` field of the
    /// `fleet` stream event, and the shape serve's run-status endpoint
    /// embeds.
    pub fn to_json(&self) -> Json {
        let workers = self
            .workers
            .iter()
            .map(|w| {
                let mut obj = Json::object()
                    .with("index", w.index)
                    .with("pid", w.pid)
                    .with("alive", w.alive)
                    .with("units_done", w.units_done);
                match &w.in_flight {
                    Some(label) => obj.set("busy", label.as_str()),
                    None => obj.set("busy", Json::Null),
                }
                match w.beat_age_ms {
                    Some(ms) => obj.set("beat_age_ms", ms),
                    None => obj.set("beat_age_ms", Json::Null),
                }
                obj
            })
            .collect();
        Json::object()
            .with("workers", Json::Array(workers))
            .with("spawned", self.workers_spawned)
            .with("lost", self.workers_lost)
            .with("requeued", self.units_requeued)
            .with("respawns_used", self.respawns_used)
            .with("heartbeats", self.heartbeats)
    }
}

/// Cloneable, thread-safe handle to the coordinator's fleet state.
#[derive(Debug, Clone, Default)]
pub struct FleetTelemetry {
    inner: Arc<Mutex<FleetInner>>,
}

impl FleetTelemetry {
    /// A handle over a fresh, empty fleet.
    pub fn new() -> FleetTelemetry {
        FleetTelemetry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FleetInner> {
        self.inner.lock().expect("fleet telemetry poisoned")
    }

    /// Registers slot `index` as spawned (and alive). `respawn` marks a
    /// replacement drawn from the respawn budget.
    pub(crate) fn worker_spawned(&self, index: usize, respawn: bool) {
        let mut inner = self.lock();
        if inner.workers.len() <= index {
            inner.workers.resize_with(index + 1, WorkerInner::default);
        }
        inner.workers[index] = WorkerInner {
            alive: true,
            ..WorkerInner::default()
        };
        inner.spawned += 1;
        if respawn {
            inner.respawns_used += 1;
        }
        lh_obs::Registry::global().add(counters::WORKERS_SPAWNED, 1);
        if respawn {
            lh_obs::Registry::global().add(counters::RESPAWNS_USED, 1);
        }
    }

    /// Records the `ready` handshake (pid + first beat).
    pub(crate) fn worker_ready(&self, index: usize, pid: u64) {
        let mut inner = self.lock();
        if let Some(w) = inner.workers.get_mut(index) {
            w.pid = pid;
            w.last_beat = Some(Instant::now());
        }
    }

    /// Records an assignment: `label` is `experiment/unit-label`.
    pub(crate) fn worker_assigned(&self, index: usize, label: String) {
        let mut inner = self.lock();
        if let Some(w) = inner.workers.get_mut(index) {
            w.in_flight = Some(label);
        }
    }

    /// Records a completed assignment.
    pub(crate) fn worker_done(&self, index: usize) {
        let mut inner = self.lock();
        if let Some(w) = inner.workers.get_mut(index) {
            w.in_flight = None;
            w.units_done += 1;
            w.last_beat = Some(Instant::now());
        }
    }

    /// Records a heartbeat carrying the worker's own completion count.
    pub(crate) fn worker_heartbeat(&self, index: usize, units_done: u64) {
        let mut inner = self.lock();
        inner.heartbeats += 1;
        if let Some(w) = inner.workers.get_mut(index) {
            w.last_beat = Some(Instant::now());
            w.units_done = w.units_done.max(units_done);
        }
        lh_obs::Registry::global().add(counters::HEARTBEATS, 1);
    }

    /// Records a worker death.
    pub(crate) fn worker_lost(&self, index: usize) {
        let mut inner = self.lock();
        if let Some(w) = inner.workers.get_mut(index) {
            w.alive = false;
            w.in_flight = None;
        }
        inner.lost += 1;
        lh_obs::Registry::global().add(counters::WORKERS_LOST, 1);
    }

    /// Records one in-flight unit returned to the queue by a death.
    pub(crate) fn unit_requeued(&self) {
        self.lock().requeued += 1;
        lh_obs::Registry::global().add(counters::UNITS_REQUEUED, 1);
    }

    /// Marks every worker dead (fleet shutdown).
    pub(crate) fn fleet_down(&self) {
        let mut inner = self.lock();
        for w in &mut inner.workers {
            w.alive = false;
            w.in_flight = None;
        }
    }

    /// A point-in-time copy of the fleet state, with heartbeat ages
    /// computed against the snapshot instant.
    pub fn snapshot(&self) -> FleetSnapshot {
        let now = Instant::now();
        let inner = self.lock();
        FleetSnapshot {
            workers: inner
                .workers
                .iter()
                .enumerate()
                .map(|(index, w)| WorkerTelemetry {
                    index,
                    pid: w.pid,
                    alive: w.alive,
                    in_flight: w.in_flight.clone(),
                    units_done: w.units_done,
                    beat_age_ms: w.last_beat.map(|t| {
                        u64::try_from(now.saturating_duration_since(t).as_millis())
                            .unwrap_or(u64::MAX)
                    }),
                })
                .collect(),
            workers_spawned: inner.spawned,
            workers_lost: inner.lost,
            units_requeued: inner.requeued,
            respawns_used: inner.respawns_used,
            heartbeats: inner.heartbeats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_shows_up_in_snapshots() {
        let fleet = FleetTelemetry::new();
        fleet.worker_spawned(0, false);
        fleet.worker_spawned(1, false);
        fleet.worker_ready(0, 42);
        fleet.worker_assigned(0, "fig2/noise:0".into());
        fleet.worker_heartbeat(0, 0);
        let snap = fleet.snapshot();
        assert_eq!(snap.workers.len(), 2);
        assert_eq!(snap.workers[0].pid, 42);
        assert_eq!(snap.workers[0].in_flight.as_deref(), Some("fig2/noise:0"));
        assert!(snap.workers[0].beat_age_ms.is_some());
        assert_eq!(snap.workers[1].beat_age_ms, None, "no handshake yet");
        assert_eq!(snap.heartbeats, 1);

        fleet.worker_done(0);
        fleet.worker_lost(1);
        fleet.unit_requeued();
        let snap = fleet.snapshot();
        assert_eq!(snap.workers[0].units_done, 1);
        assert_eq!(snap.workers[0].in_flight, None);
        assert!(!snap.workers[1].alive);
        assert_eq!(snap.workers_lost, 1);
        assert_eq!(snap.units_requeued, 1);

        // A respawn reuses slot accounting but bumps the budget line.
        fleet.worker_spawned(2, true);
        let snap = fleet.snapshot();
        assert_eq!(snap.workers_spawned, 3);
        assert_eq!(snap.respawns_used, 1);
    }

    #[test]
    fn snapshot_json_is_dashboard_shaped() {
        let fleet = FleetTelemetry::new();
        fleet.worker_spawned(0, false);
        fleet.worker_assigned(0, "fig2/noise:1".into());
        let json = fleet.snapshot().to_json();
        assert_eq!(json["workers"][0]["busy"].as_str(), Some("fig2/noise:1"));
        assert_eq!(json["workers"][0]["alive"].as_bool(), Some(true));
        assert_eq!(json["spawned"].as_u64(), Some(1));
        assert_eq!(json["heartbeats"].as_u64(), Some(0));
    }
}
