//! The [`Job`] trait every experiment implements, and the [`Registry`]
//! the CLI runs from.

use crate::json::Json;

/// Experiment scale, mirroring the simulator's `Scale` without
/// depending on it (the harness sits below the experiment crates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ScaleLevel {
    /// Seconds-scale smoke runs.
    Quick,
    /// Minutes-scale runs with the paper's qualitative shape.
    #[default]
    Default,
    /// The paper's full sample sizes.
    Paper,
}

impl ScaleLevel {
    /// Stable identifier used in cache keys and structured output.
    pub fn as_str(&self) -> &'static str {
        match self {
            ScaleLevel::Quick => "quick",
            ScaleLevel::Default => "default",
            ScaleLevel::Paper => "paper",
        }
    }
}

impl core::str::FromStr for ScaleLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<ScaleLevel, String> {
        match s {
            "quick" => Ok(ScaleLevel::Quick),
            "default" => Ok(ScaleLevel::Default),
            "paper" | "full" => Ok(ScaleLevel::Paper),
            other => Err(format!("unknown scale '{other}' (quick|default|paper)")),
        }
    }
}

/// Everything a job may condition its work on.
///
/// A unit's *results* must be a pure function of the context's scale,
/// its unit index, and its derived seed — that is what makes parallel
/// runs bit-identical to serial runs and cached results valid. The
/// [`Memo`](crate::Memo) carried alongside is pure acceleration: units
/// may share build-once intermediates through it, but an entry's value
/// must itself be a pure function of its key, so presence or absence of
/// a memo hit can never change a result.
#[derive(Debug, Clone)]
pub struct JobContext {
    /// Experiment scale.
    pub scale: ScaleLevel,
    /// Master seed; per-unit seeds are derived from it.
    pub seed: u64,
    /// Build-once intermediates shared across this run's units
    /// (process-local; never part of cache addressing).
    pub memo: crate::Memo,
}

impl JobContext {
    /// A context with a fresh, empty memo.
    pub fn new(scale: ScaleLevel, seed: u64) -> JobContext {
        JobContext {
            scale,
            seed,
            memo: crate::Memo::new(),
        }
    }
}

impl PartialEq for JobContext {
    /// Contexts compare by the result-determining fields alone — the
    /// memo is an accelerator, not an input.
    fn eq(&self, other: &JobContext) -> bool {
        self.scale == other.scale && self.seed == other.seed
    }
}

impl Eq for JobContext {}

/// One experiment, decomposed into a DAG of runnable units.
///
/// Implementations must be stateless (`Send + Sync`, no interior
/// mutability observable across units): the runner calls `run_unit`
/// concurrently from worker threads.
pub trait Job: Send + Sync {
    /// Stable experiment identifier (`fig4`, `table2`, ...).
    fn id(&self) -> &'static str;

    /// One-line description for `lh-experiments list`.
    fn description(&self) -> &'static str;

    /// Labels of the units this job splits into under `ctx`, in
    /// canonical order. The label doubles as the unit's configuration
    /// fingerprint for cache addressing, so it must encode every
    /// parameter that distinguishes the unit within the experiment.
    fn units(&self, ctx: &JobContext) -> Vec<String>;

    /// Indices of the units whose results `unit` consumes, in the order
    /// `run_unit` expects them. The default — no dependencies — keeps
    /// flat sweep jobs flat; jobs that share expensive intermediates
    /// (e.g. a per-mix baseline simulation feeding every per-cell unit)
    /// declare them here and the runner schedules units topologically.
    /// Dependency edges must form a DAG: the runner rejects cycles and
    /// out-of-range indices before executing anything.
    fn deps(&self, unit: usize, ctx: &JobContext) -> Vec<usize> {
        let _ = (unit, ctx);
        Vec::new()
    }

    /// Runs unit `unit` with its derived seed, returning a JSON result.
    ///
    /// `deps` holds the results of [`Job::deps`]`(unit)` in declaration
    /// order — each dependency's output is delivered exactly once per
    /// edge, whether the dependency was executed or replayed from the
    /// cache. Must not read mutable state shared with other units, and
    /// must use `seed` (not `ctx.seed` directly) for all randomness.
    fn run_unit(&self, unit: usize, seed: u64, deps: &[Json], ctx: &JobContext) -> Json;

    /// Merges unit results — given in unit order — into the final
    /// result. Runs serially; may be expensive (e.g. classifier
    /// training over collected traces) because the merged result is
    /// cached too.
    fn finish(&self, units: Vec<Json>, ctx: &JobContext) -> Json;

    /// Renders the merged result as the human-readable report.
    fn render_text(&self, merged: &Json, ctx: &JobContext) -> String;

    /// Renders the merged result as CSV, if the job has a natural
    /// tabular form. `None` falls back to the generic flattener in
    /// [`crate::sink`].
    fn render_csv(&self, merged: &Json, ctx: &JobContext) -> Option<String> {
        let _ = (merged, ctx);
        None
    }

    /// Result-schema version; bump when changing this job's unit
    /// decomposition or result layout to invalidate its cache entries.
    /// Invalidation is surgical: only this job's entries are affected,
    /// never the rest of the catalog.
    fn version(&self) -> u32 {
        1
    }

    /// Content fingerprint of the code this job's results depend on,
    /// folded into every cache key alongside [`Job::version`].
    ///
    /// The canonical implementation hashes a per-crate manifest (each
    /// experiment crate's source digest, computed at build time) so
    /// editing one crate invalidates only the jobs whose results flow
    /// through it. The default — the empty fingerprint — leaves
    /// invalidation entirely to `version`.
    fn fingerprint(&self) -> String {
        String::new()
    }
}

impl std::fmt::Debug for dyn Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Job({})", self.id())
    }
}

/// An ordered collection of jobs, looked up by experiment id.
#[derive(Debug, Default)]
pub struct Registry {
    jobs: Vec<Box<dyn Job>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry { jobs: Vec::new() }
    }

    /// Adds a job. Panics on duplicate ids — that is always a
    /// programming error in the experiment catalog.
    pub fn register(&mut self, job: Box<dyn Job>) {
        assert!(
            self.get(job.id()).is_none(),
            "duplicate experiment id '{}'",
            job.id()
        );
        self.jobs.push(job);
    }

    /// Looks an experiment up by id.
    pub fn get(&self, id: &str) -> Option<&dyn Job> {
        self.jobs.iter().find(|j| j.id() == id).map(AsRef::as_ref)
    }

    /// All jobs in registration order.
    pub fn jobs(&self) -> impl Iterator<Item = &dyn Job> {
        self.jobs.iter().map(AsRef::as_ref)
    }

    /// All experiment ids in registration order.
    pub fn ids(&self) -> Vec<&'static str> {
        self.jobs.iter().map(|j| j.id()).collect()
    }

    /// Number of registered experiments.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy(&'static str);

    impl Job for Dummy {
        fn id(&self) -> &'static str {
            self.0
        }
        fn description(&self) -> &'static str {
            "dummy"
        }
        fn units(&self, _ctx: &JobContext) -> Vec<String> {
            vec!["only".into()]
        }
        fn run_unit(&self, _unit: usize, seed: u64, _deps: &[Json], _ctx: &JobContext) -> Json {
            Json::object().with("seed", seed)
        }
        fn finish(&self, mut units: Vec<Json>, _ctx: &JobContext) -> Json {
            units.pop().unwrap()
        }
        fn render_text(&self, merged: &Json, _ctx: &JobContext) -> String {
            merged.to_compact()
        }
    }

    #[test]
    fn registry_preserves_order_and_rejects_duplicates() {
        let mut r = Registry::new();
        r.register(Box::new(Dummy("a")));
        r.register(Box::new(Dummy("b")));
        assert_eq!(r.ids(), vec!["a", "b"]);
        assert!(r.get("a").is_some() && r.get("c").is_none());
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            r.register(Box::new(Dummy("a")))
        }))
        .is_err());
    }

    #[test]
    fn scale_level_parses() {
        assert_eq!("quick".parse::<ScaleLevel>().unwrap(), ScaleLevel::Quick);
        assert_eq!("full".parse::<ScaleLevel>().unwrap(), ScaleLevel::Paper);
        assert!("nope".parse::<ScaleLevel>().is_err());
    }
}
