//! Harness invariants, end to end through real experiments: parallel
//! runs are bit-identical to serial runs — including DAG-scheduled jobs
//! with cross-unit dependencies (fig13) and distributed execution
//! across `lh-coord` workers — and a warm cache skips all recomputation
//! while reproducing the output byte for byte.

use lh_harness::{DiskCache, JobContext, Runner, RunnerOptions, ScaleLevel};

fn ctx() -> JobContext {
    JobContext::new(ScaleLevel::Quick, 11)
}

fn runner(jobs: usize, cache: Option<DiskCache>) -> Runner {
    Runner::new(RunnerOptions {
        jobs,
        cache,
        ..Default::default()
    })
}

#[test]
fn noise_sweep_is_bit_identical_across_job_counts() {
    let registry = leakyhammer::registry();
    let job = registry.get("fig4").expect("fig4 registered");
    let serial = runner(1, None).run(job, &ctx()).expect("serial run");
    for jobs in [2, 8] {
        let parallel = runner(jobs, None).run(job, &ctx()).expect("parallel run");
        assert_eq!(
            serial.merged, parallel.merged,
            "--jobs {jobs} must produce bit-identical results to --jobs 1"
        );
        assert_eq!(
            job.render_text(&serial.merged, &ctx()),
            job.render_text(&parallel.merged, &ctx()),
            "--jobs {jobs} must render the identical report"
        );
    }
    // Sanity: the sweep actually has multiple points to shard.
    assert!(serial.stats.units_total >= 3);
}

#[test]
fn fig13_dag_is_bit_identical_across_job_counts() {
    let registry = leakyhammer::registry();
    let job = registry.get("fig13").expect("fig13 registered");

    // The decomposition really is a DAG: per-mix baselines plus one
    // unit per (mix, defense, NRH) cell depending on its baseline.
    let units = job.units(&ctx());
    let baselines = units.iter().filter(|u| u.starts_with("baseline:")).count();
    assert!(baselines >= 2, "one baseline unit per mix");
    assert!(
        units.len() > baselines * 10,
        "cells dominate: {} units for {baselines} baselines",
        units.len()
    );
    for (i, unit) in units.iter().enumerate() {
        let deps = job.deps(i, &ctx());
        if unit.starts_with("baseline:") {
            assert!(deps.is_empty(), "{unit} must be a root");
        } else {
            assert_eq!(deps.len(), 1, "{unit} depends on its mix baseline");
            assert!(units[deps[0]].starts_with("baseline:"));
        }
    }

    let serial = runner(1, None).run(job, &ctx()).expect("serial run");
    let parallel = runner(8, None).run(job, &ctx()).expect("parallel run");
    assert_eq!(
        serial.merged, parallel.merged,
        "--jobs 8 must produce a bit-identical merged envelope on the fig13 DAG"
    );
    assert_eq!(
        job.render_text(&serial.merged, &ctx()),
        job.render_text(&parallel.merged, &ctx())
    );
}

#[test]
fn chansweep_dag_is_bit_identical_across_job_counts() {
    // The link-layer channel sweep shards like fig13: per-defense
    // calibration baselines feed every (defense, modulation, noise)
    // cell through the dependency channel. Placement must not leak
    // into the envelope.
    let registry = leakyhammer::registry();
    let job = registry.get("chansweep").expect("chansweep registered");

    let units = job.units(&ctx());
    let baselines = units.iter().filter(|u| u.starts_with("baseline:")).count();
    assert!(baselines >= 12, "one baseline per registered defense");
    assert!(
        units.len() >= baselines * 4,
        "cells dominate: {} units for {baselines} baselines",
        units.len()
    );
    for (i, unit) in units.iter().enumerate() {
        let deps = job.deps(i, &ctx());
        if unit.starts_with("baseline:") {
            assert!(deps.is_empty(), "{unit} must be a root");
        } else {
            assert_eq!(deps.len(), 1, "{unit} depends on its defense baseline");
            assert!(units[deps[0]].starts_with("baseline:"));
        }
    }

    let serial = runner(1, None).run(job, &ctx()).expect("serial run");
    let parallel = runner(8, None).run(job, &ctx()).expect("parallel run");
    assert_eq!(
        serial.merged, parallel.merged,
        "--jobs 8 must produce a bit-identical merged envelope on the chansweep DAG"
    );
    assert_eq!(
        job.render_text(&serial.merged, &ctx()),
        job.render_text(&parallel.merged, &ctx())
    );
}

#[test]
fn fig13_distributed_workers_are_bit_identical_to_in_process() {
    // The coordinator ships dependency results in assignment messages
    // and workers derive per-unit seeds themselves, so where a unit
    // lands — which worker, in what order — must not leak into the
    // envelope: `--workers 4` reproduces `--jobs 1` byte for byte.
    // Thread workers speak the same serialized protocol as process
    // workers; CI additionally diffs real child-process runs.
    let registry = leakyhammer::registry();
    let job = registry.get("fig13").expect("fig13 registered");
    let serial = runner(1, None).run(job, &ctx()).expect("serial run");

    let mut coordinator = lh_coord::Coordinator::new(
        Box::new(lh_coord::ThreadSpawner::new(leakyhammer::registry)),
        lh_coord::CoordinatorOptions {
            workers: 4,
            ..Default::default()
        },
    );
    let distributed = coordinator.run(job, &ctx()).expect("distributed run");
    assert_eq!(
        serial.merged, distributed.merged,
        "--workers 4 must produce a bit-identical merged envelope on the fig13 DAG"
    );
    assert_eq!(
        distributed.stats.units_executed, serial.stats.units_total,
        "an uncached distributed run executes every unit"
    );
    assert_eq!(
        job.render_text(&serial.merged, &ctx()),
        job.render_text(&distributed.merged, &ctx())
    );
}

#[test]
fn warm_cache_skips_recompute_and_reproduces_output() {
    let dir = std::env::temp_dir().join(format!(
        "lh-harness-integration-{}-warm-cache",
        std::process::id()
    ));
    let cache = DiskCache::new(&dir);
    cache.clear().expect("fresh cache dir");

    let registry = leakyhammer::registry();
    let job = registry.get("fig4").expect("fig4 registered");

    let cold = runner(8, Some(cache.clone()))
        .run(job, &ctx())
        .expect("cold run");
    assert_eq!(
        cold.stats.units_cached, 0,
        "cold run must start from an empty cache"
    );
    assert_eq!(cold.stats.units_executed, cold.stats.units_total);

    let warm = runner(8, Some(cache.clone()))
        .run(job, &ctx())
        .expect("warm run");
    assert!(
        warm.stats.merged_cached,
        "warm run must hit the merged-result cache"
    );
    assert_eq!(
        warm.stats.units_executed, 0,
        "warm run must skip all recompute"
    );
    assert_eq!(
        warm.merged, cold.merged,
        "cached results must be bit-identical"
    );
    assert_eq!(
        job.render_text(&warm.merged, &ctx()),
        job.render_text(&cold.merged, &ctx()),
        "cached render must match the cold run byte for byte"
    );

    // The deterministic metrics block replays from cache too: the warm
    // run executed zero units, yet its full JSON envelope — result AND
    // metrics — is byte-identical to the cold run's. This is the
    // contract that lets volatile wall-clock data never enter cacheable
    // envelopes: everything in here is a pure function of the
    // computation.
    assert_eq!(
        lh_harness::sink::envelope(job, &warm, &ctx()).to_pretty(),
        lh_harness::sink::envelope(job, &cold, &ctx()).to_pretty(),
        "warm-cache envelope must be byte-identical, metrics included"
    );
    let totals = &cold.metrics["totals"];
    assert!(
        totals["sim.service_wakes"].as_u64().unwrap_or(0) > 0,
        "the envelope being compared actually carries sim counters: {totals:?}"
    );

    // A different master seed must not be served from this cache.
    let other_ctx = JobContext { seed: 12, ..ctx() };
    let other = runner(8, Some(cache.clone()))
        .run(job, &other_ctx)
        .expect("other-seed run");
    assert!(!other.stats.merged_cached);
    assert_eq!(other.stats.units_executed, other.stats.units_total);

    cache.clear().expect("cleanup");
}

#[test]
fn derived_seeds_differ_per_experiment_and_unit() {
    // The whole determinism story rests on unit seeds being a pure
    // function of (experiment id, unit index, master seed).
    let a = lh_harness::derive_seed("fig4", 0, 11);
    assert_eq!(a, lh_harness::derive_seed("fig4", 0, 11));
    assert_ne!(a, lh_harness::derive_seed("fig4", 1, 11));
    assert_ne!(a, lh_harness::derive_seed("fig7", 0, 11));
    assert_ne!(a, lh_harness::derive_seed("fig4", 0, 12));
}

#[test]
fn metrics_histograms_are_bit_identical_across_jobs_workers_and_replay() {
    // Histograms are the newest passengers on the deterministic
    // channel: power-of-two latency buckets sampled in simulated time,
    // merged bucket-wise across units. Like the counters they ride
    // with, they must be a pure function of the computation — never of
    // scheduling. Pin byte-identity across every execution strategy.
    let registry = leakyhammer::registry();
    let job = registry.get("fig13").expect("fig13 registered");

    let serial = runner(1, None).run(job, &ctx()).expect("serial run");
    let baseline = serial.metrics["histograms"].to_compact();
    for name in ["sim.queue_wait", "sim.maintenance.slack"] {
        assert!(
            serial.metrics["histograms"][name]["count"]
                .as_u64()
                .unwrap_or(0)
                > 0,
            "fig13 must sample {name}: {baseline}"
        );
    }

    let parallel = runner(8, None).run(job, &ctx()).expect("parallel run");
    assert_eq!(
        parallel.metrics["histograms"].to_compact(),
        baseline,
        "--jobs 8 must merge bit-identical histograms"
    );

    let mut coordinator = lh_coord::Coordinator::new(
        Box::new(lh_coord::ThreadSpawner::new(leakyhammer::registry)),
        lh_coord::CoordinatorOptions {
            workers: 2,
            ..Default::default()
        },
    );
    let distributed = coordinator.run(job, &ctx()).expect("distributed run");
    assert_eq!(
        distributed.metrics["histograms"].to_compact(),
        baseline,
        "--workers 2 must merge bit-identical histograms"
    );

    // A warm replay executes zero units, yet reports the same
    // histograms: buckets ride the cache entries next to counters.
    let dir = std::env::temp_dir().join(format!(
        "lh-harness-integration-{}-hist-replay",
        std::process::id()
    ));
    let cache = DiskCache::new(&dir);
    cache.clear().expect("fresh cache dir");
    let cold = runner(8, Some(cache.clone()))
        .run(job, &ctx())
        .expect("cold run");
    let warm = runner(8, Some(cache.clone()))
        .run(job, &ctx())
        .expect("warm run");
    assert_eq!(warm.stats.units_executed, 0, "warm run must replay");
    assert_eq!(cold.metrics["histograms"].to_compact(), baseline);
    assert_eq!(
        warm.metrics["histograms"].to_compact(),
        baseline,
        "cache replay must reproduce histograms byte for byte"
    );
    cache.clear().expect("cleanup");
}
