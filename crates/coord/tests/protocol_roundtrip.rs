//! Property tests: every coordinator↔worker message survives the wire
//! — serialize to its NDJSON line, parse the line back, get the same
//! message — including arbitrary nested JSON payloads (dependency
//! results and unit results with full-range integers, floats, escaped
//! strings, arrays and objects).

use lh_coord::protocol::{parse_line, FromWorker, ToWorker};
use lh_harness::Json;
use proptest::collection;
use proptest::prelude::*;
use proptest::test_runner::TestRng;

/// Depth-bounded strategy over arbitrary JSON values.
#[derive(Debug, Clone, Copy)]
struct ArbJson {
    depth: u8,
}

impl Strategy for ArbJson {
    type Value = Json;

    fn sample(&self, rng: &mut TestRng) -> Json {
        let variants = if self.depth == 0 { 5 } else { 7 };
        match rng.below(variants) {
            0 => Json::Null,
            1 => Json::Bool(rng.next_u64() & 1 == 1),
            2 => Json::Int(i128::from(rng.next_u64() as i64)),
            3 => Json::from_f64(f64::arbitrary(rng)),
            4 => Json::Str(Strategy::sample(&"[ -~]{0,16}", rng)),
            5 => {
                let inner = ArbJson {
                    depth: self.depth - 1,
                };
                Json::Array((0..rng.below(3)).map(|_| inner.sample(rng)).collect())
            }
            _ => {
                let inner = ArbJson {
                    depth: self.depth - 1,
                };
                Json::Object(
                    (0..rng.below(3))
                        .map(|_| (Strategy::sample(&"[a-z_]{1,8}", rng), inner.sample(rng)))
                        .collect(),
                )
            }
        }
    }
}

fn payload() -> ArbJson {
    ArbJson { depth: 2 }
}

/// One wire round trip: message → NDJSON line → message.
fn wire_to_worker(msg: &ToWorker) -> Result<ToWorker, String> {
    let line = msg.to_json().to_compact();
    assert!(!line.contains('\n'), "messages must be single lines");
    ToWorker::from_json(&parse_line(&line)?)
}

fn wire_from_worker(msg: &FromWorker) -> Result<FromWorker, String> {
    let line = msg.to_json().to_compact();
    assert!(!line.contains('\n'), "messages must be single lines");
    FromWorker::from_json(&parse_line(&line)?)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn assign_round_trips(
        experiment in "[ -~]{1,24}",
        unit in any::<usize>(),
        scale in "[a-z]{1,8}",
        seed in any::<u64>(),
        events in any::<bool>(),
        events_cap in 1u64..=u64::from(u32::MAX),
        deps in collection::vec(payload(), 0..4),
    ) {
        let msg = ToWorker::Assign { experiment, unit, scale, seed, events, events_cap, deps };
        prop_assert_eq!(wire_to_worker(&msg), Ok(msg));
    }

    #[test]
    fn done_round_trips(
        experiment in "[ -~]{1,24}",
        unit in any::<usize>(),
        wall_ms in any::<u64>(),
        metrics in payload(),
        result in payload(),
        has_events in any::<bool>(),
        events_blob in "[ -~]{0,48}",
    ) {
        let events = has_events.then(|| format!("{events_blob}\n"));
        let msg = FromWorker::Done { experiment, unit, wall_ms, metrics, result, events };
        prop_assert_eq!(wire_from_worker(&msg), Ok(msg));
    }

    #[test]
    fn failed_round_trips(
        experiment in "[ -~]{1,24}",
        unit in any::<usize>(),
        error in "[ -~]{0,64}",
    ) {
        let msg = FromWorker::Failed { experiment, unit, error };
        prop_assert_eq!(wire_from_worker(&msg), Ok(msg));
    }

    #[test]
    fn ready_round_trips(protocol in any::<u64>(), pid in any::<u64>()) {
        let msg = FromWorker::Ready { protocol, pid };
        prop_assert_eq!(wire_from_worker(&msg), Ok(msg));
    }
}

#[test]
fn shutdown_round_trips() {
    assert_eq!(wire_to_worker(&ToWorker::Shutdown), Ok(ToWorker::Shutdown));
}
