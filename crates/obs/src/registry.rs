//! The process-wide observability hub.
//!
//! A [`Registry`] aggregates counter totals across every metric scope
//! that reports to it — the harness runner and the coordinator push
//! each completed unit's [`Metrics`](crate::Metrics) in, so a process
//! can always answer "what has the simulator done so far" without
//! threading state through call sites. Thread-safe; all methods take
//! `&self`.
//!
//! This is lifetime accounting for humans (progress dashboards, the
//! `report` subcommand's process totals). The per-unit metrics that
//! reach envelopes and the cache flow through [`crate::record`] scopes
//! directly and never read the registry, so the deterministic channel
//! cannot be polluted by unrelated activity in the same process.

use std::sync::{Mutex, OnceLock};

use crate::metrics::Metrics;

/// Thread-safe accumulator of counter totals.
#[derive(Debug, Default)]
pub struct Registry {
    totals: Mutex<Metrics>,
    units: Mutex<u64>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-global registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Folds one completed unit's counters into the lifetime totals.
    pub fn absorb(&self, metrics: &Metrics) {
        self.totals
            .lock()
            .expect("registry totals poisoned")
            .merge(metrics);
        *self.units.lock().expect("registry units poisoned") += 1;
    }

    /// Adds `n` to lifetime counter `name` without counting a unit —
    /// for process-level events (worker deaths, requeues, heartbeats)
    /// that are not unit metric sets.
    pub fn add(&self, name: &str, n: u64) {
        self.totals
            .lock()
            .expect("registry totals poisoned")
            .add(name, n);
    }

    /// A snapshot of the lifetime totals.
    pub fn totals(&self) -> Metrics {
        self.totals
            .lock()
            .expect("registry totals poisoned")
            .clone()
    }

    /// How many unit metric sets have been absorbed.
    pub fn units_absorbed(&self) -> u64 {
        *self.units.lock().expect("registry units poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorbs_across_threads() {
        let registry = Registry::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let registry = &registry;
                s.spawn(move || {
                    let mut m = Metrics::new();
                    m.add("sim.service_wakes", 10 + t);
                    registry.absorb(&m);
                });
            }
        });
        assert_eq!(registry.units_absorbed(), 4);
        assert_eq!(registry.totals().get("sim.service_wakes"), 46);
    }
}
